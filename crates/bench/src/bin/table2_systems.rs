//! Table 2 — the experimental systems, as modeled by
//! `colossalai-topology`'s presets, with the derived link properties that
//! drive every other experiment.

use colossalai_bench::{fmt_bandwidth, fmt_bytes, print_table};
use colossalai_topology::systems::{system_i, system_ii, system_iii, system_iv};
use colossalai_topology::Cluster;

fn row(c: &Cluster) -> Vec<String> {
    let per_node = c.n_devices() / c.n_nodes();
    let gpu = c.gpu(0);
    let intra = if per_node > 1 {
        fmt_bandwidth(c.link(0, 1).bandwidth)
    } else {
        "n/a".to_string()
    };
    let cross = if c.n_nodes() > 1 {
        fmt_bandwidth(c.link(0, per_node).bandwidth)
    } else {
        "n/a".to_string()
    };
    vec![
        c.name().to_string(),
        per_node.to_string(),
        c.n_nodes().to_string(),
        gpu.name.clone(),
        fmt_bytes(gpu.memory_bytes),
        intra,
        cross,
    ]
}

fn main() {
    let systems = [system_i(), system_ii(), system_iii(), system_iv()];
    let rows: Vec<Vec<String>> = systems.iter().map(row).collect();
    print_table(
        "Table 2: system specification (as modeled)",
        &[
            "System",
            "GPUs/node",
            "nodes",
            "GPU",
            "memory",
            "intra-node link(0,1)",
            "cross-node",
        ],
        &rows,
    );
    println!(
        "\nExperiment items (per the paper): I/II tensor parallelism (+ ZeRO \
         on II), III tensor + sequence parallelism, IV tensor parallelism at \
         scale."
    );
    // the System II asymmetry that drives Fig 11b
    let ii = system_ii();
    println!(
        "System II detail: link(0,1) = {} (NVLink bridge) but link(0,2) = {} \
         (PCIe) — the bimodal topology of Fig 9b.",
        fmt_bandwidth(ii.link(0, 1).bandwidth),
        fmt_bandwidth(ii.link(0, 2).bandwidth)
    );
}
