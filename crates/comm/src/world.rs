//! The simulated multi-device world: per-device virtual clocks, a shared
//! cluster model, global traffic stats, and two execution backends — the
//! event-driven rank scheduler (default) and the legacy thread-per-rank
//! mode.

use crate::group::{Group, GroupShared, Wire};
use crate::sched::{AbortRun, Scheduler, TaskWaker};
use crate::stats::CommStats;
use crate::task::{Poll, RankTask, WakeKey, WakeSource};
use crate::trace::{self, RankRollup, Span, SpanKind, Tracer, Track};
use colossalai_tensor::{envknob, Tensor};
use colossalai_topology::{AllReduceAlgo, Cluster, DeviceId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// One point-to-point mailbox: the FIFO for a single `(from, to, tag)` key
/// plus that key's *own* wakeup condvar.
///
/// The per-key condvar is the core of the wakeup discipline: a delivery
/// notifies only the receiver parked on this exact key, so a message in a
/// 4096-rank world wakes one task — not every parked receiver world-wide
/// (the old single `mailbox_cv` + `notify_all` herd made every message
/// cost O(parked ranks) scheduler readmissions).
#[derive(Default)]
struct MailSlot {
    /// Messages in flight: payload, virtual arrival time, wire bytes (as
    /// charged by the sender — the receiver traces the same width).
    queue: VecDeque<(Tensor, f64, u64)>,
    /// A receiver is parked on `cv` right now (set/cleared under the
    /// mailbox lock). Lets the sender skip the notify entirely when nobody
    /// is parked, and lets `abort_wake` find every occupied slot.
    waiting: bool,
    /// Keyed wakeup target. `Arc` so a receiver can clone it and park via
    /// [`DeviceCtx::wait_on`] after releasing its borrow of the map entry.
    cv: Arc<Condvar>,
    /// Global rank of a stackless task parked `Pending` on this key — the
    /// poll-driven analog of `waiting`. The sender takes it (under the
    /// mailbox lock) and requeues the task through the run's [`TaskWaker`].
    parked_task: Option<DeviceId>,
}

/// Point-to-point mailboxes keyed by (from, to, tag).
type Mailbox = HashMap<(DeviceId, DeviceId, u64), MailSlot>;

/// Wakeup-discipline observability counters (see [`WakeStats`]).
///
/// These measure *host* scheduling behavior — how many times tasks came
/// off a condvar — and are deliberately **not** part of [`CommStats`]:
/// wake counts may vary across backends, pool sizes and runs (spurious
/// wakeups, abort races), so they must never enter the bitwise parity
/// surface that `tests/world_backend_parity.rs` compares.
#[derive(Default)]
struct WakeCounters {
    /// Point-to-point messages delivered into a mailbox.
    p2p_msgs: AtomicU64,
    /// Times a receiver came off a mailbox condvar wait.
    p2p_wakes: AtomicU64,
    /// Times a task came off a group-rendezvous condvar wait.
    group_wakes: AtomicU64,
}

/// Snapshot of the world's wakeup counters ([`World::wake_stats`]).
///
/// With keyed per-`(from, to, tag)` mailbox condvars, one delivery wakes at
/// most one receiver, so `p2p_wakes / p2p_msgs` stays ~1 at any world size
/// — that ratio is the regression guard for the O(world) `notify_all` herd
/// this design replaced. Host-timing-dependent; excluded from the
/// deterministic [`CommStats`] parity surface.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WakeStats {
    /// Point-to-point messages delivered.
    pub p2p_msgs: u64,
    /// Mailbox condvar wakeups observed by receivers.
    pub p2p_wakes: u64,
    /// Group-rendezvous condvar wakeups observed by members.
    pub group_wakes: u64,
}

impl WakeStats {
    /// Mailbox wakeups per delivered message (0 when no messages flowed).
    /// ~1 under the keyed-condvar discipline; O(world) under a broadcast
    /// herd.
    pub fn wakeups_per_msg(&self) -> f64 {
        if self.p2p_msgs == 0 {
            0.0
        } else {
            self.p2p_wakes as f64 / self.p2p_msgs as f64
        }
    }
}

/// OS-thread gauge behind [`ThreadStats`]: how many worker/rank threads
/// runs on this world spawned, kept live, and parked in blocking waits.
/// Relaxed atomics — a gauge, not a synchronization edge; peaks are exact
/// because every transition pairs `fetch_add` with `fetch_max`.
#[derive(Default)]
struct ThreadCounters {
    spawned: AtomicU64,
    live: AtomicU64,
    peak_live: AtomicU64,
    parked: AtomicU64,
    peak_parked: AtomicU64,
}

impl ThreadCounters {
    fn thread_started(&self) {
        self.spawned.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_live.fetch_max(live, Ordering::Relaxed);
    }

    fn thread_exited(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    fn park_started(&self) {
        let parked = self.parked.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_parked.fetch_max(parked, Ordering::Relaxed);
    }

    fn park_ended(&self) {
        self.parked.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII live-thread mark: created at the top of every spawned rank/worker
/// thread so the gauge survives unwinds (abort paths included).
struct ThreadLiveGuard<'a>(&'a ThreadCounters);

impl<'a> ThreadLiveGuard<'a> {
    fn new(counters: &'a ThreadCounters) -> ThreadLiveGuard<'a> {
        counters.thread_started();
        ThreadLiveGuard(counters)
    }
}

impl Drop for ThreadLiveGuard<'_> {
    fn drop(&mut self) {
        self.0.thread_exited();
    }
}

/// RAII parked-thread mark around every blocking wait (condvar waits,
/// scheduler admission, the stackless workers' idle wait).
struct ParkGuard<'a>(&'a ThreadCounters);

impl<'a> ParkGuard<'a> {
    fn new(counters: &'a ThreadCounters) -> ParkGuard<'a> {
        counters.park_started();
        ParkGuard(counters)
    }
}

impl Drop for ParkGuard<'_> {
    fn drop(&mut self) {
        self.0.park_ended();
    }
}

/// Snapshot of the OS-thread gauge ([`World::thread_stats`]): turns the
/// stackless backend's "peak OS threads is O(pool)" claim into a measured
/// number instead of an assertion. Host-behavioral, like [`WakeStats`] —
/// never part of the bitwise backend-parity surface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Rank/worker threads spawned by runs since the last reset.
    pub spawned: u64,
    /// Peak number of those threads alive at once.
    pub peak_live: u64,
    /// Peak number simultaneously parked in a blocking wait.
    pub peak_parked: u64,
}

impl ThreadStats {
    /// One-line summary for table footers.
    pub fn summary(&self) -> String {
        format!(
            "spawned={} peak_live={} peak_parked={}",
            self.spawned, self.peak_live, self.peak_parked
        )
    }
}

/// How [`World::run_on`] executes its rank closures.
///
/// Both backends produce bitwise-identical results, clocks, stats and
/// traces (`tests/world_backend_parity.rs`); they differ only in host
/// scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorldBackend {
    /// Legacy mode: all `n` rank threads run concurrently, scheduled by the
    /// OS. Fine up to a few dozen ranks; thrashes beyond that.
    Threads,
    /// Event-driven rank scheduler: every rank keeps a parked OS thread but
    /// at most `pool` of them execute at once, admitted from a central
    /// queue ordered by `(virtual_time, rank)`. `pool == 0` means "host
    /// cores". This is what lets 512–4096-rank worlds run in bounded memory
    /// and wall time.
    Sched {
        /// Number of concurrently running rank tasks (0 = host cores).
        pool: usize,
    },
    /// Stackless executor: ranks are heap [`RankTask`]s polled by a fixed
    /// `pool` of worker threads — no parked per-rank OS threads at all, so
    /// peak thread count is O(pool) however many ranks the world has. Only
    /// [`World::run_tasks`] runs stackless; closure-based [`World::run_on`]
    /// needs a stack per rank and falls back to the scheduler.
    Stackless {
        /// Number of worker threads polling tasks (0 = host cores).
        pool: usize,
    },
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Parses a `COLOSSAL_WORLD` backend name; `pool` pre-resolves the
/// `COLOSSAL_WORLD_POOL` knob for the pooled backends (0 still meaning
/// "host cores", clamped at use). Pure so the accepted grammar is
/// unit-testable without touching the process environment; `Err` carries
/// the normalized rejected value for the one-shot warning.
pub(crate) fn parse_world_backend(raw: &str, pool: usize) -> Result<WorldBackend, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "threads" => Ok(WorldBackend::Threads),
        "sched" => Ok(WorldBackend::Sched { pool }),
        "stackless" => Ok(WorldBackend::Stackless { pool }),
        other => Err(other.to_string()),
    }
}

/// Backend requested by `COLOSSAL_WORLD` / `COLOSSAL_WORLD_POOL` (read
/// once): `threads` for the legacy mode, `stackless` for the poll-driven
/// executor, `sched` (or unset) for the scheduler. Any other value warns
/// once and falls back to the scheduler.
fn env_backend() -> WorldBackend {
    static BACKEND: OnceLock<WorldBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        let pool = envknob::env_usize("COLOSSAL_WORLD_POOL", 0);
        match std::env::var("COLOSSAL_WORLD") {
            Err(_) => WorldBackend::Sched { pool },
            Ok(raw) => parse_world_backend(&raw, pool).unwrap_or_else(|bad| {
                envknob::warn_invalid(
                    "COLOSSAL_WORLD",
                    &bad,
                    "\"sched\", \"stackless\" or \"threads\"",
                    "sched",
                );
                WorldBackend::Sched { pool }
            }),
        }
    })
}

/// Per-rank stack size under the scheduler: `COLOSSAL_WORLD_STACK` bytes,
/// else 1 MiB — enough for the simulated workloads while keeping a
/// 4096-rank world around 4 GiB of (mostly uncommitted) reservations.
/// A malformed or zero value warns once and keeps the default.
fn rank_stack_bytes() -> usize {
    static STACK: OnceLock<usize> = OnceLock::new();
    *STACK.get_or_init(|| {
        const DEFAULT: usize = 1 << 20;
        let v = envknob::env_usize("COLOSSAL_WORLD_STACK", DEFAULT);
        if v == 0 {
            envknob::warn_invalid(
                "COLOSSAL_WORLD_STACK",
                "0",
                "a stack size in bytes >= 1",
                &DEFAULT.to_string(),
            );
            DEFAULT
        } else {
            v
        }
    })
}

/// Shared state behind a [`World`].
pub(crate) struct WorldInner {
    pub(crate) cluster: Cluster,
    pub(crate) stats: Mutex<CommStats>,
    pub(crate) tracer: Tracer,
    /// When set, every all-reduce uses this schedule instead of consulting
    /// the cost-model selector (benches and tests pin the algorithm).
    forced_algo: Mutex<Option<AllReduceAlgo>>,
    groups: Mutex<HashMap<Vec<DeviceId>, Arc<GroupShared>>>,
    mailbox: Mutex<Mailbox>,
    /// Wakeup observability (never part of the parity surface).
    wakes: WakeCounters,
    /// OS-thread observability (never part of the parity surface).
    threads: ThreadCounters,
    /// Programmatic backend override (wins over the environment).
    backend: Mutex<Option<WorldBackend>>,
}

impl WorldInner {
    /// Wakes every task parked on a resource condvar (keyed mailbox slots,
    /// group rendezvous) so they can observe the abort flag and unwind.
    ///
    /// The condvar table is keyed, so abort must *iterate* it: every slot's
    /// cv is collected under the mailbox lock (serializing against a
    /// receiver between its abort check and its wait — the receiver holds
    /// the mailbox lock from check to park) and notified after. Any
    /// receiver that parks later necessarily entered `wait_on` after the
    /// abort flag rose and unwinds on its pre-wait check instead.
    fn abort_wake(&self) {
        let cvs: Vec<Arc<Condvar>> = {
            let mb = self.mailbox.lock();
            mb.values().map(|slot| Arc::clone(&slot.cv)).collect()
        };
        for cv in cvs {
            cv.notify_all();
        }
        let groups: Vec<Arc<GroupShared>> = self.groups.lock().values().cloned().collect();
        for g in groups {
            g.abort_wake();
        }
    }

    /// Count one observed wakeup from a group-rendezvous condvar.
    pub(crate) fn count_group_wake(&self) {
        self.wakes.group_wakes.fetch_add(1, Ordering::Relaxed);
    }
}

/// A simulated cluster execution context.
///
/// `World::run` launches one task per participating device and hands each
/// a [`DeviceCtx`]. Collectives exchange real tensors through shared memory
/// while charging virtual time according to the cluster's link model, so
/// results are numerically real and timings follow the modeled hardware.
///
/// # Examples
///
/// ```
/// use colossalai_comm::World;
/// use colossalai_tensor::Tensor;
/// use colossalai_topology::systems::system_i;
///
/// let world = World::new(system_i());
/// let sums = world.run_on(4, |ctx| {
///     let group = ctx.world_group(4);
///     group.all_reduce(ctx, Tensor::scalar(ctx.rank() as f32)).item()
/// });
/// assert_eq!(sums, vec![6.0; 4]); // 0 + 1 + 2 + 3 on every rank
/// ```
pub struct World {
    inner: Arc<WorldInner>,
}

impl World {
    /// Creates a world over `cluster`.
    pub fn new(cluster: Cluster) -> World {
        World {
            inner: Arc::new(WorldInner {
                cluster,
                stats: Mutex::new(CommStats::default()),
                tracer: Tracer::default(),
                forced_algo: Mutex::new(None),
                groups: Mutex::new(HashMap::new()),
                mailbox: Mutex::new(HashMap::new()),
                wakes: WakeCounters::default(),
                threads: ThreadCounters::default(),
                backend: Mutex::new(None),
            }),
        }
    }

    /// The cluster model.
    pub fn cluster(&self) -> &Cluster {
        &self.inner.cluster
    }

    /// Pins the execution backend for this world (`None` restores the
    /// `COLOSSAL_WORLD` / default resolution). Results are identical either
    /// way; this exists for benches and the backend-parity tests.
    pub fn set_backend(&self, backend: Option<WorldBackend>) {
        *self.inner.backend.lock() = backend;
    }

    /// The backend the next [`World::run_on`] call will use, with the
    /// scheduler's `pool = 0` already resolved to the host core count.
    pub fn backend(&self) -> WorldBackend {
        let b = self.inner.backend.lock().unwrap_or_else(env_backend);
        match b {
            WorldBackend::Sched { pool: 0 } => WorldBackend::Sched { pool: host_cores() },
            WorldBackend::Stackless { pool: 0 } => WorldBackend::Stackless { pool: host_cores() },
            other => other,
        }
    }

    /// Runs `f` on the first `n` devices of the cluster and returns the
    /// per-rank results ordered by rank.
    ///
    /// Under the default scheduler backend each rank is a task on a fixed
    /// worker pool; under [`WorldBackend::Threads`] every rank gets a free
    /// running OS thread. Panics in any rank abort the run and propagate
    /// with the panicking rank's message (`"device thread panicked: ..."`),
    /// so test assertions inside device closures work as usual.
    pub fn run_on<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        assert!(
            n >= 1 && n <= self.inner.cluster.n_devices(),
            "cannot run on {n} devices of a {}-device cluster",
            self.inner.cluster.n_devices()
        );
        match self.backend() {
            WorldBackend::Threads => self.run_threads(n, f),
            WorldBackend::Sched { pool } => self.run_sched(n, pool, f),
            // an arbitrary closure needs a stack to block on, so the
            // stackless backend can only promise O(pool) threads for
            // `run_tasks`; closures degrade to the scheduler
            WorldBackend::Stackless { pool } => self.run_sched(n, pool, f),
        }
    }

    /// Runs one [`RankTask`] per rank (built by `make`, which receives the
    /// rank) and returns the per-rank outputs ordered by rank.
    ///
    /// Under [`WorldBackend::Stackless`] the tasks are multiplexed onto a
    /// fixed `pool` of worker threads with no parked per-rank OS threads —
    /// peak thread count is O(pool) however large `n` is (measured by
    /// [`World::thread_stats`]). Under the other backends each task is
    /// driven to completion by [`DeviceCtx::block_on`] on its rank thread.
    /// All three produce bitwise-identical results, stats and traces.
    pub fn run_tasks<T, F>(&self, n: usize, make: F) -> Vec<T::Output>
    where
        T: RankTask,
        F: Fn(DeviceId) -> T + Send + Sync,
    {
        assert!(
            n >= 1 && n <= self.inner.cluster.n_devices(),
            "cannot run on {n} devices of a {}-device cluster",
            self.inner.cluster.n_devices()
        );
        match self.backend() {
            WorldBackend::Threads => self.run_threads(n, |ctx| ctx.block_on(make(ctx.rank))),
            WorldBackend::Sched { pool } => {
                self.run_sched(n, pool, |ctx| ctx.block_on(make(ctx.rank)))
            }
            WorldBackend::Stackless { pool } => self.run_stackless(n, pool, make),
        }
    }

    /// The legacy thread-per-rank backend.
    fn run_threads<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        let inner = &self.inner;
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let inner = Arc::clone(inner);
                    scope.spawn(move || {
                        let _live = ThreadLiveGuard::new(&inner.threads);
                        let ctx = DeviceCtx::new(Arc::clone(&inner), rank, None);
                        f(&ctx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("device thread panicked"))
                .collect()
        })
    }

    /// The event-driven scheduler backend: `n` parked rank tasks admitted
    /// onto `pool` running slots in `(virtual_time, rank)` order.
    fn run_sched<R, F>(&self, n: usize, pool: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        let pool = if pool == 0 { host_cores() } else { pool };
        let sched = Scheduler::new(n, pool);
        // (rank, message) of every rank that panicked on its own (peers
        // unwound by the abort marker are not recorded)
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let inner = &self.inner;
        let f = &f;
        let results: Vec<Option<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let inner = Arc::clone(inner);
                    let sched = Arc::clone(&sched);
                    let panics = &panics;
                    std::thread::Builder::new()
                        .name(format!("colossal-rank-{rank}"))
                        .stack_size(rank_stack_bytes())
                        .spawn_scoped(scope, move || {
                            let _live = ThreadLiveGuard::new(&inner.threads);
                            let ctx = DeviceCtx::new(Arc::clone(&inner), rank, Some(&sched));
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    {
                                        let _parked = ParkGuard::new(&inner.threads);
                                        sched.wait_admitted(rank);
                                    }
                                    ctx.check_abort();
                                    f(&ctx)
                                }));
                            let out = match out {
                                Ok(v) => Some(v),
                                Err(payload) => {
                                    if !payload.is::<AbortRun>() {
                                        // as_ref, not &payload: the latter would
                                        // unsize the Box itself into `dyn Any`
                                        panics.lock().push((rank, panic_message(payload.as_ref())));
                                        sched.abort_all();
                                        inner.abort_wake();
                                    }
                                    None
                                }
                            };
                            sched.task_done(rank);
                            out
                        })
                        .expect("spawn rank task")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(None))
                .collect()
        });
        let primary = panics.into_inner().into_iter().min_by_key(|&(r, _)| r);
        if let Some((rank, msg)) = primary {
            panic!("device thread panicked: rank {rank}: {msg}");
        }
        results
            .into_iter()
            .map(|r| r.expect("rank task produced no result"))
            .collect()
    }

    /// Hints the CPU to pull the first cache lines of `v` toward L1. At
    /// 16k ranks the per-rank task and ctx structs cannot all stay
    /// cache-resident, so each dispatch would stall on cold loads;
    /// prefetching the *next* ready rank's state while the current poll
    /// runs overlaps that miss latency with useful work. Advisory only —
    /// correctness never depends on it.
    #[inline]
    fn prefetch_for_poll<V>(v: &V) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = v as *const V as *const i8;
            // pull up to four lines — enough for a task state machine or a
            // DeviceCtx without flooding the load queue
            let lines = std::mem::size_of::<V>().div_ceil(64).min(4);
            for l in 0..lines {
                // SAFETY: prefetch is a hint; it never faults, and `p + l *
                // 64` stays within (or one line past) the live borrow.
                unsafe { _mm_prefetch(p.add(l * 64), _MM_HINT_T0) }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = v;
    }

    /// The stackless executor: `n` heap tasks polled to completion by
    /// `pool` worker threads. A task that returns `Pending` is simply not
    /// requeued until its wake key fires — no OS thread parks on its
    /// behalf, which is the whole point: peak threads is `pool`, not `n`.
    ///
    /// Panic contract matches the other backends: the first real panic sets
    /// the abort flag, requeues every parked task so it observes it and
    /// unwinds via [`AbortRun`], and the lowest-ranked primary panic is
    /// re-raised as `"device thread panicked: rank r: msg"`.
    fn run_stackless<T, F>(&self, n: usize, pool: usize, make: F) -> Vec<T::Output>
    where
        T: RankTask,
        F: Fn(DeviceId) -> T + Send + Sync,
    {
        let pool = if pool == 0 { host_cores() } else { pool }.min(n).max(1);
        let waker = TaskWaker::new(n);
        let ctxs: Vec<DeviceCtx> = (0..n)
            .map(|rank| DeviceCtx::new_task(Arc::clone(&self.inner), rank, &waker))
            .collect();
        // per-task mutexes are uncontended (the waker hands each task to
        // exactly one worker at a time); they exist to move tasks/results
        // across worker threads safely
        let tasks: Vec<Mutex<Option<T>>> =
            (0..n).map(|rank| Mutex::new(Some(make(rank)))).collect();
        let results: Vec<Mutex<Option<T::Output>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let inner = &self.inner;
        std::thread::scope(|scope| {
            for w in 0..pool {
                let waker = Arc::clone(&waker);
                let (ctxs, tasks, results, panics) = (&ctxs, &tasks, &results, &panics);
                std::thread::Builder::new()
                    .name(format!("colossal-task-{w}"))
                    .spawn_scoped(scope, move || {
                        let _live = ThreadLiveGuard::new(&inner.threads);
                        while let Some(rank) = waker.next_ready(
                            || inner.threads.park_started(),
                            || inner.threads.park_ended(),
                        ) {
                            if let Some(next) = waker.next_hint() {
                                Self::prefetch_for_poll(&tasks[next]);
                                Self::prefetch_for_poll(&ctxs[next]);
                            }
                            let polled =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let mut slot = tasks[rank].lock();
                                    let task = slot.as_mut().expect("task polled after completion");
                                    ctxs[rank].check_abort();
                                    task.poll(&ctxs[rank])
                                }));
                            match polled {
                                Ok(Poll::Ready(out)) => {
                                    *results[rank].lock() = Some(out);
                                    *tasks[rank].lock() = None;
                                    waker.finish(rank);
                                }
                                Ok(Poll::Pending(_)) => waker.park(rank),
                                Err(payload) => {
                                    if !payload.is::<AbortRun>() {
                                        panics.lock().push((rank, panic_message(payload.as_ref())));
                                        // requeue every parked task so it
                                        // observes the abort and unwinds;
                                        // also wake any blocking waiters
                                        // (none under pure stackless runs,
                                        // but cheap and uniform)
                                        waker.abort_all();
                                        inner.abort_wake();
                                    }
                                    *tasks[rank].lock() = None;
                                    waker.finish(rank);
                                }
                            }
                        }
                    })
                    .expect("spawn task worker");
            }
        });
        let primary = panics.into_inner().into_iter().min_by_key(|&(r, _)| r);
        if let Some((rank, msg)) = primary {
            panic!("device thread panicked: rank {rank}: {msg}");
        }
        results
            .into_iter()
            .map(|r| r.into_inner().expect("rank task produced no result"))
            .collect()
    }

    /// Runs `f` on every device of the cluster.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        self.run_on(self.inner.cluster.n_devices(), f)
    }

    /// Snapshot of the accumulated communication statistics.
    pub fn stats(&self) -> CommStats {
        self.inner.stats.lock().clone()
    }

    /// Clears accumulated statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&self) {
        *self.inner.stats.lock() = CommStats::default();
    }

    /// Snapshot of the wakeup-discipline counters: messages delivered and
    /// condvar wakeups observed. `wakeups_per_msg()` ~1 proves keyed
    /// per-`(from, to, tag)` wakeups; O(world) means the herd is back.
    /// Host-timing-dependent — never compared for backend parity.
    pub fn wake_stats(&self) -> WakeStats {
        WakeStats {
            p2p_msgs: self.inner.wakes.p2p_msgs.load(Ordering::Relaxed),
            p2p_wakes: self.inner.wakes.p2p_wakes.load(Ordering::Relaxed),
            group_wakes: self.inner.wakes.group_wakes.load(Ordering::Relaxed),
        }
    }

    /// Clears the wakeup counters (e.g. after a warm-up phase).
    pub fn reset_wake_stats(&self) {
        self.inner.wakes.p2p_msgs.store(0, Ordering::Relaxed);
        self.inner.wakes.p2p_wakes.store(0, Ordering::Relaxed);
        self.inner.wakes.group_wakes.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the OS-thread gauge: threads spawned by runs on this
    /// world, the peak alive at once, and the peak simultaneously parked in
    /// blocking waits. Under [`WorldBackend::Stackless`] `peak_live` stays
    /// at the pool size no matter the rank count; under the other backends
    /// it tracks the world size. Host-behavioral — never compared for
    /// backend parity.
    pub fn thread_stats(&self) -> ThreadStats {
        ThreadStats {
            spawned: self.inner.threads.spawned.load(Ordering::Relaxed),
            peak_live: self.inner.threads.peak_live.load(Ordering::Relaxed),
            peak_parked: self.inner.threads.peak_parked.load(Ordering::Relaxed),
        }
    }

    /// Clears the thread gauge (e.g. after a warm-up run).
    pub fn reset_thread_stats(&self) {
        self.inner.threads.spawned.store(0, Ordering::Relaxed);
        self.inner.threads.live.store(0, Ordering::Relaxed);
        self.inner.threads.peak_live.store(0, Ordering::Relaxed);
        self.inner.threads.parked.store(0, Ordering::Relaxed);
        self.inner.threads.peak_parked.store(0, Ordering::Relaxed);
    }

    /// Pins the all-reduce schedule for every group in this world, or
    /// restores per-call cost-model selection with `None`. Data results are
    /// identical either way (the reduction order is canonical); only the
    /// charged time, element-hop stats and trace phases differ.
    pub fn force_allreduce_algo(&self, algo: Option<AllReduceAlgo>) {
        *self.inner.forced_algo.lock() = algo;
    }

    // ---- tracing --------------------------------------------------------

    /// Turns span recording on or off (off by default; the disabled path
    /// costs one relaxed atomic load per potential span).
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracer.set_enabled(on);
    }

    /// Enables span recording. Shorthand for `set_tracing(true)`.
    pub fn enable_tracing(&self) {
        self.set_tracing(true);
    }

    /// Whether spans are currently being recorded.
    pub fn tracing(&self) -> bool {
        self.inner.tracer.enabled()
    }

    /// Snapshot of all recorded spans in canonical lane order (device
    /// tracks by rank, comm-stream tracks by rank, then group tracks by
    /// name; within a lane, recording order). The snapshot is
    /// bitwise-identical across backends and pool sizes.
    pub fn trace(&self) -> Vec<Span> {
        self.inner.tracer.snapshot()
    }

    /// Drops all recorded spans (e.g. after a warm-up step).
    pub fn clear_trace(&self) {
        self.inner.tracer.clear();
    }

    /// Chrome/Perfetto `trace_events` JSON of the recorded spans: one track
    /// per simulated device plus one per collective group. Load the output
    /// at `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn trace_json(&self) -> String {
        trace::chrome_trace_json(&self.trace())
    }

    /// Per-rank rollup of the recorded leaf spans: seconds in compute,
    /// communication, memory movement and idle.
    pub fn trace_rollup(&self) -> Vec<RankRollup> {
        trace::rollup(&self.trace())
    }

    /// The rollup formatted as a fixed-width table. At 64 ranks and above
    /// the per-rank rows collapse into min/median/max summary lines; use
    /// [`World::rollup_table_full`] to force every row. A footer reports
    /// this world's OS-thread gauge next to the process-wide pool/par ones.
    pub fn rollup_table(&self) -> String {
        let mut table = trace::rollup_table(&self.trace_rollup());
        table.push_str(&format!("threads: {}\n", self.thread_stats().summary()));
        table
    }

    /// The rollup table with one row per rank regardless of world size.
    pub fn rollup_table_full(&self) -> String {
        let mut table = trace::rollup_table_full(&self.trace_rollup());
        table.push_str(&format!("threads: {}\n", self.thread_stats().summary()));
        table
    }
}

/// Human-readable text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Where a ctx's main virtual clock lives. Thread-backed ctxs own an
/// `Arc`'d cell (clones of the ctx share it); stackless ctxs use their
/// rank's slot in the executor's contiguous clock array — the same cell
/// wakers read to key the ready heap, and cache-friendly at 16k ranks
/// where per-rank `Arc` cells would be 16k scattered allocations.
#[derive(Clone)]
enum ClockCell {
    Own(Arc<AtomicU64>),
    Task(Arc<TaskWaker>, DeviceId),
}

impl ClockCell {
    #[inline]
    fn load(&self) -> u64 {
        match self {
            ClockCell::Own(c) => c.load(Ordering::Relaxed),
            ClockCell::Task(w, rank) => w.clock_bits(*rank),
        }
    }

    #[inline]
    fn store(&self, bits: u64) {
        match self {
            ClockCell::Own(c) => c.store(bits, Ordering::Relaxed),
            ClockCell::Task(w, rank) => w.set_clock_bits(*rank, bits),
        }
    }
}

/// Per-device execution context handed to the closure of [`World::run`].
///
/// Holds the device's virtual clock. Compute is charged explicitly via
/// [`DeviceCtx::charge_flops_f32`] / [`DeviceCtx::charge_seconds`];
/// communication is charged implicitly by the collectives in
/// [`Group`] type.
/// Cloning a `DeviceCtx` yields a handle to the *same* device: clones share
/// the clock and FLOP counter, so layers and optimizers can each hold one.
#[derive(Clone)]
pub struct DeviceCtx {
    pub(crate) world: Arc<WorldInner>,
    pub(crate) rank: DeviceId,
    clock: ClockCell,
    /// The communication stream's clock: `async` collectives accrue here
    /// while compute keeps running on `clock`; [`DeviceCtx::comm_sync`]
    /// joins the two.
    comm_clock: Arc<AtomicU64>,
    flops: Arc<AtomicU64>,
    /// The run's rank scheduler (`None` under the other backends).
    sched: Option<Arc<Scheduler>>,
    /// The run's stackless executor (`None` under the other backends).
    tasks: Option<Arc<TaskWaker>>,
}

impl DeviceCtx {
    fn new(world: Arc<WorldInner>, rank: DeviceId, sched: Option<&Arc<Scheduler>>) -> DeviceCtx {
        DeviceCtx {
            world,
            rank,
            clock: ClockCell::Own(Arc::new(AtomicU64::new(0.0f64.to_bits()))),
            comm_clock: Arc::new(AtomicU64::new(0.0f64.to_bits())),
            flops: Arc::new(AtomicU64::new(0)),
            sched: sched.map(Arc::clone),
            tasks: None,
        }
    }

    /// Context for a stackless task. The virtual clock is *shared with the
    /// task waker*, so the ready heap can order requeues by `(vtime, rank)`
    /// without reaching back into the ctx.
    fn new_task(world: Arc<WorldInner>, rank: DeviceId, waker: &Arc<TaskWaker>) -> DeviceCtx {
        DeviceCtx {
            world,
            rank,
            clock: ClockCell::Task(Arc::clone(waker), rank),
            comm_clock: Arc::new(AtomicU64::new(0.0f64.to_bits())),
            flops: Arc::new(AtomicU64::new(0)),
            sched: None,
            tasks: Some(Arc::clone(waker)),
        }
    }

    /// The stackless executor driving this context's task, if any. Resource
    /// code (mailbox, rendezvous) uses this to decide between registering a
    /// parked task for an explicit wake and relying on condvar waiters.
    pub(crate) fn task_waker(&self) -> Option<&Arc<TaskWaker>> {
        self.tasks.as_ref()
    }

    /// Global device id of this context.
    pub fn rank(&self) -> DeviceId {
        self.rank
    }

    /// The cluster model.
    pub fn cluster(&self) -> &Cluster {
        &self.world.cluster
    }

    /// Current virtual time in seconds.
    ///
    /// The clock is only ever written by its own device task, so relaxed
    /// atomics are sufficient — the shared [`ClockCell`] exists to let
    /// clones of the ctx (held by layers, optimizers, schedules) share one
    /// clock, not for cross-thread communication.
    pub fn clock(&self) -> f64 {
        f64::from_bits(self.clock.load())
    }

    fn set_clock(&self, t: f64) {
        self.clock.store(t.to_bits());
    }

    /// Advances the virtual clock by `dt` seconds. A clock advance is a
    /// scheduler yield point: if another rank task is ready at an earlier
    /// virtual time, the slot is handed over (which never changes results —
    /// only host execution order).
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0, "negative time step");
        self.set_clock(self.clock() + dt);
        self.maybe_yield();
    }

    /// Forces the clock to at least `t` (used when receiving messages).
    pub(crate) fn advance_to(&self, t: f64) {
        if t > self.clock() {
            self.set_clock(t);
        }
        self.maybe_yield();
    }

    /// Yields the running slot when an earlier-in-virtual-time task is
    /// ready (no-op under the threads backend).
    #[inline]
    fn maybe_yield(&self) {
        if let Some(sched) = &self.sched {
            sched.maybe_yield(self.rank, self.clock());
        }
    }

    /// Unwinds (silently) when the run is aborting after another rank's
    /// panic. No-op under the threads backend.
    pub(crate) fn check_abort(&self) {
        let aborting = match (&self.sched, &self.tasks) {
            (Some(sched), _) => sched.abort.load(Ordering::Relaxed),
            (None, Some(waker)) => waker.abort.load(Ordering::Relaxed),
            (None, None) => false,
        };
        if aborting {
            std::panic::resume_unwind(Box::new(AbortRun));
        }
    }

    /// Scheduler-aware condvar wait: releases this task's running slot
    /// while parked so another ready rank can execute (the threads backend
    /// waits directly). The resource lock (`guard`) is held through the
    /// wait as usual; slot reacquisition happens with it released, so lock
    /// order is always resource → scheduler.
    pub(crate) fn wait_on<T>(&self, cv: &Condvar, guard: &mut parking_lot::MutexGuard<'_, T>) {
        let _parked = ParkGuard::new(&self.world.threads);
        match &self.sched {
            None => cv.wait(guard),
            Some(sched) => {
                self.check_abort();
                sched.begin_block(self.rank);
                cv.wait(guard);
                let (rank, clock) = (self.rank, self.clock());
                parking_lot::MutexGuard::unlocked(guard, || sched.end_block(rank, clock));
                self.check_abort();
            }
        }
    }

    /// Blocking twin of a stackless park: waits (at most once) for the
    /// resource named by `key` to change, then returns so the caller can
    /// re-poll — a condvar waiter's wait step, with the predicate re-check
    /// living in the op's `poll`. This is how the threads and sched
    /// backends drive the very same resumable ops the stackless executor
    /// polls. Panics if called from a stackless task: those must return
    /// `Pending` instead of blocking their pool worker.
    pub(crate) fn wait_key(&self, key: &WakeKey) {
        assert!(
            self.tasks.is_none(),
            "blocking wait inside a stackless task"
        );
        match &key.source {
            WakeSource::Mail { from, to, tag } => {
                let mut mb = self.world.mailbox.lock();
                let slot = mb.entry((*from, *to, *tag)).or_default();
                // re-check under the lock: the message may have landed
                // between the poll that returned Pending and this wait
                if slot.queue.is_empty() {
                    slot.waiting = true;
                    let cv = Arc::clone(&slot.cv);
                    self.wait_on(&cv, &mut mb);
                }
            }
            WakeSource::Publish(shared) => shared.block_until_published(self),
            WakeSource::Drain(shared) => shared.block_until_drained(self),
        }
    }

    /// Drives a resumable task to completion on the current OS thread,
    /// blocking on each `Pending`'s wake key. This is how the threads and
    /// sched backends execute a [`RankTask`]: the same state machine the
    /// stackless executor advances, waited on with condvars instead of
    /// requeues — which is why all three backends are bitwise identical.
    pub fn block_on<T: RankTask>(&self, mut task: T) -> T::Output {
        loop {
            match task.poll(self) {
                Poll::Ready(out) => return out,
                Poll::Pending(key) => self.wait_key(&key),
            }
        }
    }

    // ---- comm stream ----------------------------------------------------

    /// Current virtual time of the communication stream in seconds. Lags
    /// the main clock while no async collective is in flight.
    pub fn comm_clock(&self) -> f64 {
        f64::from_bits(self.comm_clock.load(Ordering::Relaxed))
    }

    fn set_comm_clock(&self, t: f64) {
        self.comm_clock.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Earliest virtual time a newly launched async collective can start on
    /// this rank: the later of the two streams (compute must have produced
    /// the payload; the comm stream must have drained prior ops).
    pub(crate) fn comm_ready(&self) -> f64 {
        self.clock().max(self.comm_clock())
    }

    /// Forces the comm-stream clock to at least `t`.
    pub(crate) fn comm_advance_to(&self, t: f64) {
        if t > self.comm_clock() {
            self.set_comm_clock(t);
        }
    }

    /// Joins the comm stream into the main clock: both become
    /// `max(main, comm)`. Call before consuming the result of an async
    /// collective (e.g. before `optimizer.step`); a no-op when the comm
    /// stream is already behind the main clock.
    pub fn comm_sync(&self) {
        let t = self.comm_ready();
        self.set_clock(t);
        self.set_comm_clock(t);
    }

    /// The world-wide pinned all-reduce schedule, if any (see
    /// [`World::force_allreduce_algo`]).
    pub(crate) fn forced_allreduce_algo(&self) -> Option<AllReduceAlgo> {
        *self.world.forced_algo.lock()
    }

    /// Charges `flops` of FP32 compute at this device's modeled rate.
    pub fn charge_flops_f32(&self, flops: u64) {
        self.flops.fetch_add(flops, Ordering::Relaxed);
        let dt = self.world.cluster.gpu(self.rank).compute_time_f32(flops);
        self.advance(dt);
    }

    /// Charges `flops` of FP16 tensor-core compute.
    pub fn charge_flops_f16(&self, flops: u64) {
        self.flops.fetch_add(flops, Ordering::Relaxed);
        let dt = self.world.cluster.gpu(self.rank).compute_time_f16(flops);
        self.advance(dt);
    }

    /// Charges raw seconds (e.g. host-side optimizer time, offload DMA).
    pub fn charge_seconds(&self, dt: f64) {
        self.advance(dt);
    }

    /// Total FLOPs charged so far.
    pub fn flops(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
    }

    /// Records traffic into the world-level stats (one call per group op).
    pub(crate) fn record_stats(&self, kind: crate::stats::OpKind, elements: u64, bytes: u64) {
        self.world.stats.lock().record(kind, elements, bytes);
    }

    // ---- tracing --------------------------------------------------------

    /// Whether the world is recording spans (cheap; callers may skip span
    /// bookkeeping entirely when false).
    pub fn tracing(&self) -> bool {
        self.world.tracer.enabled()
    }

    /// Records a span on this device's track from `start` to the current
    /// clock. No-op unless tracing is enabled.
    pub fn trace_span(&self, kind: SpanKind, start: f64) {
        if self.tracing() {
            self.world.tracer.record(Span {
                rank: self.rank,
                track: Track::Device(self.rank),
                kind,
                start,
                end: self.clock(),
            });
        }
    }

    /// Records a span on an arbitrary track (used by collectives for the
    /// per-group timeline).
    pub(crate) fn trace_span_on(&self, track: Track, kind: SpanKind, start: f64, end: f64) {
        if self.tracing() {
            self.world.tracer.record(Span {
                rank: self.rank,
                track,
                kind,
                start,
                end,
            });
        }
    }

    /// Records a span attributed to an explicit rank (group-track spans use
    /// the group's first member so traces don't depend on arrival order).
    pub(crate) fn trace_span_as(
        &self,
        rank: DeviceId,
        track: Track,
        kind: SpanKind,
        start: f64,
        end: f64,
    ) {
        if self.tracing() {
            self.world.tracer.record(Span {
                rank,
                track,
                kind,
                start,
                end,
            });
        }
    }

    /// Runs `f` inside a [`SpanKind::Phase`] span named `name`. Phase spans
    /// nest over the leaf spans `f` records.
    pub fn trace_phase<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.tracing() {
            return f();
        }
        let start = self.clock();
        let out = f();
        self.trace_span(
            SpanKind::Phase {
                name: name.to_string(),
            },
            start,
        );
        out
    }

    /// Obtains (or creates) the process group over `members`.
    ///
    /// Every member must call with the *same* member list (order included);
    /// the calling device must itself be a member.
    pub fn group(&self, members: &[DeviceId]) -> Group {
        assert!(
            members.contains(&self.rank),
            "device {} is not in group {:?}",
            self.rank,
            members
        );
        let mut dedup = members.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            members.len(),
            "duplicate members in {members:?}"
        );
        let shared = {
            let mut groups = self.world.groups.lock();
            Arc::clone(
                groups
                    .entry(members.to_vec())
                    .or_insert_with(|| Arc::new(GroupShared::new(members.to_vec()))),
            )
        };
        Group::new(shared, self.rank)
    }

    /// The group of all devices participating in runs of size `n`
    /// (devices `0..n`).
    pub fn world_group(&self, n: usize) -> Group {
        let members: Vec<DeviceId> = (0..n).collect();
        self.group(&members)
    }

    // ---- point-to-point -------------------------------------------------

    /// Sends `t` to device `to` under `tag` at FP32 wire width.
    /// Synchronous-send model: the sender's clock advances by the full
    /// transfer time and the message becomes visible to the receiver at the
    /// sender's post-send clock.
    pub fn send(&self, to: DeviceId, tag: u64, t: Tensor) {
        self.send_wire(to, tag, t, Wire::F32);
    }

    /// FP16-wire variant of [`DeviceCtx::send`]: charges 2 bytes/element on
    /// the link (mixed-precision activation/gradient traffic between
    /// pipeline stages). The payload tensor is unchanged — only the billed
    /// width differs.
    pub fn send_half(&self, to: DeviceId, tag: u64, t: Tensor) {
        self.send_wire(to, tag, t, Wire::F16);
    }

    fn send_wire(&self, to: DeviceId, tag: u64, t: Tensor, wire: Wire) {
        assert_ne!(to, self.rank, "send to self");
        self.check_abort();
        let bytes = t.numel() as u64 * wire.bytes();
        let dt = self.world.cluster.p2p_time(self.rank, to, bytes);
        let t_start = self.clock();
        self.advance(dt);
        self.trace_span(
            SpanKind::P2p {
                peer: to,
                tag,
                bytes,
                is_send: true,
            },
            t_start,
        );
        let arrival = self.clock();
        self.record_stats(crate::stats::OpKind::SendRecv, t.numel() as u64, bytes);
        let mut mb = self.world.mailbox.lock();
        let slot = mb.entry((self.rank, to, tag)).or_default();
        slot.queue.push_back((t, arrival, bytes));
        self.world.wakes.p2p_msgs.fetch_add(1, Ordering::Relaxed);
        // Keyed wakeup: only the receiver parked on this exact (from, to,
        // tag) is woken — a condvar notify for a blocked thread, a task
        // requeue for a stackless `Pending` — and only if one is actually
        // parked. Both flags are read under the mailbox lock, so a receiver
        // that has not parked yet will instead find the message when it
        // checks the queue.
        let parked = slot.parked_task.take();
        if slot.waiting {
            let cv = Arc::clone(&slot.cv);
            drop(mb);
            cv.notify_one();
        } else {
            drop(mb);
        }
        if let Some(receiver) = parked {
            if let Some(waker) = &self.tasks {
                waker.wake(receiver);
            }
        }
    }

    /// Starts a receive from `from` under `tag` as a resumable op (see
    /// [`RecvOp`]); advance it with [`RecvOp::poll`] or hand it to
    /// [`DeviceCtx::block_on`].
    pub fn start_recv(&self, from: DeviceId, tag: u64) -> RecvOp {
        assert_ne!(from, self.rank, "recv from self");
        RecvOp {
            from,
            tag,
            t_start: None,
            parked: false,
        }
    }

    /// Receives the next message from `from` under `tag`, blocking until it
    /// arrives. The receiver's clock advances to at least the message's
    /// arrival time; the traced byte count is the width the sender charged.
    pub fn recv(&self, from: DeviceId, tag: u64) -> Tensor {
        self.block_on(self.start_recv(from, tag))
    }

    /// Full-duplex ring exchange: sends `t` to `to` while receiving from
    /// `from`. Both transfers overlap, so only one transfer time is charged
    /// (the p2p links are modeled as full duplex).
    pub fn ring_exchange(&self, to: DeviceId, from: DeviceId, tag: u64, t: Tensor) -> Tensor {
        self.send(to, tag, t);
        self.recv(from, tag)
    }

    /// FP16-wire variant of [`DeviceCtx::ring_exchange`].
    pub fn ring_exchange_half(&self, to: DeviceId, from: DeviceId, tag: u64, t: Tensor) -> Tensor {
        self.send_half(to, tag, t);
        self.recv(from, tag)
    }
}

/// An in-flight point-to-point receive: the resumable form of
/// [`DeviceCtx::recv`], created by [`DeviceCtx::start_recv`]. Also a
/// [`RankTask`] over its payload, so a whole rank program can be "just a
/// recv".
pub struct RecvOp {
    from: DeviceId,
    tag: u64,
    /// Receiver's clock at the first poll — the traced span start, latched
    /// so re-polls after `Pending` keep the original wait origin.
    t_start: Option<f64>,
    /// Set when the previous poll returned `Pending`: the next poll counts
    /// one observed mailbox wakeup.
    parked: bool,
}

impl RecvOp {
    /// Checks the mailbox once: `Ready(payload)` if a message is queued,
    /// else `Pending` on the `(from, to, tag)` key. A stackless task is
    /// registered for the sender's wake under the mailbox lock *before*
    /// this returns, so a send racing the park is latched, never lost.
    pub fn poll(&mut self, ctx: &DeviceCtx) -> Poll<Tensor> {
        ctx.check_abort();
        if self.parked {
            self.parked = false;
            ctx.world.wakes.p2p_wakes.fetch_add(1, Ordering::Relaxed);
        }
        let t_start = *self.t_start.get_or_insert_with(|| ctx.clock());
        let key = (self.from, ctx.rank, self.tag);
        let mut mb = ctx.world.mailbox.lock();
        let slot = mb.entry(key).or_default();
        if let Some((t, arrival, bytes)) = slot.queue.pop_front() {
            slot.waiting = false;
            slot.parked_task = None;
            // Drained slots are garbage-collected: per-step tags mean the
            // key space grows O(ranks * steps), and a map of dead entries
            // turns every probe into cold-cache bucket walks at 16k ranks.
            // Only the receiver itself can be registered on its own key, so
            // an empty queue with both park flags clear has no observers.
            if slot.queue.is_empty() {
                mb.remove(&key);
            }
            drop(mb);
            ctx.advance_to(arrival);
            ctx.trace_span(
                SpanKind::P2p {
                    peer: self.from,
                    tag: self.tag,
                    bytes,
                    is_send: false,
                },
                t_start,
            );
            return Poll::Ready(t);
        }
        self.parked = true;
        if ctx.tasks.is_some() {
            slot.parked_task = Some(ctx.rank);
        }
        Poll::Pending(WakeKey::mail(self.from, ctx.rank, self.tag))
    }
}

impl RankTask for RecvOp {
    type Output = Tensor;

    fn poll(&mut self, ctx: &DeviceCtx) -> Poll<Tensor> {
        RecvOp::poll(self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_topology::systems::system_i;

    #[test]
    fn run_returns_rank_ordered_results() {
        let world = World::new(system_i());
        let ranks = world.run(|ctx| ctx.rank());
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn run_on_subset() {
        let world = World::new(system_i());
        let out = world.run_on(3, |ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn clock_advances_with_flops() {
        let world = World::new(system_i());
        let clocks = world.run_on(2, |ctx| {
            ctx.charge_flops_f32(1_000_000_000_000);
            ctx.clock()
        });
        // 1 TFLOP on a 19.5 TFLOPS A100 at 40% MFU: ~0.128s
        assert!(clocks[0] > 0.1 && clocks[0] < 0.2, "clock {}", clocks[0]);
        assert_eq!(clocks[0], clocks[1]);
    }

    #[test]
    fn p2p_moves_data_and_time() {
        let world = World::new(system_i());
        let out = world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, Tensor::from_vec([3], vec![1., 2., 3.]));
                ctx.clock()
            } else {
                let t = ctx.recv(0, 0);
                assert_eq!(t.data(), &[1., 2., 3.]);
                ctx.clock()
            }
        });
        assert!(out[0] > 0.0);
        assert!(out[1] >= out[0]);
    }

    #[test]
    fn p2p_fifo_per_tag() {
        let world = World::new(system_i());
        world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, Tensor::scalar(1.0));
                ctx.send(1, 7, Tensor::scalar(2.0));
                ctx.send(1, 9, Tensor::scalar(3.0));
            } else {
                // tag 9 can be drained before tag 7
                assert_eq!(ctx.recv(0, 9).item(), 3.0);
                assert_eq!(ctx.recv(0, 7).item(), 1.0);
                assert_eq!(ctx.recv(0, 7).item(), 2.0);
            }
        });
    }

    #[test]
    fn p2p_bills_wire_width() {
        // send charges 4 bytes/element, send_half 2 — in link time, stats
        // bytes and the wakeup-count denominator alike
        let world = World::new(system_i());
        let clocks = world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, Tensor::from_vec([4], vec![1.0; 4]));
                let t_full = ctx.clock();
                ctx.send_half(1, 1, Tensor::from_vec([4], vec![1.0; 4]));
                (t_full, ctx.clock() - t_full)
            } else {
                assert_eq!(ctx.recv(0, 0).numel(), 4);
                assert_eq!(ctx.recv(0, 1).numel(), 4);
                (0.0, 0.0)
            }
        });
        let sys = system_i();
        assert!((clocks[0].0 - sys.p2p_time(0, 1, 16)).abs() < 1e-12);
        assert!((clocks[0].1 - sys.p2p_time(0, 1, 8)).abs() < 1e-12);
        let stats = world.stats();
        assert_eq!(stats.bytes, 16 + 8, "stats charge wire bytes, not numel*4");
        assert_eq!(stats.elements_of(crate::stats::OpKind::SendRecv), 8);
        assert_eq!(world.wake_stats().p2p_msgs, 2);
    }

    #[test]
    fn ring_exchange_charges_once() {
        let world = World::new(system_i());
        let clocks = world.run_on(2, |ctx| {
            let to = 1 - ctx.rank();
            let got = ctx.ring_exchange(to, to, 0, Tensor::scalar(ctx.rank() as f32));
            assert_eq!(got.item(), to as f32);
            ctx.clock()
        });
        let single = system_i().p2p_time(0, 1, 4);
        assert!(
            (clocks[0] - single).abs() < 1e-12,
            "{} vs {}",
            clocks[0],
            single
        );
    }

    #[test]
    #[should_panic(expected = "device thread panicked")]
    fn group_requires_membership() {
        let world = World::new(system_i());
        world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                let _ = ctx.group(&[1]);
            }
        });
    }

    #[test]
    fn parse_backend_accepts_known_names() {
        assert_eq!(parse_world_backend("threads", 3), Ok(WorldBackend::Threads));
        assert_eq!(
            parse_world_backend(" SCHED ", 3),
            Ok(WorldBackend::Sched { pool: 3 })
        );
        assert_eq!(
            parse_world_backend("Stackless", 0),
            Ok(WorldBackend::Stackless { pool: 0 })
        );
        assert_eq!(parse_world_backend("fibers", 3), Err("fibers".to_string()));
        assert_eq!(parse_world_backend("", 3), Err(String::new()));
    }

    #[test]
    fn stackless_pool_zero_resolves_to_host_cores() {
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Stackless { pool: 0 }));
        let WorldBackend::Stackless { pool } = world.backend() else {
            panic!("expected stackless backend");
        };
        assert!(pool >= 1);
    }

    /// Minimal multi-resumption task: sends to the next rank, receives from
    /// the previous one, returns the payload — exercises Pending/wake on
    /// the mailbox key under every backend.
    struct RingTask {
        rank: usize,
        n: usize,
        sent: bool,
        recv: Option<RecvOp>,
    }

    impl RankTask for RingTask {
        type Output = f32;

        fn poll(&mut self, ctx: &DeviceCtx) -> Poll<f32> {
            if !self.sent {
                self.sent = true;
                let to = (self.rank + 1) % self.n;
                ctx.send(to, 9, Tensor::scalar(self.rank as f32));
            }
            let op = self.recv.get_or_insert_with(|| {
                let from = (self.rank + self.n - 1) % self.n;
                ctx.start_recv(from, 9)
            });
            match op.poll(ctx) {
                Poll::Ready(t) => Poll::Ready(t.item()),
                Poll::Pending(key) => Poll::Pending(key),
            }
        }
    }

    #[test]
    fn run_tasks_matches_across_backends() {
        for backend in [
            WorldBackend::Threads,
            WorldBackend::Sched { pool: 2 },
            WorldBackend::Stackless { pool: 1 },
            WorldBackend::Stackless { pool: 2 },
        ] {
            let world = World::new(system_i());
            world.set_backend(Some(backend));
            let out = world.run_tasks(4, |rank| RingTask {
                rank,
                n: 4,
                sent: false,
                recv: None,
            });
            assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0], "{backend:?}");
        }
    }

    #[test]
    fn stackless_spawns_only_pool_threads() {
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Stackless { pool: 2 }));
        let out = world.run_tasks(8, |rank| RingTask {
            rank,
            n: 8,
            sent: false,
            recv: None,
        });
        assert_eq!(out.len(), 8);
        let threads = world.thread_stats();
        assert_eq!(threads.spawned, 2, "{threads:?}");
        assert!(threads.peak_live <= 2, "{threads:?}");
        world.reset_thread_stats();
        assert_eq!(world.thread_stats(), ThreadStats::default());
    }

    #[test]
    fn sched_thread_gauge_tracks_world_size() {
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Sched { pool: 2 }));
        world.run_on(6, |ctx| {
            let g = ctx.world_group(6);
            g.barrier(ctx);
        });
        let threads = world.thread_stats();
        assert_eq!(threads.spawned, 6, "{threads:?}");
        assert_eq!(threads.peak_live, 6, "{threads:?}");
    }

    #[test]
    fn rollup_footer_reports_thread_gauge() {
        let world = World::new(system_i());
        world.enable_tracing();
        world.run_on(2, |ctx| ctx.charge_flops_f32(1_000_000));
        assert!(
            world.rollup_table().contains("threads: spawned="),
            "{}",
            world.rollup_table()
        );
        assert!(world.rollup_table_full().contains("threads: spawned="));
    }

    #[test]
    fn stackless_panic_reports_rank_and_message() {
        struct BoomTask {
            rank: usize,
            op: Option<crate::group::CollectiveOp>,
        }
        impl RankTask for BoomTask {
            type Output = ();
            fn poll(&mut self, ctx: &DeviceCtx) -> Poll<()> {
                if self.rank == 2 {
                    panic!("rank two exploded");
                }
                // peers park on a barrier that can never complete; the
                // abort must requeue and unwind them
                let g = ctx.world_group(4);
                let op = self.op.get_or_insert_with(|| g.start_barrier());
                match g.poll_collective(ctx, op) {
                    Poll::Ready(_) => Poll::Ready(()),
                    Poll::Pending(key) => Poll::Pending(key),
                }
            }
        }
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Stackless { pool: 2 }));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            world.run_tasks(4, |rank| BoomTask { rank, op: None });
        }))
        .expect_err("run must propagate the panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("device thread panicked"), "{msg}");
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("rank two exploded"), "{msg}");
    }

    #[test]
    fn backend_resolution_prefers_explicit_setting() {
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Threads));
        assert_eq!(world.backend(), WorldBackend::Threads);
        world.set_backend(Some(WorldBackend::Sched { pool: 3 }));
        assert_eq!(world.backend(), WorldBackend::Sched { pool: 3 });
        // pool 0 resolves to the host core count
        world.set_backend(Some(WorldBackend::Sched { pool: 0 }));
        let WorldBackend::Sched { pool } = world.backend() else {
            panic!("expected scheduler backend");
        };
        assert!(pool >= 1);
    }

    #[test]
    fn single_slot_pool_runs_collectives() {
        // pool = 1 serializes all ranks; the rendezvous must release the
        // slot while waiting or this deadlocks
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Sched { pool: 1 }));
        let sums = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let s = g.all_reduce(ctx, Tensor::scalar(ctx.rank() as f32)).item();
            // p2p under pool = 1: ring neighbor exchange
            let to = (ctx.rank() + 1) % 4;
            let from = (ctx.rank() + 3) % 4;
            let got = ctx.ring_exchange(to, from, 5, Tensor::scalar(s));
            got.item()
        });
        assert_eq!(sums, vec![6.0; 4]);
    }

    #[test]
    fn sched_panic_reports_rank_and_message() {
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Sched { pool: 2 }));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            world.run_on(4, |ctx| {
                if ctx.rank() == 2 {
                    panic!("rank two exploded");
                }
                // peers park in a rendezvous that can never complete; the
                // abort must unwind them
                let g = ctx.world_group(4);
                g.barrier(ctx);
            });
        }))
        .expect_err("run must propagate the panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("device thread panicked"), "{msg}");
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("rank two exploded"), "{msg}");
    }
}
