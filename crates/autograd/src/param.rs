//! Trainable parameters: a value tensor paired with its gradient accumulator.

use colossalai_tensor::Tensor;

/// A trainable parameter.
///
/// The gradient has the same shape as the value and is *accumulated* across
/// backward calls (gradient accumulation / micro-batching falls out for
/// free); optimizers read it and then call [`Param::zero_grad`].
#[derive(Clone, Debug)]
pub struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
}

impl Param {
    /// Creates a named parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            name: name.into(),
            value,
            grad,
        }
    }

    /// Parameter name (used for checkpointing and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable value (optimizer updates).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Replaces the value wholesale (ZeRO re-materialization).
    pub fn set_value(&mut self, v: Tensor) {
        assert_eq!(v.shape(), self.value.shape(), "parameter shape changed");
        self.value = v;
    }

    /// Accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable gradient (collectives reduce in place).
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Adds `g` into the gradient accumulator.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        self.grad.axpy(1.0, g);
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_accumulates_and_clears() {
        let mut p = Param::new("w", Tensor::zeros([2, 2]));
        p.accumulate_grad(&Tensor::full([2, 2], 1.0));
        p.accumulate_grad(&Tensor::full([2, 2], 0.5));
        assert_eq!(p.grad().data(), &[1.5; 4]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn set_value_checks_shape() {
        let mut p = Param::new("w", Tensor::zeros([2, 2]));
        p.set_value(Tensor::zeros([4]));
    }
}
