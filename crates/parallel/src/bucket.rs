//! Bucketed gradient synchronization for data parallelism.
//!
//! Per-parameter all-reduce pays one latency (alpha) term per tensor; with
//! hundreds of small parameters the latency terms dominate. Instead we pack
//! gradients into size-capped *buckets* (default 25 MB, like PyTorch DDP and
//! the Colossal-AI gradient handler) and issue one fused all-reduce per
//! bucket. Because [`Layer::backward_staged`] fires stages in reverse-forward
//! order, the produced gradients always form a growing suffix of the
//! visit-order parameter list — so a bucket can launch on the comm stream as
//! soon as the suffix reaches its first parameter, overlapping communication
//! with the rest of the backward pass.
//!
//! Bitwise safety: a fused bucket all-reduce performs exactly the same
//! per-element rank-order additions as per-parameter all-reduces, and the
//! 1/p scale is elementwise — so the synced gradients are bit-identical to
//! the unbucketed baseline for *any* bucket plan.
//!
//! Opt-in **lossy channels** ([`Compression`], via `comm.compress` or
//! `COLOSSAL_COMPRESS`) trade gradient fidelity for wire bytes: top-k
//! sparsification, int8 or fp16 quantization, each with a per-bucket
//! error-feedback residual so dropped mass is carried into the next step
//! instead of lost (see `colossalai_comm::compress`).

use colossalai_autograd::Layer;
use colossalai_comm::compress::{self, Compression};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_tensor::Tensor;
use std::ops::Range;

/// Default bucket capacity: 25 MB of f32 gradient, PyTorch DDP's default.
pub const DEFAULT_BUCKET_BYTES: usize = 25 << 20;

/// One gradient bucket: a contiguous run of whole parameters in
/// `visit_params` order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bucket {
    /// Half-open range of parameter indices (visit order).
    pub params: Range<usize>,
    /// Flat element offset of the bucket's first element.
    pub offset: usize,
    /// Total elements in the bucket.
    pub len: usize,
}

/// A deterministic partition of a model's parameters into buckets. Every
/// rank computes the same plan from the same model, so fused collectives
/// line up without any negotiation.
#[derive(Clone, Debug)]
pub struct BucketPlan {
    /// Buckets in visit (forward) order; they *fire* in reverse order
    /// during backward.
    pub buckets: Vec<Bucket>,
    /// Element count of each parameter, in visit order.
    pub param_sizes: Vec<usize>,
}

impl BucketPlan {
    /// Greedily packs parameters (in visit order) into buckets of at most
    /// `cap_bytes` of f32 data. A parameter larger than the cap gets a
    /// bucket of its own — parameters are never split across buckets.
    pub fn from_param_sizes(sizes: &[usize], cap_bytes: usize) -> BucketPlan {
        let cap_elems = (cap_bytes / std::mem::size_of::<f32>()).max(1);
        let mut buckets = Vec::new();
        let mut start = 0;
        let mut offset = 0;
        let mut len = 0;
        for (i, &n) in sizes.iter().enumerate() {
            if len > 0 && len + n > cap_elems {
                buckets.push(Bucket {
                    params: start..i,
                    offset,
                    len,
                });
                start = i;
                offset += len;
                len = 0;
            }
            len += n;
        }
        if len > 0 || sizes.is_empty() {
            buckets.push(Bucket {
                params: start..sizes.len(),
                offset,
                len,
            });
        }
        BucketPlan {
            buckets,
            param_sizes: sizes.to_vec(),
        }
    }

    /// Builds the plan for a model's parameters.
    pub fn for_model(model: &mut dyn Layer, cap_bytes: usize) -> BucketPlan {
        let mut sizes = Vec::new();
        model.visit_params(&mut |p| sizes.push(p.numel()));
        BucketPlan::from_param_sizes(&sizes, cap_bytes)
    }

    /// Total flat element count.
    pub fn total_elements(&self) -> usize {
        self.param_sizes.iter().sum()
    }

    /// Partitions `[0, total.div_ceil(p) * p)` — the flat gradient padded to
    /// a multiple of `p` — into contiguous element ranges of at most
    /// `cap_bytes`, each range a multiple of `p` elements. ZeRO shards every
    /// bucket evenly across the `p` ranks, so p-alignment keeps the
    /// reduce-scatter chunks equal. Returns `(offset, len)` pairs.
    pub fn element_ranges(total: usize, p: usize, cap_bytes: usize) -> Vec<(usize, usize)> {
        assert!(p > 0);
        let padded = total.div_ceil(p) * p;
        let cap_elems = (cap_bytes / std::mem::size_of::<f32>()).max(1);
        // round the cap up so each bucket length is a multiple of p
        let chunk = cap_elems.div_ceil(p) * p;
        let mut out = Vec::new();
        let mut o = 0;
        while o < padded {
            let len = chunk.min(padded - o);
            out.push((o, len));
            o += len;
        }
        if out.is_empty() {
            out.push((0, 0));
        }
        out
    }
}

/// Fused, bucketed data-parallel gradient synchronization over a [`Group`].
///
/// Two modes:
/// * [`sync_blocking`](BucketedGradSync::sync_blocking) — after a normal
///   backward, one blocking fused all-reduce per bucket (replaces
///   per-parameter all-reduce; same result, far fewer latency terms);
/// * [`backward_overlapped`](BucketedGradSync::backward_overlapped) — drives
///   [`Layer::backward_staged`] and launches each bucket's all-reduce on the
///   *comm stream* the moment its last gradient is produced, then joins the
///   streams with [`DeviceCtx::comm_sync`]. Communication hides behind the
///   remaining backward compute; only the final bucket's tail serializes.
pub struct BucketedGradSync {
    plan: BucketPlan,
    compress: Compression,
    /// Per-bucket error-feedback residuals: what the lossy channel has not
    /// sent yet. Empty vectors until the first lossy sync touches a bucket;
    /// always all-zero under [`Compression::None`].
    residuals: Vec<Vec<f32>>,
}

/// Compresses one flat bucket (updating its error-feedback `residual`) and
/// issues the channel's collective: dense all-reduce for none/int8/fp16 at
/// the matching wire width, sparse (index, value) all-reduce for top-k.
/// The caller still applies the 1/p mean scale to the returned sum.
fn all_reduce_bucket(
    ctx: &DeviceCtx,
    group: &Group,
    comp: Compression,
    residual: &mut Vec<f32>,
    mut flat: Vec<f32>,
    asynchronous: bool,
) -> Tensor {
    if comp.is_lossy() {
        if residual.is_empty() {
            residual.resize(flat.len(), 0.0);
        }
        let _ = compress::compress_with_feedback(comp, &mut flat, residual);
    }
    let t = Tensor::from_vec([flat.len()], flat);
    match (comp, asynchronous) {
        (Compression::None, false) => group.all_reduce(ctx, t),
        (Compression::None, true) => group.all_reduce_async(ctx, t),
        (Compression::Int8, false) => group.all_reduce_i8(ctx, t),
        (Compression::Int8, true) => group.all_reduce_async_i8(ctx, t),
        (Compression::Fp16, false) => group.all_reduce_half(ctx, t),
        (Compression::Fp16, true) => group.all_reduce_async_half(ctx, t),
        (Compression::TopK(k), false) => group.sparse_all_reduce(ctx, t, k),
        (Compression::TopK(k), true) => group.sparse_all_reduce_async(ctx, t, k),
    }
}

impl BucketedGradSync {
    /// Plans buckets for `model` with the given capacity
    /// (see [`DEFAULT_BUCKET_BYTES`]). Compression defaults to the ambient
    /// `COLOSSAL_COMPRESS` setting; override with
    /// [`BucketedGradSync::with_compression`].
    pub fn new(model: &mut dyn Layer, cap_bytes: usize) -> Self {
        let plan = BucketPlan::for_model(model, cap_bytes);
        let residuals = vec![Vec::new(); plan.buckets.len()];
        BucketedGradSync {
            plan,
            compress: compress::env_compression(),
            residuals,
        }
    }

    /// Selects the lossy gradient channel (overriding the ambient env
    /// default). Residual state resets: switching channels mid-training
    /// would otherwise replay another channel's backlog.
    pub fn with_compression(mut self, comp: Compression) -> Self {
        self.set_compression(comp);
        self
    }

    /// In-place form of [`BucketedGradSync::with_compression`].
    pub fn set_compression(&mut self, comp: Compression) {
        self.compress = comp;
        for r in &mut self.residuals {
            r.clear();
        }
    }

    /// The active gradient-compression channel.
    pub fn compression(&self) -> Compression {
        self.compress
    }

    /// Per-bucket error-feedback residuals (empty until a lossy sync).
    pub fn residuals(&self) -> &[Vec<f32>] {
        &self.residuals
    }

    /// The bucket plan.
    pub fn plan(&self) -> &BucketPlan {
        &self.plan
    }

    /// Fuses each bucket's gradients into one flat tensor, sends it through
    /// the compression channel and its all-reduce (blocking, main clock),
    /// scales by 1/p and writes the mean gradients back into the model.
    pub fn sync_blocking(&mut self, ctx: &DeviceCtx, group: &Group, model: &mut dyn Layer) {
        let scale = 1.0 / group.size() as f32;
        let mut grads: Vec<Tensor> = Vec::with_capacity(self.plan.param_sizes.len());
        model.visit_params(&mut |p| grads.push(p.grad().clone()));
        let mut reduced = Vec::with_capacity(self.plan.buckets.len());
        for (bi, b) in self.plan.buckets.iter().enumerate() {
            let flat = flatten_slices(b.len, grads[b.params.clone()].iter().map(|g| g.data()));
            let mut r = all_reduce_bucket(
                ctx,
                group,
                self.compress,
                &mut self.residuals[bi],
                flat,
                false,
            );
            r.scale(scale);
            reduced.push(r);
        }
        self.write_back(model, &reduced);
    }

    /// Runs the staged backward, launching each bucket's fused all-reduce
    /// asynchronously as soon as the produced gradient suffix covers it,
    /// then joins compute and comm clocks and writes back mean gradients.
    /// Returns the input gradient, bit-identical to a plain backward +
    /// blocking sync.
    pub fn backward_overlapped(
        &mut self,
        ctx: &DeviceCtx,
        group: &Group,
        model: &mut dyn Layer,
        dy: &Tensor,
    ) -> Tensor {
        let n = self.plan.param_sizes.len();
        let scale = 1.0 / group.size() as f32;
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        let mut produced = n; // start of the produced suffix, in visit order
        let mut next = self.plan.buckets.len(); // buckets fire back to front
        let mut reduced: Vec<Option<Tensor>> = vec![None; self.plan.buckets.len()];
        // field-disjoint borrows: the closure mutates the residuals while
        // reading the plan
        let plan = &self.plan;
        let comp = self.compress;
        let residuals = &mut self.residuals;
        let dx = model.backward_staged(dy, &mut |stage| {
            assert!(stage.len() <= produced, "stage overruns parameter list");
            produced -= stage.len();
            for (i, g) in stage.iter().enumerate() {
                grads[produced + i] = Some(g.clone());
            }
            while next > 0 && plan.buckets[next - 1].params.start >= produced {
                next -= 1;
                let b = &plan.buckets[next];
                let flat = flatten_slices(
                    b.len,
                    grads[b.params.clone()]
                        .iter()
                        .map(|g| g.as_ref().expect("bucket grad produced").data()),
                );
                let mut r = all_reduce_bucket(ctx, group, comp, &mut residuals[next], flat, true);
                r.scale(scale);
                reduced[next] = Some(r);
            }
        });
        assert_eq!(produced, 0, "backward_staged must cover every parameter");
        assert_eq!(next, 0, "every bucket must have launched");
        // grads must be final before optimizer.step: join the comm stream
        ctx.comm_sync();
        let reduced: Vec<Tensor> = reduced.into_iter().map(|r| r.unwrap()).collect();
        self.write_back(model, &reduced);
        dx
    }

    /// Scatters the reduced flat buckets back into per-parameter gradients.
    /// For large models the per-parameter copies (pure, disjoint reads of
    /// `reduced`) run across the `tensor::par` pool: one visit collects each
    /// parameter's (shape, bucket, offset), the tensors are built in
    /// parallel, and a second visit assigns them in order.
    fn write_back(&self, model: &mut dyn Layer, reduced: &[Tensor]) {
        let total = self.plan.total_elements();
        if colossalai_tensor::par::par_eligible(total) && self.plan.param_sizes.len() > 1 {
            let mut metas = Vec::with_capacity(self.plan.param_sizes.len());
            {
                let mut pi = 0;
                let mut bi = 0;
                let mut off = 0;
                model.visit_params(&mut |p| {
                    while pi >= self.plan.buckets[bi].params.end {
                        bi += 1;
                        off = 0;
                    }
                    metas.push((p.grad().shape().clone(), bi, off));
                    off += p.numel();
                    pi += 1;
                });
                assert_eq!(pi, self.plan.param_sizes.len());
            }
            let built = colossalai_tensor::par::par_map(metas, |_, (shape, bi, off)| {
                let n = shape.numel();
                Tensor::from_slice(shape, &reduced[bi].data()[off..off + n])
            });
            let mut built = built.into_iter();
            model.visit_params(&mut |p| {
                *p.grad_mut() = built.next().expect("one built grad per parameter");
            });
            return;
        }
        let mut pi = 0;
        let mut bi = 0;
        let mut off = 0;
        model.visit_params(&mut |p| {
            while pi >= self.plan.buckets[bi].params.end {
                bi += 1;
                off = 0;
            }
            let n = p.numel();
            let shape = p.grad().shape().clone();
            // pooled copy instead of a fresh `to_vec` per parameter
            *p.grad_mut() = Tensor::from_slice(shape, &reduced[bi].data()[off..off + n]);
            off += n;
            pi += 1;
        });
        assert_eq!(pi, self.plan.param_sizes.len());
    }
}

/// Flattens ordered gradient slices into one pooled bucket buffer. Large
/// buckets copy each slice's disjoint span on its own `tensor::par`
/// executor; the result is byte-identical to sequential `extend_from_slice`.
fn flatten_slices<'g>(len: usize, srcs: impl Iterator<Item = &'g [f32]>) -> Vec<f32> {
    if colossalai_tensor::par::par_eligible(len) {
        let srcs: Vec<&[f32]> = srcs.collect();
        if srcs.len() > 1 {
            let mut flat = colossalai_tensor::pool::take_zeroed(len);
            let mut segs: Vec<(&[f32], &mut [f32])> = Vec::with_capacity(srcs.len());
            let mut rest = flat.as_mut_slice();
            for s in srcs {
                let (head, tail) = rest.split_at_mut(s.len());
                segs.push((s, head));
                rest = tail;
            }
            colossalai_tensor::par::par_items(segs, |_, (s, d)| d.copy_from_slice(s));
            return flat;
        }
        let mut flat = colossalai_tensor::pool::take_buffer(len);
        for s in srcs {
            flat.extend_from_slice(s);
        }
        return flat;
    }
    let mut flat = colossalai_tensor::pool::take_buffer(len);
    for s in srcs {
        flat.extend_from_slice(s);
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_parallel::flatten_grads;
    use colossalai_autograd::{Gelu, Linear, Sequential};
    use colossalai_comm::{OpKind, Wire, World};
    use colossalai_tensor::init;
    use colossalai_topology::systems::{system_i, system_iii};

    fn make_model(seed: u64) -> Sequential {
        let mut rng = init::rng(seed);
        Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 4, 8, true, &mut rng)),
            Box::new(Gelu::new()),
            Box::new(Linear::from_rng("l2", 8, 3, true, &mut rng)),
        ])
    }

    #[test]
    fn greedy_packing_respects_cap_and_covers_params() {
        // sizes in elements; cap of 100 elements = 400 bytes
        let sizes = [40, 50, 30, 200, 10, 10];
        let plan = BucketPlan::from_param_sizes(&sizes, 400);
        // 40+50 fits the 100-element cap; +30 would exceed → new bucket;
        // 30+200 exceeds → 200 gets its own; 10+10 closes it out
        let ranges: Vec<_> = plan.buckets.iter().map(|b| b.params.clone()).collect();
        assert_eq!(ranges, vec![0..2, 2..3, 3..4, 4..6]);
        let mut covered = 0;
        for b in &plan.buckets {
            assert_eq!(b.offset, covered);
            covered += b.len;
            assert_eq!(
                b.len,
                sizes[b.params.clone()].iter().sum::<usize>(),
                "bucket length equals its params' elements"
            );
        }
        assert_eq!(covered, sizes.iter().sum::<usize>());
    }

    #[test]
    fn oversized_param_gets_own_bucket() {
        let sizes = [1000, 4, 4];
        let plan = BucketPlan::from_param_sizes(&sizes, 64);
        assert_eq!(plan.buckets[0].params, 0..1);
        assert_eq!(plan.buckets[0].len, 1000);
    }

    #[test]
    fn element_ranges_are_p_aligned_and_cover_padded_total() {
        let p = 4;
        let total = 114; // pads to 116
        let ranges = BucketPlan::element_ranges(total, p, 40 * 4); // 40-elem cap
        let padded = total.div_ceil(p) * p;
        let mut o = 0;
        for &(off, len) in &ranges {
            assert_eq!(off, o);
            assert_eq!(len % p, 0, "every bucket shards evenly over p ranks");
            o += len;
        }
        assert_eq!(o, padded);
    }

    #[test]
    fn fused_blocking_sync_matches_per_param_allreduce() {
        let p = 4;
        let world = World::new(system_i());
        let grads = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut model = make_model(820);
            let mut rng = init::rng(900 + g.rank() as u64);
            let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
            let y = model.forward(&x);
            let _ = model.backward(&Tensor::ones(y.shape().clone()));

            // per-parameter baseline on a copy of the grads
            let mut baseline = Vec::new();
            model.visit_params(&mut |pa| {
                let mut r = g.all_reduce(ctx, pa.grad().clone());
                r.scale(1.0 / p as f32);
                baseline.extend_from_slice(r.data());
            });

            // tiny cap → many buckets; still must match bitwise (pin the
            // exact channel: this test asserts against an uncompressed
            // baseline, so it must not inherit COLOSSAL_COMPRESS)
            let mut sync =
                BucketedGradSync::new(&mut model, 64).with_compression(Compression::None);
            assert!(sync.plan().buckets.len() > 1);
            sync.sync_blocking(ctx, &g, &mut model);
            let fused = flatten_grads(&mut model);
            assert_eq!(fused.data(), &baseline[..], "fused == per-param bitwise");
            fused
        });
        assert_eq!(grads[0].data(), grads[1].data());
    }

    #[test]
    fn overlapped_backward_matches_blocking_bitwise() {
        let p = 4;
        let world = World::new(system_iii());
        let results = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rng = init::rng(910 + g.rank() as u64);
            let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);

            // blocking reference
            let mut m1 = make_model(821);
            let y1 = m1.forward(&x);
            let dy = Tensor::ones(y1.shape().clone());
            let dx1 = m1.backward(&dy);
            let mut sync = BucketedGradSync::new(&mut m1, 64);
            sync.sync_blocking(ctx, &g, &mut m1);
            let want = flatten_grads(&mut m1);

            // overlapped run on an identical model
            let mut m2 = make_model(821);
            let y2 = m2.forward(&x);
            assert_eq!(y1.data(), y2.data());
            let mut sync2 = BucketedGradSync::new(&mut m2, 64);
            let dx2 = sync2.backward_overlapped(ctx, &g, &mut m2, &dy);
            assert_eq!(dx1.data(), dx2.data());
            let got = flatten_grads(&mut m2);
            assert_eq!(got.data(), want.data(), "overlap is bitwise-neutral");
            got
        });
        assert_eq!(results[0].data(), results[1].data());
    }

    #[test]
    fn compressed_sync_is_deterministic_and_overlap_neutral() {
        // Every lossy channel: all ranks land on identical grads, and the
        // overlapped schedule is bitwise-identical to the blocking one.
        let p = 4;
        for comp in [Compression::Fp16, Compression::Int8, Compression::TopK(3)] {
            let run = |overlapped: bool| {
                let world = World::new(system_iii());
                world.run_on(p, |ctx| {
                    let g = ctx.world_group(p);
                    let mut model = make_model(830);
                    let mut rng = init::rng(940 + g.rank() as u64);
                    let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
                    let y = model.forward(&x);
                    let dy = Tensor::ones(y.shape().clone());
                    let mut sync = BucketedGradSync::new(&mut model, 64).with_compression(comp);
                    if overlapped {
                        let _ = sync.backward_overlapped(ctx, &g, &mut model, &dy);
                    } else {
                        let _ = model.backward(&dy);
                        sync.sync_blocking(ctx, &g, &mut model);
                    }
                    flatten_grads(&mut model)
                })
            };
            let blocking = run(false);
            let overlapped = run(true);
            for r in 1..p {
                assert_eq!(
                    blocking[0].data(),
                    blocking[r].data(),
                    "{comp:?}: ranks agree"
                );
            }
            for (b, o) in blocking.iter().zip(&overlapped) {
                assert_eq!(b.data(), o.data(), "{comp:?}: overlap is bitwise-neutral");
            }
        }
    }

    #[test]
    fn error_feedback_residual_accounts_exactly_through_bucket_sync() {
        // On a single-rank group the all-reduced value IS the sent value, so
        // sent + residual must reconstruct the exact pre-compression gradient
        // bitwise (the §14 error-feedback invariant), per channel.
        for comp in [Compression::TopK(2), Compression::Int8, Compression::Fp16] {
            let world = World::new(system_i());
            world.run_on(1, |ctx| {
                let g = ctx.world_group(1);
                let mut model = make_model(831);
                let x = init::uniform([2, 4], -1.0, 1.0, &mut init::rng(950));
                let y = model.forward(&x);
                let _ = model.backward(&Tensor::ones(y.shape().clone()));
                let exact = flatten_grads(&mut model);
                let mut sync = BucketedGradSync::new(&mut model, 64).with_compression(comp);
                sync.sync_blocking(ctx, &g, &mut model);
                let sent = flatten_grads(&mut model);
                let residual: Vec<f32> = sync.residuals().concat();
                assert_eq!(residual.len(), exact.numel());
                for (i, ((s, r), e)) in sent
                    .data()
                    .iter()
                    .zip(&residual)
                    .zip(exact.data())
                    .enumerate()
                {
                    assert_eq!(s + r, *e, "{comp:?}: sent + residual == exact at {i}");
                }
            });
        }
    }

    #[test]
    fn topk_wire_bytes_match_idxval_allgather_accounting() {
        // Ragged buckets (64-byte cap over 4/8/3-sized params): each bucket
        // crosses as an all-gather of min(k, len) (index, value) pairs per
        // rank, charged at Wire::IdxVal width.
        let p = 4;
        let k = 5;
        let world = World::new(system_i());
        let plans = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut model = make_model(832);
            let mut rng = init::rng(960 + g.rank() as u64);
            let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
            let y = model.forward(&x);
            let _ = model.backward(&Tensor::ones(y.shape().clone()));
            let mut sync =
                BucketedGradSync::new(&mut model, 64).with_compression(Compression::TopK(k));
            sync.sync_blocking(ctx, &g, &mut model);
            sync.plan()
                .buckets
                .iter()
                .map(|b| b.len)
                .collect::<Vec<_>>()
        });
        let lens = &plans[0];
        assert!(lens.iter().any(|&n| n < k), "some bucket is shorter than k");
        assert!(lens.iter().any(|&n| n > k), "some bucket is longer than k");
        let stats = world.stats();
        let expect_elems: u64 = lens
            .iter()
            .map(|&n| (p as u64) * (p as u64 - 1) * k.min(n) as u64)
            .sum();
        assert_eq!(stats.elements_of(OpKind::AllReduce), expect_elems);
        assert_eq!(stats.bytes, expect_elems * Wire::IdxVal.bytes());
        assert_eq!(stats.ops_of(OpKind::AllReduce), lens.len() as u64);
    }

    #[test]
    fn int8_wire_bytes_are_one_per_element_hop() {
        // Ring all-reduce moves 2(p-1)·n element-hops per bucket; the int8
        // channel charges each at Wire::I8 (one byte).
        let p = 4;
        let world = World::new(system_i());
        let plans = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut model = make_model(833);
            let mut rng = init::rng(970 + g.rank() as u64);
            let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
            let y = model.forward(&x);
            let _ = model.backward(&Tensor::ones(y.shape().clone()));
            let mut sync =
                BucketedGradSync::new(&mut model, 64).with_compression(Compression::Int8);
            sync.sync_blocking(ctx, &g, &mut model);
            sync.plan()
                .buckets
                .iter()
                .map(|b| b.len)
                .collect::<Vec<_>>()
        });
        let stats = world.stats();
        let expect_elems: u64 = plans[0]
            .iter()
            .map(|&n| 2 * (p as u64 - 1) * n as u64)
            .sum();
        assert_eq!(stats.elements_of(OpKind::AllReduce), expect_elems);
        assert_eq!(stats.bytes, expect_elems * Wire::I8.bytes());
    }

    #[test]
    fn overlapped_backward_joins_streams() {
        let p = 4;
        let world = World::new(system_i());
        let clocks = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut model = make_model(822);
            let x = init::uniform([2, 4], -1.0, 1.0, &mut init::rng(930));
            let y = model.forward(&x);
            let mut sync = BucketedGradSync::new(&mut model, 64);
            let _ = sync.backward_overlapped(ctx, &g, &mut model, &Tensor::ones(y.shape().clone()));
            (ctx.clock(), ctx.comm_clock())
        });
        for (main, comm) in clocks {
            assert!(main > 0.0, "comm time was charged");
            assert_eq!(main, comm, "comm_sync joins both clocks");
        }
    }
}
