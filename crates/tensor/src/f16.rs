//! Software IEEE 754 binary16 ("half precision") and bfloat16.
//!
//! Mixed-precision training (Section 3.2 of the paper: FP16 parameters whose
//! storage is reused for FP16 gradients) needs a faithful half type. We
//! implement conversion with round-to-nearest-even and denormal support; all
//! arithmetic routes through `f32`, exactly like GPU half units with fp32
//! accumulate.
//!
//! [`BF16`] is the companion storage-and-compute format for the fast numeric
//! mode: it keeps f32's 8-bit exponent (so no overflow/underflow surprises on
//! conversion — every finite f32 maps to a finite bf16) and truncates the
//! mantissa to 7 bits. Widening back to f32 is a pure `<< 16`, which is what
//! lets the bf16 GEMM decode operands with one shift in the register tile.

/// IEEE 754 binary16 value stored as its bit pattern.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

impl F16 {
    pub const ZERO: F16 = F16(0);
    pub const ONE: F16 = F16(0x3C00);
    pub const INFINITY: F16 = F16(0x7C00);
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite f16 (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal f16 (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // Inf / NaN
            return if mant == 0 {
                F16(sign | 0x7C00)
            } else {
                F16(sign | 0x7E00)
            };
        }
        // unbiased exponent
        let e = exp - 127;
        if e > 15 {
            // overflow -> inf
            return F16(sign | 0x7C00);
        }
        if e >= -14 {
            // normal range: 10-bit mantissa, round to nearest even on bit 13
            let half_exp = ((e + 15) as u16) << 10;
            let mant10 = (mant >> 13) as u16;
            let round_bit = (mant >> 12) & 1;
            let sticky = mant & 0xFFF;
            let mut h = sign | half_exp | mant10;
            if round_bit == 1 && (sticky != 0 || (mant10 & 1) == 1) {
                h += 1; // may carry into exponent, which is correct behavior
            }
            return F16(h);
        }
        if e >= -24 {
            // subnormal half
            let full_mant = mant | 0x80_0000; // implicit leading 1
            let shift = (-14 - e) as u32 + 13;
            let mant10 = (full_mant >> shift) as u16;
            let round_bit = (full_mant >> (shift - 1)) & 1;
            let sticky = full_mant & ((1 << (shift - 1)) - 1);
            let mut h = sign | mant10;
            if round_bit == 1 && (sticky != 0 || (mant10 & 1) == 1) {
                h += 1;
            }
            return F16(h);
        }
        // underflow -> signed zero
        F16(sign)
    }

    /// Converts to `f32` exactly (every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x3FF) as u32;
        let bits = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // subnormal: normalize
                let mut e = -14i32;
                let mut m = mant;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x3FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13) // inf / nan
        } else {
            sign | ((exp + 112) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x3FF) != 0
    }

    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl std::fmt::Debug for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

/// bfloat16 value stored as its bit pattern: f32's sign + 8-bit exponent +
/// the top 7 mantissa bits.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct BF16(pub u16);

impl BF16 {
    pub const ZERO: BF16 = BF16(0);
    pub const ONE: BF16 = BF16(0x3F80);
    pub const INFINITY: BF16 = BF16(0x7F80);
    pub const NEG_INFINITY: BF16 = BF16(0xFF80);
    pub const NAN: BF16 = BF16(0x7FC0);
    /// Largest finite bf16 (~3.39e38).
    pub const MAX: BF16 = BF16(0x7F7F);
    /// Smallest positive normal bf16 (2^-126, same as f32).
    pub const MIN_POSITIVE: BF16 = BF16(0x0080);

    /// Converts from `f32` with round-to-nearest-even on the discarded 16
    /// mantissa bits. Denormals need no special case — bf16 denormals are
    /// exactly the f32 denormals whose mantissa fits in 7 bits, and the same
    /// rounding arithmetic handles them (the exponent field is untouched).
    /// NaN is special-cased so a payload living only in the discarded bits
    /// cannot round/truncate the value into an infinity.
    pub fn from_f32(x: f32) -> BF16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // preserve sign + quietness, force a non-zero mantissa
            return BF16(((bits >> 16) as u16) | 0x0040);
        }
        // round to nearest even: add 0x7FFF + (lsb of the kept mantissa);
        // a carry propagates correctly through mantissa into exponent
        // (1.1111111|1... -> next binade; MAX + half-ulp -> +inf).
        let lsb = (bits >> 16) & 1;
        BF16(((bits.wrapping_add(0x7FFF + lsb)) >> 16) as u16)
    }

    /// Converts from `f32` by truncation (round toward zero) — the cheap
    /// conversion some hardware uses. NaN keeps the special case for the
    /// same payload-in-low-bits reason as [`BF16::from_f32`].
    pub fn from_f32_truncate(x: f32) -> BF16 {
        let bits = x.to_bits();
        if x.is_nan() {
            return BF16(((bits >> 16) as u16) | 0x0040);
        }
        BF16((bits >> 16) as u16)
    }

    /// Converts to `f32` exactly: every bf16 (normals, denormals, infinities,
    /// NaNs) is an f32 with a zero low half.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// The raw bit pattern (storage format for packed bf16 panels).
    pub fn to_bits(self) -> u16 {
        self.0
    }

    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x7F) != 0
    }

    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }

    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }
}

impl std::fmt::Debug for BF16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BF16({})", self.to_f32())
    }
}

impl From<f32> for BF16 {
    fn from(x: f32) -> Self {
        BF16::from_f32(x)
    }
}

impl From<BF16> for f32 {
    fn from(h: BF16) -> f32 {
        h.to_f32()
    }
}

/// Quantizes an `f32` slice to half and back — the canonical "cast to fp16"
/// used by the mixed-precision engine. Delegates to [`convert_slice`].
pub fn round_trip_f16(data: &mut [f32]) {
    convert_slice(data);
}

/// Batch f32 -> f16 -> f32 conversion, the slice-level form of
/// `F16::from_f32(x).to_f32()`. Unrolled over fixed-width chunks so the
/// branchy per-element converter pipelines across lanes instead of
/// serializing on one element's branch chain; the AMP quantize path
/// (`quantize_params_f16` / `quantize_grads_f16`) calls this on every
/// parameter and gradient buffer each step.
pub fn convert_slice(data: &mut [f32]) {
    const LANES: usize = 8;
    let mut chunks = data.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        // fixed-size temporaries keep the loads/stores unit-stride and let
        // the compiler interleave the per-lane conversion chains
        let mut h = [F16::ZERO; LANES];
        for (d, h) in chunk.iter().zip(h.iter_mut()) {
            *h = F16::from_f32(*d);
        }
        for (d, h) in chunk.iter_mut().zip(h.iter()) {
            *d = h.to_f32();
        }
    }
    for x in chunks.into_remainder() {
        *x = F16::from_f32(*x).to_f32();
    }
}

/// Packs an `f32` slice into half-precision bit patterns (storage format for
/// the offload engine's fp16 buffers).
pub fn pack_f16(data: &[f32]) -> Vec<u16> {
    data.iter().map(|&x| F16::from_f32(x).0).collect()
}

/// Unpacks half-precision bit patterns to `f32`.
pub fn unpack_f16(bits: &[u16]) -> Vec<f32> {
    bits.iter().map(|&b| F16(b).to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip() {
        for &x in &[
            0.0f32,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.000061035156, /* 2^-14 */
        ] {
            let h = F16::from_f32(x);
            assert_eq!(h.to_f32(), x, "roundtrip of {x}");
        }
    }

    #[test]
    fn special_values() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(1e10), F16::INFINITY); // overflow
        assert_eq!(F16::from_f32(-1e10), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(0.0).0, 0);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
    }

    #[test]
    fn subnormals() {
        // smallest positive subnormal = 2^-24
        let tiny = 2.0f32.powi(-24);
        let h = F16::from_f32(tiny);
        assert_eq!(h.0, 1);
        assert_eq!(h.to_f32(), tiny);
        // underflow below half of the smallest subnormal
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).0, 0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and the next representable
        // half (1 + 2^-10); ties go to even mantissa (1.0).
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(x).to_f32(), 1.0);
        // 1 + 3*2^-11 ties to 1 + 2^-10 * 2 (even)
        let y = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(y).to_f32(), 1.0 + 2.0 * 2.0f32.powi(-10));
        // above the tie rounds up
        let z = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-18);
        assert_eq!(F16::from_f32(z).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn mantissa_carry_into_exponent() {
        // just under 2.0: rounds up to exactly 2.0 (mantissa overflow carries)
        let x = 1.9999999f32;
        assert_eq!(F16::from_f32(x).to_f32(), 2.0);
        // just under 65520 rounds to inf (65504 is max finite)
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f32(65519.996), F16::MAX);
    }

    #[test]
    fn pack_unpack() {
        let data = vec![0.1f32, -2.5, 1024.0, 7.7125];
        let packed = pack_f16(&data);
        let unpacked = unpack_f16(&packed);
        for (a, b) in data.iter().zip(unpacked.iter()) {
            assert!((a - b).abs() / a.abs().max(1.0) < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_error_within_half_ulp() {
        // quantization error of normal values is <= 2^-11 relative
        let mut v: Vec<f32> = (1..2000).map(|i| i as f32 * 0.3127).collect();
        let orig = v.clone();
        round_trip_f16(&mut v);
        for (a, b) in orig.iter().zip(v.iter()) {
            assert!((a - b).abs() <= a.abs() * 2.0f32.powi(-11) + 1e-8);
        }
    }

    #[test]
    fn convert_slice_matches_per_element_loop() {
        // every interesting length around the 8-lane unroll boundary, with
        // specials mixed in so the remainder loop sees them too
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 100] {
            let mut v: Vec<f32> = (0..len)
                .map(|i| match i % 7 {
                    0 => (i as f32 - 3.0) * 0.317,
                    1 => f32::INFINITY,
                    2 => -0.0,
                    3 => 2.0f32.powi(-24), // f16 subnormal
                    4 => 1e10,             // f16 overflow
                    5 => f32::NAN,
                    _ => -(i as f32) * 1e-3,
                })
                .collect();
            let mut want = v.clone();
            for x in want.iter_mut() {
                *x = F16::from_f32(*x).to_f32();
            }
            convert_slice(&mut v);
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "len={len}"
            );
        }
    }

    #[test]
    fn bf16_exact_values_roundtrip() {
        for &x in &[
            0.0f32,
            1.0,
            -1.0,
            0.5,
            2.0,
            256.0,
            1.0078125, // 1 + 2^-7: last exactly-representable mantissa bit
            3.3895314e38,
            1.1754944e-38,                    // smallest normal (f32's, shared by bf16)
            9.183549615799121e-41_f64 as f32, // a bf16 denormal: 2^-133
        ] {
            let h = BF16::from_f32(x);
            assert_eq!(h.to_f32().to_bits(), x.to_bits(), "roundtrip of {x}");
            // truncation agrees with RNE on exactly-representable values
            assert_eq!(BF16::from_f32_truncate(x).0, h.0);
        }
    }

    #[test]
    fn bf16_round_to_nearest_even_ties() {
        // 1 + 2^-8 sits exactly between 1.0 and 1 + 2^-7: tie to even (1.0)
        let tie_down = 1.0 + 2.0f32.powi(-8);
        assert_eq!(BF16::from_f32(tie_down).to_f32(), 1.0);
        // 1 + 3*2^-8 sits between 1+2^-7 and 1+2^-6: tie to even (1+2^-6)
        let tie_up = 1.0 + 3.0 * 2.0f32.powi(-8);
        assert_eq!(BF16::from_f32(tie_up).to_f32(), 1.0 + 2.0f32.powi(-6));
        // just above the tie rounds up
        let above = 1.0 + 2.0f32.powi(-8) + 2.0f32.powi(-20);
        assert_eq!(BF16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-7));
        // truncation always chops toward zero
        assert_eq!(
            BF16::from_f32_truncate(tie_up).to_f32(),
            1.0 + 2.0f32.powi(-7)
        );
        assert_eq!(
            BF16::from_f32_truncate(-1.0 - 3.0 * 2.0f32.powi(-8)).to_f32(),
            -1.0 - 2.0f32.powi(-7)
        );
    }

    #[test]
    fn bf16_denormals() {
        // smallest positive bf16 denormal is 2^-133 (f32 bits 0x0001_0000)
        let tiny = f32::from_bits(0x0001_0000);
        let h = BF16::from_f32(tiny);
        assert_eq!(h.0, 1);
        assert_eq!(h.to_f32(), tiny);
        // half of it ties to even zero; just above half rounds up to it
        assert_eq!(BF16::from_f32(f32::from_bits(0x0000_8000)).0, 0);
        assert_eq!(BF16::from_f32(f32::from_bits(0x0000_8001)).0, 1);
        // truncation under the denormal floor is a clean signed zero
        assert_eq!(
            BF16::from_f32_truncate(-f32::from_bits(0x0000_FFFF)).0,
            0x8000
        );
        // denormal rounding can carry into the normal range
        let just_under_normal = f32::from_bits(0x007F_FFFF); // max f32 denormal
        assert_eq!(BF16::from_f32(just_under_normal), BF16::MIN_POSITIVE);
    }

    #[test]
    fn bf16_inf_nan_roundtrip() {
        assert_eq!(BF16::from_f32(f32::INFINITY), BF16::INFINITY);
        assert_eq!(BF16::from_f32(f32::NEG_INFINITY), BF16::NEG_INFINITY);
        assert!(BF16::INFINITY.is_infinite() && !BF16::INFINITY.is_nan());
        assert_eq!(BF16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(BF16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        // overflow on rounding: anything at or past MAX + half-ulp carries
        // into the inf encoding (the half-way point 0x..._8000 ties away
        // from the odd MAX mantissa)
        let max_plus = f32::from_bits(0x7F7F_FF80);
        assert_eq!(BF16::from_f32(max_plus), BF16::INFINITY);
        assert_eq!(BF16::from_f32(f32::from_bits(0x7F7F_8000)), BF16::INFINITY);
        // just under half-ulp above MAX still rounds down to MAX
        assert_eq!(BF16::from_f32(f32::from_bits(0x7F7F_7FFF)), BF16::MAX);
        // and truncation never overflows a finite value
        assert_eq!(BF16::from_f32_truncate(max_plus), BF16::MAX);

        // NaN stays NaN even when the payload lives only in the low 16 bits
        // (naive truncation would produce an infinity here)
        let low_payload_nan = f32::from_bits(0x7F80_0001);
        assert!(low_payload_nan.is_nan());
        assert!(BF16::from_f32(low_payload_nan).is_nan());
        assert!(BF16::from_f32_truncate(low_payload_nan).is_nan());
        assert!(BF16::from_f32(f32::NAN).is_nan());
        assert!(BF16::from_f32(-f32::NAN).to_f32().is_nan());
        assert!(BF16::NAN.to_f32().is_nan());
    }
}
