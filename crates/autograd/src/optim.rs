//! Optimizers: SGD and the AdamW used by every experiment in the paper.

use crate::layer::Layer;
use crate::param::Param;
use colossalai_tensor::Tensor;

/// Plain SGD with optional momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update over `params` (order must be stable across steps).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value().shape().clone()))
                .collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter set changed");
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            if self.momentum != 0.0 {
                v.scale(self.momentum);
                v.axpy(1.0, p.grad());
                let step = v.clone();
                p.value_mut().axpy(-self.lr, &step);
            } else {
                let g = p.grad().clone();
                p.value_mut().axpy(-self.lr, &g);
            }
        }
    }

    /// Applies one update over every parameter of `layer` (visit order must
    /// be stable across steps, which `Layer::visit_params` guarantees).
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        if self.velocity.is_empty() {
            layer.visit_params(&mut |p| {
                self.velocity.push(Tensor::zeros(p.value().shape().clone()));
            });
        }
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        layer.visit_params(&mut |p| {
            let v = &mut velocity[idx];
            if momentum != 0.0 {
                v.scale(momentum);
                v.axpy(1.0, p.grad());
                let step = v.clone();
                p.value_mut().axpy(-lr, &step);
            } else {
                let g = p.grad().clone();
                p.value_mut().axpy(-lr, &g);
            }
            idx += 1;
        });
        assert_eq!(idx, velocity.len(), "parameter set changed");
    }
}

/// Per-parameter Adam state (first and second moments).
#[derive(Clone, Debug)]
pub struct AdamState {
    pub m: Tensor,
    pub v: Tensor,
}

/// AdamW (decoupled weight decay), the optimizer of the paper's ViT and
/// BERT experiments. Exposed both as a whole-model optimizer and as the
/// scalar kernel [`adamw_update`] that the ZeRO and hybrid (CPU+GPU)
/// optimizers reuse on shards.
pub struct AdamW {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    state: Vec<AdamState>,
}

impl AdamW {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Steps taken so far.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Applies one AdamW update over `params` (stable order required).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.state.is_empty() {
            self.state = params
                .iter()
                .map(|p| AdamState {
                    m: Tensor::zeros(p.value().shape().clone()),
                    v: Tensor::zeros(p.value().shape().clone()),
                })
                .collect();
        }
        assert_eq!(self.state.len(), params.len(), "parameter set changed");
        self.t += 1;
        for (p, s) in params.iter_mut().zip(self.state.iter_mut()) {
            let grad = p.grad().clone();
            adamw_update(
                p.value_mut().data_mut(),
                grad.data(),
                s.m.data_mut(),
                s.v.data_mut(),
                self.t,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                self.weight_decay,
            );
        }
    }

    /// Applies one AdamW update over every parameter of `layer`.
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        if self.state.is_empty() {
            layer.visit_params(&mut |p| {
                self.state.push(AdamState {
                    m: Tensor::zeros(p.value().shape().clone()),
                    v: Tensor::zeros(p.value().shape().clone()),
                });
            });
        }
        self.t += 1;
        let (t, lr, b1, b2, eps, wd) = (
            self.t,
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            self.weight_decay,
        );
        let state = &mut self.state;
        let mut idx = 0;
        layer.visit_params(&mut |p| {
            let s = &mut state[idx];
            let grad = p.grad().clone();
            adamw_update(
                p.value_mut().data_mut(),
                grad.data(),
                s.m.data_mut(),
                s.v.data_mut(),
                t,
                lr,
                b1,
                b2,
                eps,
                wd,
            );
            idx += 1;
        });
        assert_eq!(idx, state.len(), "parameter set changed");
    }
}

/// The element-wise AdamW kernel over raw slices.
///
/// Deliberately freestanding: the ZeRO sharded optimizer runs it on shard
/// slices and the hybrid Adam runs it on the CPU- and GPU-resident halves of
/// a parameter independently — all three paths share these exact arithmetic
/// semantics, which is what makes the "hybrid equals full-GPU bitwise"
/// invariant testable.
#[allow(clippy::too_many_arguments)]
pub fn adamw_update(
    param: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
) {
    assert_eq!(param.len(), grad.len());
    assert_eq!(param.len(), m.len());
    assert_eq!(param.len(), v.len());
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    for i in 0..param.len() {
        let g = grad[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
        v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
        let m_hat = m[i] / bc1;
        let v_hat = v[i] / bc2;
        // decoupled weight decay
        param[i] -= lr * (m_hat / (v_hat.sqrt() + eps) + weight_decay * param[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param() -> Param {
        Param::new("w", Tensor::from_vec([2], vec![5.0, -3.0]))
    }

    fn set_quadratic_grad(p: &mut Param) {
        // f = 0.5 * ||w||^2, grad = w
        let g = p.value().clone();
        p.zero_grad();
        p.accumulate_grad(&g);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = quadratic_param();
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            set_quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value().norm() < 1e-3, "norm {}", p.value().norm());
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut p1 = quadratic_param();
        let mut p2 = quadratic_param();
        let mut plain = Sgd::new(0.01, 0.0);
        let mut momo = Sgd::new(0.01, 0.9);
        for _ in 0..30 {
            set_quadratic_grad(&mut p1);
            plain.step(&mut [&mut p1]);
            set_quadratic_grad(&mut p2);
            momo.step(&mut [&mut p2]);
        }
        assert!(p2.value().norm() < p1.value().norm());
    }

    #[test]
    fn adamw_descends_quadratic() {
        let mut p = quadratic_param();
        let mut opt = AdamW::new(0.1, 0.0);
        for _ in 0..200 {
            set_quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value().norm() < 1e-2, "norm {}", p.value().norm());
    }

    #[test]
    fn weight_decay_shrinks_without_gradient() {
        let mut p = Param::new("w", Tensor::from_vec([1], vec![1.0]));
        let mut opt = AdamW::new(0.1, 0.5);
        // zero gradient: only decay acts
        opt.step(&mut [&mut p]);
        let v = p.value().data()[0];
        assert!(v < 1.0 && v > 0.9, "one decay step: {v}");
    }

    #[test]
    fn adamw_kernel_matches_optimizer() {
        // the freestanding kernel and the struct must agree exactly
        let mut p = quadratic_param();
        set_quadratic_grad(&mut p);
        let mut opt = AdamW::new(0.01, 0.1);
        let mut manual_param = p.value().data().to_vec();
        let mut m = vec![0.0; 2];
        let mut v = vec![0.0; 2];
        let grad = p.grad().data().to_vec();
        opt.step(&mut [&mut p]);
        adamw_update(
            &mut manual_param,
            &grad,
            &mut m,
            &mut v,
            1,
            0.01,
            0.9,
            0.999,
            1e-8,
            0.1,
        );
        assert_eq!(p.value().data(), &manual_param[..]);
    }

    #[test]
    fn first_step_direction_is_signed_gradient() {
        // with zero init moments, Adam's first step ~ lr * sign(grad)
        let mut p = Param::new("w", Tensor::from_vec([2], vec![0.0, 0.0]));
        p.accumulate_grad(&Tensor::from_vec([2], vec![3.0, -0.001]));
        let mut opt = AdamW::new(0.1, 0.0);
        opt.step(&mut [&mut p]);
        let d = p.value().data();
        assert!((d[0] + 0.1).abs() < 1e-3, "{}", d[0]);
        assert!((d[1] - 0.1).abs() < 1e-2, "{}", d[1]);
    }
}
