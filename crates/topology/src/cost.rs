//! Analytic collective-communication cost model (alpha-beta, ring family).
//!
//! These estimators convert "which collective, how many bytes, which devices"
//! into virtual seconds. They are what makes the simulated throughput curves
//! follow the paper's: the ring bottleneck link differs between a
//! full-NVLink System I and a partially connected System II, which flips the
//! 1D-vs-2D/2.5D ranking exactly as in Fig 11.

use crate::cluster::Cluster;
use crate::device::DeviceId;

/// Seconds for a ring all-reduce of `bytes` over `group`.
///
/// Standard ring model: `2 (p-1)` steps, each moving `bytes / p` across the
/// slowest ring link.
pub fn allreduce_time(cluster: &Cluster, group: &[DeviceId], bytes: u64) -> f64 {
    let p = group.len();
    if p <= 1 || bytes == 0 {
        return 0.0;
    }
    let link = cluster.ring_bottleneck(group);
    let steps = 2 * (p - 1);
    steps as f64 * (link.latency + bytes as f64 / p as f64 / link.bandwidth)
}

/// Seconds for a ring all-gather where each rank contributes `bytes_per_rank`
/// and ends with `p * bytes_per_rank`.
pub fn allgather_time(cluster: &Cluster, group: &[DeviceId], bytes_per_rank: u64) -> f64 {
    let p = group.len();
    if p <= 1 || bytes_per_rank == 0 {
        return 0.0;
    }
    let link = cluster.ring_bottleneck(group);
    (p - 1) as f64 * (link.latency + bytes_per_rank as f64 / link.bandwidth)
}

/// Seconds for a ring reduce-scatter of a `bytes`-sized buffer (each rank
/// keeps `bytes / p`).
pub fn reduce_scatter_time(cluster: &Cluster, group: &[DeviceId], bytes: u64) -> f64 {
    let p = group.len();
    if p <= 1 || bytes == 0 {
        return 0.0;
    }
    let link = cluster.ring_bottleneck(group);
    (p - 1) as f64 * (link.latency + bytes as f64 / p as f64 / link.bandwidth)
}

/// Seconds for a pipelined broadcast of `bytes` from `group[0]`.
///
/// Pipelined chunking makes large-message broadcast approach `bytes / B_min`,
/// with a `(p-1) * alpha` pipeline fill.
pub fn broadcast_time(cluster: &Cluster, group: &[DeviceId], bytes: u64) -> f64 {
    let p = group.len();
    if p <= 1 || bytes == 0 {
        return 0.0;
    }
    let link = cluster.ring_bottleneck(group);
    (p - 1) as f64 * link.latency + bytes as f64 / link.bandwidth
}

/// Seconds for an all-to-all where every rank sends `bytes_per_pair` to every
/// other rank (pairwise-exchange model on the bottleneck link).
pub fn alltoall_time(cluster: &Cluster, group: &[DeviceId], bytes_per_pair: u64) -> f64 {
    let p = group.len();
    if p <= 1 || bytes_per_pair == 0 {
        return 0.0;
    }
    let link = cluster.ring_bottleneck(group);
    (p - 1) as f64 * (link.latency + bytes_per_pair as f64 / link.bandwidth)
}

/// Which executable schedule realizes an all-reduce over a group.
///
/// [`select_allreduce_algo`] picks per call by evaluating the alpha-beta
/// model on the actual link graph; `colossalai-comm` consults it so the
/// *executed* collective charges the same schedule the model predicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllReduceAlgo {
    /// One ring over the whole group (bottleneck = slowest ring link).
    FlatRing,
    /// Two-level NCCL-style schedule: intra-node reduce-scatter, ring
    /// all-reduce among node leaders, intra-node all-gather.
    Hierarchical,
    /// Binomial tree: reduce to a root, then broadcast back down. Both
    /// passes take `ceil(log2 p)` rounds of the full payload, so the
    /// latency term is logarithmic where the ring's is linear — the
    /// latency-optimal choice for small messages (and the only
    /// log-latency schedule for non-power-of-two groups).
    Tree,
    /// Recursive halving (reduce-scatter) + recursive doubling
    /// (all-gather): `log2 p` pairwise-exchange rounds per pass, each
    /// halving/doubling the live payload. Log latency *and* the ring's
    /// optimal `2 (p-1)/p` bandwidth factor, but only well-formed for
    /// power-of-two groups; other sizes fall back to the flat ring.
    RecursiveHalvingDoubling,
}

/// `ceil(log2 p)` — pairwise-exchange or tree rounds needed to span `p`
/// ranks. Zero for the trivial group.
pub fn ceil_log2(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// True when the recursive-halving-doubling schedule is well-formed for a
/// group of `p` ranks: the pairwise exchange pattern needs a power of two.
pub fn rhd_applicable(p: usize) -> bool {
    p > 1 && p.is_power_of_two()
}

/// The two phase durations of the binomial-tree all-reduce: reduce to the
/// root, broadcast back. Each phase is `ceil(log2 p)` rounds moving the
/// full payload over the group's bottleneck link.
pub fn tree_allreduce_phases(cluster: &Cluster, group: &[DeviceId], bytes: u64) -> (f64, f64) {
    let p = group.len();
    if p <= 1 || bytes == 0 {
        return (0.0, 0.0);
    }
    let link = cluster.ring_bottleneck(group);
    let t = ceil_log2(p) as f64 * (link.latency + bytes as f64 / link.bandwidth);
    (t, t)
}

/// Seconds for a binomial-tree all-reduce (reduce + broadcast).
pub fn tree_allreduce_time(cluster: &Cluster, group: &[DeviceId], bytes: u64) -> f64 {
    let (t1, t2) = tree_allreduce_phases(cluster, group, bytes);
    t1 + t2
}

/// The two phase durations of the recursive-halving-doubling all-reduce
/// (halving reduce-scatter, doubling all-gather), or `None` when the group
/// is not a power of two. Each phase runs `log2 p` rounds; round `s` moves
/// `bytes / 2^s`, so the per-phase volume telescopes to
/// `bytes (p-1)/p` — the ring's bandwidth optimum at log latency.
pub fn rhd_allreduce_phases(
    cluster: &Cluster,
    group: &[DeviceId],
    bytes: u64,
) -> Option<(f64, f64)> {
    let p = group.len();
    if !rhd_applicable(p) {
        return None;
    }
    if bytes == 0 {
        return Some((0.0, 0.0));
    }
    let link = cluster.ring_bottleneck(group);
    let steps = ceil_log2(p) as f64;
    let t = steps * link.latency + bytes as f64 * (p as f64 - 1.0) / p as f64 / link.bandwidth;
    Some((t, t))
}

/// Seconds for a recursive-halving-doubling all-reduce; non-power-of-two
/// groups degrade to the flat ring (like the hierarchical fallback).
pub fn rhd_allreduce_time(cluster: &Cluster, group: &[DeviceId], bytes: u64) -> f64 {
    let p = group.len();
    if p <= 1 || bytes == 0 {
        return 0.0;
    }
    match rhd_allreduce_phases(cluster, group, bytes) {
        Some((t1, t2)) => t1 + t2,
        None => allreduce_time(cluster, group, bytes),
    }
}

/// Partitions `group` into node-local subgroups, nodes in first-seen order
/// and devices in group-rank order within each node.
pub fn node_partition(cluster: &Cluster, group: &[DeviceId]) -> Vec<Vec<DeviceId>> {
    let mut nodes: Vec<Vec<DeviceId>> = Vec::new();
    for &d in group {
        match nodes
            .iter_mut()
            .find(|n| cluster.node(n[0]) == cluster.node(d))
        {
            Some(n) => n.push(d),
            None => nodes.push(vec![d]),
        }
    }
    nodes
}

/// True when the two-level schedule is well-formed for `group`: at least two
/// nodes, every node contributing the same number of devices. Ragged layouts
/// (and single nodes) fall back to the flat ring.
pub fn hierarchical_applicable(cluster: &Cluster, group: &[DeviceId]) -> bool {
    let nodes = node_partition(cluster, group);
    nodes.len() > 1 && nodes.iter().all(|n| n.len() == nodes[0].len()) && nodes[0].len() > 1
}

/// The three phase durations of the hierarchical all-reduce, or `None` when
/// the schedule does not apply (single node / ragged layout): intra-node
/// reduce-scatter (slowest node gates), leader ring all-reduce over the slow
/// link, intra-node all-gather.
pub fn hierarchical_allreduce_phases(
    cluster: &Cluster,
    group: &[DeviceId],
    bytes: u64,
) -> Option<(f64, f64, f64)> {
    if !hierarchical_applicable(cluster, group) {
        return None;
    }
    let nodes = node_partition(cluster, group);
    let local = nodes[0].len();
    let leaders: Vec<DeviceId> = nodes.iter().map(|n| n[0]).collect();
    let t1 = nodes
        .iter()
        .map(|n| reduce_scatter_time(cluster, n, bytes))
        .fold(0.0, f64::max);
    let t2 = allreduce_time(cluster, &leaders, bytes / local as u64);
    let t3 = nodes
        .iter()
        .map(|n| allgather_time(cluster, n, bytes / local as u64))
        .fold(0.0, f64::max);
    Some((t1, t2, t3))
}

/// Element hops the hierarchical schedule moves for an `n`-element
/// all-reduce, or `None` when the schedule does not apply. With `m` nodes of
/// `l` ranks each: two intra-node ring passes move `2 m (l-1) n` hops and
/// the leader ring moves `2 (m-1) n/l` — compare the flat ring's
/// `2 (m l - 1) n`, which drags every hop across the bottleneck link.
pub fn hierarchical_allreduce_elements(
    cluster: &Cluster,
    group: &[DeviceId],
    n: u64,
) -> Option<u64> {
    if !hierarchical_applicable(cluster, group) {
        return None;
    }
    let nodes = node_partition(cluster, group);
    let m = nodes.len() as u64;
    let l = nodes[0].len() as u64;
    Some(2 * m * (l - 1) * n + 2 * (m - 1) * (n / l))
}

/// Seconds for a *hierarchical* all-reduce: ring reduce-scatter inside each
/// node, ring all-reduce of the shards across node leaders, ring all-gather
/// inside each node — the standard two-level NCCL strategy that keeps the
/// bulk of the traffic on intra-node links.
///
/// `group` must contain whole groups of co-located devices; singleton nodes
/// degrade gracefully to the flat ring.
pub fn hierarchical_allreduce_time(cluster: &Cluster, group: &[DeviceId], bytes: u64) -> f64 {
    let p = group.len();
    if p <= 1 || bytes == 0 {
        return 0.0;
    }
    match hierarchical_allreduce_phases(cluster, group, bytes) {
        Some((t1, t2, t3)) => t1 + t2 + t3,
        // single node or ragged layout: flat ring
        None => allreduce_time(cluster, group, bytes),
    }
}

/// Seconds for an all-reduce under an explicit algorithm choice.
pub fn allreduce_time_with(
    algo: AllReduceAlgo,
    cluster: &Cluster,
    group: &[DeviceId],
    bytes: u64,
) -> f64 {
    match algo {
        AllReduceAlgo::FlatRing => allreduce_time(cluster, group, bytes),
        AllReduceAlgo::Hierarchical => hierarchical_allreduce_time(cluster, group, bytes),
        AllReduceAlgo::Tree => tree_allreduce_time(cluster, group, bytes),
        AllReduceAlgo::RecursiveHalvingDoubling => rhd_allreduce_time(cluster, group, bytes),
    }
}

/// Picks the cheapest all-reduce schedule for this call by evaluating every
/// alpha-beta estimate on the actual link graph. The resulting policy falls
/// out of the model: latency-bound small messages go to the tree (the only
/// log-latency schedule on non-power-of-two groups), large power-of-two
/// groups to recursive halving-doubling (log latency at ring bandwidth),
/// multi-node groups with a slow inter-node link to the hierarchical
/// schedule. Inapplicable schedules price as the flat ring, and an
/// equal-time challenger never displaces the incumbent — so ties (including
/// every trivial group) keep the flat ring.
pub fn select_allreduce_algo(cluster: &Cluster, group: &[DeviceId], bytes: u64) -> AllReduceAlgo {
    let mut best = AllReduceAlgo::FlatRing;
    let mut best_t = allreduce_time(cluster, group, bytes);
    for algo in [
        AllReduceAlgo::Tree,
        AllReduceAlgo::RecursiveHalvingDoubling,
        AllReduceAlgo::Hierarchical,
    ] {
        let t = allreduce_time_with(algo, cluster, group, bytes);
        if t < best_t {
            best = algo;
            best_t = t;
        }
    }
    best
}

/// The "algorithm bandwidth" a bandwidth probe would report for a collective
/// that moved `bytes` of payload in `seconds`: `bytes / seconds`. This is the
/// quantity plotted in Fig 10b.
pub fn algorithm_bandwidth(bytes: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        f64::INFINITY
    } else {
        bytes as f64 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::device::{GpuSpec, HostSpec};
    use crate::link::Link;

    fn nvlink_box() -> Cluster {
        let mut c = Cluster::homogeneous(
            "box",
            1,
            8,
            GpuSpec::a100(80),
            HostSpec::dgx(),
            Link::infiniband_hdr(),
        );
        c.full_mesh_intra_node(Link::nvlink());
        c
    }

    fn pcie_box() -> Cluster {
        // no explicit links: all intra-node pairs fall back to PCIe
        Cluster::homogeneous(
            "pcie-box",
            1,
            8,
            GpuSpec::a100(80),
            HostSpec::dgx(),
            Link::infiniband_hdr(),
        )
    }

    #[test]
    fn allreduce_faster_on_nvlink() {
        let group: Vec<usize> = (0..8).collect();
        let bytes = 125 << 20;
        let t_nv = allreduce_time(&nvlink_box(), &group, bytes);
        let t_pcie = allreduce_time(&pcie_box(), &group, bytes);
        assert!(t_nv < t_pcie / 5.0, "nvlink {t_nv} vs pcie {t_pcie}");
    }

    #[test]
    fn trivial_groups_cost_nothing() {
        let c = nvlink_box();
        assert_eq!(allreduce_time(&c, &[0], 1 << 20), 0.0);
        assert_eq!(allgather_time(&c, &[3], 1 << 20), 0.0);
        assert_eq!(broadcast_time(&c, &[0, 1], 0), 0.0);
    }

    #[test]
    fn allreduce_equals_reduce_scatter_plus_allgather() {
        // ring all-reduce is definitionally RS + AG; the model must agree
        let c = nvlink_box();
        let group: Vec<usize> = (0..4).collect();
        let bytes: u64 = 64 << 20;
        let ar = allreduce_time(&c, &group, bytes);
        let rs = reduce_scatter_time(&c, &group, bytes);
        let ag = allgather_time(&c, &group, bytes / 4);
        assert!((ar - (rs + ag)).abs() < 1e-12);
    }

    #[test]
    fn broadcast_bandwidth_matches_fig10_shape() {
        // Fig 10: 125 MB broadcast achieves ~link bandwidth on System I
        let c = nvlink_box();
        let group: Vec<usize> = (0..8).collect();
        let bytes: u64 = 125 << 20;
        let t = broadcast_time(&c, &group, bytes);
        let bw = algorithm_bandwidth(bytes, t);
        assert!(bw > 0.9 * Link::nvlink().bandwidth, "bw {bw}");
    }

    #[test]
    fn hierarchical_beats_flat_ring_across_nodes() {
        // System III-style: 4 nodes x 4 GPUs, NVLink inside, IB between
        let mut c = Cluster::homogeneous(
            "multi",
            4,
            4,
            GpuSpec::a100(40),
            HostSpec::workstation(),
            Link::infiniband_hdr(),
        );
        c.full_mesh_intra_node(Link::nvlink());
        let group: Vec<usize> = (0..16).collect();
        let bytes = 256 << 20;
        let flat = allreduce_time(&c, &group, bytes);
        let hier = hierarchical_allreduce_time(&c, &group, bytes);
        assert!(
            hier < flat,
            "hierarchical {hier} should beat flat ring {flat} when the ring crosses IB"
        );
    }

    #[test]
    fn hierarchical_degrades_to_flat_on_one_node() {
        let c = nvlink_box();
        let group: Vec<usize> = (0..8).collect();
        let bytes = 64 << 20;
        assert_eq!(
            hierarchical_allreduce_time(&c, &group, bytes),
            allreduce_time(&c, &group, bytes)
        );
    }

    #[test]
    fn selector_picks_hierarchical_only_across_nodes() {
        let mut multi = Cluster::homogeneous(
            "multi",
            4,
            4,
            GpuSpec::a100(40),
            HostSpec::workstation(),
            Link::infiniband_hdr(),
        );
        multi.full_mesh_intra_node(Link::nvlink());
        let bytes = 64 << 20;
        let group16: Vec<usize> = (0..16).collect();
        assert_eq!(
            select_allreduce_algo(&multi, &group16, bytes),
            AllReduceAlgo::Hierarchical
        );
        // single-node power-of-two group: halving-doubling (same bandwidth
        // term as the ring, log instead of linear latency) — never
        // hierarchical, which degrades to flat here
        let group4: Vec<usize> = (0..4).collect();
        assert_eq!(
            select_allreduce_algo(&multi, &group4, bytes),
            AllReduceAlgo::RecursiveHalvingDoubling
        );
        assert_eq!(
            select_allreduce_algo(&nvlink_box(), &(0..8).collect::<Vec<_>>(), bytes),
            AllReduceAlgo::RecursiveHalvingDoubling
        );
    }

    #[test]
    fn ceil_log2_rounds() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn tree_phases_are_log_rounds_of_full_payload() {
        let c = nvlink_box();
        let group: Vec<usize> = (0..6).collect();
        let bytes: u64 = 8 << 20;
        let link = Link::nvlink();
        let (t1, t2) = tree_allreduce_phases(&c, &group, bytes);
        let expect = 3.0 * (link.latency + bytes as f64 / link.bandwidth);
        assert!((t1 - expect).abs() < 1e-15);
        assert_eq!(t1, t2);
        assert!((tree_allreduce_time(&c, &group, bytes) - 2.0 * expect).abs() < 1e-15);
    }

    #[test]
    fn rhd_matches_ring_bandwidth_at_log_latency() {
        let c = nvlink_box();
        let group: Vec<usize> = (0..8).collect();
        let bytes: u64 = 64 << 20;
        let link = Link::nvlink();
        let rhd = rhd_allreduce_time(&c, &group, bytes);
        let expect = 2.0 * (3.0 * link.latency + bytes as f64 * (7.0 / 8.0) / link.bandwidth);
        assert!((rhd - expect).abs() < 1e-12, "{rhd} vs {expect}");
        // same bandwidth term as the ring, fewer latency terms: RHD must be
        // strictly cheaper on a power-of-two group at any size
        assert!(rhd < allreduce_time(&c, &group, bytes));
        // non-power-of-two: inapplicable, prices as the flat ring
        let group6: Vec<usize> = (0..6).collect();
        assert!(rhd_allreduce_phases(&c, &group6, bytes).is_none());
        assert_eq!(
            rhd_allreduce_time(&c, &group6, bytes),
            allreduce_time(&c, &group6, bytes)
        );
    }

    #[test]
    fn selector_picks_tree_for_small_non_pow2_and_rhd_for_large_pow2() {
        let c = nvlink_box();
        // small message, 6 ranks: tree's 2*ceil(log2 6)=6 latency terms beat
        // the ring's 2*(6-1)=10; RHD is inapplicable at p=6
        let group6: Vec<usize> = (0..6).collect();
        assert_eq!(select_allreduce_algo(&c, &group6, 4), AllReduceAlgo::Tree);
        // large message, same group: the tree's full-payload rounds lose to
        // the ring's chunked pipeline
        assert_eq!(
            select_allreduce_algo(&c, &group6, 125 << 20),
            AllReduceAlgo::FlatRing
        );
        // power-of-two group, large message: halving-doubling wins
        let group8: Vec<usize> = (0..8).collect();
        assert_eq!(
            select_allreduce_algo(&c, &group8, 125 << 20),
            AllReduceAlgo::RecursiveHalvingDoubling
        );
    }

    #[test]
    fn selected_algo_is_argmin_of_the_zoo() {
        let mut multi = Cluster::homogeneous(
            "multi",
            4,
            4,
            GpuSpec::a100(40),
            HostSpec::workstation(),
            Link::infiniband_hdr(),
        );
        multi.full_mesh_intra_node(Link::nvlink());
        for group_len in [2usize, 3, 4, 6, 8, 12, 16] {
            let group: Vec<usize> = (0..group_len).collect();
            for bytes in [4u64, 1 << 10, 1 << 20, 125 << 20] {
                let sel = select_allreduce_algo(&multi, &group, bytes);
                let t_sel = allreduce_time_with(sel, &multi, &group, bytes);
                for algo in [
                    AllReduceAlgo::FlatRing,
                    AllReduceAlgo::Hierarchical,
                    AllReduceAlgo::Tree,
                    AllReduceAlgo::RecursiveHalvingDoubling,
                ] {
                    let t = allreduce_time_with(algo, &multi, &group, bytes);
                    assert!(
                        t_sel <= t,
                        "p={group_len} bytes={bytes}: selected {sel:?} ({t_sel}) loses to {algo:?} ({t})"
                    );
                }
            }
        }
    }

    #[test]
    fn ragged_layouts_are_not_hierarchical() {
        let mut multi = Cluster::homogeneous(
            "multi",
            2,
            4,
            GpuSpec::a100(40),
            HostSpec::workstation(),
            Link::infiniband_hdr(),
        );
        multi.full_mesh_intra_node(Link::nvlink());
        // 3 devices from node 0, 2 from node 1
        let ragged = [0usize, 1, 2, 4, 5];
        assert!(!hierarchical_applicable(&multi, &ragged));
        assert_eq!(
            hierarchical_allreduce_time(&multi, &ragged, 8 << 20),
            allreduce_time(&multi, &ragged, 8 << 20)
        );
        // 1 GPU per node: no intra-node phase possible
        let leaders = [0usize, 4];
        assert!(!hierarchical_applicable(&multi, &leaders));
    }

    #[test]
    fn node_partition_keeps_group_rank_order() {
        let multi = Cluster::homogeneous(
            "multi",
            2,
            4,
            GpuSpec::a100(40),
            HostSpec::workstation(),
            Link::infiniband_hdr(),
        );
        let parts = node_partition(&multi, &[5, 1, 0, 6, 3]);
        assert_eq!(parts, vec![vec![5, 6], vec![1, 0, 3]]);
    }

    #[test]
    fn phases_sum_to_hierarchical_time() {
        let mut multi = Cluster::homogeneous(
            "multi",
            4,
            4,
            GpuSpec::a100(40),
            HostSpec::workstation(),
            Link::infiniband_hdr(),
        );
        multi.full_mesh_intra_node(Link::nvlink());
        let group: Vec<usize> = (0..16).collect();
        let bytes = 32 << 20;
        let (t1, t2, t3) = hierarchical_allreduce_phases(&multi, &group, bytes).unwrap();
        assert!(t1 > 0.0 && t2 > 0.0 && t3 > 0.0);
        assert!((t1 + t2 + t3 - hierarchical_allreduce_time(&multi, &group, bytes)).abs() < 1e-15);
        // the leader ring over IB dominates both intra-node phases
        assert!(t2 > t1 && t2 > t3);
    }

    #[test]
    fn more_ranks_cost_more_per_allgather() {
        let c = nvlink_box();
        let t4 = allgather_time(&c, &(0..4).collect::<Vec<_>>(), 1 << 20);
        let t8 = allgather_time(&c, &(0..8).collect::<Vec<_>>(), 1 << 20);
        assert!(t8 > t4);
    }
}
