//! Wakeup-discipline contract of the point-to-point mailbox and the abort
//! path.
//!
//! The mailbox condvars are keyed per `(from, to, tag)`: delivering one
//! message wakes at most the one receiver parked on that exact key. The
//! regression these tests guard against is the O(world) herd — a single
//! world-wide condvar whose `notify_all` on every send woke *every* parked
//! receiver, costing a full scheduler readmission cycle per rank per
//! message and making 1024-rank worlds superlinearly slower than 64-rank
//! ones.
//!
//! The counters come from [`World::wake_stats`], which counts wakeups on
//! the waiter side (each return from a condvar wait) — deliberately
//! outside the bitwise [`CommStats`] parity surface, since wake counts are
//! host-timing-dependent.

use colossalai_comm::{
    CollectiveOp, DeviceCtx, Group, Poll, RankTask, RecvOp, World, WorldBackend,
};
use colossalai_tensor::Tensor;
use colossalai_topology::systems::fat_tree_512;

const N: usize = 64;

/// All-pairs p2p storm: every rank sends one message to every peer (tag =
/// sender), then drains its inbox in rotated order so most receives park
/// before their message arrives. Returns the world for stats inspection.
fn run_storm(backend: WorldBackend) -> World {
    let world = World::new(fat_tree_512());
    world.set_backend(Some(backend));
    world.run_on(N, |ctx| {
        let me = ctx.rank();
        for d in 1..N {
            let to = (me + d) % N;
            ctx.send(to, me as u64, Tensor::scalar(me as f32));
        }
        // rotated drain: receiver `me` asks for peer (me+1) first, which
        // forces parking whenever that peer has not reached `me` yet
        for d in 1..N {
            let from = (me + d) % N;
            let got = ctx.recv(from, from as u64);
            assert_eq!(got.item(), from as f32);
        }
    });
    world
}

/// One delivery wakes (at most) one receiver: across an all-pairs storm of
/// `N*(N-1)` messages, total mailbox wakeups stay within one spurious wake
/// per rank of the message count. Under the old broadcast herd this count
/// was O(N) per message (~hundreds of thousands here).
#[test]
fn storm_wakes_one_receiver_per_message_sched() {
    let world = run_storm(WorldBackend::Sched { pool: 4 });
    let w = world.wake_stats();
    let msgs = (N * (N - 1)) as u64;
    assert_eq!(w.p2p_msgs, msgs);
    assert!(
        w.p2p_wakes <= msgs + N as u64,
        "keyed condvars must wake ~1 receiver per message: {} wakes for {} msgs",
        w.p2p_wakes,
        msgs
    );
    assert!(
        w.wakeups_per_msg() <= 2.0,
        "wakeups_per_msg {} — the O(world) herd is back",
        w.wakeups_per_msg()
    );
}

/// The same bound holds under the legacy thread-per-rank backend: keyed
/// wakeups are a mailbox property, not a scheduler property.
#[test]
fn storm_wakes_one_receiver_per_message_threads() {
    let world = run_storm(WorldBackend::Threads);
    let w = world.wake_stats();
    let msgs = (N * (N - 1)) as u64;
    assert_eq!(w.p2p_msgs, msgs);
    assert!(
        w.p2p_wakes <= msgs + N as u64,
        "{} wakes for {} msgs",
        w.p2p_wakes,
        msgs
    );
}

/// The all-pairs storm of [`run_storm`] as a resumable task: sends are
/// non-blocking, each receive parks by returning `Pending` with its
/// mailbox wake key.
struct StormTask {
    sent: bool,
    d: usize,
    op: Option<RecvOp>,
}

impl RankTask for StormTask {
    type Output = ();
    fn poll(&mut self, ctx: &DeviceCtx) -> Poll<()> {
        let me = ctx.rank();
        if !self.sent {
            self.sent = true;
            for d in 1..N {
                let to = (me + d) % N;
                ctx.send(to, me as u64, Tensor::scalar(me as f32));
            }
        }
        while self.d < N {
            let from = (me + self.d) % N;
            let op = self
                .op
                .get_or_insert_with(|| ctx.start_recv(from, from as u64));
            match op.poll(ctx) {
                Poll::Ready(got) => {
                    assert_eq!(got.item(), from as f32);
                    self.op = None;
                    self.d += 1;
                }
                Poll::Pending(key) => return Poll::Pending(key),
            }
        }
        Poll::Ready(())
    }
}

/// The same one-wake-per-message bound holds under the stackless executor,
/// where a "wake" is requeueing the parked task rather than signalling a
/// condvar — and the whole 64-rank storm runs on two OS threads.
#[test]
fn storm_wakes_one_receiver_per_message_stackless() {
    let world = World::new(fat_tree_512());
    world.set_backend(Some(WorldBackend::Stackless { pool: 2 }));
    world.run_tasks(N, |_rank| StormTask {
        sent: false,
        d: 1,
        op: None,
    });
    let w = world.wake_stats();
    let msgs = (N * (N - 1)) as u64;
    assert_eq!(w.p2p_msgs, msgs);
    assert!(
        w.p2p_wakes <= msgs + N as u64,
        "one delivery must requeue at most one parked task: {} wakes for {} msgs",
        w.p2p_wakes,
        msgs
    );
    assert!(
        w.wakeups_per_msg() <= 2.0,
        "wakeups_per_msg {} — the O(world) herd is back",
        w.wakeups_per_msg()
    );
    assert!(
        world.thread_stats().peak_live <= 2,
        "64 storm ranks must multiplex onto the 2-slot pool, got peak {}",
        world.thread_stats().peak_live
    );
}

/// A panicking rank must reach peers parked on *keyed* mailbox condvars:
/// with per-key wakeup targets, the abort path has to iterate the condvar
/// table — a single stray notify_all no longer exists to bail everyone
/// out. Peers park in a `recv` whose message never arrives; the run must
/// still unwind them and report the original panic.
#[test]
fn abort_reaches_ranks_parked_on_keyed_condvars() {
    let world = World::new(fat_tree_512());
    world.set_backend(Some(WorldBackend::Sched { pool: 2 }));
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        world.run_on(8, |ctx| {
            if ctx.rank() == 0 {
                // collect one message per peer so every peer has entered
                // the protocol, then die before answering
                for from in 1..8 {
                    let _ = ctx.recv(from, 7);
                }
                panic!("rank zero gave up");
            }
            ctx.send(0, 7, Tensor::scalar(ctx.rank() as f32));
            // parks forever on key (0, rank, 99): only the abort wake can
            // release it
            let _ = ctx.recv(0, 99);
        });
    }))
    .expect_err("run must propagate the panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".into());
    assert!(msg.contains("device thread panicked"), "{msg}");
    assert!(msg.contains("rank 0"), "{msg}");
    assert!(msg.contains("rank zero gave up"), "{msg}");
}

/// State machine for the stackless abort test: rank 0 collects one message
/// per peer (so every peer has entered the protocol) and then panics; odd
/// peers are parked `Pending` on a mailbox wake key whose message never
/// comes, even peers on a rendezvous wake key whose last member (rank 0)
/// never joins. The abort must requeue and unwind tasks parked on BOTH
/// kinds of wake key.
enum Probe {
    Start,
    Collect { from: usize, op: RecvOp },
    ParkMail(RecvOp),
    ParkRendezvous(Group, CollectiveOp),
}

struct AbortProbe {
    state: Probe,
}

impl RankTask for AbortProbe {
    type Output = ();
    fn poll(&mut self, ctx: &DeviceCtx) -> Poll<()> {
        loop {
            match std::mem::replace(&mut self.state, Probe::Start) {
                Probe::Start => {
                    let rank = ctx.rank();
                    if rank == 0 {
                        self.state = Probe::Collect {
                            from: 1,
                            op: ctx.start_recv(1, 7),
                        };
                    } else {
                        ctx.send(0, 7, Tensor::scalar(rank as f32));
                        if rank % 2 == 1 {
                            // mailbox key (0, rank, 99): nothing is ever
                            // sent under tag 99
                            self.state = Probe::ParkMail(ctx.start_recv(0, 99));
                        } else {
                            // rendezvous {0, 2, 4, 6}: rank 0 dies before
                            // joining, so the publish edge never fires
                            let g = ctx.group(&[0, 2, 4, 6]);
                            let op = g.start_all_reduce(Tensor::scalar(1.0));
                            self.state = Probe::ParkRendezvous(g, op);
                        }
                    }
                }
                Probe::Collect { from, mut op } => match op.poll(ctx) {
                    Poll::Ready(_) => {
                        if from + 1 < 8 {
                            self.state = Probe::Collect {
                                from: from + 1,
                                op: ctx.start_recv(from + 1, 7),
                            };
                        } else {
                            panic!("rank zero gave up");
                        }
                    }
                    Poll::Pending(key) => {
                        self.state = Probe::Collect { from, op };
                        return Poll::Pending(key);
                    }
                },
                Probe::ParkMail(mut op) => match op.poll(ctx) {
                    Poll::Ready(_) => unreachable!("no message is ever sent under tag 99"),
                    Poll::Pending(key) => {
                        self.state = Probe::ParkMail(op);
                        return Poll::Pending(key);
                    }
                },
                Probe::ParkRendezvous(g, mut op) => match g.poll_collective(ctx, &mut op) {
                    Poll::Ready(_) => unreachable!("rank 0 never joins the rendezvous"),
                    Poll::Pending(key) => {
                        self.state = Probe::ParkRendezvous(g, op);
                        return Poll::Pending(key);
                    }
                },
            }
        }
    }
}

/// The stackless analog of the keyed-condvar abort test: a panic must
/// reach tasks parked `Pending` on mailbox AND rendezvous wake keys — at
/// pool sizes where the panicking rank shares a slot with its victims and
/// where it does not.
#[test]
fn abort_reaches_stackless_tasks_parked_on_wake_keys() {
    for pool in [1, 2] {
        let world = World::new(fat_tree_512());
        world.set_backend(Some(WorldBackend::Stackless { pool }));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            world.run_tasks(8, |_rank| AbortProbe {
                state: Probe::Start,
            });
        }))
        .expect_err("run must propagate the panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("device thread panicked"), "pool={pool}: {msg}");
        assert!(msg.contains("rank 0"), "pool={pool}: {msg}");
        assert!(msg.contains("rank zero gave up"), "pool={pool}: {msg}");
    }
}
