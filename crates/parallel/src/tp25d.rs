//! 2.5D tensor parallelism over a `j x j x d` cuboid (Wang et al.,
//! inspired by the Solomonik–Demmel 2.5D matmul).
//!
//! Each of the `d` depth layers runs 2D SUMMA over its own slice of the
//! batch dimension; weight tiles are replicated across depth, so weight
//! gradients are all-reduced over the depth group. With `d = 1` this
//! degenerates to plain 2D, exactly as the paper notes.

use crate::tp2d::{tile_of, Grid2d, Linear2d};
use colossalai_autograd::{Layer, Param};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_tensor::Tensor;
use colossalai_topology::DeviceId;

/// A device's place in the `j x j x d` cuboid.
#[derive(Clone)]
pub struct Grid25d {
    pub j: usize,
    pub depth: usize,
    /// This device's depth layer.
    pub dep: usize,
    /// The 2D grid within this depth layer.
    pub grid2d: Grid2d,
    /// The group of devices sharing this (row, col) across depth.
    pub depth_group: Group,
}

impl Grid25d {
    /// Builds the cuboid over `members` ordered depth-major:
    /// `members[dep * j^2 + r * j + c]`.
    pub fn new(ctx: &DeviceCtx, members: &[DeviceId], depth: usize) -> Self {
        let p = members.len();
        assert!(
            depth >= 1 && p.is_multiple_of(depth),
            "p = {p} not divisible by depth {depth}"
        );
        let jj = p / depth;
        let j = crate::volume::int_sqrt(jj).unwrap_or_else(|| {
            panic!("2.5D requires d * j^2 devices, got p = {p} with depth {depth}")
        });
        let my = members
            .iter()
            .position(|&m| m == ctx.rank())
            .expect("calling device not in 2.5D cuboid");
        let dep = my / jj;
        let layer_members: Vec<DeviceId> = members[dep * jj..(dep + 1) * jj].to_vec();
        let within = my % jj;
        let depth_members: Vec<DeviceId> = (0..depth).map(|q| members[q * jj + within]).collect();
        Grid25d {
            j,
            depth,
            dep,
            grid2d: Grid2d::new(ctx, &layer_members),
            depth_group: ctx.group(&depth_members),
        }
    }
}

/// Slices the 2.5D input tile: depth layer `dep` owns batch rows
/// `[dep * M/d, (dep+1) * M/d)`, tiled 2D within the layer.
pub fn tile_x_25d(global: &Tensor, grid: &Grid25d) -> Tensor {
    let m = global.dims()[0];
    assert_eq!(m % grid.depth, 0, "batch rows not divisible by depth");
    let slice = global.narrow(0, grid.dep * (m / grid.depth), m / grid.depth);
    tile_of(&slice, grid.j, grid.grid2d.row, grid.grid2d.col)
}

/// 2.5D-parallel linear layer: a [`Linear2d`] within each depth layer plus a
/// depth-group all-reduce of parameter gradients.
pub struct Linear25d {
    ctx: DeviceCtx,
    depth_group: Group,
    inner: Linear2d,
}

impl Linear25d {
    pub fn from_global(
        ctx: &DeviceCtx,
        grid: &Grid25d,
        name: &str,
        w_global: &Tensor,
        b_global: Option<&Tensor>,
    ) -> Self {
        Linear25d {
            ctx: ctx.clone(),
            depth_group: grid.depth_group.clone(),
            inner: Linear2d::from_global(ctx, &grid.grid2d, name, w_global, b_global),
        }
    }
}

impl Layer for Linear25d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.inner.forward(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        // snapshot accumulated grads so only this backward's contribution is
        // depth-reduced (keeps gradient accumulation semantics intact)
        let mut pre = Vec::new();
        self.inner.visit_params(&mut |p| pre.push(p.grad().clone()));
        let dx = self.inner.backward(dy);
        let mut idx = 0;
        let ctx = self.ctx.clone();
        let dg = self.depth_group.clone();
        self.inner.visit_params(&mut |p| {
            let delta = p.grad().zip(&pre[idx], |g, old| g - old);
            let reduced = dg.all_reduce(&ctx, delta);
            let new_grad = pre[idx].zip(&reduced, |old, r| old + r);
            *p.grad_mut() = new_grad;
            idx += 1;
        });
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tp2d::assemble_tiles;
    use colossalai_autograd::Linear;
    use colossalai_comm::World;
    use colossalai_tensor::init;
    use colossalai_topology::systems::system_i;

    fn equivalence_case(j: usize, depth: usize, m: usize, k: usize, n: usize, seed: u64) {
        let p = j * j * depth;
        let mut rng = init::rng(seed);
        let w = init::lecun_normal(k, n, &mut rng);
        let b = init::uniform([n], -0.2, 0.2, &mut rng);
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let dy = init::uniform([m, n], -1.0, 1.0, &mut rng);

        let mut serial = Linear::from_parts("s", w.clone(), Some(b.clone()));
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);

        let world = World::new(system_i());
        let results = world.run_on(p, |ctx| {
            let members: Vec<usize> = (0..p).collect();
            let grid = Grid25d::new(ctx, &members, depth);
            let mut l = Linear25d::from_global(ctx, &grid, "l25", &w, Some(&b));
            let x_tile = tile_x_25d(&x, &grid);
            let y_tile = l.forward(&x_tile);
            let dy_tile = tile_x_25d(&dy.reshape([m, n]), &grid);
            let dx_tile = l.backward(&dy_tile);
            let mut grads = Vec::new();
            l.visit_params(&mut |p| grads.push(p.grad().clone()));
            (y_tile, dx_tile, grads)
        });

        // reassemble: depth layers own consecutive batch slices
        let jj = j * j;
        let mut y_slices = Vec::new();
        let mut dx_slices = Vec::new();
        for dep in 0..depth {
            let y_tiles: Vec<Tensor> = results[dep * jj..(dep + 1) * jj]
                .iter()
                .map(|(y, _, _)| y.clone())
                .collect();
            y_slices.push(assemble_tiles(&y_tiles, j));
            let dx_tiles: Vec<Tensor> = results[dep * jj..(dep + 1) * jj]
                .iter()
                .map(|(_, dx, _)| dx.clone())
                .collect();
            dx_slices.push(assemble_tiles(&dx_tiles, j));
        }
        let y_got = Tensor::cat(&y_slices, 0);
        let dx_got = Tensor::cat(&dx_slices, 0);
        assert!(
            y_got.allclose(&y_want, 1e-3),
            "fwd diff {}",
            y_got.max_abs_diff(&y_want)
        );
        assert!(
            dx_got.allclose(&dx_want, 1e-3),
            "dx diff {}",
            dx_got.max_abs_diff(&dx_want)
        );

        // weight grads: every depth layer holds the same reduced tiles that
        // reassemble the serial gradient
        let dw_want = serial.weight().grad();
        for dep in 0..depth {
            let dw_tiles: Vec<Tensor> = results[dep * jj..(dep + 1) * jj]
                .iter()
                .map(|(_, _, g)| g[0].clone())
                .collect();
            let dw_got = assemble_tiles(&dw_tiles, j);
            assert!(
                dw_got.allclose(dw_want, 1e-3),
                "depth {dep} dw diff {}",
                dw_got.max_abs_diff(dw_want)
            );
        }
    }

    #[test]
    fn linear25d_matches_serial_depth2() {
        // the paper's 8-GPU 2.5D configuration: j = 2, d = 2
        equivalence_case(2, 2, 8, 6, 4, 300);
    }

    #[test]
    fn linear25d_depth1_degenerates_to_2d() {
        equivalence_case(2, 1, 4, 6, 8, 301);
    }

    #[test]
    fn grad_accumulation_preserved_across_depth_reduction() {
        // two backwards must accumulate, not overwrite
        let j = 2;
        let depth = 2;
        let p = j * j * depth;
        let (m, k, n) = (8, 4, 4);
        let mut rng = init::rng(302);
        let w = init::lecun_normal(k, n, &mut rng);
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let dy = init::uniform([m, n], -1.0, 1.0, &mut rng);

        let world = World::new(system_i());
        let results = world.run_on(p, |ctx| {
            let members: Vec<usize> = (0..p).collect();
            let grid = Grid25d::new(ctx, &members, depth);
            let mut l = Linear25d::from_global(ctx, &grid, "l", &w, None);
            let x_tile = tile_x_25d(&x, &grid);
            let dy_tile = tile_x_25d(&dy, &grid);
            // backward twice with the same data
            let _ = l.forward(&x_tile);
            let _ = l.backward(&dy_tile);
            let mut once = Tensor::zeros([0]);
            l.visit_params(&mut |p| once = p.grad().clone());
            let _ = l.forward(&x_tile);
            let _ = l.backward(&dy_tile);
            let mut twice = Tensor::zeros([0]);
            l.visit_params(&mut |p| twice = p.grad().clone());
            (once, twice)
        });
        for (once, twice) in &results {
            let doubled = once.zip(once, |a, _| 2.0 * a);
            assert!(twice.allclose(&doubled, 1e-4), "accumulation broken");
        }
    }

    #[test]
    #[should_panic(expected = "device thread panicked")]
    fn cuboid_requires_square_layer() {
        let world = World::new(system_i());
        world.run_on(6, |ctx| {
            let members: Vec<usize> = (0..6).collect();
            let _ = Grid25d::new(ctx, &members, 2); // 3 per layer: not square
        });
    }
}
