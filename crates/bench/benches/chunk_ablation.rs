//! Criterion bench + ablation: chunked (PatrickStar) vs per-tensor memory
//! management. The wall-clock bench measures manager overhead; the printed
//! ablation compares *modeled PCIe seconds* per training pass, which is the
//! quantity the chunk strategy actually optimizes (Section 3.2).

use colossalai_memory::ChunkManager;
use colossalai_topology::Link;
use criterion::{criterion_group, criterion_main, Criterion};

/// One "training pass": read every registered tensor once, in order.
fn pass(mgr: &mut ChunkManager, refs: &[colossalai_memory::TensorRef]) {
    for &r in refs {
        std::hint::black_box(mgr.read(r));
    }
}

fn setup(
    chunk_elems: usize,
    n_tensors: usize,
    tensor_elems: usize,
    budget_frac: f64,
) -> (ChunkManager, Vec<colossalai_memory::TensorRef>) {
    let total_bytes = (n_tensors * tensor_elems * 4) as u64;
    let budget = (total_bytes as f64 * budget_frac) as u64;
    let mut mgr = ChunkManager::new(chunk_elems, budget, Link::pcie());
    let payload = vec![1.0f32; tensor_elems];
    let refs = (0..n_tensors).map(|_| mgr.register(&payload)).collect();
    (mgr, refs)
}

fn bench_chunking(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_ablation");
    group.sample_size(10);
    let n_tensors = 64;
    let tensor_elems = 256;

    // small chunks = per-tensor management; large chunks = PatrickStar
    for (label, chunk_elems) in [("per_tensor_256", 256usize), ("chunked_4096", 4096)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || setup(chunk_elems, n_tensors, tensor_elems, 0.5),
                |(mut mgr, refs)| {
                    pass(&mut mgr, &refs);
                    pass(&mut mgr, &refs);
                    mgr.cost().seconds
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    // the modeled-cost ablation the bench name promises
    println!("\n== chunk ablation: modeled PCIe seconds for 2 passes over 64 x 1KiB tensors at 50% GPU budget ==");
    for (label, chunk_elems) in [
        ("per-tensor (256 el)", 256usize),
        ("chunked (4096 el)", 4096),
    ] {
        let (mut mgr, refs) = setup(chunk_elems, n_tensors, tensor_elems, 0.5);
        pass(&mut mgr, &refs);
        pass(&mut mgr, &refs);
        let cost = mgr.cost();
        println!(
            "{label:>20}: {} migrations, {:.3} ms modeled, {:.1} MiB moved",
            cost.moves,
            cost.seconds * 1e3,
            (cost.h2d_bytes + cost.d2h_bytes) as f64 / (1 << 20) as f64
        );
    }
}

criterion_group!(benches, bench_chunking);
criterion_main!(benches);
