//! Stackless rank tasks: the poll-driven execution contract of the
//! [`crate::WorldBackend::Stackless`] backend.
//!
//! Under the threads and scheduler backends a rank's resumable state *is*
//! its OS thread stack — cheap to program against, but one stack + futex
//! per rank is exactly the kernel cost that caps world size
//! (EXPERIMENTS.md measures idle parked threads, not our locks, as the
//! residual scaling term at 4096 ranks). A [`RankTask`] replaces the stack
//! with a small heap struct: `poll` either completes with
//! [`Poll::Ready`] or parks the task by returning [`Poll::Pending`] with
//! the [`WakeKey`] naming the resource that will wake it — a keyed
//! mailbox slot or a group-rendezvous publish/drain edge, the same wake
//! sources the PR 7 keyed-condvar discipline introduced.
//!
//! The same state machines drive *every* backend: the blocking paths
//! ([`crate::DeviceCtx::recv`], the `Group` collectives,
//! [`crate::DeviceCtx::block_on`]) are `loop { poll | wait_key }` over the
//! identical op structs, so the stackless executor is not a second
//! implementation of the protocol — it is the only implementation, with
//! two ways of waiting. That is what keeps the three backends bitwise
//! identical in losses, stats and traces.

use crate::group::GroupShared;
use crate::world::DeviceCtx;
use colossalai_topology::DeviceId;
use std::sync::Arc;

/// Result of polling a rank task or a resumable op.
pub enum Poll<T> {
    /// The task/op completed with this value.
    Ready(T),
    /// The task must park; the key names the resource whose next state
    /// change wakes it. Stackless workers register the task under the
    /// resource's lock *before* `poll` returns this, so a wake between the
    /// return and the park is latched, never lost; blocking callers pass
    /// the key to `DeviceCtx::wait_key` and poll again.
    Pending(WakeKey),
}

/// Names the resource a [`Poll::Pending`] op is parked on. Opaque: callers
/// only hand it back to the blocking fallback (`DeviceCtx::wait_key`) or
/// return it from their own `poll`.
pub struct WakeKey {
    pub(crate) source: WakeSource,
}

/// The concrete wake sources — exactly the keyed condvars of the PR 7
/// wakeup discipline, minus the condvar: a mailbox `(from, to, tag)` slot,
/// or one of the two rendezvous edges of a group slot.
pub(crate) enum WakeSource {
    /// A message into mailbox `(from, to, tag)` wakes the receiver.
    Mail {
        from: DeviceId,
        to: DeviceId,
        tag: u64,
    },
    /// The last arrival publishing the group's outputs wakes Collect-phase
    /// waiters.
    Publish(Arc<GroupShared>),
    /// The last picker resetting the slot wakes next-op entrants waiting
    /// out a still-Distribute slot.
    Drain(Arc<GroupShared>),
}

impl WakeKey {
    pub(crate) fn mail(from: DeviceId, to: DeviceId, tag: u64) -> WakeKey {
        WakeKey {
            source: WakeSource::Mail { from, to, tag },
        }
    }

    pub(crate) fn publish(shared: &Arc<GroupShared>) -> WakeKey {
        WakeKey {
            source: WakeSource::Publish(Arc::clone(shared)),
        }
    }

    pub(crate) fn drain(shared: &Arc<GroupShared>) -> WakeKey {
        WakeKey {
            source: WakeSource::Drain(Arc::clone(shared)),
        }
    }
}

impl std::fmt::Debug for WakeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.source {
            WakeSource::Mail { from, to, tag } => {
                write!(f, "WakeKey::Mail({from}->{to} tag {tag})")
            }
            WakeSource::Publish(_) => write!(f, "WakeKey::Publish"),
            WakeSource::Drain(_) => write!(f, "WakeKey::Drain"),
        }
    }
}

/// A rank's whole program as a resumable state machine, run to completion
/// by [`crate::World::run_tasks`].
///
/// Contract:
/// * `poll` is only ever called by one worker at a time (the executor
///   guarantees exclusivity), but successive calls may come from
///   different OS threads — hence `Send`.
/// * After returning [`Poll::Pending`], the task is re-polled when (or
///   spuriously before) the keyed resource changes; `poll` must re-check
///   its condition, exactly like a condvar waiter re-checks its predicate.
/// * After [`Poll::Ready`], the task is never polled again.
/// * Panicking inside `poll` aborts the whole run with this rank's
///   message, matching the thread-backend contract.
pub trait RankTask: Send {
    /// The task's completion value (the analog of a `run_on` closure's
    /// return).
    type Output: Send;

    /// Advances the task as far as it can go without blocking.
    fn poll(&mut self, ctx: &DeviceCtx) -> Poll<Self::Output>;
}
