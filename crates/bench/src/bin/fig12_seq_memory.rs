//! E7 — Fig 12: memory efficiency of sequence parallelism over 1D tensor
//! parallelism for BERT-Base on System III (A100-40GB): maximum batch size
//! at seq 512, and maximum sequence length at batch 64.
//!
//! 1D tensor parallelism requires the 12 attention heads to divide the
//! parallel size, restricting it to 4/6/12 GPUs; sequence parallelism has
//! no such constraint and also runs on 8.

use colossalai_bench::print_table;
use colossalai_models::TransformerConfig;
use colossalai_parallel::memcalc::{max_batch, max_seq, seq_mode_admits, SeqMode};
use colossalai_topology::systems::system_iii;

fn main() {
    let cfg = TransformerConfig::bert_base();
    let capacity = system_iii().gpu(0).memory_bytes;
    println!(
        "BERT-Base ({} layers, hidden {}, {} heads) on {} per-GPU bytes",
        cfg.layers, cfg.hidden, cfg.heads, capacity
    );

    // Fig 12a: max batch at seq 512 — 1D on 4/6/12, SP on 4/8/12
    let mut rows = Vec::new();
    for p in [4usize, 6, 8, 12] {
        let tp = if seq_mode_admits(SeqMode::TensorParallel1d, &cfg, p) {
            max_batch(SeqMode::TensorParallel1d, &cfg, 512, p, capacity).to_string()
        } else {
            "n/a (heads % p != 0)".to_string()
        };
        let sp = max_batch(SeqMode::SequenceParallel, &cfg, 512, p, capacity);
        let ratio = if let Ok(tpv) = tp.parse::<f64>() {
            format!("{:.2}x", sp as f64 / tpv)
        } else {
            "-".to_string()
        };
        rows.push(vec![p.to_string(), tp, sp.to_string(), ratio]);
    }
    print_table(
        "Fig 12a: maximum batch size (seq = 512)",
        &["#GPUs", "1D TP", "Seq Parallel", "SP / TP"],
        &rows,
    );

    // Fig 12b: max sequence length at batch 64
    let mut rows = Vec::new();
    for p in [4usize, 6, 8, 12] {
        let tp = if seq_mode_admits(SeqMode::TensorParallel1d, &cfg, p) {
            max_seq(SeqMode::TensorParallel1d, &cfg, 64, p, capacity).to_string()
        } else {
            "n/a".to_string()
        };
        let sp = max_seq(SeqMode::SequenceParallel, &cfg, 64, p, capacity);
        let ratio = if let Ok(tpv) = tp.parse::<f64>() {
            format!("{:.2}x", sp as f64 / tpv)
        } else {
            "-".to_string()
        };
        rows.push(vec![p.to_string(), tp, sp.to_string(), ratio]);
    }
    print_table(
        "Fig 12b: maximum sequence length (batch = 64)",
        &["#GPUs", "1D TP", "Seq Parallel", "SP / TP"],
        &rows,
    );
    println!(
        "\nPaper reference: SP reaches 4.44x the max batch of 1D TP at 12 \
         GPUs and 1.18x the max sequence length."
    );
}
