//! The dense `f32` tensor type used across the whole workspace.

use crate::pool;
use crate::shape::Shape;
use std::fmt;
use std::mem;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::Arc;

/// The owned backing buffer of a [`Tensor`], wrapped so the buffer recycles
/// through the global [`pool`] when the last handle drops instead of hitting
/// the system allocator. `Clone` (the copy-on-write unshare path) draws its
/// copy from the pool too, so steady-state training mutates recycled memory
/// instead of faulting in fresh pages every step.
pub struct Storage {
    buf: Vec<f32>,
}

impl Storage {
    /// Wraps a caller-provided buffer (it will recycle on drop).
    #[inline]
    fn from_vec(buf: Vec<f32>) -> Self {
        Storage { buf }
    }

    /// A zero-filled buffer of length `n`, pooled when possible.
    #[inline]
    fn zeroed(n: usize) -> Self {
        Storage {
            buf: pool::take_zeroed(n),
        }
    }

    /// Consumes the storage, handing the buffer to the caller. The `Drop`
    /// that still runs sees an empty `Vec` (capacity 0), which the pool
    /// ignores.
    #[inline]
    fn into_buf(mut self) -> Vec<f32> {
        mem::take(&mut self.buf)
    }

    /// A pooled deep copy of a slice (the unshare / `into_vec`-while-shared
    /// path).
    #[inline]
    fn copied_from(src: &[f32]) -> Self {
        let mut buf = pool::take_buffer(src.len());
        buf.extend_from_slice(src);
        Storage { buf }
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        pool::recycle(mem::take(&mut self.buf));
    }
}

impl Clone for Storage {
    fn clone(&self) -> Self {
        Storage::copied_from(&self.buf)
    }
}

impl PartialEq for Storage {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl std::ops::Deref for Storage {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl fmt::Debug for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.buf.fmt(f)
    }
}

/// A dense, contiguous, row-major `f32` tensor with copy-on-write storage.
///
/// This is the single numeric currency of the reproduction: simulated-device
/// buffers, parameters, gradients and activations are all `Tensor`s. The
/// buffer is shared behind an [`Arc`], so `Clone` (and [`Tensor::reshape`])
/// is O(1) — collectives that fan one buffer out to `p` ranks hand out `p`
/// handles to a single allocation instead of `p` deep copies. Every mutation
/// path goes through [`Arc::make_mut`], which copies the buffer first if it
/// is shared, so tensors still *behave* exactly like independent values:
/// writing through one handle can never be observed through another.
///
/// # Examples
///
/// ```
/// use colossalai_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::ones([2, 2]);
/// let c = matmul(&a, &b);
/// assert_eq!(c.data(), &[3.0, 3.0, 7.0, 7.0]);
///
/// let mut d = c.clone();          // shares storage with c
/// assert!(d.shares_storage(&c));
/// d.scale(2.0);                   // unshares before writing
/// assert_eq!(c.data(), &[3.0, 3.0, 7.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Storage>,
}

impl Tensor {
    /// Builds a tensor from a shape and matching data buffer.
    ///
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor {
            shape,
            data: Arc::new(Storage::from_vec(data)),
        }
    }

    /// Builds a tensor by copying a slice into pooled storage.
    pub fn from_slice(shape: impl Into<Shape>, data: &[f32]) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor {
            shape,
            data: Arc::new(Storage::copied_from(data)),
        }
    }

    /// All-zeros tensor (drawn from the storage pool when possible).
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(Storage::zeroed(n)),
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let mut buf = pool::take_buffer(n);
        buf.resize(n, value);
        Tensor {
            shape,
            data: Arc::new(Storage::from_vec(buf)),
        }
    }

    /// Rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: Arc::new(Storage::from_vec(vec![value])),
        }
    }

    /// `[0, 1, 2, .., n-1]` as a 1-D tensor (useful in tests).
    pub fn arange(n: usize) -> Self {
        let mut buf = pool::take_buffer(n);
        buf.extend((0..n).map(|i| i as f32));
        Tensor {
            shape: Shape::new([n]),
            data: Arc::new(Storage::from_vec(buf)),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Extents as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Read-only view of the backing buffer in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer in row-major order.
    ///
    /// This is the copy-on-write point: if the storage is shared with other
    /// handles, it is unshared (copied) first, so the returned slice is
    /// always exclusively owned.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).buf.as_mut_slice()
    }

    /// Consumes the tensor, returning the backing buffer (copying — into a
    /// pooled buffer — only if the storage is still shared with other
    /// handles).
    pub fn into_vec(self) -> Vec<f32> {
        match Arc::try_unwrap(self.data) {
            Ok(storage) => storage.into_buf(),
            Err(shared) => Storage::copied_from(&shared).into_buf(),
        }
    }

    /// True if `self` and `other` share one storage allocation (i.e. both
    /// are copy-on-write handles to the same buffer).
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index (unsharing the storage if needed).
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data_mut()[off] = value;
    }

    /// The value of a rank-0 or single-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires exactly one element");
        self.data[0]
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    /// The result shares storage with `self` (copy-on-write).
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into shape {}",
            self.numel(),
            shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// In-place variant of [`Tensor::reshape`] (no buffer copy).
    pub fn reshaped(mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(shape.numel(), self.numel());
        self.shape = shape;
        self
    }

    /// Applies `f` to every element, returning a new (pooled) tensor. Large
    /// tensors fan element chunks out across the [`crate::par`] pool; `f`
    /// runs exactly once per element either way, so the parallel path is
    /// bitwise-identical to the serial sweep.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let n = self.numel();
        if crate::par::par_eligible(n) {
            let mut buf = pool::take_zeroed(n);
            let src = self.data();
            crate::par::par_chunks_static(&mut buf, crate::par::MIN_CHUNK, |off, chunk| {
                let src = &src[off..off + chunk.len()];
                for (d, &s) in chunk.iter_mut().zip(src) {
                    *d = f(s);
                }
            });
            return Tensor {
                shape: self.shape.clone(),
                data: Arc::new(Storage::from_vec(buf)),
            };
        }
        let mut buf = pool::take_buffer(n);
        buf.extend(self.data.iter().map(|&x| f(x)));
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(Storage::from_vec(buf)),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let n = self.numel();
        if crate::par::par_eligible(n) {
            crate::par::par_chunks_static(self.data_mut(), crate::par::MIN_CHUNK, |_, chunk| {
                for x in chunk.iter_mut() {
                    *x = f(*x);
                }
            });
            return;
        }
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shape tensors; parallel over
    /// element chunks for large tensors (bitwise-identical, like [`map`](Self::map)).
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let n = self.numel();
        if crate::par::par_eligible(n) {
            let mut buf = pool::take_zeroed(n);
            let (a, b) = (self.data(), other.data());
            crate::par::par_chunks_static(&mut buf, crate::par::MIN_CHUNK, |off, chunk| {
                for (i, d) in chunk.iter_mut().enumerate() {
                    *d = f(a[off + i], b[off + i]);
                }
            });
            return Tensor {
                shape: self.shape.clone(),
                data: Arc::new(Storage::from_vec(buf)),
            };
        }
        let mut buf = pool::take_buffer(n);
        buf.extend(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b)),
        );
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(Storage::from_vec(buf)),
        }
    }

    /// `self += alpha * other`, the fused update at the heart of every
    /// optimizer and gradient accumulation step. The loop runs over
    /// fixed-width `chunks_exact` lanes so the compiler can drop bounds
    /// checks and autovectorize.
    #[inline]
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        axpy_slices(self.data_mut(), alpha, other.data());
    }

    /// Multiplies every element by `s` in place (autovectorized like
    /// [`Tensor::axpy`]).
    #[inline]
    pub fn scale(&mut self, s: f32) {
        scale_slice(self.data_mut(), s);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element. Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max() of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| x as f64 * x as f64)
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Largest absolute elementwise difference to `other`.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True if every element differs from `other` by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose() requires rank 2");
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = pool::take_zeroed(r * c);
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec([c, r], out)
    }

    /// Generic dimension permutation (copies).
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_dims: Vec<usize> = perm.iter().map(|&p| self.dims()[p]).collect();
        let out_shape = Shape::new(out_dims);
        let mut out = pool::take_zeroed(self.numel());
        let in_strides = self.shape.strides();
        for (out_off, slot) in out.iter_mut().enumerate() {
            let out_idx = out_shape.unravel(out_off);
            let mut in_off = 0;
            for (k, &p) in perm.iter().enumerate() {
                in_off += out_idx[k] * in_strides[p];
            }
            *slot = self.data[in_off];
        }
        Tensor {
            shape: out_shape,
            data: Arc::new(Storage::from_vec(out)),
        }
    }

    /// Copies a contiguous slab `start..start+len` of dimension `dim`.
    ///
    /// This is the sharding primitive: splitting a batch, a hidden dimension
    /// or a sequence across devices is `narrow` along the relevant axis.
    pub fn narrow(&self, dim: usize, start: usize, len: usize) -> Tensor {
        assert!(dim < self.rank(), "narrow dim {dim} out of range");
        let extent = self.dims()[dim];
        assert!(
            start + len <= extent,
            "narrow [{start}, {}) out of bounds for extent {extent}",
            start + len
        );
        let outer: usize = self.dims()[..dim].iter().product();
        let inner: usize = self.dims()[dim + 1..].iter().product();
        let mut out = pool::take_buffer(outer * len * inner);
        for o in 0..outer {
            let base = o * extent * inner + start * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        Tensor::from_vec(self.shape.with_dim(dim, len), out)
    }

    /// Splits dimension `dim` into `parts` equal chunks.
    ///
    /// Panics unless the extent divides evenly — all sharding grids in this
    /// system require exact divisibility, mirroring the paper's constraints
    /// (e.g. attention heads divisible by the 1D parallel size).
    pub fn chunk(&self, dim: usize, parts: usize) -> Vec<Tensor> {
        let extent = self.dims()[dim];
        assert!(
            parts > 0 && extent.is_multiple_of(parts),
            "dim {dim} extent {extent} not divisible into {parts} parts"
        );
        let each = extent / parts;
        (0..parts)
            .map(|p| self.narrow(dim, p * each, each))
            .collect()
    }

    /// Splits dimension `dim` into `parts` chunks without requiring even
    /// divisibility: the first `extent % parts` chunks carry one extra
    /// element (torch `tensor_split` semantics).
    pub fn chunk_ragged(&self, dim: usize, parts: usize) -> Vec<Tensor> {
        assert!(parts > 0, "chunk into zero parts");
        let extent = self.dims()[dim];
        let base = extent / parts;
        let extra = extent % parts;
        let mut start = 0;
        (0..parts)
            .map(|p| {
                let len = base + usize::from(p < extra);
                let piece = self.narrow(dim, start, len);
                start += len;
                piece
            })
            .collect()
    }

    /// Concatenates tensors along `dim`. All other extents must agree.
    pub fn cat(tensors: &[Tensor], dim: usize) -> Tensor {
        assert!(!tensors.is_empty(), "cat of empty list");
        let first = &tensors[0];
        let rank = first.rank();
        assert!(dim < rank, "cat dim {dim} out of range");
        let mut total = 0usize;
        for t in tensors {
            assert_eq!(t.rank(), rank, "cat rank mismatch");
            for d in 0..rank {
                if d != dim {
                    assert_eq!(
                        t.dims()[d],
                        first.dims()[d],
                        "cat extent mismatch on dim {d}"
                    );
                }
            }
            total += t.dims()[dim];
        }
        let out_shape = first.shape.with_dim(dim, total);
        let outer: usize = first.dims()[..dim].iter().product();
        let inner: usize = first.dims()[dim + 1..].iter().product();
        // one pre-sized pooled buffer, filled with row-strided copies (one
        // `copy_from_slice` per (tensor, outer) pair) instead of growing via
        // repeated `extend_from_slice`
        let mut out = pool::take_zeroed(out_shape.numel());
        let out_row = total * inner;
        if crate::par::par_eligible(out.len()) && outer > 1 {
            // pure memcpy per (tensor, row): split on output-row boundaries
            // and copy every tensor's slice of each row — byte-identical to
            // the serial order below
            let mut col_offs = Vec::with_capacity(tensors.len());
            let mut off = 0usize;
            for t in tensors {
                col_offs.push(off);
                off += t.dims()[dim] * inner;
            }
            crate::par::par_chunks_unit(&mut out, out_row, crate::par::MIN_CHUNK, |off, chunk| {
                let o0 = off / out_row;
                for (row_i, row) in chunk.chunks_exact_mut(out_row).enumerate() {
                    let o = o0 + row_i;
                    for (t, &c0) in tensors.iter().zip(&col_offs) {
                        let part = t.dims()[dim] * inner;
                        row[c0..c0 + part].copy_from_slice(&t.data[o * part..(o + 1) * part]);
                    }
                }
            });
            return Tensor::from_vec(out_shape, out);
        }
        if crate::par::par_eligible(out.len()) && tensors.len() > 1 {
            // outer == 1 (e.g. dim-0 cat): the output is one row made of
            // disjoint per-tensor segments — copy each on its own executor
            let mut segs: Vec<(&Tensor, &mut [f32])> = Vec::with_capacity(tensors.len());
            let mut rest = out.as_mut_slice();
            for t in tensors {
                let (head, tail) = rest.split_at_mut(t.numel());
                segs.push((t, head));
                rest = tail;
            }
            crate::par::par_items(segs, |_, (t, seg)| seg.copy_from_slice(&t.data));
            return Tensor::from_vec(out_shape, out);
        }
        let mut col_off = 0usize;
        for t in tensors {
            let part = t.dims()[dim] * inner;
            for o in 0..outer {
                out[o * out_row + col_off..o * out_row + col_off + part]
                    .copy_from_slice(&t.data[o * part..(o + 1) * part]);
            }
            col_off += part;
        }
        Tensor::from_vec(out_shape, out)
    }

    /// Stacks rank-equal tensors along a new leading dimension.
    pub fn stack(tensors: &[Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "stack of empty list");
        let first_shape = tensors[0].shape.clone();
        let mut data = pool::take_buffer(first_shape.numel() * tensors.len());
        for t in tensors {
            assert_eq!(t.shape, first_shape, "stack shape mismatch");
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![tensors.len()];
        dims.extend_from_slice(first_shape.dims());
        Tensor::from_vec(dims, data)
    }

    /// Adds a rank-1 bias of length `n` to the last dimension (`n`-wide rows).
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_bias_assign(bias);
        out
    }

    /// In-place variant of [`Tensor::add_bias`]: allocation-free on a
    /// uniquely-owned tensor (e.g. a fresh GEMM output).
    pub fn add_bias_assign(&mut self, bias: &Tensor) {
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        let n = bias.numel();
        assert_eq!(
            *self.dims().last().expect("add_bias on scalar"),
            n,
            "bias length mismatch"
        );
        for row in self.data_mut().chunks_mut(n) {
            for (x, &b) in row.iter_mut().zip(bias.data.iter()) {
                *x += b;
            }
        }
    }

    /// Memory footprint in bytes if stored as `f32`.
    pub fn bytes_f32(&self) -> usize {
        self.numel() * 4
    }

    /// Memory footprint in bytes if stored as `f16`.
    pub fn bytes_f16(&self) -> usize {
        self.numel() * 2
    }
}

/// `dst[i] += alpha * src[i]` over 8-wide exact chunks (bounds-check-free,
/// autovectorizable) with a scalar tail. Public so benches can pin its
/// throughput and optimizers can fuse over raw slices.
#[inline]
pub fn axpy_slices(dst: &mut [f32], alpha: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    const LANES: usize = 8;
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for i in 0..LANES {
            dc[i] += alpha * sc[i];
        }
    }
    for (x, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x += alpha * b;
    }
}

/// `dst[i] *= s` over 8-wide exact chunks with a scalar tail.
#[inline]
pub fn scale_slice(dst: &mut [f32], s: f32) {
    const LANES: usize = 8;
    let mut d = dst.chunks_exact_mut(LANES);
    for dc in &mut d {
        for x in dc.iter_mut() {
            *x *= s;
        }
    }
    for x in d.into_remainder() {
        *x *= s;
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{}, {}, .. {} elements])",
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip(rhs, |a, b| a $op b)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|a| a $op rhs)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|a| -a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2x3() -> Tensor {
        Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.])
    }

    #[test]
    fn construction_and_access() {
        let t = t2x3();
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    fn elementwise_ops() {
        let a = t2x3();
        let b = Tensor::full([2, 3], 2.0);
        assert_eq!((&a + &b).data(), &[3., 4., 5., 6., 7., 8.]);
        assert_eq!((&a * &b).data(), &[2., 4., 6., 8., 10., 12.]);
        assert_eq!((&a - &b).data(), &[-1., 0., 1., 2., 3., 4.]);
        assert_eq!((&a / &b).data(), &[0.5, 1., 1.5, 2., 2.5, 3.]);
        assert_eq!((-&a).data(), &[-1., -2., -3., -4., -5., -6.]);
        assert_eq!((&a * 10.0).data(), &[10., 20., 30., 40., 50., 60.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros([4]);
        a.axpy(0.5, &Tensor::from_vec([4], vec![2., 4., 6., 8.]));
        assert_eq!(a.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn transpose_2d() {
        let t = t2x3().transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        // involution
        assert_eq!(t.transpose(), t2x3());
    }

    #[test]
    fn permute_matches_transpose() {
        let t = t2x3();
        assert_eq!(t.permute(&[1, 0]), t.transpose());
        // identity permutation
        assert_eq!(t.permute(&[0, 1]), t);
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::arange(24).reshaped([2, 3, 4]);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), t.at(&[0, 2, 1]));
    }

    #[test]
    fn narrow_middle_dim() {
        let t = Tensor::arange(24).reshaped([2, 3, 4]);
        let n = t.narrow(1, 1, 2);
        assert_eq!(n.dims(), &[2, 2, 4]);
        assert_eq!(n.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        assert_eq!(n.at(&[1, 1, 3]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn chunk_then_cat_roundtrip() {
        let t = Tensor::arange(24).reshaped([2, 3, 4]);
        for dim in 0..3 {
            let parts = t.dims()[dim];
            let chunks = t.chunk(dim, parts);
            assert_eq!(Tensor::cat(&chunks, dim), t);
        }
    }

    #[test]
    fn stack_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::ones([2, 3]);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.dims(), &[2, 2, 3]);
        assert_eq!(s.at(&[1, 1, 1]), 1.0);
    }

    #[test]
    fn add_bias_broadcasts_rows() {
        let x = Tensor::zeros([2, 2, 3]);
        let b = Tensor::from_vec([3], vec![1., 2., 3.]);
        let y = x.add_bias(&b);
        assert_eq!(y.at(&[1, 1, 2]), 3.0);
    }

    #[test]
    fn reductions() {
        let t = t2x3();
        assert_eq!(t.sum(), 21.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.max(), 6.0);
        assert!((t.norm() - 91.0f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_rejects_shape_mismatch() {
        let _ = t2x3().zip(&Tensor::zeros([3, 2]), |a, _| a);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn chunk_requires_divisibility() {
        t2x3().chunk(1, 2);
    }

    #[test]
    fn clone_shares_storage_until_mutation() {
        let a = t2x3();
        let mut b = a.clone();
        assert!(b.shares_storage(&a));
        b.set(&[0, 0], 9.0);
        assert!(!b.shares_storage(&a));
        assert_eq!(
            a.at(&[0, 0]),
            1.0,
            "mutating a clone must not leak into the original"
        );
        assert_eq!(b.at(&[0, 0]), 9.0);
    }

    #[test]
    fn reshape_shares_storage() {
        let a = t2x3();
        let r = a.reshape([3, 2]);
        assert!(r.shares_storage(&a));
        assert_eq!(r.at(&[2, 1]), 6.0);
    }

    #[test]
    fn every_mutation_path_unshares() {
        let base = t2x3();
        type Mutation = Box<dyn Fn(&mut Tensor)>;
        let mutations: Vec<Mutation> = vec![
            Box::new(|t| t.set(&[0, 0], -1.0)),
            Box::new(|t| t.data_mut()[0] = -1.0),
            Box::new(|t| t.map_inplace(|x| x + 1.0)),
            Box::new(|t| t.axpy(2.0, &Tensor::ones([2, 3]))),
            Box::new(|t| t.scale(0.5)),
        ];
        for (i, mutate) in mutations.iter().enumerate() {
            let mut copy = base.clone();
            assert!(copy.shares_storage(&base));
            mutate(&mut copy);
            assert!(
                !copy.shares_storage(&base),
                "mutation {i} failed to unshare"
            );
            assert_eq!(
                base.data(),
                &[1., 2., 3., 4., 5., 6.],
                "mutation {i} leaked"
            );
        }
    }

    #[test]
    fn into_vec_copies_only_when_shared() {
        let a = t2x3();
        let b = a.clone();
        assert_eq!(b.into_vec(), vec![1., 2., 3., 4., 5., 6.]); // shared: copies
        assert_eq!(a.into_vec(), vec![1., 2., 3., 4., 5., 6.]); // unique: moves
    }
}
