//! Training-step time and throughput estimation for paper-scale models.
//!
//! The runnable layers in this crate verify *numerical* behaviour at test
//! scale; these estimators evaluate the *same communication schedules* with
//! the alpha-beta cost model at paper scale (64-layer ViTs, BERT-Base,
//! GPT-2 10B), which is what regenerates the throughput figures: Fig 11,
//! Table 3, Fig 13 and Fig 14.
//!
//! All wire traffic is fp16 (2 bytes/element), matching mixed-precision
//! training; compute runs at the GPU's fp16 tensor-core rate.

use crate::memcalc;
use crate::volume::{int_cbrt, int_sqrt, TpMode};
use colossalai_memory::offload::{self, PlacementPolicy};
use colossalai_models::TransformerConfig;
use colossalai_topology::{cost, Cluster, DeviceId};

const FP16: u64 = 2;

/// Fixed per-collective overhead (kernel launch + NCCL communicator setup,
/// ~100 us in practice). This is the real-system effect behind Fig 11a:
/// SUMMA-family modes issue tens of small collectives per layer where
/// Megatron 1D issues four large all-reduces, so on a full-NVLink box the
/// launch overhead — not volume — decides the ranking.
const COLLECTIVE_LAUNCH_SECONDS: f64 = 1.0e-4;

/// Result of a step-time estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepEstimate {
    pub compute_seconds: f64,
    pub comm_seconds: f64,
    pub batch: usize,
}

impl StepEstimate {
    /// Total step seconds.
    pub fn seconds(&self) -> f64 {
        self.compute_seconds + self.comm_seconds
    }

    /// Samples per second.
    pub fn throughput(&self) -> f64 {
        self.batch as f64 / self.seconds()
    }
}

/// The matmul problems of one Transformer layer, as `(K, N)` pairs relative
/// to hidden size `h` (4 attention projections, MLP up, MLP down).
fn layer_matmuls(h: usize, mlp_ratio: usize) -> Vec<(usize, usize)> {
    vec![
        (h, h),
        (h, h),
        (h, h),
        (h, h),
        (h, mlp_ratio * h),
        (mlp_ratio * h, h),
    ]
}

/// Groups of a row-major `j x j` grid over `devices`.
fn grid_groups(devices: &[DeviceId], j: usize) -> (Vec<Vec<DeviceId>>, Vec<Vec<DeviceId>>) {
    let rows = (0..j)
        .map(|r| devices[r * j..(r + 1) * j].to_vec())
        .collect();
    let cols = (0..j)
        .map(|c| (0..j).map(|r| devices[r * j + c]).collect())
        .collect();
    (rows, cols)
}

/// Worst-case collective time over a set of simultaneous groups (a barrier
/// waits for the slowest subgroup).
fn max_bcast(cluster: &Cluster, groups: &[Vec<DeviceId>], bytes: u64) -> f64 {
    groups
        .iter()
        .map(|g| cost::broadcast_time(cluster, g, bytes))
        .fold(0.0, f64::max)
}

/// Communication seconds of one fwd+bwd pass of a single matmul under the
/// given tensor-parallel mode. `m_rows` is the token count (batch x seq).
fn matmul_comm_seconds(
    mode: TpMode,
    cluster: &Cluster,
    devices: &[DeviceId],
    m_rows: usize,
    k: usize,
    n: usize,
) -> f64 {
    let p = devices.len();
    if p == 1 {
        return 0.0;
    }
    let m = m_rows as u64;
    let (k, n) = (k as u64, n as u64);
    match mode {
        TpMode::OneD => {
            // Megatron: the per-layer all-reduces are shared across the
            // layer's matmuls; we charge them at the layer level in
            // `tp_layer_comm_seconds` and nothing per matmul here.
            0.0
        }
        TpMode::TwoD => {
            let j = int_sqrt(p).expect("2D grid");
            let (rows, cols) = grid_groups(devices, j);
            let x_panel = m * k / p as u64 * FP16;
            let w_panel = k * n / p as u64 * FP16;
            // 3 SUMMA passes x j rounds of (row bcast + col bcast)
            3.0 * j as f64
                * (max_bcast(cluster, &rows, x_panel) + max_bcast(cluster, &cols, w_panel))
        }
        TpMode::TwoPointFiveD { depth } => {
            let d = depth;
            assert!(p.is_multiple_of(d), "2.5D depth mismatch");
            let jj = p / d;
            let j = int_sqrt(jj).expect("2.5D grid");
            // each depth layer runs 2D on its own batch slice
            let mut worst_layer = 0.0f64;
            for dep in 0..d {
                let layer = &devices[dep * jj..(dep + 1) * jj];
                let (rows, cols) = grid_groups(layer, j);
                let x_panel = (m / d as u64) * k / jj as u64 * FP16;
                let w_panel = k * n / jj as u64 * FP16;
                let t = 3.0
                    * j as f64
                    * (max_bcast(cluster, &rows, x_panel) + max_bcast(cluster, &cols, w_panel));
                worst_layer = worst_layer.max(t);
            }
            // dW all-reduce across depth
            let depth_groups: Vec<Vec<DeviceId>> = (0..jj)
                .map(|w| (0..d).map(|dep| devices[dep * jj + w]).collect())
                .collect();
            let dw_bytes = k * n / jj as u64 * FP16;
            let dw = depth_groups
                .iter()
                .map(|g| cost::allreduce_time(cluster, g, dw_bytes))
                .fold(0.0, f64::max);
            worst_layer + dw
        }
        TpMode::ThreeD => {
            let l = int_cbrt(p).expect("3D cube");
            let at = |i: usize, j: usize, kk: usize| devices[i * l * l + j * l + kk];
            let mut i_groups = Vec::new();
            let mut j_groups = Vec::new();
            let mut k_groups = Vec::new();
            for a in 0..l {
                for b in 0..l {
                    i_groups.push((0..l).map(|q| at(q, a, b)).collect::<Vec<_>>());
                    j_groups.push((0..l).map(|q| at(a, q, b)).collect::<Vec<_>>());
                    k_groups.push((0..l).map(|q| at(a, b, q)).collect::<Vec<_>>());
                }
            }
            let l3 = (l * l * l) as u64;
            let l2 = (l * l) as u64;
            let max_ag = |groups: &[Vec<DeviceId>], contrib: u64| {
                groups
                    .iter()
                    .map(|g| cost::allgather_time(cluster, g, contrib))
                    .fold(0.0, f64::max)
            };
            let max_rs = |groups: &[Vec<DeviceId>], total: u64| {
                groups
                    .iter()
                    .map(|g| cost::reduce_scatter_time(cluster, g, total))
                    .fold(0.0, f64::max)
            };
            // forward: AG_k(X) + AG_i(W) + RS_j(partial Y)
            let fwd = max_ag(&k_groups, m * k / l3 * FP16)
                + max_ag(&i_groups, k * n / l3 * FP16)
                + max_rs(&j_groups, m * n / l2 * FP16);
            // backward (per the Linear3d implementation):
            // AG_j(dY) + AG_i(W) + RS_k(dX) + AG_k(X) + RS_i(dW)
            let bwd = max_ag(&j_groups, m * n / l3 * FP16)
                + max_ag(&i_groups, k * n / l3 * FP16)
                + max_rs(&k_groups, m * k / l2 * FP16)
                + max_ag(&k_groups, m * k / l3 * FP16)
                + max_rs(&i_groups, k * n / l2 * FP16);
            fwd + bwd
        }
    }
}

/// Number of distinct collective launches one fwd+bwd of a matmul issues.
fn matmul_collective_ops(mode: TpMode, p: usize) -> u64 {
    match mode {
        TpMode::OneD => 0, // charged per layer, not per matmul
        TpMode::TwoD => {
            let j = int_sqrt(p).expect("2D grid") as u64;
            3 * j * 2 // passes x rounds x (row bcast + col bcast)
        }
        TpMode::TwoPointFiveD { depth } => {
            let j = int_sqrt(p / depth).expect("2.5D grid") as u64;
            3 * j * 2 + 1 // + the depth-group dW all-reduce
        }
        TpMode::ThreeD => 8, // 3 fwd + 5 bwd collectives
    }
}

/// Communication seconds of one fwd+bwd pass of a whole Transformer layer,
/// including fixed launch overhead per collective.
fn tp_layer_comm_seconds(
    mode: TpMode,
    cfg: &TransformerConfig,
    cluster: &Cluster,
    devices: &[DeviceId],
    batch: usize,
) -> f64 {
    if devices.len() == 1 {
        return 0.0; // no parallelism, no collectives
    }
    let m_rows = batch * cfg.max_seq;
    match mode {
        TpMode::OneD => {
            // 2 all-reduces of [M, h] forward + 2 backward, across the whole
            // TP group — the Fig 4 pattern
            let bytes = (m_rows * cfg.hidden) as u64 * FP16;
            4.0 * (cost::allreduce_time(cluster, devices, bytes) + COLLECTIVE_LAUNCH_SECONDS)
        }
        _ => layer_matmuls(cfg.hidden, cfg.mlp_ratio)
            .into_iter()
            .map(|(k, n)| {
                matmul_comm_seconds(mode, cluster, devices, m_rows, k, n)
                    + matmul_collective_ops(mode, devices.len()) as f64 * COLLECTIVE_LAUNCH_SECONDS
            })
            .sum(),
    }
}

/// Step-time estimate for tensor-parallel ViT training (Figs 11, Table 3).
pub fn tp_step(
    mode: TpMode,
    cfg: &TransformerConfig,
    cluster: &Cluster,
    devices: &[DeviceId],
    batch: usize,
) -> StepEstimate {
    let p = devices.len();
    assert!(
        mode.admits(p),
        "{} does not admit {p} devices",
        mode.label()
    );
    let flops = cfg.train_flops(batch, cfg.max_seq);
    let gpu = cluster.gpu(devices[0]);
    let compute = gpu.compute_time_f16(flops / p as u64);
    let comm = cfg.layers as f64 * tp_layer_comm_seconds(mode, cfg, cluster, devices, batch);
    StepEstimate {
        compute_seconds: compute,
        comm_seconds: comm,
        batch,
    }
}

/// Largest batch that fits for a TP mode: 1D duplicates layer boundaries,
/// advanced modes shard all activations (see `memcalc`).
pub fn tp_max_batch(mode: TpMode, cfg: &TransformerConfig, p: usize, capacity: u64) -> usize {
    let fits = |b: usize| -> bool {
        if b == 0 {
            return true;
        }
        let model = cfg.model_data_bytes() / p as u64;
        let act = match mode {
            TpMode::OneD => cfg.layers as u64 * memcalc::act_bytes_1d_tp(cfg, b, cfg.max_seq, p),
            _ => cfg.layers as u64 * cfg.activation_bytes_per_layer(b, cfg.max_seq) / p as u64,
        };
        model + act <= capacity
    };
    let mut b = 0usize;
    let mut step = 1usize;
    while fits(b + step) {
        b += step;
        step *= 2;
    }
    while step > 1 {
        step /= 2;
        if fits(b + step) {
            b += step;
        }
    }
    b
}

/// Best throughput over batch sizes for a mode (the paper's "trained with
/// increasing batch size until OOM" protocol).
pub fn tp_best_throughput(
    mode: TpMode,
    cfg: &TransformerConfig,
    cluster: &Cluster,
    devices: &[DeviceId],
) -> Option<StepEstimate> {
    let p = devices.len();
    if !mode.admits(p) {
        return None;
    }
    let capacity = cluster.gpu(devices[0]).memory_bytes;
    let max_b = tp_max_batch(mode, cfg, p, capacity);
    if max_b == 0 {
        return None;
    }
    // throughput is monotone in batch under this cost model (latency
    // amortizes); evaluate at the memory limit like the paper does
    Some(tp_step(mode, cfg, cluster, devices, max_b))
}

/// Step-time estimate for sequence parallelism vs 1D TP on BERT (Fig 13a).
pub fn bert_step(
    mode: memcalc::SeqMode,
    cfg: &TransformerConfig,
    cluster: &Cluster,
    devices: &[DeviceId],
    batch: usize,
    seq: usize,
) -> StepEstimate {
    let p = devices.len();
    let gpu = cluster.gpu(devices[0]);
    let flops = 3 * (batch * seq) as u64 * cfg.forward_flops_per_token(seq);
    let compute = gpu.compute_time_f16(flops / p as u64);
    let comm = match mode {
        memcalc::SeqMode::TensorParallel1d => {
            let bytes = (batch * seq * cfg.hidden) as u64 * FP16;
            cfg.layers as f64 * 4.0 * cost::allreduce_time(cluster, devices, bytes)
        }
        memcalc::SeqMode::SequenceParallel => {
            // per layer: ring-gather K and V (fwd), ring-scatter dK and dV
            // (bwd); per step: data-parallel gradient all-reduce of the
            // replicated model
            let contrib = (batch * seq / p * cfg.hidden) as u64 * FP16;
            let full = (batch * seq * cfg.hidden) as u64 * FP16;
            let per_layer = 2.0 * cost::allgather_time(cluster, devices, contrib)
                + 2.0 * cost::reduce_scatter_time(cluster, devices, full);
            let grads = cost::allreduce_time(cluster, devices, cfg.transformer_params() * FP16);
            cfg.layers as f64 * per_layer + grads
        }
    };
    StepEstimate {
        compute_seconds: compute,
        comm_seconds: comm,
        batch,
    }
}

/// Fig 13b: adds pipeline stages on top of a fixed parallel size. 1D TP
/// scatters + gathers activations at every stage boundary; sequence
/// parallelism sends its already-split slice with no extra collectives.
#[allow(clippy::too_many_arguments)]
pub fn bert_pipeline_step(
    mode: memcalc::SeqMode,
    cfg: &TransformerConfig,
    cluster: &Cluster,
    devices: &[DeviceId],
    batch: usize,
    seq: usize,
    stages: usize,
    micro_batches: usize,
) -> StepEstimate {
    assert!(
        stages >= 1 && cfg.layers.is_multiple_of(stages),
        "stages must divide layers"
    );
    let base = bert_step(mode, cfg, cluster, devices, batch, seq);
    if stages == 1 {
        return base;
    }
    // per-stage work is 1/stages of the step, bubble-stretched
    let bubble = 1.0
        + crate::pipeline::bubble_fraction(stages, micro_batches)
            / (1.0 - crate::pipeline::bubble_fraction(stages, micro_batches));
    let p = devices.len();
    let boundary_bytes = (batch * seq * cfg.hidden / p) as u64 * FP16;
    // p2p between consecutive stage groups (approximated with the cluster's
    // cross-node link via devices 0 -> last)
    let hop = cluster.p2p_time(devices[0], devices[p - 1], boundary_bytes);
    let mut boundary = (stages - 1) as f64 * 2.0 * micro_batches as f64 * hop;
    if mode == memcalc::SeqMode::TensorParallel1d {
        // split before the hop and gather after it, inside the TP group
        let gather = cost::allgather_time(cluster, devices, boundary_bytes);
        boundary += (stages - 1) as f64 * 2.0 * micro_batches as f64 * gather;
    }
    StepEstimate {
        compute_seconds: base.compute_seconds * bubble,
        comm_seconds: base.comm_seconds + boundary,
        batch,
    }
}

/// Fig 14: per-GPU throughput of ZeRO-3 + offload training under the two
/// placement policies. `dp` ranks each process `batch` samples.
pub fn offload_step(
    policy: PlacementPolicy,
    cfg: &TransformerConfig,
    cluster: &Cluster,
    devices: &[DeviceId],
    batch: usize,
) -> StepEstimate {
    let p = devices.len() as u64;
    let gpu = cluster.gpu(devices[0]);
    let n = cfg.transformer_params();
    let seq = cfg.max_seq;
    let flops = cfg.train_flops(batch, seq);
    let compute = gpu.compute_time_f16(flops);

    // ZeRO-3 collectives (fp16): all-gather params for fwd and bwd, then
    // reduce-scatter gradients. Both engines prefetch the next layer's
    // parameters while computing the current one, so collective time
    // overlaps with compute; the step is gated by whichever is longer.
    let comm = if p > 1 {
        2.0 * cost::allgather_time(cluster, devices, 2 * n / p)
            + cost::reduce_scatter_time(cluster, devices, 2 * n)
    } else {
        0.0
    };

    // placement-policy overhead: PCIe streaming + CPU share of Adam.
    // Both systems train 10B+ models with full activation checkpointing, so
    // the working set is the per-layer checkpointed inputs plus one layer's
    // live activations.
    let model = offload::ModelData {
        n_params: n,
        dp_degree: p,
    };
    let ckpt_inputs = cfg.layers as u64 * (2 * (batch * seq * cfg.hidden) as u64);
    let live_layer = cfg.activation_bytes_per_layer(batch, seq);
    let working = ckpt_inputs + live_layer;
    let plan = offload::plan(policy, model, gpu.memory_bytes, working);
    let overhead = plan.overhead_seconds(cluster.host_link(), cluster.host());

    StepEstimate {
        // compute and prefetched collectives overlap: the longer one gates
        compute_seconds: compute.max(comm),
        // PCIe offload streaming + CPU Adam do not overlap (they depend on
        // gradients produced at the end of backward)
        comm_seconds: overhead,
        batch: batch * p as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_topology::systems::{system_i, system_ii, system_iii, system_iv};

    #[test]
    fn fig11a_system_i_favors_1d() {
        // full-mesh NVLink: 1D wins at 4 and 8 GPUs (paper Fig 11a)
        let cluster = system_i();
        for (p, cfg) in [
            (4usize, TransformerConfig::vit_fig11_4gpu()),
            (8, TransformerConfig::vit_fig11_8gpu()),
        ] {
            let devices: Vec<usize> = (0..p).collect();
            let t1 = tp_best_throughput(TpMode::OneD, &cfg, &cluster, &devices)
                .unwrap()
                .throughput();
            for mode in [
                TpMode::TwoD,
                TpMode::TwoPointFiveD { depth: 2 },
                TpMode::ThreeD,
            ] {
                if let Some(e) = tp_best_throughput(mode, &cfg, &cluster, &devices) {
                    assert!(
                        e.throughput() < t1,
                        "p={p}: {} ({:.2}) should not beat 1D ({:.2}) on System I",
                        mode.label(),
                        e.throughput(),
                        t1
                    );
                }
            }
        }
    }

    #[test]
    fn fig11b_system_ii_favors_2d_25d() {
        // partially connected NVLink: 2D / 2.5D beat 1D (paper: +40% at 4
        // GPUs, +20.6% for 2.5D at 8 GPUs; 3D still loses)
        let cluster = system_ii();
        let cfg4 = TransformerConfig::vit_fig11_4gpu();
        let devices4: Vec<usize> = (0..4).collect();
        let t1 = tp_best_throughput(TpMode::OneD, &cfg4, &cluster, &devices4)
            .unwrap()
            .throughput();
        let t2 = tp_best_throughput(TpMode::TwoD, &cfg4, &cluster, &devices4)
            .unwrap()
            .throughput();
        assert!(
            t2 > t1,
            "4 GPUs on System II: 2D {t2:.2} must beat 1D {t1:.2}"
        );

        let cfg8 = TransformerConfig::vit_fig11_8gpu();
        let devices8: Vec<usize> = (0..8).collect();
        let t1 = tp_best_throughput(TpMode::OneD, &cfg8, &cluster, &devices8)
            .unwrap()
            .throughput();
        let t25 = tp_best_throughput(
            TpMode::TwoPointFiveD { depth: 2 },
            &cfg8,
            &cluster,
            &devices8,
        )
        .unwrap()
        .throughput();
        assert!(
            t25 > t1,
            "8 GPUs on System II: 2.5D {t25:.2} must beat 1D {t1:.2}"
        );
    }

    #[test]
    fn table3_speedup_grows_with_scale() {
        // System IV: advanced modes' advantage over 1D grows with GPU count
        let cluster = system_iv();
        let speedup = |mode: TpMode, p: usize, cfg: &TransformerConfig| -> Option<f64> {
            let devices: Vec<usize> = (0..p).collect();
            let t1 = tp_best_throughput(TpMode::OneD, cfg, &cluster, &devices)?.throughput();
            let tm = tp_best_throughput(mode, cfg, &cluster, &devices)?.throughput();
            Some(tm / t1)
        };
        let small = TransformerConfig::vit_table3_small();
        let large = TransformerConfig::vit_table3_large();
        let s4 = speedup(TpMode::TwoD, 4, &small).unwrap();
        let s16 = speedup(TpMode::TwoD, 16, &large).unwrap();
        let s64 = speedup(TpMode::TwoD, 64, &large).unwrap();
        assert!(
            s16 > s4,
            "2D speedup must grow: 4GPU {s4:.2} vs 16GPU {s16:.2}"
        );
        assert!(
            s64 > s16,
            "2D speedup must grow: 16GPU {s16:.2} vs 64GPU {s64:.2}"
        );
        assert!(s64 > 1.5, "64-GPU 2D speedup {s64:.2} (paper: 2.76x)");
    }

    #[test]
    fn fig13a_sequence_parallel_faster_than_1d() {
        let cluster = system_iii();
        let cfg = TransformerConfig::bert_base();
        let capacity = cluster.gpu(0).memory_bytes;
        for p in [4usize, 12] {
            let devices: Vec<usize> = (0..p).collect();
            let b_tp =
                memcalc::max_batch(memcalc::SeqMode::TensorParallel1d, &cfg, 512, p, capacity);
            let b_sp =
                memcalc::max_batch(memcalc::SeqMode::SequenceParallel, &cfg, 512, p, capacity);
            let t_tp = bert_step(
                memcalc::SeqMode::TensorParallel1d,
                &cfg,
                &cluster,
                &devices,
                b_tp,
                512,
            );
            let t_sp = bert_step(
                memcalc::SeqMode::SequenceParallel,
                &cfg,
                &cluster,
                &devices,
                b_sp,
                512,
            );
            assert!(
                t_sp.throughput() > t_tp.throughput(),
                "p={p}: SP {:.1} must beat TP {:.1} samples/s",
                t_sp.throughput(),
                t_tp.throughput()
            );
        }
    }

    #[test]
    fn fig13b_pipeline_widens_the_gap() {
        let cluster = system_iii();
        let cfg = TransformerConfig::bert_base();
        let devices: Vec<usize> = (0..4).collect();
        let (b, s, m) = (32usize, 512usize, 8usize);
        let mut prev_ratio = 0.0;
        for stages in [1usize, 2, 4] {
            let tp = bert_pipeline_step(
                memcalc::SeqMode::TensorParallel1d,
                &cfg,
                &cluster,
                &devices,
                b,
                s,
                stages,
                m,
            );
            let sp = bert_pipeline_step(
                memcalc::SeqMode::SequenceParallel,
                &cfg,
                &cluster,
                &devices,
                b,
                s,
                stages,
                m,
            );
            let ratio = sp.throughput() / tp.throughput();
            assert!(
                ratio >= prev_ratio * 0.99,
                "gap must not shrink: {ratio:.2} at {stages} stages"
            );
            prev_ratio = ratio;
        }
        assert!(
            prev_ratio > 1.0,
            "SP with 4 pipeline stages must win (paper: 1.55x)"
        );
    }

    #[test]
    fn fig14_adaptive_beats_static_and_scales() {
        let cluster = system_ii();
        let cfg = TransformerConfig::gpt2_10b();
        let mut prev_adaptive = 0.0;
        for p in [1usize, 2, 4, 8] {
            let devices: Vec<usize> = (0..p).collect();
            let s = offload_step(PlacementPolicy::StaticCpu, &cfg, &cluster, &devices, 4);
            let a = offload_step(PlacementPolicy::Adaptive, &cfg, &cluster, &devices, 4);
            assert!(
                a.throughput() > s.throughput(),
                "p={p}: adaptive {:.2} must beat static {:.2}",
                a.throughput(),
                s.throughput()
            );
            assert!(
                a.throughput() > prev_adaptive,
                "throughput must scale with p"
            );
            prev_adaptive = a.throughput();
        }
    }

    #[test]
    fn fig14_opt13b_ratio_shrinks_at_large_batch() {
        // OPT-13B at batch 32: both policies near memory limits; Colossal
        // still wins but by less (paper: 1.33x at 8 GPUs)
        let cluster = system_ii();
        let cfg = TransformerConfig::opt_13b();
        let devices: Vec<usize> = (0..8).collect();
        let gpt = TransformerConfig::gpt2_10b();
        let small_ratio = {
            let s = offload_step(PlacementPolicy::StaticCpu, &gpt, &cluster, &devices, 4);
            let a = offload_step(PlacementPolicy::Adaptive, &gpt, &cluster, &devices, 4);
            a.throughput() / s.throughput()
        };
        let big_ratio = {
            let s = offload_step(PlacementPolicy::StaticCpu, &cfg, &cluster, &devices, 32);
            let a = offload_step(PlacementPolicy::Adaptive, &cfg, &cluster, &devices, 32);
            a.throughput() / s.throughput()
        };
        assert!(big_ratio > 1.0, "adaptive must still win at batch 32");
        assert!(
            big_ratio < small_ratio,
            "advantage must shrink when memory is saturated: {big_ratio:.2} vs {small_ratio:.2}"
        );
    }

    #[test]
    fn max_batch_monotone_in_capacity_and_maximal() {
        let cfg = TransformerConfig::vit_table3_small();
        let mut prev = 0;
        for cap_gib in [8u64, 16, 40, 80] {
            let cap = cap_gib << 30;
            let b = tp_max_batch(TpMode::OneD, &cfg, 4, cap);
            assert!(b >= prev, "max batch must grow with capacity");
            prev = b;
        }
        // maximality: b fits, b+1 does not (checked through the same model)
        let cap = 16u64 << 30;
        let b = tp_max_batch(TpMode::OneD, &cfg, 4, cap);
        let bytes_at = |batch: usize| {
            cfg.model_data_bytes() / 4
                + cfg.layers as u64 * crate::memcalc::act_bytes_1d_tp(&cfg, batch, cfg.max_seq, 4)
        };
        assert!(bytes_at(b) <= cap);
        assert!(bytes_at(b + 1) > cap);
    }

    #[test]
    fn step_estimates_are_positive_and_finite() {
        let cluster = system_i();
        let cfg = TransformerConfig::vit_table3_small();
        for (mode, p) in [
            (TpMode::OneD, 4usize),
            (TpMode::TwoD, 4),
            (TpMode::TwoPointFiveD { depth: 2 }, 8),
            (TpMode::ThreeD, 8),
        ] {
            let devices: Vec<usize> = (0..p).collect();
            let est = tp_step(mode, &cfg, &cluster, &devices, 16);
            assert!(est.compute_seconds > 0.0 && est.compute_seconds.is_finite());
            assert!(est.comm_seconds > 0.0 && est.comm_seconds.is_finite());
            assert!(est.throughput() > 0.0, "{}", mode.label());
        }
        // single device: no communication
        let est = tp_step(TpMode::OneD, &cfg, &cluster, &[0], 16);
        assert_eq!(est.comm_seconds, 0.0);
    }

    #[test]
    fn max_batch_larger_for_sharded_modes() {
        let cfg = TransformerConfig::vit_fig11_8gpu();
        let cap = 80u64 << 30;
        let b1 = tp_max_batch(TpMode::OneD, &cfg, 8, cap);
        let b3 = tp_max_batch(TpMode::ThreeD, &cfg, 8, cap);
        assert!(b3 > b1, "3D max batch {b3} must exceed 1D {b1}");
    }
}
