//! Matrix-multiplication entry points.
//!
//! All distributed matmul algorithms (1D/2D/2.5D/3D tensor parallelism)
//! bottom out in these local kernels. Every variant — plain, transposed, and
//! batched — routes through the packed register-blocked core in
//! [`crate::kernel`]; transposed operands are passed as strided views so the
//! transpose is never materialized and never touches the hot loop.
//!
//! The seed kernels ([`gemm_ref_ikj`], [`gemm_ref_blocked`]) are kept as
//! reference baselines for the `gemm_kernels` benchmark and for differential
//! tests; they are not used by any production path.

use crate::kernel::{for_each_batch, gemm_mat_auto, gemm_mat_bf16_auto, Mat};
use crate::tensor::Tensor;

/// Block edge for the reference tiled kernel; sized so that three `B x B`
/// f32 tiles fit comfortably in a typical 32 KiB L1 data cache.
const BLOCK: usize = 48;

/// `C = A @ B` for rank-2 operands `(m, k) @ (k, n) -> (m, n)`.
///
/// Inputs of higher rank should be collapsed first (see [`matmul_nd`]).
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner-dimension mismatch: {k} vs {k2}");
    let mut out = crate::pool::take_zeroed(m * n);
    gemm(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec([m, n], out)
}

/// `C += A @ B` on raw row-major slices. The accumulation form is what the
/// SUMMA / Cannon / 2.5D loops need (they accumulate partial products panel
/// by panel into a local tile).
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm lhs size");
    assert_eq!(b.len(), k * n, "gemm rhs size");
    assert_eq!(c.len(), m * n, "gemm out size");
    gemm_mat_auto(Mat::row_major(a, k), Mat::row_major(b, n), c, m, k, n);
}

/// Reference i-k-j kernel from the seed tree, kept for benchmarking and
/// differential tests. The `a_ip == 0.0` skip made sparse-ish inputs cheap
/// but costs a branch per scalar on dense ones.
pub fn gemm_ref_ikj(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ip * b_pj;
            }
        }
    }
}

/// Reference cache-blocked kernel from the seed tree, kept for benchmarking
/// and differential tests.
pub fn gemm_ref_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let c_row = &mut c[i * n + j0..i * n + j1];
                    for p in p0..p1 {
                        let a_ip = a[i * k + p];
                        if a_ip == 0.0 {
                            continue;
                        }
                        let b_row = &b[p * n + j0..p * n + j1];
                        for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row.iter()) {
                            *c_ij += a_ip * b_pj;
                        }
                    }
                }
            }
        }
    }
}

/// `C = bf16(A) @ bf16(B)` with f32 accumulation — the reduced-precision
/// compute GEMM of the fast numeric mode. Operands are rounded to bf16
/// (round-to-nearest-even) as they are packed into panels, so precision
/// drops exactly once per operand element regardless of blocking; the
/// register tile accumulates in f32 with FMA. Callers opt in explicitly
/// (the AMP engine under `compute.fast`); it is **not** selected by
/// [`matmul`], so fast mode alone never changes the storage format of a
/// full-precision matmul.
pub fn matmul_bf16(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_bf16 lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_bf16 rhs must be rank 2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_bf16 inner-dimension mismatch: {k} vs {k2}");
    let mut out = crate::pool::take_zeroed(m * n);
    gemm_mat_bf16_auto(
        Mat::row_major(a.data(), k),
        Mat::row_major(b.data(), n),
        &mut out,
        m,
        k,
        n,
    );
    Tensor::from_vec([m, n], out)
}

/// [`matmul_bf16`] for `A` with arbitrary leading dimensions, the shape
/// contract of [`matmul_nd`] (a linear layer on `(batch, seq, K)`
/// activations).
pub fn matmul_nd_bf16(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(a.rank() >= 1, "matmul_nd_bf16 lhs must have rank >= 1");
    assert_eq!(b.rank(), 2, "matmul_nd_bf16 rhs must be rank 2");
    let (rows, k) = a.shape().as_matrix();
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nd_bf16 inner-dimension mismatch");
    let mut out = crate::pool::take_zeroed(rows * n);
    gemm_mat_bf16_auto(
        Mat::row_major(a.data(), k),
        Mat::row_major(b.data(), n),
        &mut out,
        rows,
        k,
        n,
    );
    let mut dims = a.dims().to_vec();
    *dims.last_mut().unwrap() = n;
    Tensor::from_vec(dims, out)
}

/// `A @ B` where `A` may have arbitrary leading dimensions:
/// `[d0, .., dk, K] @ [K, N] -> [d0, .., dk, N]`.
///
/// This is the shape contract of a linear layer applied to `(batch, seq, K)`
/// activations.
pub fn matmul_nd(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(a.rank() >= 1, "matmul_nd lhs must have rank >= 1");
    assert_eq!(b.rank(), 2, "matmul_nd rhs must be rank 2");
    let (rows, k) = a.shape().as_matrix();
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nd inner-dimension mismatch");
    let mut out = crate::pool::take_zeroed(rows * n);
    gemm(a.data(), b.data(), &mut out, rows, k, n);
    let mut dims = a.dims().to_vec();
    *dims.last_mut().unwrap() = n;
    Tensor::from_vec(dims, out)
}

/// `A @ B^T` without materializing the transpose: `(m, k) @ (n, k)^T -> (m, n)`.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_bt inner-dimension mismatch");
    let mut out = crate::pool::take_zeroed(m * n);
    gemm_mat_auto(
        Mat::row_major(a.data(), k),
        Mat::transposed(b.data(), k),
        &mut out,
        m,
        k,
        n,
    );
    Tensor::from_vec([m, n], out)
}

/// Fused gradient-accumulating `A^T @ B`: `out += a^T @ b` without the
/// temporary tensor (and its zero-fill and second axpy pass) that
/// `matmul_at` + `Tensor::axpy` would cost. Bitwise-identical to that
/// composed pair: for `k <= kernel::KC` each output element gets its
/// fully-reduced ascending-`k` dot added exactly once (see
/// [`crate::kernel::gemm_mat_acc`]); deeper reductions fall back to the
/// composed path itself.
pub fn matmul_at_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_at_acc inner-dimension mismatch");
    assert_eq!(
        out.dims(),
        &[m, n][..],
        "matmul_at_acc output shape mismatch"
    );
    if k <= crate::kernel::KC {
        crate::kernel::gemm_mat_acc(
            Mat::transposed(a.data(), m),
            Mat::row_major(b.data(), n),
            out.data_mut(),
            m,
            k,
            n,
        );
    } else {
        out.axpy(1.0, &matmul_at(a, b));
    }
}

/// `A^T @ B` without materializing the transpose: `(k, m)^T @ (k, n) -> (m, n)`.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_at inner-dimension mismatch");
    let mut out = crate::pool::take_zeroed(m * n);
    gemm_mat_auto(
        Mat::transposed(a.data(), m),
        Mat::row_major(b.data(), n),
        &mut out,
        m,
        k,
        n,
    );
    Tensor::from_vec([m, n], out)
}

/// Batched matmul over matching leading batch dimensions:
/// `[batch, m, k] @ [batch, k, n] -> [batch, m, n]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "bmm lhs must be rank 3");
    assert_eq!(b.rank(), 3, "bmm rhs must be rank 3");
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "bmm batch mismatch");
    assert_eq!(k, k2, "bmm inner-dimension mismatch");
    let mut out = crate::pool::take_zeroed(ba * m * n);
    for_each_batch(ba, m * n, m * k * n, &mut out, |t, c_t| {
        gemm_mat_auto(
            Mat::row_major(&a.data()[t * m * k..(t + 1) * m * k], k),
            Mat::row_major(&b.data()[t * k * n..(t + 1) * k * n], n),
            c_t,
            m,
            k,
            n,
        );
    });
    Tensor::from_vec([ba, m, n], out)
}

/// Batched `A @ B^T`: `[batch, m, k] @ [batch, n, k]^T -> [batch, m, n]`.
pub fn bmm_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "bmm_bt lhs must be rank 3");
    assert_eq!(b.rank(), 3, "bmm_bt rhs must be rank 3");
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, n, k2) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "bmm_bt batch mismatch");
    assert_eq!(k, k2, "bmm_bt inner-dimension mismatch");
    let mut out = crate::pool::take_zeroed(ba * m * n);
    for_each_batch(ba, m * n, m * k * n, &mut out, |t, c_t| {
        gemm_mat_auto(
            Mat::row_major(&a.data()[t * m * k..(t + 1) * m * k], k),
            Mat::transposed(&b.data()[t * n * k..(t + 1) * n * k], k),
            c_t,
            m,
            k,
            n,
        );
    });
    Tensor::from_vec([ba, m, n], out)
}

/// Batched `A^T @ B`: `[batch, k, m]^T @ [batch, k, n] -> [batch, m, n]`.
pub fn bmm_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "bmm_at lhs must be rank 3");
    assert_eq!(b.rank(), 3, "bmm_at rhs must be rank 3");
    let (ba, k, m) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "bmm_at batch mismatch");
    assert_eq!(k, k2, "bmm_at inner-dimension mismatch");
    let mut out = crate::pool::take_zeroed(ba * m * n);
    for_each_batch(ba, m * n, m * k * n, &mut out, |t, c_t| {
        gemm_mat_auto(
            Mat::transposed(&a.data()[t * k * m..(t + 1) * k * m], m),
            Mat::row_major(&b.data()[t * k * n..(t + 1) * k * n], n),
            c_t,
            m,
            k,
            n,
        );
    });
    Tensor::from_vec([ba, m, n], out)
}

/// FLOPs of a dense `(m, k) @ (k, n)` multiply (multiply-add counted as 2).
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn rand_t(dims: [usize; 2], seed: u64) -> Tensor {
        // tiny deterministic LCG; avoids pulling rand into the kernel tests
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let n = dims[0] * dims[1];
        let data = (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect();
        Tensor::from_vec(dims, data)
    }

    #[test]
    fn small_matmul_exact() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn blocked_matches_naive_across_sizes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (5, 7, 3),
            (48, 48, 48),
            (65, 130, 49),
            (100, 3, 100),
        ] {
            let a = rand_t([m, k], (m * 31 + k) as u64);
            let b = rand_t([k, n], (k * 17 + n) as u64);
            let got = matmul(&a, &b);
            let want = naive(&a, &b);
            assert!(
                got.allclose(&want, 1e-3),
                "mismatch at ({m},{k},{n}): {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn packed_matches_reference_kernels() {
        for &(m, k, n) in &[(5, 7, 3), (48, 48, 48), (65, 130, 49), (100, 3, 100)] {
            let a = rand_t([m, k], (m * 3 + k) as u64);
            let b = rand_t([k, n], (k * 5 + n) as u64);
            let mut packed = vec![0.0f32; m * n];
            gemm(a.data(), b.data(), &mut packed, m, k, n);
            let mut ikj = vec![0.0f32; m * n];
            gemm_ref_ikj(a.data(), b.data(), &mut ikj, m, k, n);
            let mut blocked = vec![0.0f32; m * n];
            gemm_ref_blocked(a.data(), b.data(), &mut blocked, m, k, n);
            let tol = 1e-4 * k as f32;
            for j in 0..m * n {
                assert!((packed[j] - ikj[j]).abs() <= tol, "vs ikj at ({m},{k},{n})");
                assert!(
                    (packed[j] - blocked[j]).abs() <= tol,
                    "vs blocked at ({m},{k},{n})"
                );
            }
        }
    }

    #[test]
    fn matmul_nd_collapses_batch() {
        let a = rand_t([6, 4], 1).reshaped([2, 3, 4]);
        let b = rand_t([4, 5], 2);
        let c = matmul_nd(&a, &b);
        assert_eq!(c.dims(), &[2, 3, 5]);
        let flat = matmul(&a.reshape([6, 4]), &b);
        assert_eq!(c.data(), flat.data());
    }

    #[test]
    fn bt_and_at_match_explicit_transpose() {
        let a = rand_t([7, 5], 3);
        let b = rand_t([9, 5], 4);
        assert!(matmul_bt(&a, &b).allclose(&matmul(&a, &b.transpose()), 1e-4));
        let a2 = rand_t([5, 7], 5);
        let b2 = rand_t([5, 9], 6);
        assert!(matmul_at(&a2, &b2).allclose(&matmul(&a2.transpose(), &b2), 1e-4));
    }

    #[test]
    fn bmm_per_batch() {
        let a = rand_t([6, 4], 7).reshaped([2, 3, 4]);
        let b = rand_t([8, 5], 8).reshaped([2, 4, 5]);
        let c = bmm(&a, &b);
        for t in 0..2 {
            let at = a.narrow(0, t, 1).reshaped([3, 4]);
            let bt = b.narrow(0, t, 1).reshaped([4, 5]);
            let ct = c.narrow(0, t, 1).reshaped([3, 5]);
            assert!(ct.allclose(&matmul(&at, &bt), 1e-4));
        }
    }

    #[test]
    fn bmm_bt_matches_explicit() {
        let a = rand_t([6, 4], 11).reshaped([2, 3, 4]);
        let b = rand_t([10, 4], 12).reshaped([2, 5, 4]);
        let c = bmm_bt(&a, &b);
        let want = bmm(&a, &b.permute(&[0, 2, 1]));
        assert!(c.allclose(&want, 1e-4));
    }

    #[test]
    fn bmm_at_matches_explicit() {
        let a = rand_t([8, 3], 13).reshaped([2, 4, 3]);
        let b = rand_t([8, 5], 14).reshaped([2, 4, 5]);
        let c = bmm_at(&a, &b);
        let want = bmm(&a.permute(&[0, 2, 1]), &b);
        assert!(c.allclose(&want, 1e-4));
    }

    #[test]
    fn gemm_accumulates() {
        let a = Tensor::ones([2, 2]);
        let b = Tensor::ones([2, 2]);
        let mut c = vec![1.0f32; 4];
        gemm(a.data(), b.data(), &mut c, 2, 2, 2);
        assert_eq!(c, vec![3.0; 4]); // 1 (existing) + 2 (dot of ones)
    }

    #[test]
    fn flops_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
    }

    #[test]
    #[should_panic(expected = "inner-dimension mismatch")]
    fn shape_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
