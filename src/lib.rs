//! Umbrella crate re-exporting the Colossal-AI reproduction workspace.
pub use colossalai_autograd as autograd;
pub use colossalai_comm as comm;
pub use colossalai_core as core;
pub use colossalai_memory as memory;
pub use colossalai_models as models;
pub use colossalai_parallel as parallel;
pub use colossalai_tensor as tensor;
pub use colossalai_topology as topology;
