//! Sequence parallelism demo: Ring Self-Attention on a sequence split
//! across 4 simulated GPUs (Section 2.3 / Figs 12-13), checked against
//! serial attention, plus the memory-capacity comparison that motivates it.
//!
//! Run with: `cargo run --release --example bert_sequence_parallel`

use colossalai::comm::World;
use colossalai::models::TransformerConfig;
use colossalai::parallel::memcalc::{max_batch, max_seq, seq_mode_admits, SeqMode};
use colossalai::parallel::sequence::{split_sequence, RingSelfAttention};
use colossalai::tensor::{init, Tensor};
use colossalai::topology::systems::system_iii;
use colossalai_autograd::{Layer, Linear, MultiHeadAttention};

fn main() {
    let (b, s, d, heads, p) = (2usize, 16usize, 8usize, 2usize, 4usize);

    // shared global weights
    let mut rng = init::rng(55);
    let mk = |rng: &mut init::InitRng| {
        (
            init::lecun_normal(d, d, rng),
            init::uniform([d], -0.1, 0.1, rng),
        )
    };
    let wq = mk(&mut rng);
    let wk = mk(&mut rng);
    let wv = mk(&mut rng);
    let wo = mk(&mut rng);
    let x = init::uniform([b, s, d], -1.0, 1.0, &mut rng);

    // serial reference
    let mut serial = MultiHeadAttention::from_parts(
        Linear::from_parts("q", wq.0.clone(), Some(wq.1.clone())),
        Linear::from_parts("k", wk.0.clone(), Some(wk.1.clone())),
        Linear::from_parts("v", wv.0.clone(), Some(wv.1.clone())),
        Linear::from_parts("o", wo.0.clone(), Some(wo.1.clone())),
        heads,
        false,
    );
    let y_want = serial.forward(&x);

    // ring self-attention: each rank owns s/p = 4 positions
    let world = World::new(system_iii());
    let results = world.run_on(p, |ctx| {
        let g = ctx.world_group(p);
        let mut rsa = RingSelfAttention::from_global(
            ctx,
            &g,
            "rsa",
            heads,
            (&wq.0, &wq.1),
            (&wk.0, &wk.1),
            (&wv.0, &wv.1),
            (&wo.0, &wo.1),
        );
        let x_local = split_sequence(&x, p, g.rank());
        rsa.forward(&x_local)
    });
    let y_got = Tensor::cat(&results, 1);
    let diff = y_got.max_abs_diff(&y_want);
    println!("ring self-attention vs serial attention: max |diff| = {diff:.2e}");
    assert!(diff < 1e-4);

    // the capacity story of Fig 12 at paper scale (analytic)
    let cfg = TransformerConfig::bert_base();
    let capacity = system_iii().gpu(0).memory_bytes;
    println!("\nBERT-Base capacity on System III (A100-40GB), analytic:");
    println!(
        "{:>6} {:>14} {:>14}",
        "#GPUs", "maxbatch 1D-TP", "maxbatch SeqPar"
    );
    for gpus in [4usize, 8, 12] {
        let tp = if seq_mode_admits(SeqMode::TensorParallel1d, &cfg, gpus) {
            max_batch(SeqMode::TensorParallel1d, &cfg, 512, gpus, capacity).to_string()
        } else {
            "n/a".into()
        };
        let sp = max_batch(SeqMode::SequenceParallel, &cfg, 512, gpus, capacity);
        println!("{gpus:>6} {tp:>14} {sp:>14}");
    }
    let s_tp = max_seq(SeqMode::TensorParallel1d, &cfg, 64, 4, capacity);
    let s_sp = max_seq(SeqMode::SequenceParallel, &cfg, 64, 4, capacity);
    println!("\nmax sequence length at batch 64 on 4 GPUs: 1D-TP {s_tp} vs SeqPar {s_sp}");
    println!("sequence parallelism extends both limits — OK");
}
