//! Layer normalization.

use crate::layer::Layer;
use crate::param::Param;
use colossalai_tensor::{ops, Tensor};

/// Layer normalization over the last dimension with learned scale and shift.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    cache: Option<(Tensor, Vec<f32>, Vec<f32>)>,
}

impl LayerNorm {
    /// Standard initialization: gamma = 1, beta = 0.
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones([dim])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros([dim])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.gamma.numel()
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (y, means, inv_stds) =
            ops::layernorm_fused(x, self.gamma.value(), self.beta.value(), self.eps);
        self.cache = Some((x.clone(), means, inv_stds));
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x, means, inv_stds) = self.cache.take().expect("backward before forward");
        let (dx, dgamma, dbeta) =
            ops::layernorm_backward(&x, dy, self.gamma.value(), &means, &inv_stds);
        self.gamma.accumulate_grad(&dgamma);
        self.beta.accumulate_grad(&dbeta);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::grad_check;
    use colossalai_tensor::init;

    #[test]
    fn normalizes_rows() {
        let mut ln = LayerNorm::new("ln", 8);
        let mut rng = init::rng(13);
        let x = init::uniform([4, 8], -3.0, 3.0, &mut rng);
        let y = ln.forward(&x);
        for row in y.data().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn grad_check_layernorm() {
        let mut ln = LayerNorm::new("ln", 5);
        let mut rng = init::rng(14);
        let x = init::uniform([3, 5], -1.0, 1.0, &mut rng);
        grad_check(&mut ln, &x, 1e-2, 5e-2).unwrap();
    }

    #[test]
    fn param_count() {
        assert_eq!(LayerNorm::new("ln", 16).n_params(), 32);
    }
}
