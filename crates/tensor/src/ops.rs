//! Neural-network math kernels: activations, normalization, reductions.
//!
//! Hot paths come in two forms: the original *composed* ops (allocate a
//! fresh output per step) and *fused / in-place* variants that reuse the
//! caller's uniquely-owned buffer or draw one pooled buffer for an entire
//! 2–4-op chain. The fused variants are bitwise-identical to the composed
//! ones — same per-element arithmetic in the same order — so swapping them
//! in never perturbs the serial-equivalence contract; `tests/fused_props.rs`
//! property-tests that identity.

use crate::pool;
use crate::tensor::Tensor;

/// Numerically stable softmax over the last dimension.
pub fn softmax(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    softmax_inplace(&mut out);
    out
}

/// In-place softmax over the last dimension. On a uniquely-owned tensor
/// (e.g. attention scores just produced by `bmm_bt`) this allocates
/// nothing; [`softmax`] is exactly this after a copy-on-write clone, so the
/// two are bitwise-identical.
pub fn softmax_inplace(x: &mut Tensor) {
    assert!(x.rank() >= 1, "softmax requires rank >= 1");
    let n = *x.dims().last().unwrap();
    let numel = x.numel();
    if crate::par::par_eligible(numel) && n > 0 && numel > n {
        // rows are independent: chunking on row boundaries runs the exact
        // serial per-row arithmetic on each executor
        crate::par::par_chunks_unit(x.data_mut(), n, crate::par::MIN_CHUNK, |_, rows| {
            softmax_rows(rows, n);
        });
        return;
    }
    softmax_rows(x.data_mut(), n);
}

fn softmax_rows(data: &mut [f32], n: usize) {
    for row in data.chunks_mut(n) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Backward of softmax: given `y = softmax(x)` and upstream `dy`, returns
/// `dx = y * (dy - sum(dy * y))` row-wise.
pub fn softmax_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    let mut out = dy.clone();
    softmax_backward_inplace(y, &mut out);
    out
}

/// In-place backward of softmax: overwrites `dy` with `dx`. Allocation-free
/// when `dy` is uniquely owned; bitwise-identical to [`softmax_backward`].
pub fn softmax_backward_inplace(y: &Tensor, dy: &mut Tensor) {
    assert_eq!(y.shape(), dy.shape(), "softmax_backward shape mismatch");
    let n = *y.dims().last().unwrap();
    for (dy_row, y_row) in dy.data_mut().chunks_mut(n).zip(y.data().chunks(n)) {
        let s: f32 = dy_row.iter().zip(y_row.iter()).map(|(&d, &v)| d * v).sum();
        for (d, &v) in dy_row.iter_mut().zip(y_row.iter()) {
            *d = v * (*d - s);
        }
    }
}

/// The tanh-approximated GELU used by BERT/GPT/ViT.
///
/// Fast-mode gating note (applies to every fused/composed pair in this
/// module): the composed form dispatches on the *same*
/// [`crate::kernel::fast_mode`] flag as its fused counterpart, so the
/// "fused is bitwise-identical to composed" contract of
/// `tests/fused_props.rs` holds within each mode — only *across* modes do
/// results differ (by the documented ULP budgets, DESIGN.md §13).
pub fn gelu(x: &Tensor) -> Tensor {
    if crate::kernel::fast_mode() {
        x.map(gelu_scalar_fma)
    } else {
        x.map(gelu_scalar)
    }
}

#[inline]
fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// FMA form of [`gelu_scalar`]: the cubic and the final blend each fuse one
/// multiply-add. `f32::mul_add` is correctly rounded whether it lowers to a
/// `vfmadd` (inside the `target_feature` row sweeps) or to libm `fmaf`
/// (composed `map` path), so every fast-mode call site produces identical
/// bits.
#[inline]
fn gelu_scalar_fma(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * 0.044_715f32.mul_add(x * x * x, x);
    let half_x = 0.5 * x;
    half_x.mul_add(inner.tanh(), half_x) // 0.5x*(1+t) = 0.5x*t + 0.5x
}

#[inline]
fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044_715 * x * x * x);
    let t = inner.tanh();
    let dinner = C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

/// FMA form of [`gelu_grad_scalar`], same fusion points as
/// [`gelu_scalar_fma`].
#[inline]
fn gelu_grad_scalar_fma(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * 0.044_715f32.mul_add(x * x * x, x);
    let t = inner.tanh();
    let dinner = C * (3.0 * 0.044_715f32).mul_add(x * x, 1.0);
    (0.5 * x * (1.0 - t * t)).mul_add(dinner, 0.5 * (1.0 + t))
}

#[inline]
fn gelu_grad_dispatch(fast: bool, x: f32) -> f32 {
    if fast {
        gelu_grad_scalar_fma(x)
    } else {
        gelu_grad_scalar(x)
    }
}

/// Derivative of the tanh-approximated GELU.
pub fn gelu_grad(x: &Tensor) -> Tensor {
    let fast = crate::kernel::fast_mode();
    x.map(move |v| gelu_grad_dispatch(fast, v))
}

/// Fused GELU backward: `dx = gelu'(x) * dy` in one pooled buffer instead
/// of the composed `gelu_grad(x).zip(dy, ..)` pair of allocations. Both
/// paths compute `gelu_grad(x) * dy` per element with the same mode
/// dispatch, so they are bitwise-identical.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    let fast = crate::kernel::fast_mode();
    x.zip(dy, move |x, d| gelu_grad_dispatch(fast, x) * d)
}

/// Fused bias-add + GELU: returns `(h, y)` where `h = x + bias` (row-wise)
/// and `y = gelu(h)` — the forward of a `Linear`+`Gelu` pair, which needs
/// `h` cached for the backward pass. Consumes `x` so a uniquely-owned GEMM
/// output is updated in place; one pooled buffer for `y` replaces the
/// composed chain's two fresh allocations (`add_bias` clone + `gelu` map).
pub fn add_bias_gelu(mut x: Tensor, bias: &Tensor) -> (Tensor, Tensor) {
    assert_eq!(bias.rank(), 1, "bias must be rank 1");
    let n = bias.numel();
    assert_eq!(
        *x.dims().last().expect("add_bias_gelu on scalar"),
        n,
        "bias length mismatch"
    );
    let numel = x.numel();
    let fast = crate::kernel::fast_mode();
    if crate::par::par_eligible(numel) && n > 0 {
        let rows = numel / n;
        let min_rows = crate::par::MIN_CHUNK.div_ceil(n).max(1);
        let (chunks, per) = crate::par::partition(rows, crate::kernel_threads(), min_rows);
        if chunks > 1 {
            // pre-sized output + lockstep (x, y) row-chunk pairs; each row
            // runs the identical serial arithmetic (indexed stores instead
            // of push produce the same bits)
            let mut y = pool::take_zeroed(numel);
            {
                let b = bias.data();
                let mut items: Vec<(&mut [f32], &mut [f32])> = Vec::with_capacity(chunks);
                let mut xr = x.data_mut();
                let mut yr = y.as_mut_slice();
                while !xr.is_empty() {
                    let take = (per * n).min(xr.len());
                    let (xh, xt) = xr.split_at_mut(take);
                    let (yh, yt) = yr.split_at_mut(take);
                    items.push((xh, yh));
                    xr = xt;
                    yr = yt;
                }
                crate::par::par_items(items, |_, (xc, yc)| {
                    run_add_bias_gelu_rows(fast, xc, yc, b, n)
                });
            }
            let y = Tensor::from_vec(x.shape().clone(), y);
            return (x, y);
        }
    }
    let mut y = pool::take_zeroed(numel);
    run_add_bias_gelu_rows(fast, x.data_mut(), &mut y, bias.data(), n);
    let y = Tensor::from_vec(x.shape().clone(), y);
    (x, y)
}

#[inline(always)]
fn add_bias_gelu_rows<const FMA: bool>(x: &mut [f32], y: &mut [f32], b: &[f32], n: usize) {
    for (row, y_row) in x.chunks_mut(n).zip(y.chunks_mut(n)) {
        for ((h, yv), &bv) in row.iter_mut().zip(y_row.iter_mut()).zip(b.iter()) {
            *h += bv;
            *yv = if FMA {
                gelu_scalar_fma(*h)
            } else {
                gelu_scalar(*h)
            };
        }
    }
}

/// Recompiles the fast row sweep with hardware FMA so `mul_add` is a single
/// instruction rather than a libm call (`tanh` still dominates, but the
/// polynomial around it fuses for free).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn add_bias_gelu_rows_fma(x: &mut [f32], y: &mut [f32], b: &[f32], n: usize) {
    add_bias_gelu_rows::<true>(x, y, b, n);
}

fn run_add_bias_gelu_rows(fast: bool, x: &mut [f32], y: &mut [f32], b: &[f32], n: usize) {
    if fast {
        #[cfg(target_arch = "x86_64")]
        if crate::kernel::fma_available() {
            // SAFETY: fma_available() checked avx2+fma support.
            return unsafe { add_bias_gelu_rows_fma(x, y, b, n) };
        }
        return add_bias_gelu_rows::<true>(x, y, b, n);
    }
    add_bias_gelu_rows::<false>(x, y, b, n);
}

/// Backward of [`add_bias_gelu`] with respect to its pre-activation `h`:
/// `dh = gelu'(h) * dy` (the bias gradient is `sum_axis(dh, 0)` as usual).
pub fn add_bias_gelu_backward(h: &Tensor, dy: &Tensor) -> Tensor {
    gelu_backward(h, dy)
}

/// Rectified linear unit.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// ReLU gradient mask (1 where the input was positive).
pub fn relu_grad(x: &Tensor) -> Tensor {
    x.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Layer normalization over the last dimension with affine parameters.
///
/// Returns `(y, mean, inv_std)`; the statistics are cached for the backward
/// pass.
pub fn layernorm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let n = *x.dims().last().expect("layernorm on scalar");
    assert_eq!(gamma.numel(), n, "gamma length mismatch");
    assert_eq!(beta.numel(), n, "beta length mismatch");
    let rows = x.numel() / n;
    let fast = crate::kernel::fast_mode();
    let mut out = x.clone();
    let mut means = Vec::with_capacity(rows);
    let mut inv_stds = Vec::with_capacity(rows);
    for row in out.data_mut().chunks_mut(n) {
        let (mean, inv_std) = if fast {
            ln_stats::<true>(row, eps, n)
        } else {
            ln_stats::<false>(row, eps, n)
        };
        for (v, (&g, &b)) in row
            .iter_mut()
            .zip(gamma.data().iter().zip(beta.data().iter()))
        {
            *v = if fast {
                ln_elem::<true>(*v, mean, inv_std, g, b)
            } else {
                ln_elem::<false>(*v, mean, inv_std, g, b)
            };
        }
        means.push(mean);
        inv_stds.push(inv_std);
    }
    (out, means, inv_stds)
}

/// Per-row layernorm statistics: two-pass mean/variance (a one-pass
/// sum-of-squares would change rounding), returning `(mean, inv_std)`. The
/// fast instantiation fuses each squared-deviation accumulation; every
/// layernorm entry point routes through this so the composed/fused pair
/// stays bitwise-identical within a mode.
#[inline(always)]
fn ln_stats<const FMA: bool>(row: &[f32], eps: f32, n: usize) -> (f32, f32) {
    let mean = row.iter().sum::<f32>() / n as f32;
    let var = if FMA {
        row.iter()
            .fold(0.0f32, |acc, &v| (v - mean).mul_add(v - mean, acc))
            / n as f32
    } else {
        row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32
    };
    (mean, 1.0 / (var + eps).sqrt())
}

/// One normalized element; the fast form fuses the affine step.
#[inline(always)]
fn ln_elem<const FMA: bool>(v: f32, mean: f32, inv_std: f32, g: f32, b: f32) -> f32 {
    if FMA {
        ((v - mean) * inv_std).mul_add(g, b)
    } else {
        (v - mean) * inv_std * g + b
    }
}

/// Fused layer normalization: identical statistics and normalization
/// arithmetic to [`layernorm`] (two-pass mean/variance per row — a one-pass
/// sum-of-squares would change rounding and break bitwise equivalence), but
/// the output is written into one pooled buffer instead of copy-on-write
/// cloning `x` only to overwrite every element.
pub fn layernorm_fused(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let n = *x.dims().last().expect("layernorm on scalar");
    assert_eq!(gamma.numel(), n, "gamma length mismatch");
    assert_eq!(beta.numel(), n, "beta length mismatch");
    let rows = x.numel() / n;
    let fast = crate::kernel::fast_mode();
    if crate::par::par_eligible(x.numel()) && n > 0 && rows > 1 {
        let min_rows = crate::par::MIN_CHUNK.div_ceil(n).max(1);
        let (chunks, per) = crate::par::partition(rows, crate::kernel_threads(), min_rows);
        if chunks > 1 {
            // pre-sized out/means/inv_stds split in lockstep on the same
            // deterministic row boundaries; per-row arithmetic is the exact
            // serial body (indexed stores instead of push)
            let mut out = pool::take_zeroed(x.numel());
            let mut means = vec![0.0f32; rows];
            let mut inv_stds = vec![0.0f32; rows];
            {
                let xs = x.data();
                let (g, bt) = (gamma.data(), beta.data());
                type LnItem<'a> = (usize, &'a mut [f32], &'a mut [f32], &'a mut [f32]);
                let mut items: Vec<LnItem> = Vec::with_capacity(chunks);
                let mut xo = 0usize;
                let mut or = out.as_mut_slice();
                let mut mr = means.as_mut_slice();
                let mut ir = inv_stds.as_mut_slice();
                while !mr.is_empty() {
                    let rtake = per.min(mr.len());
                    let (oh, ot) = or.split_at_mut(rtake * n);
                    let (mh, mt) = mr.split_at_mut(rtake);
                    let (ih, it) = ir.split_at_mut(rtake);
                    items.push((xo, oh, mh, ih));
                    or = ot;
                    mr = mt;
                    ir = it;
                    xo += rtake * n;
                }
                crate::par::par_items(items, |_, (xo, oc, mc, ic)| {
                    run_layernorm_rows(fast, &xs[xo..xo + oc.len()], oc, mc, ic, g, bt, eps, n);
                });
            }
            return (Tensor::from_vec(x.shape().clone(), out), means, inv_stds);
        }
    }
    let mut out = pool::take_zeroed(x.numel());
    let mut means = vec![0.0f32; rows];
    let mut inv_stds = vec![0.0f32; rows];
    run_layernorm_rows(
        fast,
        x.data(),
        &mut out,
        &mut means,
        &mut inv_stds,
        gamma.data(),
        beta.data(),
        eps,
        n,
    );
    (Tensor::from_vec(x.shape().clone(), out), means, inv_stds)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal lockstep row sweep
fn layernorm_rows<const FMA: bool>(
    x: &[f32],
    out: &mut [f32],
    means: &mut [f32],
    inv_stds: &mut [f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    n: usize,
) {
    for (((row, o_row), m_slot), i_slot) in x
        .chunks(n)
        .zip(out.chunks_mut(n))
        .zip(means.iter_mut())
        .zip(inv_stds.iter_mut())
    {
        let (mean, inv_std) = ln_stats::<FMA>(row, eps, n);
        for ((&v, o), (&g, &b)) in row
            .iter()
            .zip(o_row.iter_mut())
            .zip(gamma.iter().zip(beta.iter()))
        {
            *o = ln_elem::<FMA>(v, mean, inv_std, g, b);
        }
        *m_slot = mean;
        *i_slot = inv_std;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn layernorm_rows_fma(
    x: &[f32],
    out: &mut [f32],
    means: &mut [f32],
    inv_stds: &mut [f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    n: usize,
) {
    layernorm_rows::<true>(x, out, means, inv_stds, gamma, beta, eps, n);
}

#[allow(clippy::too_many_arguments)]
fn run_layernorm_rows(
    fast: bool,
    x: &[f32],
    out: &mut [f32],
    means: &mut [f32],
    inv_stds: &mut [f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    n: usize,
) {
    if fast {
        #[cfg(target_arch = "x86_64")]
        if crate::kernel::fma_available() {
            // SAFETY: fma_available() checked avx2+fma support.
            return unsafe { layernorm_rows_fma(x, out, means, inv_stds, gamma, beta, eps, n) };
        }
        return layernorm_rows::<true>(x, out, means, inv_stds, gamma, beta, eps, n);
    }
    layernorm_rows::<false>(x, out, means, inv_stds, gamma, beta, eps, n);
}

/// Backward of [`layernorm`]. Returns `(dx, dgamma, dbeta)`.
pub fn layernorm_backward(
    x: &Tensor,
    dy: &Tensor,
    gamma: &Tensor,
    means: &[f32],
    inv_stds: &[f32],
) -> (Tensor, Tensor, Tensor) {
    let n = *x.dims().last().unwrap();
    let rows = x.numel() / n;
    assert_eq!(means.len(), rows);
    assert_eq!(inv_stds.len(), rows);
    let mut dx = Tensor::zeros(x.shape().clone());
    let mut dgamma = Tensor::zeros([n]);
    let mut dbeta = Tensor::zeros([n]);
    for r in 0..rows {
        let x_row = &x.data()[r * n..(r + 1) * n];
        let dy_row = &dy.data()[r * n..(r + 1) * n];
        let mean = means[r];
        let inv_std = inv_stds[r];
        // xhat_i = (x_i - mean) * inv_std
        let mut sum_dy_g = 0.0f32;
        let mut sum_dy_g_xhat = 0.0f32;
        for i in 0..n {
            let xhat = (x_row[i] - mean) * inv_std;
            let dyg = dy_row[i] * gamma.data()[i];
            sum_dy_g += dyg;
            sum_dy_g_xhat += dyg * xhat;
            dgamma.data_mut()[i] += dy_row[i] * xhat;
            dbeta.data_mut()[i] += dy_row[i];
        }
        let dx_row = &mut dx.data_mut()[r * n..(r + 1) * n];
        for i in 0..n {
            let xhat = (x_row[i] - mean) * inv_std;
            let dyg = dy_row[i] * gamma.data()[i];
            dx_row[i] = inv_std * (dyg - sum_dy_g / n as f32 - xhat * sum_dy_g_xhat / n as f32);
        }
    }
    (dx, dgamma, dbeta)
}

/// Sum along an axis, removing it: `[.., d, ..] -> [.., ..]` as rank-1 less.
pub fn sum_axis(x: &Tensor, axis: usize) -> Tensor {
    assert!(axis < x.rank(), "sum_axis out of range");
    let extent = x.dims()[axis];
    let outer: usize = x.dims()[..axis].iter().product();
    let inner: usize = x.dims()[axis + 1..].iter().product();
    let mut out = pool::take_zeroed(outer * inner);
    for o in 0..outer {
        for e in 0..extent {
            let base = o * extent * inner + e * inner;
            let dst = &mut out[o * inner..(o + 1) * inner];
            for (d, &s) in dst.iter_mut().zip(&x.data()[base..base + inner]) {
                *d += s;
            }
        }
    }
    let dims: Vec<usize> = x
        .dims()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != axis)
        .map(|(_, &d)| d)
        .collect();
    Tensor::from_vec(dims, out)
}

/// Fused bias-gradient accumulation: `out += column sums of x` for a
/// `[rows, n]` matrix, without the temporary that `sum_axis(x, 0)` +
/// `Tensor::axpy` would allocate. Each column's ascending-row sum is fully
/// reduced in a register and added to `out` exactly once — the same
/// summation sequence `sum_axis` performs into a zeroed buffer — so the
/// result is bitwise-identical to the composed pair.
pub fn sum_axis0_acc(x: &Tensor, out: &mut Tensor) {
    assert_eq!(x.rank(), 2, "sum_axis0_acc expects a matrix");
    let (rows, n) = (x.dims()[0], x.dims()[1]);
    assert_eq!(out.dims(), &[n][..], "sum_axis0_acc output shape mismatch");
    let src = x.data();
    for (j, o) in out.data_mut().iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for r in 0..rows {
            acc += src[r * n + j];
        }
        *o += acc;
    }
}

/// Mean along an axis, removing it.
pub fn mean_axis(x: &Tensor, axis: usize) -> Tensor {
    let extent = x.dims()[axis];
    let mut out = sum_axis(x, axis);
    out.scale(1.0 / extent.max(1) as f32);
    out
}

/// Maximum along an axis, removing it.
pub fn max_axis(x: &Tensor, axis: usize) -> Tensor {
    assert!(axis < x.rank(), "max_axis out of range");
    let extent = x.dims()[axis];
    assert!(extent > 0, "max_axis over empty extent");
    let outer: usize = x.dims()[..axis].iter().product();
    let inner: usize = x.dims()[axis + 1..].iter().product();
    let mut out = pool::take_buffer(outer * inner);
    out.resize(outer * inner, f32::NEG_INFINITY);
    for o in 0..outer {
        for e in 0..extent {
            let base = o * extent * inner + e * inner;
            let dst = &mut out[o * inner..(o + 1) * inner];
            for (d, &s) in dst.iter_mut().zip(&x.data()[base..base + inner]) {
                *d = d.max(s);
            }
        }
    }
    let dims: Vec<usize> = x
        .dims()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != axis)
        .map(|(_, &d)| d)
        .collect();
    Tensor::from_vec(dims, out)
}

/// Population variance along an axis, removing it.
pub fn var_axis(x: &Tensor, axis: usize) -> Tensor {
    let extent = x.dims()[axis] as f32;
    let mean = mean_axis(x, axis);
    let sq = sum_axis(&x.map(|v| v * v), axis);
    sq.zip(&mean, move |s, m| s / extent - m * m)
}

/// Index of the maximum element in each row of the last dimension.
pub fn argmax_rows(x: &Tensor) -> Vec<usize> {
    let n = *x.dims().last().expect("argmax on scalar");
    x.data()
        .chunks(n)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        })
        .collect()
}

/// Mean softmax cross-entropy between logits `[rows, classes]` and integer
/// targets. Returns `(loss, dlogits)` where `dlogits` is already the mean
/// gradient (`(softmax - onehot) / rows`).
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let classes = *logits.dims().last().expect("cross_entropy on scalar");
    let rows = logits.numel() / classes;
    assert_eq!(targets.len(), rows, "target count mismatch");
    let probs = softmax(logits);
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < classes, "target {t} out of range");
        let p = probs.data()[r * classes + t].max(1e-12);
        loss -= (p as f64).ln();
        grad.data_mut()[r * classes + t] -= 1.0;
    }
    grad.scale(1.0 / rows as f32);
    ((loss / rows as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec([2, 3], vec![1., 2., 3., 1000., 1000., 1000.]);
        let y = softmax(&x);
        for row in y.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // stable under huge inputs
        assert!((y.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_backward_matches_fd() {
        let x = Tensor::from_vec([1, 4], vec![0.3, -0.7, 1.2, 0.05]);
        let y = softmax(&x);
        let dy = Tensor::from_vec([1, 4], vec![0.1, 0.4, -0.2, 0.9]);
        let dx = softmax_backward(&y, &dy);
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp: f32 = softmax(&xp)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let fm: f32 = softmax(&xm)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (dx.data()[i] - fd).abs() < 1e-3,
                "i={i}: {} vs {}",
                dx.data()[i],
                fd
            );
        }
    }

    #[test]
    fn gelu_reference_points() {
        // values from the tanh approximation used by BERT
        let x = Tensor::from_vec([3], vec![0.0, 1.0, -1.0]);
        let y = gelu(&x);
        assert!((y.data()[0]).abs() < 1e-6);
        assert!((y.data()[1] - 0.841192).abs() < 1e-4);
        assert!((y.data()[2] + 0.158808).abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_fd() {
        let x = Tensor::from_vec([5], vec![-2.0, -0.5, 0.0, 0.5, 2.0]);
        let g = gelu_grad(&x);
        let eps = 1e-3;
        for i in 0..5 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (gelu(&xp).data()[i] - gelu(&xm).data()[i]) / (2.0 * eps);
            assert!((g.data()[i] - fd).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let x = Tensor::from_vec([2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]);
        let gamma = Tensor::ones([4]);
        let beta = Tensor::zeros([4]);
        let (y, _, _) = layernorm(&x, &gamma, &beta, 1e-5);
        for row in y.data().chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_backward_matches_fd() {
        let x = Tensor::from_vec([2, 3], vec![0.5, -1.0, 2.0, 0.1, 0.2, -0.4]);
        let gamma = Tensor::from_vec([3], vec![1.2, 0.8, 1.0]);
        let beta = Tensor::from_vec([3], vec![0.1, -0.2, 0.0]);
        let dy = Tensor::from_vec([2, 3], vec![1.0, -0.5, 0.25, 0.7, 0.3, -0.9]);
        let (y0, means, inv_stds) = layernorm(&x, &gamma, &beta, 1e-5);
        let _ = y0;
        let (dx, dgamma, dbeta) = layernorm_backward(&x, &dy, &gamma, &means, &inv_stds);
        let eps = 1e-3;
        let f = |x: &Tensor, g: &Tensor, b: &Tensor| -> f32 {
            let (y, _, _) = layernorm(x, g, b, 1e-5);
            y.data().iter().zip(dy.data()).map(|(a, d)| a * d).sum()
        };
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (f(&xp, &gamma, &beta) - f(&xm, &gamma, &beta)) / (2.0 * eps);
            assert!(
                (dx.data()[i] - fd).abs() < 2e-2,
                "dx[{i}] {} vs fd {}",
                dx.data()[i],
                fd
            );
        }
        for i in 0..3 {
            let mut gp = gamma.clone();
            gp.data_mut()[i] += eps;
            let mut gm = gamma.clone();
            gm.data_mut()[i] -= eps;
            let fd = (f(&x, &gp, &beta) - f(&x, &gm, &beta)) / (2.0 * eps);
            assert!((dgamma.data()[i] - fd).abs() < 1e-2);
            let mut bp = beta.clone();
            bp.data_mut()[i] += eps;
            let mut bm = beta.clone();
            bm.data_mut()[i] -= eps;
            let fd = (f(&x, &gamma, &bp) - f(&x, &gamma, &bm)) / (2.0 * eps);
            assert!((dbeta.data()[i] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn sum_axis_all_axes() {
        let x = Tensor::arange(24).reshaped([2, 3, 4]);
        let s0 = sum_axis(&x, 0);
        assert_eq!(s0.dims(), &[3, 4]);
        assert_eq!(s0.at(&[0, 0]), x.at(&[0, 0, 0]) + x.at(&[1, 0, 0]));
        let s1 = sum_axis(&x, 1);
        assert_eq!(s1.dims(), &[2, 4]);
        assert_eq!(
            s1.at(&[1, 3]),
            x.at(&[1, 0, 3]) + x.at(&[1, 1, 3]) + x.at(&[1, 2, 3])
        );
        let s2 = sum_axis(&x, 2);
        assert_eq!(s2.dims(), &[2, 3]);
        assert_eq!(s2.at(&[0, 1]), (4..8).map(|i| i as f32).sum::<f32>());
    }

    #[test]
    fn mean_max_var_axis() {
        let x = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(mean_axis(&x, 1).data(), &[2.0, 5.0]);
        assert_eq!(mean_axis(&x, 0).data(), &[2.5, 3.5, 4.5]);
        assert_eq!(max_axis(&x, 1).data(), &[3.0, 6.0]);
        assert_eq!(max_axis(&x, 0).data(), &[4.0, 5.0, 6.0]);
        let v = var_axis(&x, 1);
        // var of [1,2,3] = 2/3
        assert!((v.data()[0] - 2.0 / 3.0).abs() < 1e-5);
        assert!((v.data()[1] - 2.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn axis_ops_consistent_with_layernorm_stats() {
        let x = Tensor::from_vec([1, 4], vec![2.0, 4.0, 4.0, 6.0]);
        let gamma = Tensor::ones([4]);
        let beta = Tensor::zeros([4]);
        let (_, means, inv_stds) = layernorm(&x, &gamma, &beta, 0.0);
        assert!((means[0] - mean_axis(&x, 1).data()[0]).abs() < 1e-6);
        let var = var_axis(&x, 1).data()[0];
        assert!((inv_stds[0] - 1.0 / var.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_perfect_prediction() {
        let logits = Tensor::from_vec([2, 3], vec![100., 0., 0., 0., 0., 100.]);
        let (loss, grad) = cross_entropy(&logits, &[0, 2]);
        assert!(loss < 1e-5);
        assert!(grad.data().iter().all(|&g| g.abs() < 1e-5));
    }

    #[test]
    fn cross_entropy_uniform() {
        let logits = Tensor::zeros([1, 4]);
        let (loss, grad) = cross_entropy(&logits, &[1]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // gradient: (0.25 - onehot)/1
        assert!((grad.data()[1] + 0.75).abs() < 1e-5);
        assert!((grad.data()[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn argmax_picks_max() {
        let x = Tensor::from_vec([2, 3], vec![0., 5., 1., 9., 2., 3.]);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }

    #[test]
    fn relu_and_grad() {
        let x = Tensor::from_vec([4], vec![-1., 0., 0.5, 2.]);
        assert_eq!(relu(&x).data(), &[0., 0., 0.5, 2.]);
        assert_eq!(relu_grad(&x).data(), &[0., 0., 1., 1.]);
    }
}
