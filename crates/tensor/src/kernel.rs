//! Packed, register-blocked GEMM core.
//!
//! The distributed matmul algorithms (1D/2D/2.5D/3D tensor parallelism) all
//! bottom out in a local `C += A @ B` on one simulated device, so this kernel
//! is where real wall-clock time goes. It follows the classic three-level
//! blocking scheme (Goto / BLIS):
//!
//! * operands are **packed**: a `MC x KC` block of `A` is copied into
//!   contiguous `MR`-row panels and a `KC x NC` block of `B` into contiguous
//!   `NR`-column panels, so the innermost loop only ever streams two small,
//!   cache-resident, unit-stride buffers — regardless of how `A`/`B` are laid
//!   out (plain, transposed, or strided views never touch the hot loop);
//! * the **microkernel** holds an `MR x NR` accumulator tile in registers and
//!   performs `MR * NR` multiply-adds per packed column, with no branches in
//!   the loop body, so it autovectorizes cleanly;
//! * on x86-64 the microkernel is additionally compiled under
//!   `#[target_feature(enable = "avx2")]` and selected at runtime, giving
//!   8-wide f32 lanes without requiring `-C target-cpu` flags. Only `avx2` is
//!   enabled — not `fma` — so no fused multiply-add can change rounding: every
//!   output element is a plain mul-then-add chain in ascending `k` order, and
//!   results are bit-identical between the scalar and AVX2 paths.
//!
//! Floating-point contract: for `k <= KC` the summation order per output
//! element is exactly ascending `k`, matching a textbook triple loop bit for
//! bit. For `k > KC` partial sums are accumulated per `KC`-block (still
//! ascending within and across blocks), which can differ from the unblocked
//! order by normal rounding only.
//!
//! Threading: [`gemm_mat_auto`] splits row panels across a scoped thread pool
//! when the problem is large enough and the global thread budget
//! ([`kernel_threads`], env `COLOSSAL_KERNEL_THREADS`, default 1) allows it.
//! Each output row is computed by exactly one thread with the same block
//! schedule as the serial path, so results do not depend on the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Microtile rows held in registers (deterministic mul-then-add kernel).
pub const MR: usize = 4;
/// Microtile rows for the fast-mode FMA kernel: fused multiply-add needs no
/// separate product temporaries, so a `6 x 16` tile — 12 accumulator ymm
/// plus two `B` vectors and one broadcast — fits the 16-register AVX2 file
/// where the mul-then-add form would spill. The taller tile reads each
/// packed `B` column once per 6 rows instead of per 4 and keeps 12
/// independent FMA chains in flight, covering the 4-5 cycle FMA latency.
/// Summation order per output element is ascending `k` regardless of the
/// tile height, so this is a speed knob, never a bits knob.
pub const MR_FMA: usize = 6;
/// Microtile columns held in registers (two AVX2 f32 vectors), giving a
/// `4 x 16` accumulator tile — 8 ymm registers — with room left for loads.
pub const NR: usize = 16;
/// `k`-extent of a packed block: `A` and `B` panels are `MR * KC` and
/// `NR * KC` floats, so a handful of panels fit in L1.
pub const KC: usize = 512;
/// Row-extent of a packed `A` block (multiple of `MR`); `MC * KC` floats
/// target L2 residency.
pub const MC: usize = 128;
/// Column-extent of a packed `B` block (multiple of `NR`).
pub const NC: usize = 256;

/// Problems with `m * n * k` at or below this run a branch-free direct
/// kernel instead of paying the packing round-trip.
const SMALL_FLOP_CUTOFF: usize = 16 * 16 * 16;

/// Default minimum multiply-add count before the parallel GEMM path can win
/// over its dispatch cost (see [`par_flop_cutoff`]).
pub const DEFAULT_PAR_FLOP_CUTOFF: usize = 64 * 64 * 64;

static THREADS: AtomicUsize = AtomicUsize::new(0);
static PAR_FLOP_CUTOFF: AtomicUsize = AtomicUsize::new(0);
/// Fast-mode tri-state: 0 = unresolved, 1 = off, 2 = on (see
/// [`resolve_cached`] for the sentinel convention shared by every knob).
static FAST: AtomicUsize = AtomicUsize::new(0);

/// Turns the opt-in **fast numeric mode** on or off for every subsequent
/// kernel on any thread, overriding the `COLOSSAL_FAST` environment knob.
///
/// Fast mode swaps the deterministic mul-then-add microkernel for an
/// FMA-fused one (and enables the FMA variants of the fused element-wise
/// kernels and the bf16-compute GEMM). Results are no longer bitwise
/// comparable to the deterministic default — only tolerance/ULP-budget
/// comparable (see `tests/fast_props.rs` and DESIGN.md §13) — but within
/// fast mode the serial/threaded/pool determinism contract still holds:
/// every path uses the same fused arithmetic in the same order.
pub fn set_fast_mode(on: bool) {
    FAST.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether fast numeric mode is active: the last [`set_fast_mode`] value,
/// else the `COLOSSAL_FAST` env flag (`1`/`on`/`true` ...), else off.
/// Resolution is cached once like every other knob; invalid values warn via
/// [`crate::envknob::warn_invalid`] and fall back to off.
pub fn fast_mode() -> bool {
    let v = FAST.load(Ordering::Relaxed);
    if v != 0 {
        return v == 2;
    }
    let resolved = if crate::envknob::env_flag("COLOSSAL_FAST", false) {
        2
    } else {
        1
    };
    FAST.store(resolved, Ordering::Relaxed);
    resolved == 2
}

/// True when the CPU supports the `avx2,fma` feature pair the fast
/// microkernels are compiled for. On other hardware fast mode still works —
/// `f32::mul_add` falls back to the (slow, correctly-rounded) libm `fmaf`,
/// producing bit-identical results to the hardware FMA path.
#[cfg(target_arch = "x86_64")]
pub fn fma_available() -> bool {
    static FMA: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FMA.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(not(target_arch = "x86_64"))]
pub fn fma_available() -> bool {
    false
}

/// The one place that defines how every runtime knob in this crate resolves
/// and caches (`kernel_threads`, [`par_flop_cutoff`], `par::par_cutoff`):
///
/// 1. a non-zero value already in `cell` wins — either a cached resolution
///    or an explicit setter call (setters clamp to at least 1, so 0 can
///    never be stored and `0` doubles as the "unset" sentinel);
/// 2. otherwise `env` is read **once**, parsed (`trim`, `parse::<usize>`,
///    values of 0 rejected like any other parse failure), defaulted to
///    `default`, and the result is cached in `cell`.
///
/// Consequence: environment changes after the first resolution are ignored
/// — tests and embedders that need to change a knob at runtime must use the
/// setter, which takes effect immediately on every thread.
pub(crate) fn resolve_cached(cell: &AtomicUsize, env: &str, default: usize) -> usize {
    let v = cell.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let parsed = crate::envknob::env_usize(env, default);
    let resolved = if parsed == 0 {
        crate::envknob::warn_invalid(env, "0", "an integer >= 1", &default.max(1).to_string());
        default.max(1)
    } else {
        parsed
    };
    cell.store(resolved, Ordering::Relaxed);
    resolved
}

/// Sets the kernel thread budget for every subsequent kernel on any thread.
/// A value of 0 clamps to 1 — "no parallelism", never "no work": budget 1
/// means every kernel (GEMM, element-wise, the `par` pool) runs its plain
/// serial path.
pub fn set_kernel_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The kernel thread budget: the last [`set_kernel_threads`] value, else the
/// `COLOSSAL_KERNEL_THREADS` environment variable, else 1; resolution and
/// caching semantics are defined by [`resolve_cached`] (the env var is read
/// once and cached; setters override immediately).
///
/// The default is deliberately 1: the simulated cluster already runs one OS
/// thread per device, so an eager per-GEMM pool would oversubscribe the host
/// as soon as a `World` spans more than a couple of ranks.
pub fn kernel_threads() -> usize {
    resolve_cached(&THREADS, "COLOSSAL_KERNEL_THREADS", 1)
}

/// Sets the GEMM parallel cutoff (clamped to at least 1): threaded dispatch
/// engages when `m * n * k` reaches this many multiply-adds.
pub fn set_par_flop_cutoff(n: usize) {
    PAR_FLOP_CUTOFF.store(n.max(1), Ordering::Relaxed);
}

/// Minimum multiply-add count before [`gemm_mat_auto`] / [`for_each_batch`]
/// go parallel: the last [`set_par_flop_cutoff`] value, else
/// `COLOSSAL_PAR_FLOP_CUTOFF`, else [`DEFAULT_PAR_FLOP_CUTOFF`]; resolution
/// per [`resolve_cached`].
pub fn par_flop_cutoff() -> usize {
    resolve_cached(
        &PAR_FLOP_CUTOFF,
        "COLOSSAL_PAR_FLOP_CUTOFF",
        DEFAULT_PAR_FLOP_CUTOFF,
    )
}

/// A logical row-major `rows x cols` matrix over a strided storage slice:
/// element `(r, c)` lives at `data[r * rs + c * cs]`.
///
/// This is how transposed operands reach the packed kernel without being
/// materialized: `B^T` of a physical `(n, k)` buffer is just
/// `Mat { rs: 1, cs: k }`.
#[derive(Clone, Copy)]
pub struct Mat<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl<'a> Mat<'a> {
    /// Plain row-major view of a `rows x cols` buffer.
    pub fn row_major(data: &'a [f32], cols: usize) -> Self {
        Mat {
            data,
            rs: cols,
            cs: 1,
        }
    }

    /// Transposed view: logical `(r, c)` reads physical `(c, r)` of a
    /// row-major buffer with `phys_cols` columns.
    pub fn transposed(data: &'a [f32], phys_cols: usize) -> Self {
        Mat {
            data,
            rs: 1,
            cs: phys_cols,
        }
    }

    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }

    /// The view starting at logical row `r0`.
    fn rows_from(&self, r0: usize) -> Mat<'a> {
        Mat {
            data: &self.data[r0 * self.rs..],
            rs: self.rs,
            cs: self.cs,
        }
    }
}

/// Packs logical rows `[i0, i0 + mb)` x cols `[p0, p0 + kb)` of `a` into
/// `MRR`-row panels: panel `ip` holds rows `i0 + ip*MRR ..`, stored as `kb`
/// groups of `MRR` values (rows beyond `mb` zero-filled so the microkernel
/// never branches on the edge). `MRR` is [`MR`] for the deterministic
/// kernel and [`MR_FMA`] for the taller fast-mode tile.
fn pack_a<const MRR: usize>(a: Mat, i0: usize, mb: usize, p0: usize, kb: usize, buf: &mut [f32]) {
    for (ip, panel) in buf.chunks_mut(kb * MRR).take(mb.div_ceil(MRR)).enumerate() {
        let ir = ip * MRR;
        let rows = (mb - ir).min(MRR);
        for (kk, dst) in panel.chunks_exact_mut(MRR).take(kb).enumerate() {
            for (r, d) in dst[..rows].iter_mut().enumerate() {
                *d = a.at(i0 + ir + r, p0 + kk);
            }
            for d in dst[rows..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// Packs logical rows `[p0, p0 + kb)` x cols `[j0, j0 + nb)` of `b` into
/// `NR`-column panels, `kb` groups of `NR` values each, zero-filled past `nb`.
fn pack_b(b: Mat, p0: usize, kb: usize, j0: usize, nb: usize, buf: &mut [f32]) {
    for (jp, panel) in buf.chunks_mut(kb * NR).take(nb.div_ceil(NR)).enumerate() {
        let jr = jp * NR;
        let cols = (nb - jr).min(NR);
        for (kk, dst) in panel.chunks_exact_mut(NR).take(kb).enumerate() {
            for (c, d) in dst[..cols].iter_mut().enumerate() {
                *d = b.at(p0 + kk, j0 + jr + c);
            }
            for d in dst[cols..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// The register microkernel: `acc += ap_panel @ bp_panel` over `kb` packed
/// columns. Fixed-size tiles and `chunks_exact` keep the body branch- and
/// bounds-check-free so LLVM holds `acc` in vector registers. `FMA = false`
/// is the deterministic mul-then-add form; `FMA = true` fuses each step with
/// `f32::mul_add`, which LLVM lowers to `vfmadd` when the enclosing function
/// enables the `fma` target feature (and to the correctly-rounded libm
/// `fmaf` otherwise — same bits, much slower).
#[inline(always)]
fn microtile<const FMA: bool, const MRR: usize>(
    kb: usize,
    ap: &[f32],
    bp: &[f32],
    acc: &mut [[f32; NR]; MRR],
) {
    for (a, b) in ap[..kb * MRR]
        .chunks_exact(MRR)
        .zip(bp[..kb * NR].chunks_exact(NR))
    {
        let a: &[f32; MRR] = a.try_into().unwrap();
        let b: &[f32; NR] = b.try_into().unwrap();
        for r in 0..MRR {
            let ar = a[r];
            for j in 0..NR {
                if FMA {
                    acc[r][j] = ar.mul_add(b[j], acc[r][j]);
                } else {
                    acc[r][j] += ar * b[j];
                }
            }
        }
    }
}

/// Runs every microtile of one packed `(mb x kb) @ (kb x nb)` block and
/// scatter-adds the accumulators into `c` (full `ldc`-wide output, block
/// origin at `(ic, jc)`). `#[inline(always)]` so the target-feature wrappers
/// below recompile the whole loop nest with wide lanes (and, for the fast
/// instantiation, hardware FMA).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flat scalars keep the hot path register-friendly
fn macro_tile<const FMA: bool, const MRR: usize>(
    apack: &[f32],
    bpack: &[f32],
    kb: usize,
    mb: usize,
    nb: usize,
    c: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    for jp in 0..nb.div_ceil(NR) {
        let jr = jp * NR;
        let cols = (nb - jr).min(NR);
        let bp = &bpack[jp * kb * NR..][..kb * NR];
        for ip in 0..mb.div_ceil(MRR) {
            let ir = ip * MRR;
            let rows = (mb - ir).min(MRR);
            let ap = &apack[ip * kb * MRR..][..kb * MRR];
            let mut acc = [[0.0f32; NR]; MRR];
            microtile::<FMA, MRR>(kb, ap, bp, &mut acc);
            for (r, acc_row) in acc[..rows].iter().enumerate() {
                let row = &mut c[(ic + ir + r) * ldc + jc + jr..][..cols];
                for (cv, &av) in row.iter_mut().zip(acc_row[..cols].iter()) {
                    *cv += av;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn macro_tile_avx2(
    apack: &[f32],
    bpack: &[f32],
    kb: usize,
    mb: usize,
    nb: usize,
    c: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    macro_tile::<false, MR>(apack, bpack, kb, mb, nb, c, ldc, ic, jc);
}

/// The fast-mode instantiation: same loop nest, but every multiply-add in
/// the register tile is a single `vfmadd231ps`, and the tile is the taller
/// [`MR_FMA`]-row one the FMA register budget affords. One rounding per
/// step instead of two is why its results differ (by bounded ULPs) from
/// the deterministic kernel — see DESIGN.md §13; the tile height never
/// changes bits.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn macro_tile_avx2_fma(
    apack: &[f32],
    bpack: &[f32],
    kb: usize,
    mb: usize,
    nb: usize,
    c: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    macro_tile::<true, MR_FMA>(apack, bpack, kb, mb, nb, c, ldc, ic, jc);
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Dispatches one packed block to the right macro-tile instantiation.
/// `fast` is resolved once by the caller (never re-read here) because the
/// `A` panel layout must match the tile height: `MR`-row panels for the
/// deterministic kernel, `MR_FMA`-row panels for both fast arms.
#[allow(clippy::too_many_arguments)]
fn run_macro_tile(
    fast: bool,
    apack: &[f32],
    bpack: &[f32],
    kb: usize,
    mb: usize,
    nb: usize,
    c: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    if fast {
        #[cfg(target_arch = "x86_64")]
        if fma_available() {
            // SAFETY: fma_available() checked the CPU supports every feature
            // macro_tile_avx2_fma enables.
            unsafe { macro_tile_avx2_fma(apack, bpack, kb, mb, nb, c, ldc, ic, jc) };
            return;
        }
        // No hardware FMA: libm mul_add keeps the bits identical to the
        // vfmadd path, trading away the speed win but never the results.
        return macro_tile::<true, MR_FMA>(apack, bpack, kb, mb, nb, c, ldc, ic, jc);
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: avx2_available() checked the CPU supports every feature
        // macro_tile_avx2 enables.
        unsafe { macro_tile_avx2(apack, bpack, kb, mb, nb, c, ldc, ic, jc) };
        return;
    }
    macro_tile::<false, MR>(apack, bpack, kb, mb, nb, c, ldc, ic, jc);
}

/// Serial packed GEMM: `c += a @ b` for logical `(m, k) @ (k, n)` operands,
/// `c` row-major `m x n`.
pub fn gemm_mat(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // the mode (and with it the A-panel height) is resolved once per GEMM,
    // so a concurrent toggle can never mismatch packing and microkernel
    let fast = fast_mode();
    let mr = if fast { MR_FMA } else { MR };
    let kb_max = k.min(KC);
    // packing panels recycle through the storage pool: a training step calls
    // this kernel hundreds of times with identical panel sizes
    let mut apack = crate::pool::take_zeroed(m.min(MC).div_ceil(mr) * mr * kb_max);
    let mut bpack = crate::pool::take_zeroed(n.min(NC).div_ceil(NR) * NR * kb_max);
    for jc in (0..n).step_by(NC) {
        let nb = (n - jc).min(NC);
        for pc in (0..k).step_by(KC) {
            let kb = (k - pc).min(KC);
            let bbuf = &mut bpack[..nb.div_ceil(NR) * NR * kb];
            pack_b(b, pc, kb, jc, nb, bbuf);
            for ic in (0..m).step_by(MC) {
                let mb = (m - ic).min(MC);
                let abuf = &mut apack[..mb.div_ceil(mr) * mr * kb];
                if fast {
                    pack_a::<MR_FMA>(a, ic, mb, pc, kb, abuf);
                } else {
                    pack_a::<MR>(a, ic, mb, pc, kb, abuf);
                }
                run_macro_tile(fast, abuf, bbuf, kb, mb, nb, c, n, ic, jc);
            }
        }
    }
    crate::pool::recycle(apack);
    crate::pool::recycle(bpack);
}

/// Splits `c` into `MR`-aligned row panels — the partition depends only on
/// `(m, threads)`, per the `par` determinism contract — yielding
/// `(row_offset, rows, panel)` triples. Shared by the pool and spawn
/// backends so both produce identical work splits.
type RowPanels<'c> = Vec<(usize, usize, &'c mut [f32])>;

fn row_panels<'c>(c: &'c mut [f32], m: usize, n: usize, threads: usize) -> RowPanels<'c> {
    let t = threads.min(m.div_ceil(MR)).max(1);
    let rows_per = m.div_ceil(MR).div_ceil(t) * MR;
    let mut panels = Vec::with_capacity(t);
    let mut rest = c;
    let mut i0 = 0;
    while i0 < m {
        let rows = rows_per.min(m - i0);
        let (head, tail) = rest.split_at_mut(rows * n);
        rest = tail;
        panels.push((i0, rows, head));
        i0 += rows;
    }
    panels
}

/// Packed GEMM with the output's row panels split across up to `threads`
/// executors. Each row of `c` is produced by exactly one executor running
/// the same serial block schedule, so the result is independent of
/// `threads` and of the backend (persistent pool by default, legacy
/// spawn-per-call via [`gemm_mat_threaded_spawn`] when `par` is disabled).
pub fn gemm_mat_threaded(
    a: Mat,
    b: Mat,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let t = threads.min(m.div_ceil(MR)).max(1);
    if t == 1 {
        return gemm_mat(a, b, c, m, k, n);
    }
    crate::par::par_items(row_panels(c, m, n, threads), |_, (i0, rows, panel)| {
        gemm_mat(a.rows_from(i0), b, panel, rows, k, n);
    });
}

/// The pre-pool threading backend: same row-panel split as
/// [`gemm_mat_threaded`], but paying a fresh `std::thread::scope` spawn per
/// call. Kept as the `COLOSSAL_PAR=off` fallback and as the baseline leg of
/// the `par_runtime` bench.
pub fn gemm_mat_threaded_spawn(
    a: Mat,
    b: Mat,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let t = threads.min(m.div_ceil(MR)).max(1);
    if t == 1 {
        return gemm_mat(a, b, c, m, k, n);
    }
    std::thread::scope(|s| {
        for (i0, rows, panel) in row_panels(c, m, n, threads) {
            let a_sub = a.rows_from(i0);
            s.spawn(move || gemm_mat(a_sub, b, panel, rows, k, n));
        }
    });
}

/// Branch-free direct i-k-j kernel for problems too small to amortize
/// packing. Summation per output element is ascending `k`, the same order as
/// the packed path, so the size dispatch never changes results — a property
/// that holds *per mode*: the fast instantiation fuses every step exactly
/// like `microtile::<true>`, so the cutoff stays invisible under fast mode
/// too (for a zero-initialized `c`, folding a fused chain into memory per
/// `k` step produces the same bits as reducing it in a register).
#[inline(always)]
fn gemm_small_impl<const FMA: bool>(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let a_ip = a.at(i, p);
            for (j, c_ij) in c_row.iter_mut().enumerate() {
                if FMA {
                    *c_ij = a_ip.mul_add(b.at(p, j), *c_ij);
                } else {
                    *c_ij += a_ip * b.at(p, j);
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_small_fma(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_small_impl::<true>(a, b, c, m, k, n);
}

fn gemm_small(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    if fast_mode() {
        #[cfg(target_arch = "x86_64")]
        if fma_available() {
            // SAFETY: fma_available() checked avx2+fma support.
            return unsafe { gemm_small_fma(a, b, c, m, k, n) };
        }
        return gemm_small_impl::<true>(a, b, c, m, k, n);
    }
    gemm_small_impl::<false>(a, b, c, m, k, n);
}

/// Register-dot variant of [`gemm_small`] for a `c` that already holds live
/// data: each output element's ascending-`k` dot is fully reduced in a
/// register first and added to `c` exactly once. `gemm_small` itself folds
/// into `c` memory once per `k` step, which is the same sequence only when
/// `c` starts at zero — this variant keeps the bits right when it doesn't.
#[inline(always)]
fn gemm_small_acc_impl<const FMA: bool>(
    a: Mat,
    b: Mat,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, c_ij) in c_row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for p in 0..k {
                if FMA {
                    acc = a.at(i, p).mul_add(b.at(p, j), acc);
                } else {
                    acc += a.at(i, p) * b.at(p, j);
                }
            }
            *c_ij += acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_small_acc_fma(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_small_acc_impl::<true>(a, b, c, m, k, n);
}

fn gemm_small_acc(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    if fast_mode() {
        #[cfg(target_arch = "x86_64")]
        if fma_available() {
            // SAFETY: fma_available() checked avx2+fma support.
            return unsafe { gemm_small_acc_fma(a, b, c, m, k, n) };
        }
        return gemm_small_acc_impl::<true>(a, b, c, m, k, n);
    }
    gemm_small_acc_impl::<false>(a, b, c, m, k, n);
}

/// `c += a @ b` where `c` may already hold live data (fused gradient
/// accumulation): every output element receives its fully-reduced
/// ascending-`k` dot exactly once, so accumulating in place is
/// bitwise-identical to running [`gemm_mat_auto`] into a zeroed temporary
/// and adding that element-wise. Only valid for `k <= KC` — a single packed
/// k-block, hence a single writeback per element; callers with deeper
/// reductions must take the temporary path.
pub fn gemm_mat_acc(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(k <= KC, "gemm_mat_acc requires k <= KC (single k-block)");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * n * k <= SMALL_FLOP_CUTOFF {
        return gemm_small_acc(a, b, c, m, k, n);
    }
    // above the small cutoff the auto dispatch always takes the packed
    // microkernel, whose writeback adds each register tile to `c` once per
    // k-block — exactly once here, since k <= KC
    gemm_mat_auto(a, b, c, m, k, n);
}

/// The kernel entry point every matmul variant routes through:
/// `c += a @ b`, picking direct / packed / packed+threads by problem size
/// and the [`kernel_threads`] budget.
pub fn gemm_mat_auto(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let macs = m * n * k;
    if macs <= SMALL_FLOP_CUTOFF {
        return gemm_small(a, b, c, m, k, n);
    }
    let threads = kernel_threads();
    if threads > 1 && macs >= par_flop_cutoff() && m > MR {
        if crate::par::enabled() {
            gemm_mat_threaded(a, b, c, m, k, n, threads);
        } else {
            gemm_mat_threaded_spawn(a, b, c, m, k, n, threads);
        }
    } else {
        gemm_mat(a, b, c, m, k, n);
    }
}

// --- bf16 storage-and-compute GEMM -----------------------------------------
//
// The reduced-precision arm of fast mode: `A` and `B` blocks are packed as
// bf16 (round-to-nearest-even at pack time), halving the packed-panel
// footprint — a full `MC x KC` + `KC x NC` working set drops from 384 KiB to
// 192 KiB — while the register tile still accumulates in f32 with FMA.
// Decode back to f32 is a pure `<< 16` (bf16 shares f32's exponent range),
// so the load side costs one shift per operand, not a table or a branch.
// Precision: operands carry 8 mantissa bits instead of 24; the ULP budget in
// `tests/fast_props.rs` accounts for one bf16 rounding per operand plus the
// fused-chain error (DESIGN.md §13).

/// Packs logical rows/cols of `a` into `MR_FMA`-row panels exactly like
/// [`pack_a`], but each element is rounded to bf16 at copy time.
fn pack_a_bf16(a: Mat, i0: usize, mb: usize, p0: usize, kb: usize, buf: &mut [u16]) {
    for (ip, panel) in buf
        .chunks_mut(kb * MR_FMA)
        .take(mb.div_ceil(MR_FMA))
        .enumerate()
    {
        let ir = ip * MR_FMA;
        let rows = (mb - ir).min(MR_FMA);
        for (kk, dst) in panel.chunks_exact_mut(MR_FMA).take(kb).enumerate() {
            for (r, d) in dst[..rows].iter_mut().enumerate() {
                *d = crate::f16::BF16::from_f32(a.at(i0 + ir + r, p0 + kk)).to_bits();
            }
            for d in dst[rows..].iter_mut() {
                *d = 0;
            }
        }
    }
}

/// bf16 analogue of [`pack_b`]: `NR`-column panels of rounded elements.
fn pack_b_bf16(b: Mat, p0: usize, kb: usize, j0: usize, nb: usize, buf: &mut [u16]) {
    for (jp, panel) in buf.chunks_mut(kb * NR).take(nb.div_ceil(NR)).enumerate() {
        let jr = jp * NR;
        let cols = (nb - jr).min(NR);
        for (kk, dst) in panel.chunks_exact_mut(NR).take(kb).enumerate() {
            for (c, d) in dst[..cols].iter_mut().enumerate() {
                *d = crate::f16::BF16::from_f32(b.at(p0 + kk, j0 + jr + c)).to_bits();
            }
            for d in dst[cols..].iter_mut() {
                *d = 0;
            }
        }
    }
}

/// bf16 register microkernel: widen each packed operand with a shift, then
/// fuse into the f32 accumulator tile. Zero-fill padding decodes to +0.0, so
/// edge tiles stay branch-free like the f32 kernel.
#[inline(always)]
fn microtile_bf16(kb: usize, ap: &[u16], bp: &[u16], acc: &mut [[f32; NR]; MR_FMA]) {
    for (a, b) in ap[..kb * MR_FMA]
        .chunks_exact(MR_FMA)
        .zip(bp[..kb * NR].chunks_exact(NR))
    {
        let a: &[u16; MR_FMA] = a.try_into().unwrap();
        let b: &[u16; NR] = b.try_into().unwrap();
        for r in 0..MR_FMA {
            let ar = f32::from_bits((a[r] as u32) << 16);
            for j in 0..NR {
                let bv = f32::from_bits((b[j] as u32) << 16);
                acc[r][j] = ar.mul_add(bv, acc[r][j]);
            }
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn macro_tile_bf16(
    apack: &[u16],
    bpack: &[u16],
    kb: usize,
    mb: usize,
    nb: usize,
    c: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    for jp in 0..nb.div_ceil(NR) {
        let jr = jp * NR;
        let cols = (nb - jr).min(NR);
        let bp = &bpack[jp * kb * NR..][..kb * NR];
        for ip in 0..mb.div_ceil(MR_FMA) {
            let ir = ip * MR_FMA;
            let rows = (mb - ir).min(MR_FMA);
            let ap = &apack[ip * kb * MR_FMA..][..kb * MR_FMA];
            let mut acc = [[0.0f32; NR]; MR_FMA];
            microtile_bf16(kb, ap, bp, &mut acc);
            for (r, acc_row) in acc[..rows].iter().enumerate() {
                let row = &mut c[(ic + ir + r) * ldc + jc + jr..][..cols];
                for (cv, &av) in row.iter_mut().zip(acc_row[..cols].iter()) {
                    *cv += av;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn macro_tile_bf16_avx2_fma(
    apack: &[u16],
    bpack: &[u16],
    kb: usize,
    mb: usize,
    nb: usize,
    c: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    macro_tile_bf16(apack, bpack, kb, mb, nb, c, ldc, ic, jc);
}

#[allow(clippy::too_many_arguments)]
fn run_macro_tile_bf16(
    apack: &[u16],
    bpack: &[u16],
    kb: usize,
    mb: usize,
    nb: usize,
    c: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: fma_available() checked avx2+fma support.
        unsafe { macro_tile_bf16_avx2_fma(apack, bpack, kb, mb, nb, c, ldc, ic, jc) };
        return;
    }
    macro_tile_bf16(apack, bpack, kb, mb, nb, c, ldc, ic, jc);
}

/// Serial packed bf16-compute GEMM: `c += bf16(a) @ bf16(b)` with f32
/// accumulation, same block schedule as [`gemm_mat`]. Always packs (the
/// rounding pass *is* the packing pass), so there is no small-size direct
/// arm. Panels are per-thread scratch: u16 panels don't fit the f32 storage
/// pool and are cheap enough to keep thread-local.
pub fn gemm_mat_bf16(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    thread_local! {
        static PANELS: std::cell::RefCell<(Vec<u16>, Vec<u16>)> =
            const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
    }
    PANELS.with(|cell| {
        let mut panels = cell.borrow_mut();
        let (apack, bpack) = &mut *panels;
        let kb_max = k.min(KC);
        apack.resize(m.min(MC).div_ceil(MR_FMA) * MR_FMA * kb_max, 0);
        bpack.resize(n.min(NC).div_ceil(NR) * NR * kb_max, 0);
        for jc in (0..n).step_by(NC) {
            let nb = (n - jc).min(NC);
            for pc in (0..k).step_by(KC) {
                let kb = (k - pc).min(KC);
                let bbuf = &mut bpack[..nb.div_ceil(NR) * NR * kb];
                pack_b_bf16(b, pc, kb, jc, nb, bbuf);
                for ic in (0..m).step_by(MC) {
                    let mb = (m - ic).min(MC);
                    let abuf = &mut apack[..mb.div_ceil(MR_FMA) * MR_FMA * kb];
                    pack_a_bf16(a, ic, mb, pc, kb, abuf);
                    run_macro_tile_bf16(abuf, bbuf, kb, mb, nb, c, n, ic, jc);
                }
            }
        }
    });
}

/// [`gemm_mat_bf16`] with the same row-panel threading contract as
/// [`gemm_mat_auto`]: each output row is produced by exactly one executor
/// running the serial block schedule, so results are independent of the
/// thread count and backend.
pub fn gemm_mat_bf16_auto(a: Mat, b: Mat, c: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let threads = kernel_threads();
    let t = threads.min(m.div_ceil(MR)).max(1);
    if t == 1 || m * n * k < par_flop_cutoff() || m <= MR {
        return gemm_mat_bf16(a, b, c, m, k, n);
    }
    if crate::par::enabled() {
        crate::par::par_items(row_panels(c, m, n, threads), |_, (i0, rows, panel)| {
            gemm_mat_bf16(a.rows_from(i0), b, panel, rows, k, n);
        });
    } else {
        std::thread::scope(|s| {
            for (i0, rows, panel) in row_panels(c, m, n, threads) {
                let a_sub = a.rows_from(i0);
                s.spawn(move || gemm_mat_bf16(a_sub, b, panel, rows, k, n));
            }
        });
    }
}

/// Runs `run(t, c_t)` for each of `ba` equal `csize`-element chunks of `c`
/// (one per batch), fanning out across the [`kernel_threads`] budget when
/// the total work is large enough. Batched matmuls parallelize here — at the
/// batch level — rather than inside each (typically small) per-batch GEMM.
pub fn for_each_batch<F>(ba: usize, csize: usize, macs_per_batch: usize, c: &mut [f32], run: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(c.len(), ba * csize, "for_each_batch output size");
    let threads = kernel_threads().min(ba).max(1);
    if threads == 1 || ba.saturating_mul(macs_per_batch) < par_flop_cutoff() {
        for (t, c_t) in c.chunks_exact_mut(csize.max(1)).take(ba).enumerate() {
            run(t, c_t);
        }
        return;
    }
    // batch-range split depends only on (ba, threads), never on timing
    let per = ba.div_ceil(threads);
    let mut items: Vec<(usize, &mut [f32])> = Vec::with_capacity(threads);
    let mut rest = c;
    let mut t0 = 0;
    while t0 < ba {
        let batches = per.min(ba - t0);
        let (head, tail) = rest.split_at_mut(batches * csize);
        rest = tail;
        items.push((t0, head));
        t0 += batches;
    }
    let sweep = |(t0, head): (usize, &mut [f32])| {
        for (off, c_t) in head.chunks_exact_mut(csize.max(1)).enumerate() {
            run(t0 + off, c_t);
        }
    };
    if crate::par::enabled() {
        crate::par::par_items(items, |_, item| sweep(item));
    } else {
        let run_ref = &sweep;
        std::thread::scope(|s| {
            for item in items {
                s.spawn(move || run_ref(item));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn packed_matches_naive_block_straddlers() {
        // sizes straddling MR/NR/MC/NC/KC boundaries
        for &(m, k, n) in &[
            (1, 1, 1),
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (MC - 1, 33, NC - 1),
            (MC + 3, KC + 7, NC + 5),
            (3, 300, 2),
        ] {
            let a = rand_vec(m * k, (m * 7 + k) as u64);
            let b = rand_vec(k * n, (k * 13 + n) as u64);
            let mut c = vec![0.0f32; m * n];
            gemm_mat(
                Mat::row_major(&a, k),
                Mat::row_major(&b, n),
                &mut c,
                m,
                k,
                n,
            );
            let want = naive(&a, &b, m, k, n);
            assert!(
                close(&c, &want, 1e-3 * k as f32),
                "mismatch at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn threaded_is_bitwise_equal_to_serial() {
        let (m, k, n) = (70, 65, 50);
        let a = rand_vec(m * k, 21);
        let b = rand_vec(k * n, 22);
        let mut serial = vec![0.0f32; m * n];
        gemm_mat(
            Mat::row_major(&a, k),
            Mat::row_major(&b, n),
            &mut serial,
            m,
            k,
            n,
        );
        for threads in [2, 3, 7] {
            let mut par = vec![0.0f32; m * n];
            gemm_mat_threaded(
                Mat::row_major(&a, k),
                Mat::row_major(&b, n),
                &mut par,
                m,
                k,
                n,
                threads,
            );
            assert_eq!(serial, par, "pool backend, threads={threads}");
            let mut spawned = vec![0.0f32; m * n];
            gemm_mat_threaded_spawn(
                Mat::row_major(&a, k),
                Mat::row_major(&b, n),
                &mut spawned,
                m,
                k,
                n,
                threads,
            );
            assert_eq!(serial, spawned, "spawn backend, threads={threads}");
        }
    }

    #[test]
    fn transposed_views_match_materialized() {
        let (m, k, n) = (19, 23, 17);
        let a = rand_vec(m * k, 31);
        let bt = rand_vec(n * k, 32); // physical (n, k), logical B = bt^T
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut via_view = vec![0.0f32; m * n];
        gemm_mat(
            Mat::row_major(&a, k),
            Mat::transposed(&bt, k),
            &mut via_view,
            m,
            k,
            n,
        );
        let mut via_copy = vec![0.0f32; m * n];
        gemm_mat(
            Mat::row_major(&a, k),
            Mat::row_major(&b, n),
            &mut via_copy,
            m,
            k,
            n,
        );
        assert_eq!(via_view, via_copy);
    }

    #[test]
    fn auto_accumulates_into_c() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![1.0f32; 4];
        gemm_mat_auto(
            Mat::row_major(&a, 2),
            Mat::row_major(&b, 2),
            &mut c,
            2,
            2,
            2,
        );
        assert_eq!(c, vec![3.0; 4]);
    }

    #[test]
    fn zero_extent_dims_are_noops() {
        let mut c = vec![5.0f32; 6];
        gemm_mat_auto(
            Mat::row_major(&[], 0),
            Mat::row_major(&[], 3),
            &mut c,
            2,
            0,
            3,
        );
        assert_eq!(c, vec![5.0; 6]); // k == 0: empty sum adds nothing
        gemm_mat_auto(
            Mat::row_major(&[], 4),
            Mat::row_major(&[], 0),
            &mut [],
            0,
            4,
            0,
        );
    }

    #[test]
    fn thread_budget_roundtrip() {
        set_kernel_threads(3);
        assert_eq!(kernel_threads(), 3);
        set_kernel_threads(0); // 0 clamps to 1: "no parallelism", never "no work"
        assert_eq!(kernel_threads(), 1);
    }

    #[test]
    fn par_flop_cutoff_roundtrip() {
        set_par_flop_cutoff(12345);
        assert_eq!(par_flop_cutoff(), 12345);
        set_par_flop_cutoff(0); // clamped like every knob
        assert_eq!(par_flop_cutoff(), 1);
        set_par_flop_cutoff(DEFAULT_PAR_FLOP_CUTOFF);
        assert_eq!(par_flop_cutoff(), DEFAULT_PAR_FLOP_CUTOFF);
    }

    #[test]
    fn for_each_batch_covers_every_batch() {
        let mut c = vec![0.0f32; 12];
        for_each_batch(4, 3, 1, &mut c, |t, c_t| {
            for v in c_t.iter_mut() {
                *v = t as f32;
            }
        });
        assert_eq!(c, vec![0., 0., 0., 1., 1., 1., 2., 2., 2., 3., 3., 3.]);
    }
}
