//! Integration: pipeline parallelism over real Transformer blocks — the
//! model-level version of the paper's pipeline experiments.

use colossalai::comm::World;
use colossalai::models::TransformerBlock;
use colossalai::parallel::pipeline::{partition_layers, PipelineStage, Schedule};
use colossalai::tensor::init;
use colossalai::tensor::ops::cross_entropy;
use colossalai::tensor::Tensor;
use colossalai::topology::systems::system_iii;
use colossalai_autograd::{Layer, Linear, Sequential};

const DIM: usize = 8;
const HEADS: usize = 2;
const LAYERS: usize = 4;

/// Builds the full model (blocks + head) from a shared seed; all ranks call
/// this and keep only their slice.
fn full_model(seed: u64) -> Vec<Box<dyn Layer>> {
    let mut rng = init::rng(seed);
    let mut layers: Vec<Box<dyn Layer>> = (0..LAYERS)
        .map(|i| {
            Box::new(TransformerBlock::new(
                &format!("blk{i}"),
                DIM,
                HEADS,
                2,
                false,
                &mut rng,
            )) as Box<dyn Layer>
        })
        .collect();
    layers.push(Box::new(Linear::from_rng("head", DIM, 3, true, &mut rng)));
    layers
}

fn stage_slice(seed: u64, stages: usize, stage: usize) -> Sequential {
    let mut all = full_model(seed);
    let parts = partition_layers(all.len(), stages);
    let (start, end) = parts[stage];
    let mut tail = all.split_off(start);
    let _rest = tail.split_off(end - start);
    Sequential::new(tail)
}

fn micro_batches(m: usize, seed: u64) -> (Vec<Tensor>, Vec<Vec<usize>>) {
    let mut rng = init::rng(seed);
    let micros = (0..m)
        .map(|_| init::uniform([2, 3, DIM], -1.0, 1.0, &mut rng))
        .collect();
    let targets = (0..m).map(|i| vec![i % 3, (i + 1) % 3]).collect();
    (micros, targets)
}

/// Token-mean logits head: pool over the sequence then classify — done by
/// reshaping at loss time (mean over the 3 positions).
fn loss_of(out: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    // out: [2, 3, 3] token logits; pool by mean over positions
    let pooled = {
        let mut p = colossalai::tensor::ops::sum_axis(out, 1);
        p.scale(1.0 / 3.0);
        p
    };
    let (loss, dpooled) = cross_entropy(&pooled, targets);
    // un-pool gradient
    let mut d = Tensor::zeros(out.shape().clone());
    for b in 0..2 {
        for s in 0..3 {
            for c in 0..3 {
                d.set(&[b, s, c], dpooled.at(&[b, c]) / 3.0);
            }
        }
    }
    (loss, d)
}

fn serial_reference(seed: u64, m: usize) -> (f32, Vec<Tensor>) {
    let mut model = Sequential::new(full_model(seed));
    let (micros, targets) = micro_batches(m, 1000 + seed);
    let mut total = 0.0;
    for (x, t) in micros.iter().zip(&targets) {
        let out = model.forward(x);
        let (loss, d) = loss_of(&out, t);
        total += loss;
        let _ = model.backward(&d);
    }
    let mut grads = Vec::new();
    model.visit_params(&mut |p| grads.push(p.grad().clone()));
    (total / m as f32, grads)
}

fn pipeline_run(schedule: Schedule, stages: usize, m: usize, seed: u64) -> (f32, Vec<Tensor>) {
    let world = World::new(system_iii());
    let (micros, targets) = micro_batches(m, 1000 + seed);
    let results = world.run_on(stages, |ctx| {
        let devices: Vec<usize> = (0..stages).collect();
        let mut stage = PipelineStage::new(ctx, &devices, stage_slice(seed, stages, ctx.rank()));
        let mut lf = |micro: u64, out: &Tensor| loss_of(out, &targets[micro as usize]);
        let loss = stage.run_step(
            schedule,
            stage.is_first().then_some(&micros[..]),
            stage
                .is_last()
                .then_some(&mut lf as &mut dyn FnMut(u64, &Tensor) -> (f32, Tensor)),
            m,
        );
        let mut grads = Vec::new();
        stage.visit_params(&mut |p| grads.push(p.grad().clone()));
        (loss, grads)
    });
    let loss = results[stages - 1].0;
    let grads = results.into_iter().flat_map(|(_, g)| g).collect();
    (loss, grads)
}

#[test]
fn transformer_pipeline_gpipe_matches_serial() {
    let (want_loss, want_grads) = serial_reference(11, 4);
    let (loss, grads) = pipeline_run(Schedule::GPipe, 2, 4, 11);
    assert!((loss - want_loss).abs() < 1e-5, "{loss} vs {want_loss}");
    assert_eq!(grads.len(), want_grads.len());
    for (g, w) in grads.iter().zip(&want_grads) {
        assert!(g.allclose(w, 2e-4), "grad diff {}", g.max_abs_diff(w));
    }
}

#[test]
fn transformer_pipeline_1f1b_matches_serial_3_stages() {
    let (want_loss, want_grads) = serial_reference(12, 6);
    let (loss, grads) = pipeline_run(Schedule::OneFOneB, 3, 6, 12);
    assert!((loss - want_loss).abs() < 1e-5);
    for (g, w) in grads.iter().zip(&want_grads) {
        assert!(g.allclose(w, 2e-4), "grad diff {}", g.max_abs_diff(w));
    }
}

#[test]
fn pipeline_cross_node_costs_more_virtual_time() {
    // stages on System III land on different nodes after 4 devices; more
    // stages = more inter-stage traffic = more virtual time per step
    let time_of = |stages: usize| -> f64 {
        let world = World::new(system_iii());
        let (micros, targets) = micro_batches(4, 77);
        let clocks = world.run_on(stages, |ctx| {
            let devices: Vec<usize> = (0..stages).collect();
            let mut stage = PipelineStage::new(ctx, &devices, stage_slice(13, stages, ctx.rank()));
            let mut lf = |micro: u64, out: &Tensor| loss_of(out, &targets[micro as usize]);
            let _ = stage.run_step(
                Schedule::GPipe,
                stage.is_first().then_some(&micros[..]),
                stage
                    .is_last()
                    .then_some(&mut lf as &mut dyn FnMut(u64, &Tensor) -> (f32, Tensor)),
                4,
            );
            ctx.clock()
        });
        clocks.into_iter().fold(0.0, f64::max)
    };
    let t1 = time_of(1);
    let t2 = time_of(2);
    assert!(
        t2 > t1,
        "inter-stage hops must cost virtual time: {t2} vs {t1}"
    );
}
