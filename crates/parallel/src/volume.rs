//! Closed-form communication volumes of Table 1 and the Fig 5 scaling
//! series.
//!
//! All formulas count *elements transferred in total across all devices* for
//! the matrix multiplication `Y = W X` with `X: (b, s, h)`, `W: (h, h)`,
//! `Y: (b, s, h)`, exactly as the paper defines them.

/// Problem sizes for one `Y = W X` multiplication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatmulShape {
    /// Batch size `b`.
    pub b: usize,
    /// Sequence length `s`.
    pub s: usize,
    /// Hidden size `h` (weight is `h x h`).
    pub h: usize,
}

impl MatmulShape {
    /// Elements of the input `X` (`S_X = b * s * h`).
    pub fn s_x(&self) -> u64 {
        (self.b * self.s * self.h) as u64
    }

    /// Elements of the weight `W` (`S_W = h * h`).
    pub fn s_w(&self) -> u64 {
        (self.h * self.h) as u64
    }

    /// Elements of the output `Y` (equal to `S_X` for a square weight).
    pub fn s_y(&self) -> u64 {
        self.s_x()
    }
}

/// Table 1, row "1D": `2 (p - 1) S_X`.
pub fn volume_1d(shape: MatmulShape, p: usize) -> u64 {
    assert!(p >= 1);
    2 * (p as u64 - 1) * shape.s_x()
}

/// Table 1, row "2D": `3 (j - 1) (S_X + S_W)` on a `j x j` grid (`p = j^2`).
pub fn volume_2d(shape: MatmulShape, j: usize) -> u64 {
    assert!(j >= 1);
    3 * (j as u64 - 1) * (shape.s_x() + shape.s_w())
}

/// Table 1, row "2.5D": `3 (k - 1) (S_X / d + S_W)` on a `k x k x d` cuboid
/// (`p = d k^2`).
pub fn volume_25d(shape: MatmulShape, k: usize, d: usize) -> u64 {
    assert!(k >= 1 && d >= 1);
    3 * (k as u64 - 1) * (shape.s_x() / d as u64 + shape.s_w())
}

/// Table 1, row "3D": `2 (l - 1) / l * (S_X + S_W + S_Y)` on an `l^3` cube.
pub fn volume_3d(shape: MatmulShape, l: usize) -> u64 {
    assert!(l >= 1);
    2 * (l as u64 - 1) * (shape.s_x() + shape.s_w() + shape.s_y()) / l as u64
}

/// Grid-shape requirements of each mode (Section 2.2): returns the grid
/// parameter for `p` devices, or `None` when `p` does not fit the topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpMode {
    OneD,
    TwoD,
    TwoPointFiveD { depth: usize },
    ThreeD,
}

impl TpMode {
    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            TpMode::OneD => "1D".into(),
            TpMode::TwoD => "2D".into(),
            TpMode::TwoPointFiveD { depth } => format!("2.5D (d={depth})"),
            TpMode::ThreeD => "3D".into(),
        }
    }

    /// Whether `p` devices can form this mode's required topology
    /// (`any`, `j^2`, `d*k^2`, `l^3` respectively).
    pub fn admits(&self, p: usize) -> bool {
        match self {
            TpMode::OneD => p >= 1,
            TpMode::TwoD => int_sqrt(p).is_some(),
            TpMode::TwoPointFiveD { depth } => {
                p.is_multiple_of(*depth) && int_sqrt(p / depth).is_some()
            }
            TpMode::ThreeD => int_cbrt(p).is_some(),
        }
    }

    /// Total communication volume (elements) for `Y = W X` over `p` devices.
    /// Panics if `p` does not fit the mode's topology.
    pub fn volume(&self, shape: MatmulShape, p: usize) -> u64 {
        assert!(self.admits(p), "{} does not admit p = {p}", self.label());
        match self {
            TpMode::OneD => volume_1d(shape, p),
            TpMode::TwoD => volume_2d(shape, int_sqrt(p).unwrap()),
            TpMode::TwoPointFiveD { depth } => {
                volume_25d(shape, int_sqrt(p / depth).unwrap(), *depth)
            }
            TpMode::ThreeD => volume_3d(shape, int_cbrt(p).unwrap()),
        }
    }
}

/// Exact integer square root, if `p` is a perfect square.
pub fn int_sqrt(p: usize) -> Option<usize> {
    let r = (p as f64).sqrt().round() as usize;
    (r * r == p).then_some(r)
}

/// Exact integer cube root, if `p` is a perfect cube.
pub fn int_cbrt(p: usize) -> Option<usize> {
    let r = (p as f64).cbrt().round() as usize;
    (r * r * r == p).then_some(r)
}

/// The Fig 5 series: communication volume of every admissible mode for each
/// device count, at the figure's shape (h = 1024, s = 512, b = 32).
pub fn fig5_series(device_counts: &[usize]) -> Vec<(usize, Vec<(String, u64)>)> {
    let shape = MatmulShape {
        b: 32,
        s: 512,
        h: 1024,
    };
    device_counts
        .iter()
        .map(|&p| {
            let mut rows = Vec::new();
            for mode in [
                TpMode::OneD,
                TpMode::TwoD,
                TpMode::TwoPointFiveD { depth: 2 },
                TpMode::ThreeD,
            ] {
                if mode.admits(p) {
                    rows.push((mode.label(), mode.volume(shape, p)));
                }
            }
            (p, rows)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: MatmulShape = MatmulShape {
        b: 32,
        s: 512,
        h: 1024,
    };

    #[test]
    fn element_counts() {
        assert_eq!(SHAPE.s_x(), 32 * 512 * 1024);
        assert_eq!(SHAPE.s_w(), 1024 * 1024);
        assert_eq!(SHAPE.s_y(), SHAPE.s_x());
    }

    #[test]
    fn integer_roots() {
        assert_eq!(int_sqrt(16), Some(4));
        assert_eq!(int_sqrt(15), None);
        assert_eq!(int_cbrt(27), Some(3));
        assert_eq!(int_cbrt(26), None);
        assert_eq!(int_cbrt(64), Some(4));
    }

    #[test]
    fn topology_admission_rules() {
        assert!(TpMode::OneD.admits(7));
        assert!(TpMode::TwoD.admits(16));
        assert!(!TpMode::TwoD.admits(8));
        assert!(TpMode::TwoPointFiveD { depth: 2 }.admits(8)); // 2 * 2^2
        assert!(!TpMode::TwoPointFiveD { depth: 2 }.admits(6));
        assert!(TpMode::ThreeD.admits(8));
        assert!(!TpMode::ThreeD.admits(16));
    }

    #[test]
    fn single_device_volumes_are_zero() {
        for mode in [
            TpMode::OneD,
            TpMode::TwoD,
            TpMode::TwoPointFiveD { depth: 1 },
            TpMode::ThreeD,
        ] {
            assert_eq!(mode.volume(SHAPE, 1), 0, "{}", mode.label());
        }
    }

    #[test]
    fn advanced_modes_beat_1d_at_scale() {
        // the crux of Fig 5: by 64 devices, every advanced mode moves less
        for p in [64usize, 256] {
            let v1 = TpMode::OneD.volume(SHAPE, p);
            assert!(TpMode::TwoD.volume(SHAPE, p) < v1, "2D at p={p}");
            if TpMode::ThreeD.admits(p) {
                assert!(TpMode::ThreeD.volume(SHAPE, p) < v1, "3D at p={p}");
            }
            let m25 = TpMode::TwoPointFiveD { depth: 4 };
            if m25.admits(p) {
                assert!(m25.volume(SHAPE, p) < v1, "2.5D at p={p}");
            }
        }
    }

    #[test]
    fn one_d_grows_linearly_advanced_sublinearly() {
        let v1_small = TpMode::OneD.volume(SHAPE, 16) as f64;
        let v1_large = TpMode::OneD.volume(SHAPE, 256) as f64;
        assert!((v1_large / v1_small - 17.0).abs() < 0.1); // (256-1)/(16-1)
        let v2_small = TpMode::TwoD.volume(SHAPE, 16) as f64;
        let v2_large = TpMode::TwoD.volume(SHAPE, 256) as f64;
        assert!(v2_large / v2_small < 6.0); // (sqrt grows ~4x)
    }

    #[test]
    fn depth_reduces_25d_volume() {
        // more depth shards the activations further
        let v_d1 = volume_25d(SHAPE, 4, 1);
        let v_d4 = volume_25d(SHAPE, 4, 4);
        assert!(v_d4 < v_d1);
    }

    #[test]
    fn fig5_series_mode_availability() {
        let series = fig5_series(&[4, 8, 16, 64]);
        let labels_at = |p: usize| -> Vec<String> {
            series
                .iter()
                .find(|(q, _)| *q == p)
                .unwrap()
                .1
                .iter()
                .map(|(l, _)| l.clone())
                .collect()
        };
        // p=4: 1D and 2D (2.5D d=2 would need k^2=2; 3D needs a cube)
        assert_eq!(labels_at(4), vec!["1D", "2D"]);
        // p=8: 2.5D (d=2, k=2) and 3D (l=2) but not 2D
        assert_eq!(labels_at(8), vec!["1D", "2.5D (d=2)", "3D"]);
        // p=64: everything except 2.5D with depth 2 (32 is not a square)
        assert_eq!(labels_at(64), vec!["1D", "2D", "3D"]);
    }

    #[test]
    fn table1_formula_spot_checks() {
        // hand-computed values
        let s = MatmulShape { b: 1, s: 2, h: 4 };
        // S_X = 8, S_W = 16
        assert_eq!(volume_1d(s, 4), 2 * 3 * 8);
        assert_eq!(volume_2d(s, 2), 3 * (8 + 16));
        assert_eq!(volume_25d(s, 2, 2), 3 * (4 + 16));
        assert_eq!(volume_3d(s, 2), 2 * (8 + 16 + 8) / 2);
    }
}
