//! Vocabulary-parallel embedding and cross-entropy (the Megatron-LM
//! technique Colossal-AI ships for sharding a Transformer *end to end*:
//! with the token embedding and the LM head split along the vocabulary,
//! no rank ever materializes the full `[tokens, vocab]` logit matrix).

use colossalai_autograd::{Layer, Param};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_tensor::init::{self, InitRng};
use colossalai_tensor::Tensor;

/// Token embedding with the vocabulary dimension sharded across the group:
/// rank `r` owns rows `[r * V/p, (r+1) * V/p)`. Lookups outside a rank's
/// slice contribute zero; the all-reduce of the partial lookups rebuilds
/// the full embedding — one collective per forward, like Megatron.
pub struct VocabParallelEmbedding {
    ctx: DeviceCtx,
    group: Group,
    table: Param,
    vocab_global: usize,
    vocab_start: usize,
    cached_indices: Option<Vec<usize>>,
}

impl VocabParallelEmbedding {
    /// Builds from a shared seed: every rank draws the identical global
    /// `[vocab, dim]` table, then keeps its slice (matching
    /// [`colossalai_autograd::Embedding::new`]'s draw order).
    pub fn new(
        ctx: &DeviceCtx,
        group: &Group,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut InitRng,
    ) -> Self {
        let p = group.size();
        assert!(
            vocab.is_multiple_of(p),
            "vocabulary {vocab} not divisible by the parallel size {p}"
        );
        let global = init::normal([vocab, dim], 0.0, 0.02, rng);
        let local = global.chunk(0, p).swap_remove(group.rank());
        VocabParallelEmbedding {
            ctx: ctx.clone(),
            group: group.clone(),
            table: Param::new(format!("{name}.table"), local),
            vocab_global: vocab,
            vocab_start: group.rank() * (vocab / p),
            cached_indices: None,
        }
    }

    fn local_vocab(&self) -> usize {
        self.table.value().dims()[0]
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.table.value().dims()[1]
    }
}

impl Layer for VocabParallelEmbedding {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let dim = self.dim();
        let (start, local) = (self.vocab_start, self.local_vocab());
        let indices: Vec<usize> = x
            .data()
            .iter()
            .map(|&v| {
                let i = v as usize;
                assert!(
                    v >= 0.0 && v.fract() == 0.0 && i < self.vocab_global,
                    "index {v} invalid for vocab {}",
                    self.vocab_global
                );
                i
            })
            .collect();
        let mut out = vec![0.0f32; indices.len() * dim];
        for (row, &i) in indices.iter().enumerate() {
            if (start..start + local).contains(&i) {
                let li = i - start;
                out[row * dim..(row + 1) * dim]
                    .copy_from_slice(&self.table.value().data()[li * dim..(li + 1) * dim]);
            }
        }
        self.cached_indices = Some(indices);
        let mut dims = x.dims().to_vec();
        dims.push(dim);
        let partial = Tensor::from_vec(dims, out);
        self.group.all_reduce(&self.ctx, partial)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let indices = self.cached_indices.take().expect("backward before forward");
        let dim = self.dim();
        let (start, local) = (self.vocab_start, self.local_vocab());
        {
            let grad = self.table.grad_mut().data_mut();
            for (row, &i) in indices.iter().enumerate() {
                if (start..start + local).contains(&i) {
                    let li = i - start;
                    for d in 0..dim {
                        grad[li * dim + d] += dy.data()[row * dim + d];
                    }
                }
            }
        }
        Tensor::zeros(dy.dims()[..dy.rank() - 1].to_vec())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

/// Cross-entropy over vocabulary-sharded logits `[rows, V/p]` without ever
/// gathering the full logit matrix:
///
/// 1. global row max — scalar-per-row `all_reduce_max`;
/// 2. global `sum(exp)` — `all_reduce`;
/// 3. the target logit — contributed by its owning rank, `all_reduce`.
///
/// Returns `(mean loss, local dlogits)`; the gradient is the local slice of
/// `(softmax - onehot) / rows`, so chaining into a column-parallel LM head
/// needs no further conversion.
pub fn vocab_parallel_cross_entropy(
    ctx: &DeviceCtx,
    group: &Group,
    logits_local: &Tensor,
    targets: &[usize],
) -> (f32, Tensor) {
    assert_eq!(logits_local.rank(), 2, "logits must be [rows, vocab/p]");
    let rows = logits_local.dims()[0];
    let local_v = logits_local.dims()[1];
    assert_eq!(targets.len(), rows, "target count mismatch");
    let p = group.size();
    let start = group.rank() * local_v;
    let vocab_global = local_v * p;

    // 1. stable max over the global vocabulary
    let local_max = colossalai_tensor::ops::max_axis(logits_local, 1);
    let global_max = group.all_reduce_max(ctx, local_max);

    // 2. global sum of exp
    let mut exps = logits_local.clone();
    for (r, row) in exps.data_mut().chunks_mut(local_v).enumerate() {
        let m = global_max.data()[r];
        for v in row.iter_mut() {
            *v = (*v - m).exp();
        }
    }
    let local_sum = colossalai_tensor::ops::sum_axis(&exps, 1);
    let global_sum = group.all_reduce(ctx, local_sum);

    // 3. the target logit, owned by exactly one rank per row
    let mut target_partial = Tensor::zeros([rows]);
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < vocab_global, "target {t} out of vocab {vocab_global}");
        if (start..start + local_v).contains(&t) {
            target_partial.data_mut()[r] = logits_local.at(&[r, t - start]);
        }
    }
    let target_logit = group.all_reduce(ctx, target_partial);

    // loss = mean(log(sum) + max - target)
    let mut loss = 0.0f64;
    for r in 0..rows {
        loss += (global_sum.data()[r].ln() + global_max.data()[r] - target_logit.data()[r]) as f64;
    }
    let loss = (loss / rows as f64) as f32;

    // gradient: local softmax minus the one-hot where owned
    let mut grad = exps;
    for (r, row) in grad.data_mut().chunks_mut(local_v).enumerate() {
        let inv = 1.0 / global_sum.data()[r];
        for v in row.iter_mut() {
            *v *= inv;
        }
        let t = targets[r];
        if (start..start + local_v).contains(&t) {
            row[t - start] -= 1.0;
        }
    }
    grad.scale(1.0 / rows as f32);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::Embedding;
    use colossalai_comm::World;
    use colossalai_tensor::ops::cross_entropy;
    use colossalai_topology::systems::system_i;

    #[test]
    fn vocab_parallel_embedding_matches_serial() {
        let (vocab, dim, p) = (12usize, 4usize, 4usize);
        let x = Tensor::from_vec([2, 3], vec![0., 5., 11., 3., 5., 7.]);
        let dy_seed = 801;

        let mut rng = init::rng(800);
        let mut serial = Embedding::new("emb", vocab, dim, &mut rng);
        let y_want = serial.forward(&x);
        let mut drng = init::rng(dy_seed);
        let dy = init::uniform([2, 3, dim], -1.0, 1.0, &mut drng);
        let _ = serial.backward(&dy);
        let dtable_want = serial.visit_collect();

        let world = World::new(system_i());
        let results = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rng = init::rng(800);
            let mut emb = VocabParallelEmbedding::new(ctx, &g, "emb", vocab, dim, &mut rng);
            let y = emb.forward(&x);
            let mut drng = init::rng(dy_seed);
            let dy = init::uniform([2, 3, dim], -1.0, 1.0, &mut drng);
            let _ = emb.backward(&dy);
            let mut grads = Vec::new();
            emb.visit_params(&mut |p| grads.push(p.grad().clone()));
            (y, grads.swap_remove(0))
        });
        for (y, _) in &results {
            assert!(
                y.allclose(&y_want, 1e-5),
                "fwd diff {}",
                y.max_abs_diff(&y_want)
            );
        }
        // the table-grad shards reassemble the serial table grad
        let shards: Vec<Tensor> = results.iter().map(|(_, g)| g.clone()).collect();
        let dtable_got = Tensor::cat(&shards, 0);
        assert!(dtable_got.allclose(&dtable_want, 1e-5));
    }

    trait VisitCollect {
        fn visit_collect(&mut self) -> Tensor;
    }
    impl VisitCollect for Embedding {
        fn visit_collect(&mut self) -> Tensor {
            let mut out = Tensor::zeros([0]);
            self.visit_params(&mut |p| out = p.grad().clone());
            out
        }
    }

    #[test]
    fn parallel_cross_entropy_matches_serial() {
        let (rows, vocab, p) = (5usize, 8usize, 4usize);
        let mut rng = init::rng(810);
        let logits = init::uniform([rows, vocab], -3.0, 3.0, &mut rng);
        let targets = vec![0usize, 3, 7, 4, 2];
        let (want_loss, want_grad) = cross_entropy(&logits, &targets);

        let world = World::new(system_i());
        let results = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let local = logits.chunk(1, p).swap_remove(g.rank());
            vocab_parallel_cross_entropy(ctx, &g, &local, &targets)
        });
        for (r, (loss, grad)) in results.iter().enumerate() {
            assert!(
                (loss - want_loss).abs() < 1e-5,
                "loss {loss} vs {want_loss}"
            );
            let want_slice = want_grad.chunk(1, p).swap_remove(r);
            assert!(
                grad.allclose(&want_slice, 1e-6),
                "rank {r} grad diff {}",
                grad.max_abs_diff(&want_slice)
            );
        }
    }

    #[test]
    fn parallel_ce_is_stable_under_huge_logits() {
        // the global-max subtraction must prevent overflow even when the
        // row max lives on another rank
        let (rows, vocab, p) = (2usize, 4usize, 2usize);
        let logits = Tensor::from_vec(
            [rows, vocab],
            vec![
                1000.0, 0.0, 0.0, 999.0, // max on rank 0
                0.0, 2000.0, 1999.0, 0.0, // max on rank 0's slice too? no: col 1
            ],
        );
        let targets = vec![0usize, 1];
        let world = World::new(system_i());
        let results = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let local = logits.chunk(1, p).swap_remove(g.rank());
            vocab_parallel_cross_entropy(ctx, &g, &local, &targets)
        });
        for (loss, grad) in &results {
            assert!(loss.is_finite(), "loss overflowed");
            assert!(grad.data().iter().all(|v| v.is_finite()));
        }
        // near-perfect predictions -> near-zero loss
        assert!(results[0].0 < 0.5, "loss {}", results[0].0);
    }

    #[test]
    #[should_panic(expected = "device thread panicked")]
    fn embedding_requires_divisible_vocab() {
        let world = World::new(system_i());
        world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mut rng = init::rng(0);
            let _ = VocabParallelEmbedding::new(ctx, &g, "e", 10, 4, &mut rng);
        });
    }
}
