//! A canonical hybrid-parallel training step used by the backend-parity
//! tests and the `world_scale` bench.
//!
//! The workload exercises every communication primitive a real DP x TP x PP
//! step uses — tensor-parallel all-reduce and all-gather, pipeline
//! point-to-point activation/gradient transfers, data-parallel gradient
//! all-reduce — with fully deterministic synthetic data (a pure hash of
//! `(rank, step, element)`), so its per-step losses, traffic stats and
//! traces are bitwise-comparable across execution backends, scheduler pool
//! sizes and world scales.
//!
//! The step is written as a resumable [`HybridTask`] state machine, so the
//! stackless backend runs it with no per-rank OS thread; [`run_hybrid`]
//! drives the same machine to completion for closure-style callers.

use crate::group::{CollectiveOp, Group};
use crate::task::{Poll, RankTask};
use crate::world::{DeviceCtx, RecvOp};
use colossalai_tensor::Tensor;

/// Shape of a hybrid data x tensor x pipeline parallel run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridSpec {
    /// Data-parallel replicas.
    pub dp: usize,
    /// Tensor-parallel ways within a replica.
    pub tp: usize,
    /// Pipeline stages.
    pub pp: usize,
    /// Elements per rank-local activation/gradient tensor.
    pub elems: usize,
    /// Training steps to run.
    pub steps: usize,
}

impl HybridSpec {
    /// Total world size (`dp * tp * pp`).
    pub fn ranks(&self) -> usize {
        self.dp * self.tp * self.pp
    }

    /// `(stage, dp_index, tp_index)` of `rank`. Tensor-parallel neighbors
    /// get adjacent ranks (they communicate most), then data-parallel
    /// replicas, then pipeline stages — the usual hybrid rank layout.
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        let tp_idx = rank % self.tp;
        let dp_idx = (rank / self.tp) % self.dp;
        let stage = rank / (self.tp * self.dp);
        (stage, dp_idx, tp_idx)
    }

    /// Inverse of [`HybridSpec::coords`].
    pub fn rank_of(&self, stage: usize, dp_idx: usize, tp_idx: usize) -> usize {
        (stage * self.dp + dp_idx) * self.tp + tp_idx
    }
}

/// Deterministic synthetic activation value: splitmix64 of the element's
/// global coordinates folded to roughly [-1, 1). A pure function, so every
/// backend generates identical data without any shared RNG state.
fn synth(rank: usize, step: usize, i: usize) -> f32 {
    let mut z = (rank as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((step as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(i as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    ((z >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
}

/// This rank's communicators and pipeline neighbors, resolved on the first
/// poll (group construction needs a `DeviceCtx`).
struct Wiring {
    tp_group: Group,
    dp_group: Group,
    next: Option<usize>,
    prev: Option<usize>,
    tp_idx: usize,
}

/// Where a [`HybridTask`] is inside the current training step. Every
/// variant that can park holds its in-flight resumable op, so a resume
/// continues exactly where the rank left off.
enum StepStage {
    /// About to synthesize this step's activation (or done, if the step
    /// counter has reached the spec).
    StepStart,
    /// Forward tensor-parallel all-reduce of partial activations.
    TpReduce(CollectiveOp),
    /// Waiting for the upstream stage's forward activation.
    RecvFwd { act: Tensor, op: RecvOp },
    /// Waiting for the downstream stage's backward gradient.
    RecvBwd { grad: Tensor, op: RecvOp },
    /// Backward tensor-parallel all-gather of sharded weight gradients.
    TpGather { grad: Tensor, op: CollectiveOp },
    /// Data-parallel gradient all-reduce closing the step.
    DpReduce(CollectiveOp),
}

/// Forward-side continuation after the activation is complete (TP-reduced
/// and, on non-first stages, combined with the upstream hand-off). A free
/// function so callers holding a borrow of the task's wiring can still
/// store the returned stage.
fn after_fwd(ctx: &DeviceCtx, spec: HybridSpec, w: &Wiring, step: usize, act: Tensor) -> StepStage {
    ctx.charge_flops_f32(4 * spec.elems as u64);
    let fwd_tag = (step * 2) as u64;
    if let Some(next) = w.next {
        ctx.send(next, fwd_tag, act.clone());
    }
    // ---- backward: gradients flow back through the pipeline
    let mut grad = act;
    grad.scale(1.0 / spec.ranks() as f32);
    match w.next {
        Some(next) => StepStage::RecvBwd {
            grad,
            op: ctx.start_recv(next, fwd_tag + 1),
        },
        None => after_bwd(ctx, spec, w, step, grad),
    }
}

/// Backward-side continuation once the local gradient is complete.
fn after_bwd(
    ctx: &DeviceCtx,
    spec: HybridSpec,
    w: &Wiring,
    step: usize,
    grad: Tensor,
) -> StepStage {
    ctx.charge_flops_f32(8 * spec.elems as u64);
    if let Some(prev) = w.prev {
        ctx.send(prev, (step * 2 + 1) as u64, grad.clone());
    }
    // TP ranks hold sharded weight gradients; gather the full view
    let shard = grad.chunk(0, spec.tp).swap_remove(w.tp_idx);
    let op = w.tp_group.start_all_gather_cat(shard, 0);
    StepStage::TpGather { grad, op }
}

/// The hybrid-parallel training loop as a resumable rank task: per step a
/// forward pass (TP all-reduce of partial activations, P2P hand-off along
/// the pipeline, compute charges), a backward pass (P2P gradient
/// back-propagation, TP all-gather of sharded gradients), and a
/// data-parallel gradient all-reduce; the step loss is the mean of the
/// DP-reduced gradient.
///
/// Identical arithmetic to the classic blocking loop — [`run_hybrid`] is
/// now literally `ctx.block_on` of this task — so losses, stats and traces
/// stay bitwise identical across all three backends.
pub struct HybridTask {
    spec: HybridSpec,
    wiring: Option<Wiring>,
    step: usize,
    losses: Vec<f32>,
    stage: StepStage,
}

impl HybridTask {
    /// A task for this rank's share of `spec` (validated on first poll).
    pub fn new(spec: HybridSpec) -> HybridTask {
        HybridTask {
            spec,
            wiring: None,
            step: 0,
            losses: Vec::with_capacity(spec.steps),
            stage: StepStage::StepStart,
        }
    }
}

impl RankTask for HybridTask {
    type Output = Vec<f32>;

    fn poll(&mut self, ctx: &DeviceCtx) -> Poll<Vec<f32>> {
        let spec = self.spec;
        if self.wiring.is_none() {
            assert!(spec.dp >= 1 && spec.tp >= 1 && spec.pp >= 1, "empty axis");
            assert!(
                spec.elems >= spec.tp && spec.elems.is_multiple_of(spec.tp),
                "elems must divide evenly into {} TP shards",
                spec.tp
            );
            let rank = ctx.rank();
            let (stage, dp_idx, tp_idx) = spec.coords(rank);
            self.wiring = Some(Wiring {
                tp_group: ctx.group(
                    &(0..spec.tp)
                        .map(|t| spec.rank_of(stage, dp_idx, t))
                        .collect::<Vec<_>>(),
                ),
                dp_group: ctx.group(
                    &(0..spec.dp)
                        .map(|d| spec.rank_of(stage, d, tp_idx))
                        .collect::<Vec<_>>(),
                ),
                next: (stage + 1 < spec.pp).then(|| spec.rank_of(stage + 1, dp_idx, tp_idx)),
                prev: (stage > 0).then(|| spec.rank_of(stage - 1, dp_idx, tp_idx)),
                tp_idx,
            });
        }
        let w = self.wiring.as_ref().expect("wiring initialized above");
        loop {
            match std::mem::replace(&mut self.stage, StepStage::StepStart) {
                StepStage::StepStart => {
                    if self.step == spec.steps {
                        return Poll::Ready(std::mem::take(&mut self.losses));
                    }
                    // ---- forward: partial matmul output, TP-combined,
                    // piped onward
                    let act = Tensor::from_vec(
                        [spec.elems],
                        (0..spec.elems)
                            .map(|i| synth(ctx.rank(), self.step, i))
                            .collect(),
                    );
                    ctx.charge_flops_f32(6 * spec.elems as u64);
                    self.stage = StepStage::TpReduce(w.tp_group.start_all_reduce(act));
                }
                StepStage::TpReduce(mut op) => match w.tp_group.poll_collective(ctx, &mut op) {
                    Poll::Pending(key) => {
                        self.stage = StepStage::TpReduce(op);
                        return Poll::Pending(key);
                    }
                    Poll::Ready(act) => match w.prev {
                        Some(prev) => {
                            self.stage = StepStage::RecvFwd {
                                act,
                                op: ctx.start_recv(prev, (self.step * 2) as u64),
                            };
                        }
                        None => self.stage = after_fwd(ctx, spec, w, self.step, act),
                    },
                },
                StepStage::RecvFwd { mut act, mut op } => match op.poll(ctx) {
                    Poll::Pending(key) => {
                        self.stage = StepStage::RecvFwd { act, op };
                        return Poll::Pending(key);
                    }
                    Poll::Ready(upstream) => {
                        act.axpy(0.5, &upstream);
                        self.stage = after_fwd(ctx, spec, w, self.step, act);
                    }
                },
                StepStage::RecvBwd { mut grad, mut op } => match op.poll(ctx) {
                    Poll::Pending(key) => {
                        self.stage = StepStage::RecvBwd { grad, op };
                        return Poll::Pending(key);
                    }
                    Poll::Ready(downstream) => {
                        grad.axpy(0.5, &downstream);
                        self.stage = after_bwd(ctx, spec, w, self.step, grad);
                    }
                },
                StepStage::TpGather { mut grad, mut op } => {
                    match w.tp_group.poll_collective(ctx, &mut op) {
                        Poll::Pending(key) => {
                            self.stage = StepStage::TpGather { grad, op };
                            return Poll::Pending(key);
                        }
                        Poll::Ready(gathered) => {
                            grad.axpy(0.25, &gathered);
                            // ---- optimizer: DP gradient reduction, then
                            // the step loss
                            self.stage = StepStage::DpReduce(w.dp_group.start_all_reduce(grad));
                        }
                    }
                }
                StepStage::DpReduce(mut op) => match w.dp_group.poll_collective(ctx, &mut op) {
                    Poll::Pending(key) => {
                        self.stage = StepStage::DpReduce(op);
                        return Poll::Pending(key);
                    }
                    Poll::Ready(reduced) => {
                        ctx.charge_flops_f32(2 * spec.elems as u64);
                        self.losses.push(reduced.mean());
                        self.step += 1;
                    }
                },
            }
        }
    }
}

/// Runs `spec.steps` hybrid-parallel training steps on this rank and
/// returns one loss value per step — the blocking driver of
/// [`HybridTask`].
///
/// All ranks of a step report identical losses only within a
/// `(stage, tp_idx)` slice — the returned vector is per-rank, and parity
/// checks compare the whole `Vec<Vec<f32>>` across backends.
pub fn run_hybrid(ctx: &DeviceCtx, spec: &HybridSpec) -> Vec<f32> {
    ctx.block_on(HybridTask::new(*spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use colossalai_topology::systems::system_iii;

    #[test]
    fn coords_roundtrip() {
        let spec = HybridSpec {
            dp: 2,
            tp: 4,
            pp: 2,
            elems: 64,
            steps: 1,
        };
        assert_eq!(spec.ranks(), 16);
        for rank in 0..spec.ranks() {
            let (s, d, t) = spec.coords(rank);
            assert_eq!(spec.rank_of(s, d, t), rank);
        }
        // tp fastest: ranks 0..4 share stage 0 / replica 0
        assert_eq!(spec.coords(3), (0, 0, 3));
        assert_eq!(spec.coords(4), (0, 1, 0));
        assert_eq!(spec.coords(8), (1, 0, 0));
    }

    #[test]
    fn hybrid_step_runs_and_is_reproducible() {
        let spec = HybridSpec {
            dp: 2,
            tp: 2,
            pp: 2,
            elems: 32,
            steps: 2,
        };
        let run = || {
            let world = World::new(system_iii());
            world.run_on(spec.ranks(), |ctx| run_hybrid(ctx, &spec))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same workload, same world: identical losses");
        assert_eq!(a.len(), 8);
        assert_eq!(a[0].len(), 2);
        assert!(a.iter().flatten().all(|l| l.is_finite()));
    }

    #[test]
    fn hybrid_task_matches_run_hybrid_stackless() {
        // the task driven by the stackless executor must reproduce the
        // blocking loop bit for bit — losses AND stats
        let spec = HybridSpec {
            dp: 2,
            tp: 2,
            pp: 2,
            elems: 32,
            steps: 2,
        };
        let world = World::new(system_iii());
        let reference = world.run_on(spec.ranks(), |ctx| run_hybrid(ctx, &spec));
        let ref_stats = world.stats();

        let world2 = World::new(system_iii());
        world2.set_backend(Some(crate::world::WorldBackend::Stackless { pool: 1 }));
        let stackless = world2.run_tasks(spec.ranks(), |_rank| HybridTask::new(spec));
        assert_eq!(reference, stackless);
        assert_eq!(ref_stats, world2.stats());
    }
}
