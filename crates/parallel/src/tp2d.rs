//! 2D tensor parallelism over a `j x j` device grid, built on the SUMMA
//! distributed matrix-multiplication algorithm (van de Geijn & Watts).
//!
//! Unlike 1D parallelism, the *input and output activations are sharded
//! too*: device `(r, c)` holds tile `(r, c)` of every `[M, K]` activation
//! and of every `[K, N]` weight, so per-device memory falls as `1/p` for
//! weights *and* activations — the effect measured in Fig 8.

use colossalai_autograd::{Layer, Param};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_tensor::ops::sum_axis;
use colossalai_tensor::{matmul, matmul_at, matmul_bt, Tensor};
use colossalai_topology::DeviceId;

/// A device's place in the `j x j` grid, with its row and column process
/// groups.
#[derive(Clone)]
pub struct Grid2d {
    pub j: usize,
    pub row: usize,
    pub col: usize,
    pub row_group: Group,
    pub col_group: Group,
}

impl Grid2d {
    /// Builds the grid over `members` (row-major order: device `members[r*j
    /// + c]` sits at `(r, c)`). Every member must call with the same list.
    pub fn new(ctx: &DeviceCtx, members: &[DeviceId]) -> Self {
        let p = members.len();
        let j = crate::volume::int_sqrt(p).unwrap_or_else(|| {
            panic!("2D tensor parallelism requires a square device count, got {p}")
        });
        let my = members
            .iter()
            .position(|&m| m == ctx.rank())
            .expect("calling device not in 2D grid");
        let (row, col) = (my / j, my % j);
        let row_members: Vec<DeviceId> = members[row * j..(row + 1) * j].to_vec();
        let col_members: Vec<DeviceId> = (0..j).map(|r| members[r * j + col]).collect();
        Grid2d {
            j,
            row,
            col,
            row_group: ctx.group(&row_members),
            col_group: ctx.group(&col_members),
        }
    }
}

/// Slices tile `(r, c)` of a global `[M, K]` matrix for a `j x j` grid.
pub fn tile_of(global: &Tensor, j: usize, r: usize, c: usize) -> Tensor {
    assert_eq!(global.rank(), 2, "tile_of expects a collapsed matrix");
    let (m, k) = (global.dims()[0], global.dims()[1]);
    assert!(
        m % j == 0 && k % j == 0,
        "matrix {m}x{k} not tileable by {j}"
    );
    global
        .narrow(0, r * (m / j), m / j)
        .narrow(1, c * (k / j), k / j)
}

/// Reassembles a `j x j` list of tiles (row-major) into the global matrix
/// (test helper, the inverse of [`tile_of`]).
pub fn assemble_tiles(tiles: &[Tensor], j: usize) -> Tensor {
    assert_eq!(tiles.len(), j * j);
    let rows: Vec<Tensor> = (0..j)
        .map(|r| Tensor::cat(&tiles[r * j..(r + 1) * j], 1))
        .collect();
    Tensor::cat(&rows, 0)
}

/// 2D-parallel linear layer `Y = X W + b`.
///
/// `X` tiles: `[M/j, K/j]` at `(r, c)`; `W` tiles: `[K/j, N/j]`; bias is
/// sharded by column (`[N/j]`, replicated down each grid column). Forward
/// and backward are three SUMMA passes (`Y = X W`, `dX = dY W^T`,
/// `dW = X^T dY`) — the "3" in Table 1's `3(j-1)(S_X + S_W)`.
pub struct Linear2d {
    ctx: DeviceCtx,
    grid: Grid2d,
    w: Param,
    bias: Option<Param>,
    cached_x: Option<Tensor>,
}

impl Linear2d {
    /// Builds from global weight/bias, sharding locally.
    pub fn from_global(
        ctx: &DeviceCtx,
        grid: &Grid2d,
        name: &str,
        w_global: &Tensor,
        b_global: Option<&Tensor>,
    ) -> Self {
        let j = grid.j;
        let w = tile_of(w_global, j, grid.row, grid.col);
        let bias = b_global.map(|b| {
            let n = b.numel();
            Param::new(
                format!("{name}.bias"),
                b.narrow(0, grid.col * (n / j), n / j),
            )
        });
        Linear2d {
            ctx: ctx.clone(),
            grid: grid.clone(),
            w: Param::new(format!("{name}.weight"), w),
            bias,
            cached_x: None,
        }
    }

    /// SUMMA pass computing `C_rc = sum_l A_rl B_lc` where this rank holds
    /// `A_rc` and `B_rc`.
    fn summa_forward(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let g = &self.grid;
        let mut c_tile = Tensor::zeros([a.dims()[0], b.dims()[1]]);
        for l in 0..g.j {
            // A panel travels along the row; B panel along the column
            let a_panel = g.row_group.broadcast(
                &self.ctx,
                if g.col == l {
                    a.clone()
                } else {
                    Tensor::zeros([0])
                },
                l,
            );
            let b_panel = g.col_group.broadcast(
                &self.ctx,
                if g.row == l {
                    b.clone()
                } else {
                    Tensor::zeros([0])
                },
                l,
            );
            c_tile.axpy(1.0, &matmul(&a_panel, &b_panel));
        }
        c_tile
    }
}

impl Layer for Linear2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.rank(),
            2,
            "Linear2d operates on collapsed [M/j, K/j] tiles"
        );
        self.cached_x = Some(x.clone());
        let mut y = self.summa_forward(x, self.w.value());
        if let Some(b) = &self.bias {
            y = y.add_bias(b.value());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let g = self.grid.clone();
        let x = self.cached_x.take().expect("backward before forward");

        // bias gradient: column sums of dY, reduced over the grid column
        if let Some(b) = &mut self.bias {
            let partial = sum_axis(dy, 0);
            let full = g.col_group.all_reduce(&self.ctx, partial);
            b.accumulate_grad(&full);
        }

        // pass 2: dX_rl = sum_c dY_rc (W^T)_cl = sum_c dY_rc W_lc^T
        let mut dx = Tensor::zeros(x.shape().clone());
        for l in 0..g.j {
            let w_panel = g.col_group.broadcast(
                &self.ctx,
                if g.row == l {
                    self.w.value().clone()
                } else {
                    Tensor::zeros([0])
                },
                l,
            );
            let partial = matmul_bt(dy, &w_panel);
            let reduced = g.row_group.reduce_sum(&self.ctx, partial, l);
            if g.col == l {
                dx.axpy(1.0, &reduced);
            }
        }

        // pass 3: dW_lc = sum_r X_rl^T dY_rc
        let mut dw = Tensor::zeros(self.w.value().shape().clone());
        for l in 0..g.j {
            let x_panel = g.row_group.broadcast(
                &self.ctx,
                if g.col == l {
                    x.clone()
                } else {
                    Tensor::zeros([0])
                },
                l,
            );
            let partial = matmul_at(&x_panel, dy);
            let reduced = g.col_group.reduce_sum(&self.ctx, partial, l);
            if g.row == l {
                dw.axpy(1.0, &reduced);
            }
        }
        self.w.accumulate_grad(&dw);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::Linear;
    use colossalai_comm::{OpKind, World};
    use colossalai_tensor::init;
    use colossalai_topology::systems::{system_i, system_iii};

    #[test]
    fn tile_assemble_roundtrip() {
        let g = Tensor::arange(36).reshaped([6, 6]);
        for j in [1usize, 2, 3] {
            let tiles: Vec<Tensor> = (0..j * j).map(|i| tile_of(&g, j, i / j, i % j)).collect();
            assert_eq!(assemble_tiles(&tiles, j), g);
        }
    }

    fn equivalence_case(j: usize, m: usize, k: usize, n: usize, with_bias: bool, seed: u64) {
        let p = j * j;
        let mut rng = init::rng(seed);
        let w = init::lecun_normal(k, n, &mut rng);
        let b = with_bias.then(|| init::uniform([n], -0.2, 0.2, &mut rng));
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let dy = init::uniform([m, n], -1.0, 1.0, &mut rng);

        let mut serial = Linear::from_parts("s", w.clone(), b.clone());
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);

        let cluster = if p <= 8 { system_i() } else { system_iii() };
        let world = World::new(cluster);
        let results = world.run_on(p, |ctx| {
            let members: Vec<usize> = (0..p).collect();
            let grid = Grid2d::new(ctx, &members);
            let (r, c) = (grid.row, grid.col);
            let mut l = Linear2d::from_global(ctx, &grid, "l2d", &w, b.as_ref());
            let y_tile = l.forward(&tile_of(&x, j, r, c));
            let dx_tile = l.backward(&tile_of(&dy, j, r, c));
            let mut grads = Vec::new();
            l.visit_params(&mut |p| grads.push(p.grad().clone()));
            (y_tile, dx_tile, grads)
        });

        let y_tiles: Vec<Tensor> = results.iter().map(|(y, _, _)| y.clone()).collect();
        let dx_tiles: Vec<Tensor> = results.iter().map(|(_, dx, _)| dx.clone()).collect();
        let y_got = assemble_tiles(&y_tiles, j);
        let dx_got = assemble_tiles(&dx_tiles, j);
        assert!(
            y_got.allclose(&y_want, 1e-3),
            "fwd diff {}",
            y_got.max_abs_diff(&y_want)
        );
        assert!(
            dx_got.allclose(&dx_want, 1e-3),
            "dx diff {}",
            dx_got.max_abs_diff(&dx_want)
        );

        // weight gradient tiles reassemble the serial gradient
        let dw_tiles: Vec<Tensor> = results.iter().map(|(_, _, g)| g[0].clone()).collect();
        let dw_got = assemble_tiles(&dw_tiles, j);
        let dw_want = serial.weight().grad();
        assert!(
            dw_got.allclose(dw_want, 1e-3),
            "dw diff {}",
            dw_got.max_abs_diff(dw_want)
        );

        if with_bias {
            // bias grads: each column shard equals the serial slice, and is
            // replicated down the column
            let db_want = serial.bias().unwrap().grad();
            for (idx, (_, _, g)) in results.iter().enumerate() {
                let c = idx % j;
                let want = db_want.narrow(0, c * (n / j), n / j);
                assert!(g[1].allclose(&want, 1e-3), "db tile ({idx})");
            }
        }
    }

    #[test]
    fn linear2d_matches_serial_2x2() {
        equivalence_case(2, 4, 6, 8, true, 200);
    }

    #[test]
    fn linear2d_matches_serial_2x2_no_bias() {
        equivalence_case(2, 6, 4, 4, false, 201);
    }

    #[test]
    fn linear2d_matches_serial_3x3() {
        equivalence_case(3, 6, 9, 12, true, 202);
    }

    #[test]
    fn forward_broadcast_volume_matches_summa() {
        // one forward pass moves (j-1)(S_X + S_W) elements via broadcasts
        let j = 2;
        let (m, k, n) = (8, 8, 8);
        let mut rng = init::rng(203);
        let w = init::lecun_normal(k, n, &mut rng);
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let world = World::new(system_i());
        world.run_on(j * j, |ctx| {
            let members: Vec<usize> = (0..j * j).collect();
            let grid = Grid2d::new(ctx, &members);
            let mut l = Linear2d::from_global(ctx, &grid, "l", &w, None);
            let _ = l.forward(&tile_of(&x, j, grid.row, grid.col));
        });
        let s_x = (m * k) as u64;
        let s_w = (k * n) as u64;
        let measured = world.stats().elements_of(OpKind::Broadcast);
        assert_eq!(measured, (j as u64 - 1) * (s_x + s_w));
    }

    #[test]
    fn full_fwd_bwd_volume_close_to_table1() {
        // fwd + bwd moves 3 passes of panels; Table 1 approximates this as
        // 3(j-1)(S_X + S_W) for square shapes — check we are within 1.5x
        let j = 2;
        let (m, k, n) = (8, 8, 8);
        let mut rng = init::rng(204);
        let w = init::lecun_normal(k, n, &mut rng);
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let dy = init::uniform([m, n], -1.0, 1.0, &mut rng);
        let world = World::new(system_i());
        world.run_on(j * j, |ctx| {
            let members: Vec<usize> = (0..j * j).collect();
            let grid = Grid2d::new(ctx, &members);
            let mut l = Linear2d::from_global(ctx, &grid, "l", &w, None);
            let _ = l.forward(&tile_of(&x, j, grid.row, grid.col));
            let _ = l.backward(&tile_of(&dy, j, grid.row, grid.col));
        });
        let stats = world.stats();
        let measured = stats.elements_of(OpKind::Broadcast) + stats.elements_of(OpKind::Reduce);
        let table1 = crate::volume::volume_2d(crate::volume::MatmulShape { b: 1, s: m, h: k }, j);
        let ratio = measured as f64 / table1 as f64;
        assert!(
            (0.66..1.5).contains(&ratio),
            "measured {measured} vs table {table1}"
        );
    }

    #[test]
    #[should_panic(expected = "device thread panicked")]
    fn grid_requires_square_count() {
        let world = World::new(system_i());
        world.run_on(3, |ctx| {
            let members: Vec<usize> = (0..3).collect();
            let _ = Grid2d::new(ctx, &members);
        });
    }
}
