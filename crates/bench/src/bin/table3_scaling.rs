//! E6 — Table 3: ViT tensor-parallel throughput on System IV (64x P100 over
//! the Cray Aries fabric), 4 to 64 GPUs, with the paper's per-row model
//! configurations.

use colossalai_bench::print_table;
use colossalai_models::TransformerConfig;
use colossalai_parallel::throughput::tp_best_throughput;
use colossalai_parallel::TpMode;
use colossalai_topology::systems::{fat_tree_512, system_iv};

fn main() {
    let cluster = system_iv();
    // (gpus, modes) per Table 3 row group; model config per the paper:
    // 24L/2048h/32H for 4-8 GPUs, 32L/4096h/64H from 16 GPUs on
    let row_groups: Vec<(usize, Vec<TpMode>)> = vec![
        (
            4,
            vec![
                TpMode::OneD,
                TpMode::TwoD,
                TpMode::TwoPointFiveD { depth: 1 },
            ],
        ),
        (
            8,
            vec![
                TpMode::OneD,
                TpMode::TwoPointFiveD { depth: 2 },
                TpMode::ThreeD,
            ],
        ),
        (
            16,
            vec![
                TpMode::OneD,
                TpMode::TwoD,
                TpMode::TwoPointFiveD { depth: 1 },
            ],
        ),
        (32, vec![TpMode::OneD, TpMode::TwoPointFiveD { depth: 2 }]),
        (
            64,
            vec![
                TpMode::OneD,
                TpMode::TwoD,
                TpMode::TwoPointFiveD { depth: 4 },
                TpMode::ThreeD,
            ],
        ),
    ];

    let mut rows = Vec::new();
    for (p, modes) in &row_groups {
        let cfg = if *p <= 8 {
            TransformerConfig::vit_table3_small()
        } else {
            TransformerConfig::vit_table3_large()
        };
        let devices: Vec<usize> = (0..*p).collect();
        let base = tp_best_throughput(TpMode::OneD, &cfg, &cluster, &devices)
            .expect("1D always admits")
            .throughput();
        for mode in modes {
            let Some(est) = tp_best_throughput(*mode, &cfg, &cluster, &devices) else {
                continue;
            };
            rows.push(vec![
                p.to_string(),
                mode.label(),
                cfg.layers.to_string(),
                cfg.hidden.to_string(),
                cfg.heads.to_string(),
                est.batch.to_string(),
                format!("{:.2}", est.throughput()),
                if *mode == TpMode::OneD {
                    "-".to_string()
                } else {
                    format!("{:+.1}%", 100.0 * (est.throughput() / base - 1.0))
                },
            ]);
        }
    }
    print_table(
        "Table 3: tensor-parallel ViT throughput on System IV",
        &[
            "#GPUs",
            "mode",
            "layers",
            "hidden",
            "heads",
            "batch",
            "img/s",
            "speedup vs 1D",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: speedups over 1D grow with scale, peaking at \
         +275.5% (2.76x) for 2D on 64 GPUs."
    );

    // Extrapolation past the paper's hardware: the same analytic model on
    // the synthetic 512-GPU fat tree (4 pods x 16 nodes x 8x A100, 2:1
    // oversubscribed spine). 512 = 8^3 admits 3D and 2.5D(depth=2) but is
    // not a perfect square, so 2D is inadmissible at this scale.
    let ft = fat_tree_512();
    let p = 512usize;
    let cfg = TransformerConfig::vit_table3_large();
    let devices: Vec<usize> = (0..p).collect();
    let base = tp_best_throughput(TpMode::OneD, &cfg, &ft, &devices)
        .expect("1D always admits")
        .throughput();
    let mut xrows = Vec::new();
    for mode in [
        TpMode::OneD,
        TpMode::TwoPointFiveD { depth: 2 },
        TpMode::ThreeD,
    ] {
        let Some(est) = tp_best_throughput(mode, &cfg, &ft, &devices) else {
            continue;
        };
        xrows.push(vec![
            p.to_string(),
            mode.label(),
            cfg.layers.to_string(),
            cfg.hidden.to_string(),
            cfg.heads.to_string(),
            est.batch.to_string(),
            format!("{:.2}", est.throughput()),
            if mode == TpMode::OneD {
                "-".to_string()
            } else {
                format!("{:+.1}%", 100.0 * (est.throughput() / base - 1.0))
            },
        ]);
    }
    print_table(
        "Table 3 extrapolation: 512-GPU fat tree (beyond the paper's systems)",
        &[
            "#GPUs",
            "mode",
            "layers",
            "hidden",
            "heads",
            "batch",
            "img/s",
            "speedup vs 1D",
        ],
        &xrows,
    );
    println!(
        "\nNot a paper number: an extrapolation of the same cost model to a \
         512-GPU cluster (see topology::systems::fat_tree_512). The 1D ring \
         crosses the oversubscribed spine every step, so the gap to 2.5D/3D \
         widens further than at 64 GPUs."
    );
}
