//! Scaling benchmark of the stackless world backend: one hybrid
//! DP x TP x PP training step at 64 -> 16384 simulated ranks, every rank a
//! resumable [`HybridTask`] state machine multiplexed onto a fixed worker
//! pool (one running slot per host core).
//!
//! The point being measured is the *world backend*, not the arithmetic:
//! under the legacy thread-per-rank backend a 16384-rank world needs 16384
//! OS threads (stacks + futexes the kernel pays for even while parked —
//! EXPERIMENTS.md measured them as the residual scaling term at 4096
//! ranks), and even the event-driven scheduler still parks one OS thread
//! per rank. The stackless executor keeps rank state on the heap: peak
//! live OS threads equal the pool size at *any* world size.
//!
//! Three derived columns make the scaling claim checkable:
//!
//! * **per-rank-step time** (`wall / (ranks * steps)`) must stay roughly
//!   flat from 64 to 16384 ranks (CI gates the ratio at <= 1.5x).
//! * **wakes/msg** (`World::wake_stats`) must stay ~1 at every size: one
//!   delivery wakes one parked task. O(world) here means the thundering
//!   herd is back.
//! * **peak thr** (`World::thread_stats`) must equal the pool, not the
//!   world size — the tentpole claim, gated at `pool + 4` in CI.
//!
//! At 64 ranks (a size where spawning one OS thread per rank is still
//! cheap) the same workload is re-run under all three backends — threads,
//! scheduler, stackless — and the per-rank losses, traffic stats and trace
//! span sequences are compared bitwise: the backend-parity contract of
//! `tests/world_backend_parity.rs`, here checked inside the shipped
//! artifact. The largest scale also prints the compacted min/med/max trace
//! rollup (per-rank rows elide at >= 64 ranks).
//!
//! `--json` prints one machine-readable object (used by the CI smoke):
//! `{"completed": .., "ranks_max": .., "backend_match_64": ..,
//!   "wall_ms_max": .., "pool": .., "peak_threads": ..,
//!   "wakeups_per_msg": .., "per_rank_step_ms_64": ..,
//!   "per_rank_step_ms_max": .., "per_rank_step_ratio": ..}`.

use colossalai_bench::print_table;
use colossalai_comm::workload::{run_hybrid, HybridSpec, HybridTask};
use colossalai_comm::{World, WorldBackend};
use colossalai_topology::systems::{
    fat_tree_1024, fat_tree_16384, fat_tree_4096, fat_tree_512, fat_tree_8192,
};
use colossalai_topology::Cluster;
use std::time::Instant;

const ELEMS: usize = 256;
const STEPS: usize = 2;
/// Passes over the whole scale sweep; each row's wall is the *median*
/// across passes. Interleaving the passes (rather than repeating each row
/// back-to-back) matters on shared hosts: slow drift in machine speed then
/// hits the 64-rank baseline and the 16384-rank row alike instead of
/// biasing their ratio. The baseline finishes in ~1 ms, so its single
/// samples are scheduler-noise; the median is robust to one slow outlier
/// pass *and* to one lucky pass — a per-row min pairs the luckiest 64-rank
/// sample with the luckiest 16k sample, which are rarely the same pass and
/// made the CI'd ratio gate itself noisy.
const REPS: usize = 5;

/// (dp, tp, pp) shapes per scale; tp stays within the 8-GPU NVLink node.
const SCALES: &[(usize, usize, usize)] = &[
    (2, 8, 4),
    (4, 8, 4),
    (4, 8, 8),
    (8, 8, 8),
    (16, 8, 8),
    (16, 8, 16),
    (32, 8, 16),
    (32, 8, 32),
    (32, 8, 64),
];

fn spec_for(dp: usize, tp: usize, pp: usize) -> HybridSpec {
    HybridSpec {
        dp,
        tp,
        pp,
        elems: ELEMS,
        steps: STEPS,
    }
}

fn cluster_for(ranks: usize) -> Cluster {
    if ranks <= 512 {
        fat_tree_512()
    } else if ranks <= 1024 {
        fat_tree_1024()
    } else if ranks <= 4096 {
        fat_tree_4096()
    } else if ranks <= 8192 {
        fat_tree_8192()
    } else {
        fat_tree_16384()
    }
}

/// One measured run: per-rank per-step losses, the world (for its stats
/// gauges), and wall seconds.
type Sample = (Vec<Vec<f32>>, World, f64);

/// Runs `spec` under `backend` and returns (losses, world, wall seconds).
/// The stackless backend is driven through `run_tasks` (no per-rank
/// closure stack at all); the thread-backed backends through `run_on`.
fn run_once(spec: &HybridSpec, backend: WorldBackend, traced: bool) -> Sample {
    let world = World::new(cluster_for(spec.ranks()));
    world.set_backend(Some(backend));
    world.set_tracing(traced);
    let spec = *spec;
    let t0 = Instant::now();
    let losses = if matches!(backend, WorldBackend::Stackless { .. }) {
        world.run_tasks(spec.ranks(), move |_rank| HybridTask::new(spec))
    } else {
        world.run_on(spec.ranks(), |ctx| run_hybrid(ctx, &spec))
    };
    let dt = t0.elapsed().as_secs_f64();
    (losses, world, dt)
}

/// Median of the pass walls (sorts in place; odd `REPS` hits the true
/// middle element, even lengths average the two central ones).
fn median(walls: &mut [f64]) -> f64 {
    walls.sort_by(|a, b| a.total_cmp(b));
    let mid = walls.len() / 2;
    if walls.len() % 2 == 1 {
        walls[mid]
    } else {
        0.5 * (walls[mid - 1] + walls[mid])
    }
}

fn main() {
    let pool = std::thread::available_parallelism().map_or(1, |n| n.get());
    let stackless = WorldBackend::Stackless { pool: 0 };

    // warm up allocators/pools so the 64-rank reference row is not billed
    // for one-time process setup
    let _ = run_once(&spec_for(2, 8, 4), stackless, false);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut ranks_max = 0usize;
    let mut wall_ms_max = 0.0f64;
    let mut per_rank_step_ms_64 = 0.0f64;
    let mut per_rank_step_ms_max = 0.0f64;
    let mut wakeups_per_msg_worst = 0.0f64;
    let mut peak_threads_worst = 0u64;
    let mut completed = true;
    // Interleaved passes: every pass visits every scale once. Keep the
    // (deterministic) losses/world of the first pass per row and all walls;
    // the row's reported wall is the median wall across passes.
    let mut measured: Vec<Option<Sample>> = SCALES.iter().map(|_| None).collect();
    let mut walls: Vec<Vec<f64>> = SCALES.iter().map(|_| Vec::with_capacity(REPS)).collect();
    for _ in 0..REPS {
        for (i, &(dp, tp, pp)) in SCALES.iter().enumerate() {
            let spec = spec_for(dp, tp, pp);
            let (l, w, t) = run_once(&spec, stackless, false);
            walls[i].push(t);
            match &mut measured[i] {
                None => measured[i] = Some((l, w, t)),
                Some(b) => completed &= l == b.0,
            }
        }
    }
    for (i, &(dp, tp, pp)) in SCALES.iter().enumerate() {
        let spec = spec_for(dp, tp, pp);
        let ranks = spec.ranks();
        let (losses, world, _) = measured[i].take().expect("every scale ran");
        let dt = median(&mut walls[i]);
        let finite = losses.iter().flatten().all(|l| l.is_finite());
        completed &= finite && losses.len() == ranks;
        let checksum: f64 = losses.iter().flatten().map(|&l| l as f64).sum();
        let stats = world.stats();
        let wakes = world.wake_stats();
        let threads = world.thread_stats();
        let per_rank_step_ms = dt * 1e3 / (ranks * STEPS) as f64;
        if ranks_max == 0 {
            per_rank_step_ms_64 = per_rank_step_ms;
        }
        ranks_max = ranks_max.max(ranks);
        wall_ms_max = dt * 1e3;
        per_rank_step_ms_max = per_rank_step_ms;
        wakeups_per_msg_worst = wakeups_per_msg_worst.max(wakes.wakeups_per_msg());
        peak_threads_worst = peak_threads_worst.max(threads.peak_live);
        rows.push(vec![
            format!("{ranks}"),
            format!("{dp}x{tp}x{pp}"),
            world.cluster().name().to_string(),
            format!("{:.0}", dt * 1e3),
            format!("{:.3}", per_rank_step_ms),
            format!("{:.2}", wakes.wakeups_per_msg()),
            format!("{}", threads.peak_live),
            format!("{}", stats.ops),
            format!("{checksum:.6}"),
        ]);
    }

    // Backend parity at 64 ranks: the largest size where spawning one OS
    // thread per rank *and letting them all run* is still cheap enough to
    // do three times. Losses, stats and trace spans must match bit for bit
    // across threads, scheduler and stackless.
    let spec64 = spec_for(2, 8, 4);
    let (l_stackless, w_stackless, _) = run_once(&spec64, stackless, true);
    let (l_sched, w_sched, _) = run_once(&spec64, WorldBackend::Sched { pool: 0 }, true);
    let (l_threads, w_threads, _) = run_once(&spec64, WorldBackend::Threads, true);
    let backend_match = l_stackless == l_sched
        && l_stackless == l_threads
        && w_stackless.stats() == w_sched.stats()
        && w_stackless.stats() == w_threads.stats()
        && w_stackless.trace() == w_sched.trace()
        && w_stackless.trace() == w_threads.trace();

    let per_rank_step_ratio = if per_rank_step_ms_64 > 0.0 {
        per_rank_step_ms_max / per_rank_step_ms_64
    } else {
        f64::INFINITY
    };

    if std::env::args().any(|a| a == "--json") {
        println!(
            "{{\"completed\": {completed}, \"ranks_max\": {ranks_max}, \
             \"backend_match_64\": {backend_match}, \
             \"wall_ms_max\": {wall_ms_max:.1}, \"pool\": {pool}, \
             \"peak_threads\": {peak_threads_worst}, \
             \"wakeups_per_msg\": {wakeups_per_msg_worst:.3}, \
             \"per_rank_step_ms_64\": {per_rank_step_ms_64:.4}, \
             \"per_rank_step_ms_max\": {per_rank_step_ms_max:.4}, \
             \"per_rank_step_ratio\": {per_rank_step_ratio:.3}}}"
        );
        return;
    }

    print_table(
        &format!(
            "Stackless world scaling: hybrid DPxTPxPP step, {STEPS} steps x \
             {ELEMS} elems, worker pool = {pool} slots"
        ),
        &[
            "ranks",
            "dp x tp x pp",
            "cluster",
            "wall ms",
            "ms/rank-step",
            "wakes/msg",
            "peak thr",
            "coll ops",
            "loss checksum",
        ],
        &rows,
    );
    println!(
        "\nbackend parity @ 64 ranks (threads vs scheduler vs stackless): {}",
        if backend_match {
            "bitwise identical (losses, stats, trace)"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "per-rank-step growth 64 -> {ranks_max} ranks: {per_rank_step_ms_64:.3} ms -> \
         {per_rank_step_ms_max:.3} ms ({per_rank_step_ratio:.2}x), \
         peak OS threads {peak_threads_worst} (pool = {pool})"
    );

    // The compacted rollup of the largest run: at >= 64 ranks per-rank rows
    // elide into min/med/max (rollup_table_full prints everything).
    let spec_max = {
        let &(dp, tp, pp) = SCALES.last().unwrap();
        spec_for(dp, tp, pp)
    };
    let (_, w_max, _) = run_once(&spec_max, stackless, true);
    println!("\n{}", w_max.rollup_table());
    println!(
        "Every rank above ran as a resumable heap task on {pool} worker \
         slots; peak OS threads stay O(pool) at any world size and results \
         are invariant to the pool size (COLOSSAL_WORLD_POOL) and to the \
         backend (COLOSSAL_WORLD=threads|sched|stackless)."
    );
}
