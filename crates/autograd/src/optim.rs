//! Optimizers: SGD and the AdamW used by every experiment in the paper.

use crate::layer::Layer;
use crate::param::Param;
use colossalai_tensor::Tensor;

/// Plain SGD with optional momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update over `params` (order must be stable across steps).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value().shape().clone()))
                .collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter set changed");
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            if self.momentum != 0.0 {
                let grad = p.grad().clone(); // O(1) handle, not a copy
                sgd_momentum_update(
                    p.value_mut().data_mut(),
                    v.data_mut(),
                    grad.data(),
                    self.lr,
                    self.momentum,
                );
            } else {
                let g = p.grad().clone();
                p.value_mut().axpy(-self.lr, &g);
            }
        }
    }

    /// Applies one update over every parameter of `layer` (visit order must
    /// be stable across steps, which `Layer::visit_params` guarantees).
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        if self.velocity.is_empty() {
            layer.visit_params(&mut |p| {
                self.velocity.push(Tensor::zeros(p.value().shape().clone()));
            });
        }
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        layer.visit_params(&mut |p| {
            let v = &mut velocity[idx];
            if momentum != 0.0 {
                let grad = p.grad().clone();
                sgd_momentum_update(
                    p.value_mut().data_mut(),
                    v.data_mut(),
                    grad.data(),
                    lr,
                    momentum,
                );
            } else {
                let g = p.grad().clone();
                p.value_mut().axpy(-lr, &g);
            }
            idx += 1;
        });
        assert_eq!(idx, velocity.len(), "parameter set changed");
    }
}

/// Per-parameter Adam state (first and second moments).
#[derive(Clone, Debug)]
pub struct AdamState {
    pub m: Tensor,
    pub v: Tensor,
}

/// AdamW (decoupled weight decay), the optimizer of the paper's ViT and
/// BERT experiments. Exposed both as a whole-model optimizer and as the
/// scalar kernel [`adamw_update`] that the ZeRO and hybrid (CPU+GPU)
/// optimizers reuse on shards.
pub struct AdamW {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    state: Vec<AdamState>,
}

impl AdamW {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Steps taken so far.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Applies one AdamW update over `params` (stable order required).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.state.is_empty() {
            self.state = params
                .iter()
                .map(|p| AdamState {
                    m: Tensor::zeros(p.value().shape().clone()),
                    v: Tensor::zeros(p.value().shape().clone()),
                })
                .collect();
        }
        assert_eq!(self.state.len(), params.len(), "parameter set changed");
        self.t += 1;
        for (p, s) in params.iter_mut().zip(self.state.iter_mut()) {
            let grad = p.grad().clone();
            adamw_update(
                p.value_mut().data_mut(),
                grad.data(),
                s.m.data_mut(),
                s.v.data_mut(),
                self.t,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                self.weight_decay,
            );
        }
    }

    /// Applies one AdamW update over every parameter of `layer`.
    pub fn step_layer(&mut self, layer: &mut dyn Layer) {
        if self.state.is_empty() {
            layer.visit_params(&mut |p| {
                self.state.push(AdamState {
                    m: Tensor::zeros(p.value().shape().clone()),
                    v: Tensor::zeros(p.value().shape().clone()),
                });
            });
        }
        self.t += 1;
        let (t, lr, b1, b2, eps, wd) = (
            self.t,
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            self.weight_decay,
        );
        let state = &mut self.state;
        let mut idx = 0;
        layer.visit_params(&mut |p| {
            let s = &mut state[idx];
            let grad = p.grad().clone();
            adamw_update(
                p.value_mut().data_mut(),
                grad.data(),
                s.m.data_mut(),
                s.v.data_mut(),
                t,
                lr,
                b1,
                b2,
                eps,
                wd,
            );
            idx += 1;
        });
        assert_eq!(idx, state.len(), "parameter set changed");
    }
}

/// Fused SGD-with-momentum update over raw slices: `v = momentum*v + g;
/// p += -lr*v` in one sweep. Replaces the composed `scale` + `axpy` + `axpy`
/// chain (three passes over the state) with one pass; each element sees
/// exactly the same operations in the same order, so results are
/// bitwise-identical. The 8-wide `chunks_exact` body drops bounds checks so
/// the loop autovectorizes.
pub fn sgd_momentum_update(
    param: &mut [f32],
    vel: &mut [f32],
    grad: &[f32],
    lr: f32,
    momentum: f32,
) {
    assert_eq!(param.len(), vel.len());
    assert_eq!(param.len(), grad.len());
    if colossalai_tensor::par::par_eligible(param.len()) {
        // element-independent recurrence: lockstep (param, vel, grad)
        // chunks on deterministic boundaries, the serial kernel on each
        let items = lockstep3(param, vel, grad);
        if items.len() > 1 {
            colossalai_tensor::par::par_items(items, |_, (p, v, g)| {
                sgd_momentum_chunk(p, v, g, lr, momentum);
            });
            return;
        }
    }
    sgd_momentum_chunk(param, vel, grad, lr, momentum);
}

/// Splits `(a, b, c)` into lockstep chunk triples on the deterministic
/// [`colossalai_tensor::par::partition`] boundaries (depends only on length
/// and the thread budget, never on timing).
fn lockstep3<'s>(
    a: &'s mut [f32],
    b: &'s mut [f32],
    c: &'s [f32],
) -> Vec<(&'s mut [f32], &'s mut [f32], &'s [f32])> {
    let budget = colossalai_tensor::kernel_threads();
    let (chunks, per) =
        colossalai_tensor::par::partition(a.len(), budget, colossalai_tensor::par::MIN_CHUNK);
    let mut items = Vec::with_capacity(chunks);
    let (mut ar, mut br, mut cr) = (a, b, c);
    while !ar.is_empty() {
        let take = per.min(ar.len());
        let (ah, at) = ar.split_at_mut(take);
        let (bh, bt) = br.split_at_mut(take);
        let (ch, ct) = cr.split_at(take);
        items.push((ah, bh, ch));
        ar = at;
        br = bt;
        cr = ct;
    }
    items
}

/// The serial SGD+momentum sweep over one chunk: 8-wide `chunks_exact`
/// lanes plus a scalar tail computing the identical per-element expression,
/// so chunk boundaries never change a bit. The `FMA = true` instantiation
/// (fast numeric mode) fuses both the velocity blend and the parameter
/// update; `f32::mul_add` is correctly rounded on every path, so the
/// hardware-FMA wrapper and the libm fallback agree bitwise.
#[inline(always)]
fn sgd_momentum_chunk_impl<const FMA: bool>(
    param: &mut [f32],
    vel: &mut [f32],
    grad: &[f32],
    lr: f32,
    momentum: f32,
) {
    const LANES: usize = 8;
    let mut p = param.chunks_exact_mut(LANES);
    let mut v = vel.chunks_exact_mut(LANES);
    let mut g = grad.chunks_exact(LANES);
    for ((pc, vc), gc) in (&mut p).zip(&mut v).zip(&mut g) {
        for i in 0..LANES {
            if FMA {
                vc[i] = momentum.mul_add(vc[i], gc[i]);
                pc[i] = (-lr).mul_add(vc[i], pc[i]);
            } else {
                vc[i] = momentum * vc[i] + 1.0 * gc[i];
                pc[i] += -lr * vc[i];
            }
        }
    }
    for ((pp, vv), &gg) in p
        .into_remainder()
        .iter_mut()
        .zip(v.into_remainder())
        .zip(g.remainder())
    {
        if FMA {
            *vv = momentum.mul_add(*vv, gg);
            *pp = (-lr).mul_add(*vv, *pp);
        } else {
            *vv = momentum * *vv + 1.0 * gg;
            *pp += -lr * *vv;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn sgd_momentum_chunk_fma(
    param: &mut [f32],
    vel: &mut [f32],
    grad: &[f32],
    lr: f32,
    momentum: f32,
) {
    sgd_momentum_chunk_impl::<true>(param, vel, grad, lr, momentum);
}

fn sgd_momentum_chunk(param: &mut [f32], vel: &mut [f32], grad: &[f32], lr: f32, momentum: f32) {
    if colossalai_tensor::fast_mode() {
        #[cfg(target_arch = "x86_64")]
        if colossalai_tensor::fma_available() {
            // SAFETY: fma_available() checked avx2+fma support.
            return unsafe { sgd_momentum_chunk_fma(param, vel, grad, lr, momentum) };
        }
        return sgd_momentum_chunk_impl::<true>(param, vel, grad, lr, momentum);
    }
    sgd_momentum_chunk_impl::<false>(param, vel, grad, lr, momentum);
}

/// One element of the AdamW recurrence; shared by the vector body and the
/// scalar tail of [`adamw_update`] so both compute byte-identical results.
/// The fast instantiation fuses the moment blends, the decay term and the
/// final parameter update.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn adamw_scalar<const FMA: bool>(
    p: &mut f32,
    g: f32,
    m: &mut f32,
    v: &mut f32,
    bc1: f32,
    bc2: f32,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
) {
    if FMA {
        *m = beta1.mul_add(*m, (1.0 - beta1) * g);
        *v = beta2.mul_add(*v, (1.0 - beta2) * g * g);
        let m_hat = *m / bc1;
        let v_hat = *v / bc2;
        // decoupled weight decay, fused into the step
        let step = weight_decay.mul_add(*p, m_hat / (v_hat.sqrt() + eps));
        *p = (-lr).mul_add(step, *p);
    } else {
        *m = beta1 * *m + (1.0 - beta1) * g;
        *v = beta2 * *v + (1.0 - beta2) * g * g;
        let m_hat = *m / bc1;
        let v_hat = *v / bc2;
        // decoupled weight decay
        *p -= lr * (m_hat / (v_hat.sqrt() + eps) + weight_decay * *p);
    }
}

/// The element-wise AdamW kernel over raw slices.
///
/// Deliberately freestanding: the ZeRO sharded optimizer runs it on shard
/// slices and the hybrid Adam runs it on the CPU- and GPU-resident halves of
/// a parameter independently — all three paths share these exact arithmetic
/// semantics, which is what makes the "hybrid equals full-GPU bitwise"
/// invariant testable. The body runs over 8-wide `chunks_exact` lanes
/// (bounds-check-free, autovectorizable) with a scalar tail; both call the
/// same per-element recurrence.
#[allow(clippy::too_many_arguments)]
pub fn adamw_update(
    param: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
) {
    assert_eq!(param.len(), grad.len());
    assert_eq!(param.len(), m.len());
    assert_eq!(param.len(), v.len());
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    if colossalai_tensor::par::par_eligible(param.len()) {
        // lockstep (param, m, v, grad) chunks; each runs the serial kernel
        // with the same precomputed bias corrections
        let budget = colossalai_tensor::kernel_threads();
        let (chunks, per) = colossalai_tensor::par::partition(
            param.len(),
            budget,
            colossalai_tensor::par::MIN_CHUNK,
        );
        if chunks > 1 {
            type AdamItem<'s> = (&'s mut [f32], &'s [f32], &'s mut [f32], &'s mut [f32]);
            let mut items: Vec<AdamItem> = Vec::with_capacity(chunks);
            let (mut pr, mut gr, mut mr, mut vr) = (param, grad, m, v);
            while !pr.is_empty() {
                let take = per.min(pr.len());
                let (ph, pt) = pr.split_at_mut(take);
                let (gh, gt) = gr.split_at(take);
                let (mh, mt) = mr.split_at_mut(take);
                let (vh, vt) = vr.split_at_mut(take);
                items.push((ph, gh, mh, vh));
                pr = pt;
                gr = gt;
                mr = mt;
                vr = vt;
            }
            colossalai_tensor::par::par_items(items, |_, (p, g, mm, vv)| {
                adamw_chunk(p, g, mm, vv, bc1, bc2, lr, beta1, beta2, eps, weight_decay);
            });
            return;
        }
    }
    adamw_chunk(
        param,
        grad,
        m,
        v,
        bc1,
        bc2,
        lr,
        beta1,
        beta2,
        eps,
        weight_decay,
    );
}

/// The serial AdamW sweep over one chunk, with the step's bias corrections
/// precomputed by the caller: 8-wide lanes plus a scalar tail, both calling
/// [`adamw_scalar`], so chunk boundaries never change a bit.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn adamw_chunk_impl<const FMA: bool>(
    param: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    bc1: f32,
    bc2: f32,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
) {
    const LANES: usize = 8;
    let mut pc = param.chunks_exact_mut(LANES);
    let mut gc = grad.chunks_exact(LANES);
    let mut mc = m.chunks_exact_mut(LANES);
    let mut vc = v.chunks_exact_mut(LANES);
    for (((p, g), m), v) in (&mut pc).zip(&mut gc).zip(&mut mc).zip(&mut vc) {
        for i in 0..LANES {
            adamw_scalar::<FMA>(
                &mut p[i],
                g[i],
                &mut m[i],
                &mut v[i],
                bc1,
                bc2,
                lr,
                beta1,
                beta2,
                eps,
                weight_decay,
            );
        }
    }
    for (((p, &g), m), v) in pc
        .into_remainder()
        .iter_mut()
        .zip(gc.remainder())
        .zip(mc.into_remainder())
        .zip(vc.into_remainder())
    {
        adamw_scalar::<FMA>(p, g, m, v, bc1, bc2, lr, beta1, beta2, eps, weight_decay);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn adamw_chunk_fma(
    param: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    bc1: f32,
    bc2: f32,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
) {
    adamw_chunk_impl::<true>(
        param,
        grad,
        m,
        v,
        bc1,
        bc2,
        lr,
        beta1,
        beta2,
        eps,
        weight_decay,
    );
}

#[allow(clippy::too_many_arguments)]
fn adamw_chunk(
    param: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    bc1: f32,
    bc2: f32,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
) {
    if colossalai_tensor::fast_mode() {
        #[cfg(target_arch = "x86_64")]
        if colossalai_tensor::fma_available() {
            // SAFETY: fma_available() checked avx2+fma support.
            return unsafe {
                adamw_chunk_fma(
                    param,
                    grad,
                    m,
                    v,
                    bc1,
                    bc2,
                    lr,
                    beta1,
                    beta2,
                    eps,
                    weight_decay,
                )
            };
        }
        return adamw_chunk_impl::<true>(
            param,
            grad,
            m,
            v,
            bc1,
            bc2,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
        );
    }
    adamw_chunk_impl::<false>(
        param,
        grad,
        m,
        v,
        bc1,
        bc2,
        lr,
        beta1,
        beta2,
        eps,
        weight_decay,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param() -> Param {
        Param::new("w", Tensor::from_vec([2], vec![5.0, -3.0]))
    }

    fn set_quadratic_grad(p: &mut Param) {
        // f = 0.5 * ||w||^2, grad = w
        let g = p.value().clone();
        p.zero_grad();
        p.accumulate_grad(&g);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = quadratic_param();
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            set_quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value().norm() < 1e-3, "norm {}", p.value().norm());
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut p1 = quadratic_param();
        let mut p2 = quadratic_param();
        let mut plain = Sgd::new(0.01, 0.0);
        let mut momo = Sgd::new(0.01, 0.9);
        for _ in 0..30 {
            set_quadratic_grad(&mut p1);
            plain.step(&mut [&mut p1]);
            set_quadratic_grad(&mut p2);
            momo.step(&mut [&mut p2]);
        }
        assert!(p2.value().norm() < p1.value().norm());
    }

    #[test]
    fn adamw_descends_quadratic() {
        let mut p = quadratic_param();
        let mut opt = AdamW::new(0.1, 0.0);
        for _ in 0..200 {
            set_quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value().norm() < 1e-2, "norm {}", p.value().norm());
    }

    #[test]
    fn weight_decay_shrinks_without_gradient() {
        let mut p = Param::new("w", Tensor::from_vec([1], vec![1.0]));
        let mut opt = AdamW::new(0.1, 0.5);
        // zero gradient: only decay acts
        opt.step(&mut [&mut p]);
        let v = p.value().data()[0];
        assert!(v < 1.0 && v > 0.9, "one decay step: {v}");
    }

    #[test]
    fn adamw_kernel_matches_optimizer() {
        // the freestanding kernel and the struct must agree exactly
        let mut p = quadratic_param();
        set_quadratic_grad(&mut p);
        let mut opt = AdamW::new(0.01, 0.1);
        let mut manual_param = p.value().data().to_vec();
        let mut m = vec![0.0; 2];
        let mut v = vec![0.0; 2];
        let grad = p.grad().data().to_vec();
        opt.step(&mut [&mut p]);
        adamw_update(
            &mut manual_param,
            &grad,
            &mut m,
            &mut v,
            1,
            0.01,
            0.9,
            0.999,
            1e-8,
            0.1,
        );
        assert_eq!(p.value().data(), &manual_param[..]);
    }

    #[test]
    fn chunked_updates_match_elementwise_on_ragged_sizes() {
        // the 8-lane kernels must be bitwise-identical to driving the same
        // update one element at a time (pure scalar-tail path), across
        // sizes that hit every chunk/remainder split
        for n in [1usize, 7, 8, 9, 63, 64, 65, 200] {
            let mut rng = colossalai_tensor::init::rng(n as u64);
            let p0 = colossalai_tensor::init::uniform([n], -1.0, 1.0, &mut rng);
            let g = colossalai_tensor::init::uniform([n], -1.0, 1.0, &mut rng);
            let s0 = colossalai_tensor::init::uniform([n], -1.0, 1.0, &mut rng);

            let (mut got_p, mut got_v) = (p0.data().to_vec(), s0.data().to_vec());
            sgd_momentum_update(&mut got_p, &mut got_v, g.data(), 0.05, 0.9);
            let (mut want_p, mut want_v) = (p0.data().to_vec(), s0.data().to_vec());
            for i in 0..n {
                sgd_momentum_update(
                    &mut want_p[i..i + 1],
                    &mut want_v[i..i + 1],
                    &g.data()[i..i + 1],
                    0.05,
                    0.9,
                );
            }
            assert_eq!(got_p, want_p, "sgd params, n={n}");
            assert_eq!(got_v, want_v, "sgd velocity, n={n}");

            let (mut ap, mut am, mut av) = (p0.data().to_vec(), vec![0.1f32; n], vec![0.2f32; n]);
            adamw_update(
                &mut ap,
                g.data(),
                &mut am,
                &mut av,
                3,
                0.01,
                0.9,
                0.999,
                1e-8,
                0.1,
            );
            let (mut wp, mut wm, mut wv) = (p0.data().to_vec(), vec![0.1f32; n], vec![0.2f32; n]);
            for i in 0..n {
                adamw_update(
                    &mut wp[i..i + 1],
                    &g.data()[i..i + 1],
                    &mut wm[i..i + 1],
                    &mut wv[i..i + 1],
                    3,
                    0.01,
                    0.9,
                    0.999,
                    1e-8,
                    0.1,
                );
            }
            assert_eq!(ap, wp, "adamw params, n={n}");
            assert_eq!(am, wm, "adamw m, n={n}");
            assert_eq!(av, wv, "adamw v, n={n}");
        }
    }

    #[test]
    fn first_step_direction_is_signed_gradient() {
        // with zero init moments, Adam's first step ~ lr * sign(grad)
        let mut p = Param::new("w", Tensor::from_vec([2], vec![0.0, 0.0]));
        p.accumulate_grad(&Tensor::from_vec([2], vec![3.0, -0.001]));
        let mut opt = AdamW::new(0.1, 0.0);
        opt.step(&mut [&mut p]);
        let d = p.value().data();
        assert!((d[0] + 0.1).abs() < 1e-3, "{}", d[0]);
        assert!((d[1] - 0.1).abs() < 1e-2, "{}", d[1]);
    }
}
