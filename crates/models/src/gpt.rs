//! GPT-style causal decoder (runnable scale) for the sharding/offloading
//! experiments (Fig 14): token + position embeddings, causal Transformer
//! stack, language-model head.

use crate::config::TransformerConfig;
use crate::transformer::TransformerBlock;
use colossalai_autograd::{Embedding, Layer, LayerNorm, Linear, Param, PositionEmbedding};
use colossalai_tensor::init::InitRng;
use colossalai_tensor::Tensor;

/// A runnable GPT. Input: `[batch, seq]` token ids (as f32); output:
/// `[batch, seq, vocab]` next-token logits.
pub struct Gpt {
    tok: Embedding,
    pos: PositionEmbedding,
    blocks: Vec<TransformerBlock>,
    ln_f: LayerNorm,
    head: Linear,
}

impl Gpt {
    pub fn new(cfg: &TransformerConfig, rng: &mut InitRng) -> Self {
        let blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock::new(
                    &format!("gpt.block{i}"),
                    cfg.hidden,
                    cfg.heads,
                    cfg.mlp_ratio,
                    true,
                    rng,
                )
            })
            .collect();
        Gpt {
            tok: Embedding::new("gpt.tok", cfg.vocab, cfg.hidden, rng),
            pos: PositionEmbedding::new("gpt", cfg.max_seq, cfg.hidden, rng),
            blocks,
            ln_f: LayerNorm::new("gpt.ln_f", cfg.hidden),
            head: Linear::from_rng("gpt.head", cfg.hidden, cfg.vocab, false, rng),
        }
    }

    /// Next-token language-modeling loss and gradient for a batch of token
    /// id sequences; predicts token `t+1` from positions `0..=t`.
    pub fn lm_loss(&mut self, tokens: &Tensor) -> (f32, Tensor) {
        let (b, s) = (tokens.dims()[0], tokens.dims()[1]);
        let logits = self.forward(tokens);
        let vocab = logits.dims()[2];
        // shift: predictions at positions 0..s-1 target tokens 1..s
        let pred = logits.narrow(1, 0, s - 1).reshaped([b * (s - 1), vocab]);
        let targets: Vec<usize> = (0..b)
            .flat_map(|bi| (1..s).map(move |si| (bi, si)))
            .map(|(bi, si)| tokens.at(&[bi, si]) as usize)
            .collect();
        let (loss, dpred) = colossalai_tensor::ops::cross_entropy(&pred, &targets);
        // scatter the gradient back into full logits shape
        let mut dlogits = Tensor::zeros([b, s, vocab]);
        for bi in 0..b {
            for si in 0..s - 1 {
                for v in 0..vocab {
                    dlogits.set(&[bi, si, v], dpred.at(&[bi * (s - 1) + si, v]));
                }
            }
        }
        (loss, dlogits)
    }
}

impl Layer for Gpt {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "GPT input must be [batch, seq] token ids");
        let mut h = self.tok.forward(x);
        h = self.pos.forward(&h);
        for blk in &mut self.blocks {
            h = blk.forward(&h);
        }
        let h = self.ln_f.forward(&h);
        self.head.forward(&h)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dh = self.head.backward(dy);
        dh = self.ln_f.backward(&dh);
        for blk in self.blocks.iter_mut().rev() {
            dh = blk.backward(&dh);
        }
        let dh = self.pos.backward(&dh);
        self.tok.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok.visit_params(f);
        self.pos.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_tensor::init;

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            layers: 2,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            vocab: 13,
            max_seq: 5,
        }
    }

    #[test]
    fn causality_of_logits() {
        let mut rng = init::rng(80);
        let mut gpt = Gpt::new(&tiny_cfg(), &mut rng);
        let x1 = Tensor::from_vec([1, 5], vec![1., 2., 3., 4., 5.]);
        let x2 = Tensor::from_vec([1, 5], vec![1., 2., 3., 4., 12.]);
        let y1 = gpt.forward(&x1);
        let y2 = gpt.forward(&x2);
        // changing the last token must not change logits at earlier positions
        for s in 0..4 {
            for v in 0..13 {
                assert!(
                    (y1.at(&[0, s, v]) - y2.at(&[0, s, v])).abs() < 1e-6,
                    "position {s} leaked"
                );
            }
        }
    }

    #[test]
    fn lm_training_memorizes_sequence() {
        let mut rng = init::rng(81);
        let mut gpt = Gpt::new(&tiny_cfg(), &mut rng);
        let x = Tensor::from_vec([1, 5], vec![3., 7., 1., 9., 2.]);
        let mut losses = Vec::new();
        for _ in 0..25 {
            gpt.zero_grad();
            let (loss, dlogits) = gpt.lm_loss(&x);
            losses.push(loss);
            let _ = gpt.backward(&dlogits);
            gpt.visit_params(&mut |p| {
                let g = p.grad().clone();
                p.value_mut().axpy(-0.1, &g);
            });
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "GPT failed to memorize: {losses:?}"
        );
    }

    #[test]
    fn lm_loss_gradient_shape() {
        let mut rng = init::rng(82);
        let mut gpt = Gpt::new(&tiny_cfg(), &mut rng);
        let x = Tensor::from_vec([2, 4], vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let (loss, dlogits) = gpt.lm_loss(&x);
        assert!(loss > 0.0);
        assert_eq!(dlogits.dims(), &[2, 4, 13]);
        // the last position has no target -> zero gradient there
        for v in 0..13 {
            assert_eq!(dlogits.at(&[0, 3, v]), 0.0);
        }
    }
}
