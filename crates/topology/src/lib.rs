//! # colossalai-topology
//!
//! Hardware model of the four experimental systems in Table 2 of the
//! Colossal-AI paper: GPU specs, host (CPU/NVMe) specs, a link-level
//! interconnect graph (NVLink / PCIe / InfiniBand HDR / Cray Aries), the
//! alpha-beta collective cost model, and bandwidth probes reproducing the
//! NCCL bandwidth test of Fig 10.
//!
//! This crate is pure data + arithmetic — it never spawns threads. The
//! `colossalai-comm` crate consumes it to charge virtual time to real
//! (thread-backed) collectives.

pub mod bandwidth;
pub mod cluster;
pub mod cost;
pub mod device;
pub mod link;
pub mod systems;

pub use cluster::Cluster;
pub use cost::AllReduceAlgo;
pub use device::{DeviceId, GpuSpec, HostSpec};
pub use link::{Link, LinkKind};
pub use systems::{system_i, system_ii, system_iii, system_iv};
