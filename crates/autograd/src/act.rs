//! Elementwise activation layers.

use crate::layer::Layer;
use crate::param::Param;
use colossalai_tensor::{ops, Tensor};

/// Tanh-approximated GELU (the Transformer default).
#[derive(Default)]
pub struct Gelu {
    cached_x: Option<Tensor>,
}

impl Gelu {
    pub fn new() -> Self {
        Gelu::default()
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_x = Some(x.clone());
        ops::gelu(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_x.take().expect("backward before forward");
        // fused gelu'(x) * dy: one pooled buffer instead of the composed
        // gelu_grad + zip pair, bitwise-identical arithmetic
        ops::gelu_backward(&x, dy)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    cached_x: Option<Tensor>,
}

impl Relu {
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_x = Some(x.clone());
        ops::relu(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_x.take().expect("backward before forward");
        // single-buffer fusion of relu_grad + zip; the mask value is still
        // multiplied exactly as in the composed path
        x.zip(dy, |v, d| if v > 0.0 { 1.0 } else { 0.0 } * d)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::grad_check;
    use colossalai_tensor::init;

    #[test]
    fn gelu_grad_check() {
        let mut rng = init::rng(11);
        let x = init::uniform([3, 4], -2.0, 2.0, &mut rng);
        grad_check(&mut Gelu::new(), &x, 1e-2, 3e-2).unwrap();
    }

    #[test]
    fn relu_grad_check() {
        let mut rng = init::rng(12);
        // keep inputs away from the kink at 0
        let x = init::uniform([3, 4], 0.5, 2.0, &mut rng);
        grad_check(&mut Relu::new(), &x, 1e-3, 1e-2).unwrap();
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(Gelu::new().n_params(), 0);
        assert_eq!(Relu::new().n_params(), 0);
    }
}
