//! # colossalai-models
//!
//! The model zoo of the reproduction: a runnable Transformer block
//! (Fig 2), Vision Transformer, BERT and GPT at test scale, deterministic
//! synthetic datasets standing in for ImageNet-1k / Wikipedia, and the
//! analytic parameter / FLOPs / activation-memory calculators used to size
//! the paper-scale experiments (Figs 8, 11-14, Table 3).

pub mod bert;
pub mod config;
pub mod data;
pub mod gpt;
pub mod transformer;
pub mod vit;

pub use bert::Bert;
pub use config::TransformerConfig;
pub use data::{SyntheticText, SyntheticVision};
pub use gpt::Gpt;
pub use transformer::{Residual, TransformerBlock};
pub use vit::VisionTransformer;
