//! Bandwidth probing — the simulation analogue of the NCCL bandwidth test
//! used for Fig 10 of the paper.

use crate::cluster::Cluster;
use crate::cost;
use crate::device::DeviceId;

/// Result of probing one GPU pair.
#[derive(Clone, Debug, PartialEq)]
pub struct PairProbe {
    pub a: DeviceId,
    pub b: DeviceId,
    /// Effective bandwidth in bytes/s for the probe message size.
    pub bandwidth: f64,
}

/// Result of probing a collective over a device group.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupProbe {
    pub group: Vec<DeviceId>,
    /// Algorithm bandwidth (payload bytes / completion time) in bytes/s.
    pub bandwidth: f64,
}

/// Probes every unordered device pair with a `bytes`-sized transfer
/// (Fig 10a: "Communication Bandwidth between GPU Pairs").
pub fn probe_pairs(cluster: &Cluster, bytes: u64) -> Vec<PairProbe> {
    let n = cluster.n_devices();
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            out.push(PairProbe {
                a,
                b,
                bandwidth: cluster.link(a, b).effective_bandwidth(bytes),
            });
        }
    }
    out
}

/// Probes a broadcast over each prefix group `{0..k}` for `k` in
/// `group_sizes` (Fig 10b: "Communication Bandwidth for Collective
/// Communication", 125 MB broadcast).
pub fn probe_collective(cluster: &Cluster, group_sizes: &[usize], bytes: u64) -> Vec<GroupProbe> {
    group_sizes
        .iter()
        .map(|&k| {
            assert!(k >= 2 && k <= cluster.n_devices(), "bad group size {k}");
            let group: Vec<DeviceId> = (0..k).collect();
            let t = cost::broadcast_time(cluster, &group, bytes);
            GroupProbe {
                group,
                bandwidth: cost::algorithm_bandwidth(bytes, t),
            }
        })
        .collect()
}

/// Result of probing an all-reduce under the whole algorithm zoo over one
/// group. Inapplicable schedules (hierarchical on one node, halving-doubling
/// on a non-power-of-two group) price as the flat ring, so every field is
/// always a real bandwidth and `>= flat` means "never loses".
#[derive(Clone, Debug, PartialEq)]
pub struct AllReduceProbe {
    pub group: Vec<DeviceId>,
    /// Flat-ring algorithm bandwidth in bytes/s.
    pub flat: f64,
    /// Hierarchical (two-level) algorithm bandwidth in bytes/s. Equals
    /// `flat` wherever the hierarchical schedule degrades to the ring.
    pub hierarchical: f64,
    /// Binomial-tree (reduce + broadcast) algorithm bandwidth in bytes/s.
    pub tree: f64,
    /// Recursive-halving-doubling algorithm bandwidth in bytes/s. Equals
    /// `flat` on non-power-of-two groups.
    pub rhd: f64,
    /// What [`cost::select_allreduce_algo`] picks for this group and size.
    pub selected: cost::AllReduceAlgo,
}

/// Probes an all-reduce over each prefix group `{0..k}` under every
/// schedule in the zoo (Fig 10c: the bandwidth gap the topology-aware
/// selector exploits on multi-node systems).
pub fn probe_allreduce(
    cluster: &Cluster,
    group_sizes: &[usize],
    bytes: u64,
) -> Vec<AllReduceProbe> {
    group_sizes
        .iter()
        .map(|&k| {
            assert!(k >= 2 && k <= cluster.n_devices(), "bad group size {k}");
            let group: Vec<DeviceId> = (0..k).collect();
            let t = |algo| cost::allreduce_time_with(algo, cluster, &group, bytes);
            AllReduceProbe {
                selected: cost::select_allreduce_algo(cluster, &group, bytes),
                flat: cost::algorithm_bandwidth(bytes, t(cost::AllReduceAlgo::FlatRing)),
                hierarchical: cost::algorithm_bandwidth(
                    bytes,
                    t(cost::AllReduceAlgo::Hierarchical),
                ),
                tree: cost::algorithm_bandwidth(bytes, t(cost::AllReduceAlgo::Tree)),
                rhd: cost::algorithm_bandwidth(
                    bytes,
                    t(cost::AllReduceAlgo::RecursiveHalvingDoubling),
                ),
                group,
            }
        })
        .collect()
}

/// Min / max pairwise bandwidth — the headline numbers of Fig 10a.
pub fn pairwise_extremes(cluster: &Cluster, bytes: u64) -> (f64, f64) {
    let probes = probe_pairs(cluster, bytes);
    let min = probes
        .iter()
        .map(|p| p.bandwidth)
        .fold(f64::INFINITY, f64::min);
    let max = probes.iter().map(|p| p.bandwidth).fold(0.0, f64::max);
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{system_i, system_ii, system_iii};

    const PROBE_BYTES: u64 = 125 << 20; // the paper's 125 MB probe

    #[test]
    fn system_i_uniform_high_bandwidth() {
        let (min, max) = pairwise_extremes(&system_i(), PROBE_BYTES);
        // fully connected: min == max, ~184 GB/s
        assert!((max - min).abs() / max < 1e-9);
        assert!(min > 150.0e9);
    }

    #[test]
    fn system_ii_bimodal_bandwidth() {
        let (min, max) = pairwise_extremes(&system_ii(), PROBE_BYTES);
        // paper: 184 GB/s adjacent vs ~15 GB/s distant
        assert!(max > 150.0e9, "max {max}");
        assert!(min < 20.0e9, "min {min}");
        assert!(max / min > 10.0);
    }

    #[test]
    fn collective_bandwidth_drops_on_system_ii() {
        let sizes = [2, 4, 8];
        let bw_i = probe_collective(&system_i(), &sizes, PROBE_BYTES);
        let bw_ii = probe_collective(&system_ii(), &sizes, PROBE_BYTES);
        // System I stays high at every group size
        for p in &bw_i {
            assert!(p.bandwidth > 150.0e9, "I: {:?}", p);
        }
        // System II: the 2-GPU group rides NVLink, 4+ hits the PCIe floor
        assert!(bw_ii[0].bandwidth > 150.0e9);
        assert!(bw_ii[1].bandwidth < 20.0e9);
        assert!(bw_ii[2].bandwidth < 20.0e9);
    }

    #[test]
    fn allreduce_probe_shows_hierarchy_win_on_system_iii() {
        let probes = probe_allreduce(&system_iii(), &[4, 8, 16, 32], PROBE_BYTES);
        for p in &probes {
            assert!(
                p.hierarchical >= p.flat,
                "hierarchical must never lose: {:?}",
                p
            );
            assert!(p.rhd >= p.flat, "halving-doubling must never lose: {:?}", p);
        }
        // 4-GPU group fits one node: hierarchical degrades to the ring and
        // the power-of-two group goes to halving-doubling
        assert_eq!(probes[0].flat, probes[0].hierarchical);
        assert_eq!(
            probes[0].selected,
            cost::AllReduceAlgo::RecursiveHalvingDoubling
        );
        // cross-node groups at 125 MB: hierarchical beats the whole zoo
        for p in &probes[1..] {
            assert!(p.hierarchical > p.flat, "{:?}", p);
            assert!(p.hierarchical > p.tree, "{:?}", p);
            assert!(p.hierarchical > p.rhd, "{:?}", p);
            assert_eq!(p.selected, cost::AllReduceAlgo::Hierarchical);
        }
    }

    #[test]
    fn allreduce_probe_covers_the_zoo_on_single_node() {
        // p=2: every schedule degenerates to the same pairwise exchange —
        // the tie keeps the flat ring
        let pair = probe_allreduce(&system_i(), &[2], PROBE_BYTES);
        assert_eq!(pair[0].rhd, pair[0].flat);
        assert_eq!(pair[0].selected, cost::AllReduceAlgo::FlatRing);
        for p in probe_allreduce(&system_i(), &[4, 8], PROBE_BYTES) {
            assert_eq!(p.flat, p.hierarchical);
            // power-of-two groups: halving-doubling matches ring bandwidth
            // with fewer latency terms, so it is selected at every size
            assert!(p.rhd > p.flat);
            assert_eq!(p.selected, cost::AllReduceAlgo::RecursiveHalvingDoubling);
        }
        // non-power-of-two group: rhd prices as flat, and at a latency-bound
        // message size the tree takes over
        let small = probe_allreduce(&system_i(), &[6], 1 << 10);
        assert_eq!(small[0].rhd, small[0].flat);
        assert!(small[0].tree > small[0].flat);
        assert_eq!(small[0].selected, cost::AllReduceAlgo::Tree);
    }
}
