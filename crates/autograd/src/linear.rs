//! Dense (fully connected) layer.

use crate::layer::Layer;
use crate::param::Param;
use colossalai_tensor::init::InitRng;
use colossalai_tensor::ops::{add_bias_gelu, add_bias_gelu_backward, sum_axis0_acc};
use colossalai_tensor::{init, matmul_at_acc, matmul_bt, matmul_nd, Tensor};

/// `y = x W + b` with `W: [in, out]`, applied to inputs of shape
/// `[.., in]`. With [`Linear::with_gelu`], the layer computes
/// `y = gelu(x W + b)` through the fused `add_bias_gelu` kernel —
/// bitwise-identical to a `Linear` followed by a separate `Gelu` layer, but
/// without the intermediate allocations.
pub struct Linear {
    w: Param,
    b: Option<Param>,
    fused_gelu: bool,
    cached_x: Option<Tensor>,
    /// Pre-activation `h = x W + b`, cached only in fused-GELU mode.
    cached_h: Option<Tensor>,
}

impl Linear {
    /// Builds from explicit weights (used when sharding a global weight
    /// across tensor-parallel ranks).
    pub fn from_parts(name: &str, w: Tensor, b: Option<Tensor>) -> Self {
        assert_eq!(w.rank(), 2, "linear weight must be rank 2");
        if let Some(b) = &b {
            assert_eq!(b.numel(), w.dims()[1], "bias length mismatch");
        }
        Linear {
            w: Param::new(format!("{name}.weight"), w),
            b: b.map(|b| Param::new(format!("{name}.bias"), b)),
            fused_gelu: false,
            cached_x: None,
            cached_h: None,
        }
    }

    /// Fuses a GELU activation into this layer (`y = gelu(x W + b)`).
    /// Requires a bias. Replaces a `[Linear, Gelu]` pair with identical
    /// parameters and bitwise-identical outputs/gradients.
    pub fn with_gelu(mut self) -> Self {
        assert!(self.b.is_some(), "with_gelu requires a bias");
        self.fused_gelu = true;
        self
    }

    /// LeCun-normal initialized layer (the paper's "Jax initialization").
    pub fn from_rng(name: &str, d_in: usize, d_out: usize, bias: bool, rng: &mut InitRng) -> Self {
        let w = init::lecun_normal(d_in, d_out, rng);
        let b = bias.then(|| Tensor::zeros([d_out]));
        Linear::from_parts(name, w, b)
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.w.value().dims()[0]
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.w.value().dims()[1]
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.w
    }

    /// The bias parameter, if present.
    pub fn bias(&self) -> Option<&Param> {
        self.b.as_ref()
    }

    /// FLOPs of one forward pass over `rows` input rows.
    pub fn forward_flops(&self, rows: usize) -> u64 {
        2 * rows as u64 * self.d_in() as u64 * self.d_out() as u64
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(
            *x.dims().last().expect("linear input must have rank >= 1"),
            self.d_in(),
            "linear input width mismatch"
        );
        self.cached_x = Some(x.clone());
        let mut y = matmul_nd(x, self.w.value());
        if self.fused_gelu {
            let b = self.b.as_ref().expect("fused gelu requires bias");
            let (h, out) = add_bias_gelu(y, b.value());
            self.cached_h = Some(h);
            return out;
        }
        if let Some(b) = &self.b {
            // the GEMM output is uniquely owned: bias adds in place
            y.add_bias_assign(b.value());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_x.take().expect("backward before forward");
        let (rows, d_in) = x.shape().as_matrix();
        let x2 = x.reshape([rows, d_in]);
        // in fused-GELU mode, first pull dy back through the activation:
        // dh = gelu'(h) * dy, then the usual linear backward on dh
        let dy2 = if self.fused_gelu {
            let h = self.cached_h.take().expect("backward before forward");
            add_bias_gelu_backward(&h, dy).reshaped([rows, self.d_out()])
        } else {
            dy.reshape([rows, self.d_out()])
        };
        // dW = x^T dy, accumulated straight into the parameter gradient —
        // no dW temporary, no zero-fill, no second axpy pass
        matmul_at_acc(&x2, &dy2, self.w.grad_mut());
        // db = column sums of dy, same fused accumulation
        if let Some(b) = &mut self.b {
            sum_axis0_acc(&dy2, b.grad_mut());
        }
        // dx = dy W^T
        let dx = matmul_bt(&dy2, self.w.value());
        dx.reshaped(x.shape().clone())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        if let Some(b) = &mut self.b {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::grad_check;

    #[test]
    fn forward_matches_manual() {
        let w = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3], vec![0.1, 0.2, 0.3]);
        let mut l = Linear::from_parts("l", w, Some(b));
        let x = Tensor::from_vec([1, 2], vec![1.0, 2.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[9.1, 12.2, 15.3]);
    }

    #[test]
    fn handles_3d_inputs() {
        let mut rng = init::rng(5);
        let mut l = Linear::from_rng("l", 4, 2, true, &mut rng);
        let x = init::uniform([2, 3, 4], -1.0, 1.0, &mut rng);
        let y = l.forward(&x);
        assert_eq!(y.dims(), &[2, 3, 2]);
        let dx = l.backward(&Tensor::ones([2, 3, 2]));
        assert_eq!(dx.dims(), &[2, 3, 4]);
    }

    #[test]
    fn grad_check_with_bias() {
        let mut rng = init::rng(6);
        let mut l = Linear::from_rng("l", 3, 4, true, &mut rng);
        let x = init::uniform([5, 3], -1.0, 1.0, &mut rng);
        grad_check(&mut l, &x, 1e-2, 3e-2).unwrap();
    }

    #[test]
    fn grad_check_without_bias() {
        let mut rng = init::rng(7);
        let mut l = Linear::from_rng("l", 4, 3, false, &mut rng);
        let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
        grad_check(&mut l, &x, 1e-2, 3e-2).unwrap();
    }

    #[test]
    fn gradient_accumulates_across_microbatches() {
        let mut rng = init::rng(8);
        let mut l = Linear::from_rng("l", 3, 3, false, &mut rng);
        let x1 = init::uniform([2, 3], -1.0, 1.0, &mut rng);
        let x2 = init::uniform([2, 3], -1.0, 1.0, &mut rng);
        let dy = Tensor::ones([2, 3]);

        // two micro-batches accumulated
        let _ = l.forward(&x1);
        let _ = l.backward(&dy);
        let _ = l.forward(&x2);
        let _ = l.backward(&dy);
        let acc = l.weight().grad().clone();

        // equals the sum of separate gradients
        l.zero_grad();
        let _ = l.forward(&x1);
        let _ = l.backward(&dy);
        let g1 = l.weight().grad().clone();
        l.zero_grad();
        let _ = l.forward(&x2);
        let _ = l.backward(&dy);
        let g2 = l.weight().grad().clone();
        assert!(acc.allclose(&g1.zip(&g2, |a, b| a + b), 1e-5));
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = init::rng(9);
        let mut l = Linear::from_rng("l", 2, 2, false, &mut rng);
        let _ = l.backward(&Tensor::ones([1, 2]));
    }

    #[test]
    fn flops_formula() {
        let mut rng = init::rng(10);
        let l = Linear::from_rng("l", 128, 256, false, &mut rng);
        assert_eq!(l.forward_flops(10), 2 * 10 * 128 * 256);
    }
}
