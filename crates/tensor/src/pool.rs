//! Global, thread-safe, size-classed recycling pool for tensor storage.
//!
//! Every hot-path buffer in this system — activation outputs, GEMM packing
//! panels, gradient buckets, optimizer scratch — is an f32 `Vec` whose size
//! repeats exactly from step to step. Allocating them fresh each time puts
//! `malloc`/`munmap` (and, for the multi-hundred-KB buffers that dominate a
//! training step, the kernel's mmap path and page-fault zeroing) on the
//! critical path; Colossal-AI's Gemini chunk allocator and fused CUDA
//! kernels exist to keep the real system's hot loop off the allocator for
//! the same reason. This module is the CPU-substrate analogue: freed
//! storage parks here, keyed by a power-of-two *size class*, and the next
//! request of a compatible size reuses it.
//!
//! Safety model: a buffer enters the pool only from [`recycle`], which the
//! tensor storage type calls from `Drop` — i.e. only once no live handle
//! can reach it (the `Arc` strong count hit zero). A buffer leaves the pool
//! exactly once per request. Reuse therefore can never alias live storage;
//! `tests/pool_props.rs` property-tests this against the copy-on-write
//! invariant.
//!
//! The pool is process-global and deliberately bounded (per-class and total
//! byte caps): overflow buffers fall through to the system allocator
//! exactly as before. Disable it entirely with `COLOSSAL_POOL=off` (the
//! environment always wins) or the `mem.pool` config key to bisect any
//! suspected pool bug against the plain allocating path — the arithmetic is
//! identical either way, only where the bytes come from changes.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Smallest pooled request, in elements (256 B). Anything below goes to the
/// system allocator: the lock round-trip costs more than a small malloc.
pub const MIN_POOL_ELEMS: usize = 64;
/// Number of power-of-two size classes: class `i` serves requests of up to
/// `MIN_POOL_ELEMS << i` elements. 25 classes top out at 2^30 elements.
pub const N_CLASSES: usize = 25;

/// Largest request (in elements) class `i` serves.
pub const fn class_elems(idx: usize) -> usize {
    MIN_POOL_ELEMS << idx
}
/// At most this many parked buffers per class. Sized for a simulated
/// multi-rank world: 16 device threads can each keep a handful of same-class
/// buffers (gradients, GEMM outputs, flatten scratch) in flight at once, so
/// a small cap would leak a steady trickle of misses every step.
const PER_CLASS_CAP: usize = 256;
/// Total bytes the pool may park before recycles fall through to `free`.
const TOTAL_BYTE_CAP: usize = 1 << 30;

/// One size class: a LIFO stack of parked buffers (LIFO keeps the hottest,
/// cache-resident buffer on top).
static CLASSES: OnceLock<Vec<Mutex<Vec<Vec<f32>>>>> = OnceLock::new();

fn classes() -> &'static [Mutex<Vec<Vec<f32>>>] {
    CLASSES.get_or_init(|| (0..N_CLASSES).map(|_| Mutex::new(Vec::new())).collect())
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED_BYTES: AtomicU64 = AtomicU64::new(0);
static POOLED_BYTES: AtomicUsize = AtomicUsize::new(0);
static POOLED_HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

/// Per-class parked-bytes counter and its high-water mark (indexed like
/// [`CLASSES`]). The per-class marks localize pool pressure: a single hot
/// class pinned at its cap is invisible in the global high water once a
/// bigger class dwarfs it.
struct ClassCounters {
    bytes: AtomicUsize,
    high_water: AtomicUsize,
}

static CLASS_COUNTERS: OnceLock<Vec<ClassCounters>> = OnceLock::new();

fn class_counters() -> &'static [ClassCounters] {
    CLASS_COUNTERS.get_or_init(|| {
        (0..N_CLASSES)
            .map(|_| ClassCounters {
                bytes: AtomicUsize::new(0),
                high_water: AtomicUsize::new(0),
            })
            .collect()
    })
}
/// Runtime switch (config / benches). ANDed with the environment gate.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// `COLOSSAL_POOL=off` (or `0` / `false`), read once: the environment
/// escape hatch overrides any runtime [`set_pool_enabled`] call.
fn env_forced_off() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| match std::env::var("COLOSSAL_POOL") {
        Err(_) => false,
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" => true,
            "on" | "1" | "true" => false,
            other => {
                crate::envknob::warn_invalid("COLOSSAL_POOL", other, "on/off", "on");
                false
            }
        },
    })
}

/// Whether allocations currently draw from the pool.
pub fn pool_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) && !env_forced_off()
}

/// Turns pooling on or off at runtime (the `mem.pool` config key lands
/// here). `COLOSSAL_POOL=off` in the environment wins over `on = true`.
pub fn set_pool_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Size class serving a request of `n` elements, or `None` when the request
/// is out of pooling range (tiny or enormous).
#[inline]
fn class_for_request(n: usize) -> Option<usize> {
    if n < MIN_POOL_ELEMS {
        return None;
    }
    let idx =
        n.next_power_of_two().trailing_zeros() as usize - MIN_POOL_ELEMS.trailing_zeros() as usize;
    (idx < N_CLASSES).then_some(idx)
}

/// Size class a buffer of capacity `cap` parks in: the *largest* class whose
/// request size its capacity still satisfies, so every buffer popped from
/// class `i` has capacity `>= MIN_POOL_ELEMS << i`.
#[inline]
fn class_for_capacity(cap: usize) -> Option<usize> {
    if cap < MIN_POOL_ELEMS {
        return None;
    }
    let idx =
        (usize::BITS - 1 - cap.leading_zeros()) as usize - MIN_POOL_ELEMS.trailing_zeros() as usize;
    Some(idx.min(N_CLASSES - 1))
}

/// Takes an *empty* buffer (`len == 0`) with capacity for at least `n`
/// elements — from the pool when possible, freshly allocated otherwise.
/// The caller fills it (`extend`, `resize`, `push`); garbage capacity is
/// never exposed.
pub fn take_buffer(n: usize) -> Vec<f32> {
    if pool_enabled() {
        if let Some(idx) = class_for_request(n) {
            let popped = classes()[idx].lock().expect("pool lock").pop();
            if let Some(mut buf) = popped {
                debug_assert!(buf.capacity() >= n);
                POOLED_BYTES.fetch_sub(buf.capacity() * 4, Ordering::Relaxed);
                class_counters()[idx]
                    .bytes
                    .fetch_sub(buf.capacity() * 4, Ordering::Relaxed);
                HITS.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                return buf;
            }
            MISSES.fetch_add(1, Ordering::Relaxed);
            // allocate the full class size so the buffer re-parks in the
            // same class and serves every future request that maps here
            return Vec::with_capacity(MIN_POOL_ELEMS << idx);
        }
    }
    Vec::with_capacity(n)
}

/// Takes a buffer of length `n`, zero-filled (the pooled analogue of
/// `vec![0.0; n]`; a memset instead of a fresh mmap).
pub fn take_zeroed(n: usize) -> Vec<f32> {
    let mut buf = take_buffer(n);
    buf.resize(n, 0.0);
    buf
}

/// Parks `buf` for reuse (or frees it when pooling is off, the buffer is
/// out of class range, or the pool is at capacity). Called by tensor
/// storage `Drop`, so only unreachable buffers ever arrive here.
pub fn recycle(buf: Vec<f32>) {
    let cap_bytes = buf.capacity() * 4;
    if cap_bytes == 0 || !pool_enabled() {
        return;
    }
    let Some(idx) = class_for_capacity(buf.capacity()) else {
        return;
    };
    if POOLED_BYTES.load(Ordering::Relaxed) + cap_bytes > TOTAL_BYTE_CAP {
        return;
    }
    {
        let mut class = classes()[idx].lock().expect("pool lock");
        if class.len() >= PER_CLASS_CAP {
            return; // drop: falls through to the system allocator
        }
        class.push(buf);
    }
    let now = POOLED_BYTES.fetch_add(cap_bytes, Ordering::Relaxed) + cap_bytes;
    POOLED_HIGH_WATER.fetch_max(now, Ordering::Relaxed);
    let counters = &class_counters()[idx];
    let class_now = counters.bytes.fetch_add(cap_bytes, Ordering::Relaxed) + cap_bytes;
    counters.high_water.fetch_max(class_now, Ordering::Relaxed);
    RECYCLED_BYTES.fetch_add(cap_bytes as u64, Ordering::Relaxed);
}

/// Frees every parked buffer (stats are kept; see [`reset_stats`]).
pub fn clear() {
    for class in classes() {
        class.lock().expect("pool lock").clear();
    }
    POOLED_BYTES.store(0, Ordering::Relaxed);
    for c in class_counters() {
        c.bytes.store(0, Ordering::Relaxed);
    }
}

/// Zeroes the hit/miss/recycle counters (e.g. after a warm-up step, so a
/// bench reports steady-state behavior).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RECYCLED_BYTES.store(0, Ordering::Relaxed);
    POOLED_HIGH_WATER.store(POOLED_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    for c in class_counters() {
        c.high_water
            .store(c.bytes.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// A snapshot of the pool's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Requests served from a parked buffer.
    pub hits: u64,
    /// Requests that fell through to the system allocator (pool empty for
    /// that class). Only in-range requests count; tiny buffers are not
    /// pooling candidates at all.
    pub misses: u64,
    /// Cumulative bytes accepted back into the pool.
    pub recycled_bytes: u64,
    /// Bytes currently parked in the pool.
    pub pooled_bytes: usize,
    /// High-water mark of [`PoolStats::pooled_bytes`].
    pub pooled_high_water: usize,
    /// Per-size-class high-water marks of parked bytes (class `i` serves
    /// requests of up to [`class_elems`]`(i)` elements).
    pub class_high_water: [usize; N_CLASSES],
}

impl PoolStats {
    /// Hit rate over in-range requests, `0.0` when none were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// One-line human-readable summary (used by the trace rollup footer).
    pub fn summary(&self) -> String {
        format!(
            "hits={} misses={} hit={:.1}% recycled={:.1}MB pooled-hw={:.1}MB",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.recycled_bytes as f64 / (1u64 << 20) as f64,
            self.pooled_high_water as f64 / (1usize << 20) as f64,
        )
    }

    /// One-line per-class high-water breakdown: `<class elems>=<hw>` for
    /// every class that ever parked a buffer (`-` when none did). Sizes are
    /// the class's request capacity in elements; marks are in MB.
    pub fn class_summary(&self) -> String {
        let parts: Vec<String> = self
            .class_high_water
            .iter()
            .enumerate()
            .filter(|(_, &hw)| hw > 0)
            .map(|(i, &hw)| {
                format!(
                    "{}el={:.2}MB",
                    class_elems(i),
                    hw as f64 / (1usize << 20) as f64
                )
            })
            .collect();
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Current counters (process-global: the pool is shared by every simulated
/// device thread).
pub fn stats() -> PoolStats {
    let mut class_high_water = [0usize; N_CLASSES];
    for (slot, c) in class_high_water.iter_mut().zip(class_counters()) {
        *slot = c.high_water.load(Ordering::Relaxed);
    }
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled_bytes: RECYCLED_BYTES.load(Ordering::Relaxed),
        pooled_bytes: POOLED_BYTES.load(Ordering::Relaxed),
        pooled_high_water: POOLED_HIGH_WATER.load(Ordering::Relaxed),
        class_high_water,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping_request_vs_capacity() {
        // a buffer parked from any capacity must satisfy every request that
        // maps to its class
        for cap in [64, 65, 100, 127, 128, 1 << 20, (1 << 20) + 3] {
            let idx = class_for_capacity(cap).unwrap();
            assert!(
                cap >= MIN_POOL_ELEMS << idx,
                "cap {cap} parked in class {idx} but class requests up to {}",
                MIN_POOL_ELEMS << idx
            );
        }
        assert_eq!(class_for_request(1), None);
        assert_eq!(class_for_request(63), None);
        assert_eq!(class_for_request(64), Some(0));
        assert_eq!(class_for_request(65), Some(1));
        assert_eq!(class_for_capacity(63), None);
        assert_eq!(class_for_capacity(64), Some(0));
        assert_eq!(class_for_capacity(127), Some(0));
        assert_eq!(class_for_capacity(128), Some(1));
    }

    #[test]
    fn recycle_then_take_reuses_capacity() {
        // use an unusual size so parallel tests don't interfere
        let n = 77_777;
        let mut buf = take_buffer(n);
        buf.resize(n, 1.0);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        recycle(buf);
        let again = take_buffer(n);
        // LIFO: the buffer just parked comes straight back
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(again.capacity(), cap);
        assert!(again.is_empty(), "pooled buffers come back empty");
    }

    #[test]
    fn take_zeroed_is_all_zeros_after_reuse() {
        let n = 55_555;
        let mut buf = take_buffer(n);
        buf.resize(n, 7.0); // poison
        recycle(buf);
        let z = take_zeroed(n);
        assert_eq!(z.len(), n);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tiny_requests_bypass_the_pool() {
        let before = stats();
        let b = take_buffer(8);
        recycle(b);
        let after = stats();
        assert_eq!(before.hits, after.hits);
        assert_eq!(before.misses, after.misses);
    }

    #[test]
    fn disabling_falls_through_to_malloc() {
        set_pool_enabled(false);
        let before = stats();
        let n = 99_999;
        let b = take_buffer(n);
        recycle(b);
        let after = stats();
        assert_eq!(before.hits, after.hits);
        assert_eq!(before.misses, after.misses);
        assert_eq!(before.recycled_bytes, after.recycled_bytes);
        set_pool_enabled(true);
    }

    #[test]
    fn class_high_water_tracks_each_class_independently() {
        // two unusual sizes in different classes so parallel tests don't
        // collide with these classes' counters
        let small = 70_001; // class_for_capacity of its cap
        let large = 1_234_567;
        let mut a = take_buffer(small);
        a.resize(small, 1.0);
        let a_class = class_for_capacity(a.capacity()).unwrap();
        let a_bytes = a.capacity() * 4;
        let mut b = take_buffer(large);
        b.resize(large, 1.0);
        let b_class = class_for_capacity(b.capacity()).unwrap();
        let b_bytes = b.capacity() * 4;
        assert_ne!(a_class, b_class);
        recycle(a);
        recycle(b);
        let s = stats();
        assert!(
            s.class_high_water[a_class] >= a_bytes,
            "class {a_class} high water {} < parked {a_bytes}",
            s.class_high_water[a_class]
        );
        assert!(s.class_high_water[b_class] >= b_bytes);
        // the marks survive the buffers leaving the pool again
        let _ = take_buffer(small);
        let _ = take_buffer(large);
        let s2 = stats();
        assert!(s2.class_high_water[a_class] >= a_bytes, "marks are sticky");
        let line = s2.class_summary();
        assert!(
            line.contains("el="),
            "summary lists per-class marks: {line}"
        );
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let n = 131_071; // odd size, dedicated class usage
        let before = stats();
        let b = take_buffer(n); // miss (or hit if another test parked one)
        recycle(b);
        let _b2 = take_buffer(n); // hit
        let after = stats();
        assert!(after.hits > before.hits, "reuse must count as a hit");
        assert!(after.recycled_bytes > before.recycled_bytes);
    }
}
