//! E4 — Fig 10: communication bandwidth on Systems I and II, probing
//! 125 MB transfers like the paper's NCCL bandwidth test, plus the
//! flat-vs-hierarchical all-reduce comparison the topology-aware selector
//! exploits on the multi-node System III.
//!
//! `--json` prints only the System III all-reduce probe as JSON (used by CI
//! to assert the hierarchical schedule never loses to the flat ring).

use colossalai_bench::{fmt_bandwidth, print_table};
use colossalai_topology::bandwidth::{pairwise_extremes, probe_allreduce, probe_collective};
use colossalai_topology::systems::{system_i, system_ii, system_iii};
use colossalai_topology::AllReduceAlgo;

const PROBE_BYTES: u64 = 125 << 20;

const ALLREDUCE_SIZES: [usize; 4] = [4, 8, 16, 32];

fn algo_name(a: AllReduceAlgo) -> &'static str {
    match a {
        AllReduceAlgo::FlatRing => "flat",
        AllReduceAlgo::Hierarchical => "hierarchical",
    }
}

fn json_report() {
    let cluster = system_iii();
    let probes = probe_allreduce(&cluster, &ALLREDUCE_SIZES, PROBE_BYTES);
    let entries: Vec<String> = probes
        .iter()
        .map(|p| {
            format!(
                r#"{{"gpus":{},"flat":{:.1},"hierarchical":{:.1},"selected":"{}"}}"#,
                p.group.len(),
                p.flat,
                p.hierarchical,
                algo_name(p.selected)
            )
        })
        .collect();
    println!(
        r#"{{"system":"{}","bytes":{},"probes":[{}]}}"#,
        cluster.name(),
        PROBE_BYTES,
        entries.join(",")
    );
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        json_report();
        return;
    }

    // Fig 10a: pairwise bandwidth
    let mut rows = Vec::new();
    for cluster in [system_i(), system_ii()] {
        let (min, max) = pairwise_extremes(&cluster, PROBE_BYTES);
        rows.push(vec![
            cluster.name().to_string(),
            fmt_bandwidth(max),
            fmt_bandwidth(min),
        ]);
    }
    print_table(
        "Fig 10a: GPU-pair bandwidth (125 MB message)",
        &["System", "best pair", "worst pair"],
        &rows,
    );

    // Fig 10b: collective (broadcast) bandwidth over growing groups
    let sizes = [2usize, 4, 8];
    let mut rows = Vec::new();
    for cluster in [system_i(), system_ii()] {
        let probes = probe_collective(&cluster, &sizes, PROBE_BYTES);
        let mut row = vec![cluster.name().to_string()];
        row.extend(probes.iter().map(|p| fmt_bandwidth(p.bandwidth)));
        rows.push(row);
    }
    print_table(
        "Fig 10b: collective broadcast bandwidth (125 MB)",
        &["System", "2 GPUs", "4 GPUs", "8 GPUs"],
        &rows,
    );

    // Fig 10c: flat-ring vs hierarchical all-reduce on the multi-node
    // System III — the gap the topology-aware algorithm selector exploits
    let cluster = system_iii();
    let probes = probe_allreduce(&cluster, &ALLREDUCE_SIZES, PROBE_BYTES);
    let rows: Vec<Vec<String>> = probes
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.group.len()),
                fmt_bandwidth(p.flat),
                fmt_bandwidth(p.hierarchical),
                format!("{:+.0}%", (p.hierarchical / p.flat - 1.0) * 100.0),
                algo_name(p.selected).to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig 10c: all-reduce algorithm bandwidth on {} (125 MB)",
            cluster.name()
        ),
        &["GPUs", "flat ring", "hierarchical", "gain", "selected"],
        &rows,
    );

    println!(
        "\nPaper reference: System I holds ~184 GB/s at every group size; \
         System II collapses to ~15 GB/s once the group spans a PCIe hop — \
         the topology effect behind Fig 11's mode ranking. On System III \
         (4 GPUs/node over InfiniBand) the hierarchical schedule keeps the \
         slow inter-node ring to p/4 leaders, so its advantage grows with \
         the node count; the cost-model selector picks it exactly where it \
         wins."
    );
}
