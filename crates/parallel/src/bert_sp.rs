//! A runnable sequence-parallel Transformer encoder block: Ring
//! Self-Attention plus a replicated MLP operating on the local sub-sequence
//! (Section 2.3). Together with `vit1d` this gives both of the paper's
//! model-level parallel execution paths at test scale.

use crate::sequence::RingSelfAttention;
use colossalai_autograd::{Gelu, Layer, LayerNorm, Linear, Param, Sequential};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_models::Residual;
use colossalai_tensor::init::{self, InitRng};
use colossalai_tensor::Tensor;

/// One sequence-parallel Transformer block. All parameters are replicated;
/// the input is `[b, s/p, d]` (sequence-sharded). The MLP and LayerNorms
/// are pointwise along the sequence, so they run locally with no
/// communication; only attention rides the ring.
pub struct TransformerBlockSp {
    attn: Residual<RingSelfAttention>,
    mlp: Residual<Sequential>,
}

impl TransformerBlockSp {
    /// Builds from a shared RNG stream with the identical draw order as
    /// [`colossalai_models::TransformerBlock::new`], so serial and
    /// sequence-parallel models share global initializations per seed.
    pub fn from_rng(
        ctx: &DeviceCtx,
        group: &Group,
        name: &str,
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
        rng: &mut InitRng,
    ) -> Self {
        let mut lin = |d_in: usize, d_out: usize| {
            (init::lecun_normal(d_in, d_out, rng), Tensor::zeros([d_out]))
        };
        let wq = lin(dim, dim);
        let wk = lin(dim, dim);
        let wv = lin(dim, dim);
        let wo = lin(dim, dim);
        let w1 = lin(dim, dim * mlp_ratio);
        let w2 = lin(dim * mlp_ratio, dim);
        let attn = RingSelfAttention::from_global(
            ctx,
            group,
            &format!("{name}.attn"),
            heads,
            (&wq.0, &wq.1),
            (&wk.0, &wk.1),
            (&wv.0, &wv.1),
            (&wo.0, &wo.1),
        );
        let mlp = Sequential::new(vec![
            Box::new(Linear::from_parts(&format!("{name}.fc1"), w1.0, Some(w1.1)))
                as Box<dyn Layer>,
            Box::new(Gelu::new()),
            Box::new(Linear::from_parts(&format!("{name}.fc2"), w2.0, Some(w2.1))),
        ]);
        TransformerBlockSp {
            attn: Residual::new(LayerNorm::new(&format!("{name}.ln1"), dim), attn),
            mlp: Residual::new(LayerNorm::new(&format!("{name}.ln2"), dim), mlp),
        }
    }

    /// Data-parallel-style gradient synchronization for the replicated
    /// parameters (sequence shards see different data, so grads must be
    /// summed — the paper's sequence parallelism inherits this from its
    /// data-parallel ancestry).
    pub fn sync_grads(&mut self, ctx: &DeviceCtx, group: &Group) {
        let g = group.clone();
        let c = ctx.clone();
        self.visit_params(&mut |p| {
            let reduced = g.all_reduce(&c, p.grad().clone());
            *p.grad_mut() = reduced;
        });
    }
}

impl Layer for TransformerBlockSp {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.attn.forward(x);
        self.mlp.forward(&h)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dh = self.mlp.backward(dy);
        self.attn.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attn.visit_params(f);
        self.mlp.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::split_sequence;
    use colossalai_comm::World;
    use colossalai_models::TransformerBlock;
    use colossalai_topology::systems::system_iii;

    #[test]
    fn sp_block_matches_serial_block() {
        let (dim, heads, ratio) = (8usize, 2usize, 2usize);
        let (b, s, p) = (2usize, 8usize, 4usize);
        let mut rng = init::rng(700);
        let mut serial = TransformerBlock::new("blk", dim, heads, ratio, false, &mut rng);
        let mut drng = init::rng(701);
        let x = init::uniform([b, s, dim], -0.5, 0.5, &mut drng);
        let dy = init::uniform([b, s, dim], -0.5, 0.5, &mut drng);
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);
        let mut g_want = Vec::new();
        serial.visit_params(&mut |p| g_want.push(p.grad().clone()));

        let world = World::new(system_iii());
        let results = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rng = init::rng(700);
            let mut blk = TransformerBlockSp::from_rng(ctx, &g, "blk", dim, heads, ratio, &mut rng);
            let y = blk.forward(&split_sequence(&x, p, g.rank()));
            let dx = blk.backward(&split_sequence(&dy, p, g.rank()));
            blk.sync_grads(ctx, &g);
            let mut grads = Vec::new();
            blk.visit_params(&mut |pp| grads.push(pp.grad().clone()));
            (y, dx, grads)
        });
        // outputs and input grads reassemble the serial results
        let y_got = Tensor::cat(
            &results
                .iter()
                .map(|(y, _, _)| y.clone())
                .collect::<Vec<_>>(),
            1,
        );
        let dx_got = Tensor::cat(
            &results
                .iter()
                .map(|(_, d, _)| d.clone())
                .collect::<Vec<_>>(),
            1,
        );
        assert!(
            y_got.allclose(&y_want, 3e-4),
            "fwd diff {}",
            y_got.max_abs_diff(&y_want)
        );
        assert!(
            dx_got.allclose(&dx_want, 3e-4),
            "bwd diff {}",
            dx_got.max_abs_diff(&dx_want)
        );
        // synced parameter grads equal serial grads on every rank
        for (_, _, grads) in &results {
            for (got, want) in grads.iter().zip(&g_want) {
                assert!(
                    got.allclose(want, 3e-4),
                    "grad diff {}",
                    got.max_abs_diff(want)
                );
            }
        }
    }

    #[test]
    fn sp_stack_trains_consistently() {
        // two blocks stacked; training on sequence shards keeps replicas in
        // lockstep after each synced step
        let (dim, heads, ratio) = (8usize, 2usize, 2usize);
        let (b, s, p) = (1usize, 8usize, 2usize);
        let world = World::new(system_iii());
        let params = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rng = init::rng(702);
            let mut b1 = TransformerBlockSp::from_rng(ctx, &g, "b1", dim, heads, ratio, &mut rng);
            let mut b2 = TransformerBlockSp::from_rng(ctx, &g, "b2", dim, heads, ratio, &mut rng);
            let mut drng = init::rng(703);
            for _ in 0..3 {
                let x = init::uniform([b, s, dim], -1.0, 1.0, &mut drng);
                let x_local = split_sequence(&x, p, g.rank());
                let h = b1.forward(&x_local);
                let y = b2.forward(&h);
                let dh = b2.backward(&y); // dummy loss dL/dy = y
                let _ = b1.backward(&dh);
                b1.sync_grads(ctx, &g);
                b2.sync_grads(ctx, &g);
                for blk in [&mut b1, &mut b2] {
                    blk.visit_params(&mut |p| {
                        let gr = p.grad().clone();
                        p.value_mut().axpy(-0.01, &gr);
                        p.zero_grad();
                    });
                }
            }
            let mut flat = Vec::new();
            b1.visit_params(&mut |p| flat.extend_from_slice(p.value().data()));
            b2.visit_params(&mut |p| flat.extend_from_slice(p.value().data()));
            flat
        });
        assert_eq!(
            params[0], params[1],
            "replicated params must stay in lockstep"
        );
    }
}
