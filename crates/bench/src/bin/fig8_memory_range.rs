//! E3 — Fig 8: range tests for per-device memory of the two-linear-layer
//! model under each tensor-parallel mode (batch scan and hidden scan, 4 and
//! 8 GPUs).

use colossalai_bench::{fmt_bytes, print_table};
use colossalai_parallel::memcalc::fig8_peak_bytes;
use colossalai_parallel::volume::TpMode;

const SEQ_ROWS: u64 = 512; // rows per batch element ([batch, seq, hidden] input, seq = 512)

fn scan(
    title: &str,
    modes: &[TpMode],
    points: &[(u64, u64)], // (batch, hidden)
    p: u64,
) {
    let mut headers = vec!["batch", "hidden"];
    let labels: Vec<String> = modes.iter().map(|m| m.label()).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut rows = Vec::new();
    for &(batch, hidden) in points {
        let mut row = vec![batch.to_string(), hidden.to_string()];
        for mode in modes {
            row.push(fmt_bytes(fig8_peak_bytes(
                *mode,
                batch * SEQ_ROWS,
                hidden,
                p,
            )));
        }
        rows.push(row);
    }
    print_table(title, &headers, &rows);
}

fn main() {
    let modes4 = [
        TpMode::OneD,
        TpMode::TwoD,
        TpMode::TwoPointFiveD { depth: 1 },
    ];
    let modes8 = [
        TpMode::OneD,
        TpMode::TwoPointFiveD { depth: 2 },
        TpMode::ThreeD,
    ];

    // Fig 8a/8b: batch scan at fixed hidden
    let batch_points: Vec<(u64, u64)> = [32u64, 64, 128, 256, 512]
        .iter()
        .map(|&b| (b, 4096))
        .collect();
    scan(
        "Fig 8a: batch scan, 4 GPUs (hidden = 4096)",
        &modes4,
        &batch_points,
        4,
    );
    scan(
        "Fig 8b: batch scan, 8 GPUs (hidden = 4096)",
        &modes8,
        &batch_points,
        8,
    );

    // Fig 8c/8d: hidden scan at fixed batch
    let hidden_points: Vec<(u64, u64)> = [1024u64, 2048, 4096, 8192, 16384]
        .iter()
        .map(|&h| (64, h))
        .collect();
    scan(
        "Fig 8c: hidden scan, 4 GPUs (batch = 64)",
        &modes4,
        &hidden_points,
        4,
    );
    scan(
        "Fig 8d: hidden scan, 8 GPUs (batch = 64)",
        &modes8,
        &hidden_points,
        8,
    );

    // the paper's headline percentages
    let b512 = 512 * SEQ_ROWS;
    let s25 = 1.0
        - fig8_peak_bytes(TpMode::TwoPointFiveD { depth: 2 }, b512, 4096, 8) as f64
            / fig8_peak_bytes(TpMode::OneD, b512, 4096, 8) as f64;
    let s3 = 1.0
        - fig8_peak_bytes(TpMode::ThreeD, b512, 4096, 8) as f64
            / fig8_peak_bytes(TpMode::OneD, b512, 4096, 8) as f64;
    println!(
        "\nBatch 512 on 8 GPUs: 2.5D uses {:.0}% less memory than 1D \
         (paper: 44%), 3D uses {:.0}% less (paper: 65%).",
        100.0 * s25,
        100.0 * s3
    );
    let h16k = 64 * SEQ_ROWS;
    let s25h = 1.0
        - fig8_peak_bytes(TpMode::TwoPointFiveD { depth: 2 }, h16k, 16384, 8) as f64
            / fig8_peak_bytes(TpMode::OneD, h16k, 16384, 8) as f64;
    let s3h = 1.0
        - fig8_peak_bytes(TpMode::ThreeD, h16k, 16384, 8) as f64
            / fig8_peak_bytes(TpMode::OneD, h16k, 16384, 8) as f64;
    println!(
        "Hidden 16384 on 8 GPUs: 2.5D {:.0}% better (paper: 62%), 3D {:.0}% \
         better (paper: 74.2%).",
        100.0 * s25h,
        100.0 * s3h
    );
}
