//! The cluster: devices, their node placement, and the link graph.

use crate::device::{DeviceId, GpuSpec, HostSpec};
use crate::link::{Link, LinkKind};
use serde::{Deserialize, Serialize};

/// A multi-node GPU cluster with an explicit link-level interconnect model.
///
/// Link resolution between two distinct devices `a != b`:
/// 1. an explicit entry in the link table, if present (e.g. System II's
///    NVLink bridges between adjacent pairs);
/// 2. otherwise, the node-local fallback (PCIe) when `a` and `b` share a
///    node;
/// 3. otherwise, the cross-node interconnect (InfiniBand / Aries / ...)
///    when `a` and `b` share a pod (or no pod tier is configured);
/// 4. otherwise, the cross-pod uplink of the fat-tree tier (see
///    [`Cluster::set_pods`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cluster {
    name: String,
    gpus: Vec<GpuSpec>,
    node_of: Vec<usize>,
    host: HostSpec,
    /// Sparse explicit links keyed by unordered pair (a < b), kept sorted
    /// by key for binary-search resolution.
    explicit: Vec<((DeviceId, DeviceId), Link)>,
    intra_node_fallback: Link,
    cross_node: Link,
    /// GPU <-> host-DRAM channel (offload path).
    host_link: Link,
    /// Pod index per node (fat-tree tier). Empty = single flat pod; older
    /// serialized clusters deserialize to that.
    #[serde(default)]
    pod_of_node: Vec<usize>,
    /// Link for pairs in different pods; `None` falls back to `cross_node`.
    #[serde(default)]
    cross_pod: Option<Link>,
}

impl Cluster {
    /// Builds a homogeneous cluster: `nodes * gpus_per_node` identical GPUs.
    pub fn homogeneous(
        name: impl Into<String>,
        nodes: usize,
        gpus_per_node: usize,
        gpu: GpuSpec,
        host: HostSpec,
        cross_node: Link,
    ) -> Self {
        assert!(nodes > 0 && gpus_per_node > 0, "empty cluster");
        let n = nodes * gpus_per_node;
        Cluster {
            name: name.into(),
            gpus: vec![gpu; n],
            node_of: (0..n).map(|d| d / gpus_per_node).collect(),
            host,
            explicit: Vec::new(),
            intra_node_fallback: Link::pcie(),
            cross_node,
            host_link: Link::pcie(),
            pod_of_node: Vec::new(),
            cross_pod: None,
        }
    }

    /// Human-readable name ("System I", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of GPUs.
    pub fn n_devices(&self) -> usize {
        self.gpus.len()
    }

    /// Number of distinct nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_of.iter().max().map_or(0, |&m| m + 1)
    }

    /// Spec of device `d`.
    pub fn gpu(&self, d: DeviceId) -> &GpuSpec {
        &self.gpus[d]
    }

    /// Node index hosting device `d`.
    pub fn node(&self, d: DeviceId) -> usize {
        self.node_of[d]
    }

    /// Host (CPU/NVMe) spec shared by all nodes.
    pub fn host(&self) -> &HostSpec {
        &self.host
    }

    /// GPU <-> host DRAM channel.
    pub fn host_link(&self) -> Link {
        self.host_link
    }

    /// Registers an explicit bidirectional link between `a` and `b`.
    pub fn add_link(&mut self, a: DeviceId, b: DeviceId, link: Link) {
        assert!(a != b, "self-link");
        assert!(
            a < self.n_devices() && b < self.n_devices(),
            "device out of range"
        );
        let key = (a.min(b), a.max(b));
        match self.explicit.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.explicit[i].1 = link,
            Err(i) => self.explicit.insert(i, (key, link)),
        }
    }

    /// Connects every intra-node pair with `link` (full-mesh NVLink).
    pub fn full_mesh_intra_node(&mut self, link: Link) {
        let n = self.n_devices();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.node_of[a] == self.node_of[b] {
                    self.add_link(a, b, link);
                }
            }
        }
    }

    /// Sets the intra-node fallback for pairs with no explicit link.
    pub fn set_intra_node_fallback(&mut self, link: Link) {
        self.intra_node_fallback = link;
    }

    /// Sets the GPU <-> host DRAM channel.
    pub fn set_host_link(&mut self, link: Link) {
        self.host_link = link;
    }

    /// Groups nodes into pods of `nodes_per_pod` consecutive nodes and sets
    /// the cross-pod uplink (the thin top tier of a fat tree). Traffic
    /// between nodes of one pod keeps using the `cross_node` link; only
    /// pairs crossing a pod boundary pay `cross_pod`. This models
    /// 512–4096-GPU clusters without materializing any O(n²) link table.
    pub fn set_pods(&mut self, nodes_per_pod: usize, cross_pod: Link) {
        assert!(nodes_per_pod > 0, "empty pod");
        self.pod_of_node = (0..self.n_nodes()).map(|n| n / nodes_per_pod).collect();
        self.cross_pod = Some(cross_pod);
    }

    /// Pod index hosting device `d` (0 when no pod tier is configured).
    pub fn pod(&self, d: DeviceId) -> usize {
        self.pod_of_node.get(self.node_of[d]).copied().unwrap_or(0)
    }

    /// Number of distinct pods (1 when no pod tier is configured).
    pub fn n_pods(&self) -> usize {
        self.pod_of_node.iter().max().map_or(1, |&m| m + 1)
    }

    /// The link used for traffic between devices `a` and `b`.
    pub fn link(&self, a: DeviceId, b: DeviceId) -> Link {
        assert!(a != b, "link() between a device and itself");
        let key = (a.min(b), a.max(b));
        if let Ok(i) = self.explicit.binary_search_by_key(&key, |&(k, _)| k) {
            return self.explicit[i].1;
        }
        if self.node_of[a] == self.node_of[b] {
            self.intra_node_fallback
        } else if self.pod(a) == self.pod(b) {
            self.cross_node
        } else {
            self.cross_pod.unwrap_or(self.cross_node)
        }
    }

    /// Seconds to move `bytes` from `a` to `b` point-to-point.
    pub fn p2p_time(&self, a: DeviceId, b: DeviceId, bytes: u64) -> f64 {
        if a == b {
            0.0
        } else {
            self.link(a, b).transfer_time(bytes)
        }
    }

    /// Minimum link bandwidth over the ring `group[0] -> group[1] -> ... ->
    /// group[0]`: the bottleneck that governs ring-collective throughput.
    pub fn ring_bottleneck(&self, group: &[DeviceId]) -> Link {
        assert!(group.len() >= 2, "ring of fewer than 2 devices");
        let mut worst = self.link(group[0], group[1]);
        for i in 0..group.len() {
            let l = self.link(group[i], group[(i + 1) % group.len()]);
            if l.bandwidth < worst.bandwidth {
                worst = l;
            }
        }
        worst
    }

    /// True when every pair in `group` enjoys an NVLink-class connection —
    /// the "fully connected NVLink" property that favors 1D tensor
    /// parallelism (Fig 9a).
    pub fn fully_nvlinked(&self, group: &[DeviceId]) -> bool {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                if self.link(a, b).kind != LinkKind::NvLink {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_cluster() -> Cluster {
        Cluster::homogeneous(
            "test",
            2,
            4,
            GpuSpec::a100(40),
            HostSpec::workstation(),
            Link::infiniband_hdr(),
        )
    }

    #[test]
    fn shape_of_homogeneous_cluster() {
        let c = two_node_cluster();
        assert_eq!(c.n_devices(), 8);
        assert_eq!(c.n_nodes(), 2);
        assert_eq!(c.node(0), 0);
        assert_eq!(c.node(3), 0);
        assert_eq!(c.node(4), 1);
    }

    #[test]
    fn link_resolution_order() {
        let mut c = two_node_cluster();
        // intra-node default = PCIe
        assert_eq!(c.link(0, 1).kind, LinkKind::Pcie);
        // cross-node = IB
        assert_eq!(c.link(0, 4).kind, LinkKind::InfiniBandHdr);
        // explicit overrides
        c.add_link(0, 1, Link::nvlink());
        assert_eq!(c.link(0, 1).kind, LinkKind::NvLink);
        assert_eq!(c.link(1, 0).kind, LinkKind::NvLink, "links are symmetric");
    }

    #[test]
    fn full_mesh_only_intra_node() {
        let mut c = two_node_cluster();
        c.full_mesh_intra_node(Link::nvlink());
        assert_eq!(c.link(0, 3).kind, LinkKind::NvLink);
        assert_eq!(c.link(3, 4).kind, LinkKind::InfiniBandHdr);
        assert!(c.fully_nvlinked(&[0, 1, 2, 3]));
        assert!(!c.fully_nvlinked(&[2, 3, 4]));
    }

    #[test]
    fn ring_bottleneck_finds_weakest_link() {
        let mut c = two_node_cluster();
        c.full_mesh_intra_node(Link::nvlink());
        // ring confined to one node: NVLink
        assert_eq!(c.ring_bottleneck(&[0, 1, 2, 3]).kind, LinkKind::NvLink);
        // ring spanning nodes: bottleneck is IB
        assert_eq!(
            c.ring_bottleneck(&[2, 3, 4, 5]).kind,
            LinkKind::InfiniBandHdr
        );
    }

    #[test]
    fn pod_tier_resolves_after_node_tier() {
        let mut c = Cluster::homogeneous(
            "pods",
            8,
            2,
            GpuSpec::a100(40),
            HostSpec::workstation(),
            Link::infiniband_hdr(),
        );
        // no pod tier yet: everything cross-node is IB
        assert_eq!(c.link(0, 15).kind, LinkKind::InfiniBandHdr);
        assert_eq!(c.n_pods(), 1);
        c.set_pods(4, Link::aries());
        assert_eq!(c.n_pods(), 2);
        assert_eq!(c.pod(0), 0);
        assert_eq!(c.pod(7), 0, "device 7 is node 3, pod 0");
        assert_eq!(c.pod(8), 1, "device 8 is node 4, pod 1");
        // same node: PCIe fallback; same pod: IB; cross pod: Aries uplink
        assert_eq!(c.link(0, 1).kind, LinkKind::Pcie);
        assert_eq!(c.link(0, 7).kind, LinkKind::InfiniBandHdr);
        assert_eq!(c.link(0, 8).kind, LinkKind::Aries);
        // explicit links still win over every tier
        c.add_link(0, 8, Link::nvlink());
        assert_eq!(c.link(8, 0).kind, LinkKind::NvLink);
    }

    #[test]
    fn explicit_table_stays_sorted_under_any_insert_order() {
        let mut c = two_node_cluster();
        c.add_link(5, 6, Link::nvlink());
        c.add_link(0, 1, Link::nvlink());
        c.add_link(3, 2, Link::aries());
        c.add_link(2, 3, Link::nvlink()); // overwrite, not duplicate
        assert_eq!(c.link(2, 3).kind, LinkKind::NvLink);
        assert_eq!(c.link(0, 1).kind, LinkKind::NvLink);
        assert_eq!(c.link(6, 5).kind, LinkKind::NvLink);
        assert_eq!(
            c.link(0, 2).kind,
            LinkKind::Pcie,
            "unlisted pair falls back"
        );
    }

    #[test]
    fn p2p_zero_for_self() {
        let c = two_node_cluster();
        assert_eq!(c.p2p_time(2, 2, 1 << 20), 0.0);
        assert!(c.p2p_time(0, 1, 1 << 20) > 0.0);
    }
}
