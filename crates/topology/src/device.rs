//! Accelerator and host device specifications.

use serde::{Deserialize, Serialize};

/// Identifier of a device within a cluster (dense, 0-based).
pub type DeviceId = usize;

/// Static specification of one GPU model.
///
/// `sustained_fraction` converts peak datasheet FLOP/s into the sustained
/// rate a dense transformer workload actually achieves (model FLOPs
/// utilization); the paper's throughput numbers imply ~35-45% on A100 and
/// ~30% on P100, so these presets use values in that range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. "A100-80GB".
    pub name: String,
    /// Device memory in bytes.
    pub memory_bytes: u64,
    /// Peak FP32 throughput in FLOP/s.
    pub peak_flops_f32: f64,
    /// Peak FP16 (tensor-core) throughput in FLOP/s.
    pub peak_flops_f16: f64,
    /// Fraction of peak a real training kernel sustains (0 < f <= 1).
    pub sustained_fraction: f64,
}

impl GpuSpec {
    /// Nvidia A100 with the given memory size in GiB (40 or 80 in the paper).
    pub fn a100(mem_gib: u64) -> Self {
        GpuSpec {
            name: format!("A100-{mem_gib}GB"),
            memory_bytes: mem_gib * (1 << 30),
            peak_flops_f32: 19.5e12,
            peak_flops_f16: 312e12,
            sustained_fraction: 0.40,
        }
    }

    /// Nvidia P100 16 GB (System IV).
    pub fn p100() -> Self {
        GpuSpec {
            name: "P100-16GB".to_string(),
            memory_bytes: 16 * (1 << 30),
            peak_flops_f32: 9.3e12,
            peak_flops_f16: 18.7e12,
            sustained_fraction: 0.30,
        }
    }

    /// Seconds to execute `flops` floating-point operations in FP32.
    pub fn compute_time_f32(&self, flops: u64) -> f64 {
        flops as f64 / (self.peak_flops_f32 * self.sustained_fraction)
    }

    /// Seconds to execute `flops` floating-point operations in FP16.
    pub fn compute_time_f16(&self, flops: u64) -> f64 {
        flops as f64 / (self.peak_flops_f16 * self.sustained_fraction)
    }
}

/// Host (CPU + DRAM + optional NVMe) attached to a node: the offload targets
/// of Section 2.4 / 3.2.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// CPU DRAM in bytes.
    pub dram_bytes: u64,
    /// NVMe capacity in bytes (0 = no NVMe tier).
    pub nvme_bytes: u64,
    /// Sustained CPU throughput for optimizer math, FLOP/s.
    pub cpu_flops: f64,
    /// NVMe sequential bandwidth, bytes/s.
    pub nvme_bandwidth: f64,
}

impl HostSpec {
    /// A DGX-class host: 1 TiB DRAM, 15 TiB NVMe.
    pub fn dgx() -> Self {
        HostSpec {
            dram_bytes: 1 << 40,
            nvme_bytes: 15 * (1 << 40),
            cpu_flops: 2.0e12,
            nvme_bandwidth: 3.0e9,
        }
    }

    /// A modest host: 256 GiB DRAM, no NVMe.
    pub fn workstation() -> Self {
        HostSpec {
            dram_bytes: 256 * (1 << 30),
            nvme_bytes: 0,
            cpu_flops: 1.0e12,
            nvme_bandwidth: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_spec() {
        let g = GpuSpec::a100(80);
        assert_eq!(g.memory_bytes, 80 * (1 << 30));
        assert_eq!(g.name, "A100-80GB");
    }

    #[test]
    fn compute_time_scales_linearly() {
        let g = GpuSpec::a100(40);
        let t1 = g.compute_time_f32(1_000_000_000);
        let t2 = g.compute_time_f32(2_000_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // fp16 is faster than fp32 on tensor cores
        assert!(g.compute_time_f16(1 << 30) < g.compute_time_f32(1 << 30));
    }

    #[test]
    fn p100_smaller_than_a100() {
        assert!(GpuSpec::p100().memory_bytes < GpuSpec::a100(40).memory_bytes);
        assert!(GpuSpec::p100().peak_flops_f16 < GpuSpec::a100(40).peak_flops_f16);
    }

    #[test]
    fn serde_roundtrip() {
        let g = GpuSpec::a100(80);
        let json = serde_json::to_string(&g).unwrap();
        let back: GpuSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
