//! The runnable Transformer block (Fig 2 of the paper): Multi-head
//! Attention + Feed Forward, pre-LayerNorm, residual connections.

use colossalai_autograd::{Layer, LayerNorm, Linear, MultiHeadAttention, Param, Sequential};
use colossalai_tensor::init::InitRng;
use colossalai_tensor::Tensor;

/// `x + f(ln(x))` — the residual wrapper both halves of the block use.
pub struct Residual<L: Layer> {
    ln: LayerNorm,
    inner: L,
}

impl<L: Layer> Residual<L> {
    pub fn new(ln: LayerNorm, inner: L) -> Self {
        Residual { ln, inner }
    }
}

impl<L: Layer> Layer for Residual<L> {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let normed = self.ln.forward(x);
        let fx = self.inner.forward(&normed);
        x.zip(&fx, |a, b| a + b)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d_inner = self.inner.backward(dy);
        let d_ln = self.ln.backward(&d_inner);
        dy.zip(&d_ln, |a, b| a + b)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln.visit_params(f);
        self.inner.visit_params(f);
    }
}

/// One Transformer layer.
pub struct TransformerBlock {
    attn: Residual<MultiHeadAttention>,
    mlp: Residual<Sequential>,
}

impl TransformerBlock {
    /// Builds a block with hidden size `dim`, `heads` attention heads and an
    /// `mlp_ratio`-times-wider feed-forward, optionally causal.
    pub fn new(
        name: &str,
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
        causal: bool,
        rng: &mut InitRng,
    ) -> Self {
        let attn = MultiHeadAttention::new(&format!("{name}.attn"), dim, heads, causal, rng);
        // fc1 carries its GELU fused (bitwise-identical to a separate Gelu
        // layer, which held no params — the parameter visit order is
        // unchanged)
        let mlp = Sequential::new(vec![
            Box::new(
                Linear::from_rng(&format!("{name}.fc1"), dim, dim * mlp_ratio, true, rng)
                    .with_gelu(),
            ),
            Box::new(Linear::from_rng(
                &format!("{name}.fc2"),
                dim * mlp_ratio,
                dim,
                true,
                rng,
            )),
        ]);
        TransformerBlock {
            attn: Residual::new(LayerNorm::new(&format!("{name}.ln1"), dim), attn),
            mlp: Residual::new(LayerNorm::new(&format!("{name}.ln2"), dim), mlp),
        }
    }
}

impl Layer for TransformerBlock {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.attn.forward(x);
        self.mlp.forward(&h)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dh = self.mlp.backward(dy);
        self.attn.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attn.visit_params(f);
        self.mlp.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::grad_check;
    use colossalai_tensor::init;

    #[test]
    fn block_preserves_shape() {
        let mut rng = init::rng(50);
        let mut b = TransformerBlock::new("blk", 8, 2, 4, false, &mut rng);
        let x = init::uniform([2, 5, 8], -1.0, 1.0, &mut rng);
        let y = b.forward(&x);
        assert_eq!(y.dims(), x.dims());
        let dx = b.backward(&Tensor::ones([2, 5, 8]));
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn block_grad_check() {
        let mut rng = init::rng(51);
        let mut b = TransformerBlock::new("blk", 4, 2, 2, false, &mut rng);
        let x = init::uniform([1, 3, 4], -0.5, 0.5, &mut rng);
        grad_check(&mut b, &x, 1e-2, 1e-1).unwrap();
    }

    #[test]
    fn residual_passes_identity_gradient() {
        // with a zero inner function the residual is the identity; test with
        // zero-initialized linear
        let mut rng = init::rng(52);
        let ln = LayerNorm::new("ln", 4);
        let zero_linear = Linear::from_parts("z", Tensor::zeros([4, 4]), Some(Tensor::zeros([4])));
        let mut r = Residual::new(ln, zero_linear);
        let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
        let y = r.forward(&x);
        assert!(y.allclose(&x, 1e-6));
        let dy = init::uniform([2, 4], -1.0, 1.0, &mut rng);
        let dx = r.backward(&dy);
        // gradient flows at least through the skip path
        assert!(dx.allclose(&dy, 1e-6));
    }

    #[test]
    fn param_count_matches_calculator() {
        let mut rng = init::rng(53);
        let dim = 16;
        let heads = 4;
        let mut b = TransformerBlock::new("blk", dim, heads, 4, false, &mut rng);
        let cfg = crate::config::TransformerConfig {
            layers: 1,
            hidden: dim,
            heads,
            mlp_ratio: 4,
            vocab: 10,
            max_seq: 8,
        };
        assert_eq!(b.n_params() as u64, cfg.params_per_layer());
    }
}
