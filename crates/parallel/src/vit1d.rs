//! A fully assembled 1D tensor-parallel Vision Transformer: parallel
//! attention + parallel MLP per block, replicated embeddings/norms/head.
//!
//! Replicated layers need no gradient synchronization under pure tensor
//! parallelism: every rank sees the identical input batch, and the
//! all-reduces inside the parallel blocks make their outputs (and therefore
//! all downstream gradients) identical on every rank.

use crate::tp1d::{ParallelAttention1d, ParallelMlp};
use colossalai_autograd::{Layer, LayerNorm, Linear, Param, PositionEmbedding};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_models::{Residual, TransformerConfig};
use colossalai_tensor::init::{self, InitRng};
use colossalai_tensor::ops::sum_axis;
use colossalai_tensor::Tensor;

/// One 1D-tensor-parallel Transformer block.
pub struct TransformerBlock1d {
    attn: Residual<ParallelAttention1d>,
    mlp: Residual<ParallelMlp>,
}

impl TransformerBlock1d {
    /// Builds the block from a shared RNG stream. Every rank must call with
    /// an identically seeded RNG so the *global* weights agree; each rank
    /// keeps only its shard. The draw order matches
    /// [`colossalai_models::TransformerBlock::new`], so a serial block built
    /// from the same seed has the same global parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn from_rng(
        ctx: &DeviceCtx,
        group: &Group,
        name: &str,
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
        causal: bool,
        rng: &mut InitRng,
    ) -> Self {
        // draw the global weights exactly as the serial block does
        let mut lin = |d_in: usize, d_out: usize| {
            (init::lecun_normal(d_in, d_out, rng), Tensor::zeros([d_out]))
        };
        let wq = lin(dim, dim);
        let wk = lin(dim, dim);
        let wv = lin(dim, dim);
        let wo = lin(dim, dim);
        let w1 = lin(dim, dim * mlp_ratio);
        let w2 = lin(dim * mlp_ratio, dim);
        let attn = ParallelAttention1d::from_global(
            ctx,
            group,
            &format!("{name}.attn"),
            heads,
            (&wq.0, &wq.1),
            (&wk.0, &wk.1),
            (&wv.0, &wv.1),
            (&wo.0, &wo.1),
            causal,
        );
        let mlp = ParallelMlp::from_global(
            ctx,
            group,
            &format!("{name}.mlp"),
            &w1.0,
            &w1.1,
            &w2.0,
            &w2.1,
        );
        TransformerBlock1d {
            attn: Residual::new(LayerNorm::new(&format!("{name}.ln1"), dim), attn),
            mlp: Residual::new(LayerNorm::new(&format!("{name}.ln2"), dim), mlp),
        }
    }
}

impl Layer for TransformerBlock1d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.attn.forward(x);
        self.mlp.forward(&h)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dh = self.mlp.backward(dy);
        self.attn.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attn.visit_params(f);
        self.mlp.visit_params(f);
    }
}

/// A 1D-tensor-parallel ViT with the same architecture (and, per seed, the
/// same global initialization) as
/// [`colossalai_models::VisionTransformer`].
pub struct VisionTransformer1d {
    proj: Linear,
    pos: PositionEmbedding,
    blocks: Vec<TransformerBlock1d>,
    ln_f: LayerNorm,
    head: Linear,
    n_patches: usize,
}

impl VisionTransformer1d {
    pub fn new(
        ctx: &DeviceCtx,
        group: &Group,
        cfg: &TransformerConfig,
        patch_dim: usize,
        rng: &mut InitRng,
    ) -> Self {
        let blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock1d::from_rng(
                    ctx,
                    group,
                    &format!("vit.block{i}"),
                    cfg.hidden,
                    cfg.heads,
                    cfg.mlp_ratio,
                    false,
                    rng,
                )
            })
            .collect();
        VisionTransformer1d {
            proj: Linear::from_rng("vit.patch_proj", patch_dim, cfg.hidden, true, rng),
            pos: PositionEmbedding::new("vit", cfg.max_seq, cfg.hidden, rng),
            blocks,
            ln_f: LayerNorm::new("vit.ln_f", cfg.hidden),
            head: Linear::from_rng("vit.head", cfg.hidden, cfg.vocab, true, rng),
            n_patches: cfg.max_seq,
        }
    }
}

impl Layer for VisionTransformer1d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let s = x.dims()[1];
        let mut h = self.proj.forward(x);
        h = self.pos.forward(&h);
        for blk in &mut self.blocks {
            h = blk.forward(&h);
        }
        let h = self.ln_f.forward(&h);
        let mut pooled = sum_axis(&h, 1);
        pooled.scale(1.0 / s as f32);
        self.head.forward(&pooled)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dpooled = self.head.backward(dy);
        let (b, d) = (dpooled.dims()[0], dpooled.dims()[1]);
        let s = self.n_patches;
        let mut dh = Tensor::zeros([b, s, d]);
        for bi in 0..b {
            for si in 0..s {
                for di in 0..d {
                    dh.set(&[bi, si, di], dpooled.at(&[bi, di]) / s as f32);
                }
            }
        }
        let mut dh = self.ln_f.backward(&dh);
        for blk in self.blocks.iter_mut().rev() {
            dh = blk.backward(&dh);
        }
        let dh = self.pos.backward(&dh);
        self.proj.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.proj.visit_params(f);
        self.pos.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_comm::World;
    use colossalai_models::TransformerBlock;
    use colossalai_tensor::init;
    use colossalai_topology::systems::system_i;

    #[test]
    fn parallel_block_matches_serial_block() {
        let (dim, heads, ratio) = (8usize, 4usize, 2usize);
        // serial reference built from seed 900
        let mut rng = init::rng(900);
        let mut serial = TransformerBlock::new("blk", dim, heads, ratio, false, &mut rng);
        let mut rng_data = init::rng(901);
        let x = init::uniform([2, 3, dim], -0.5, 0.5, &mut rng_data);
        let dy = init::uniform([2, 3, dim], -0.5, 0.5, &mut rng_data);
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);

        let world = World::new(system_i());
        let results = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mut rng = init::rng(900);
            let mut blk =
                TransformerBlock1d::from_rng(ctx, &g, "blk", dim, heads, ratio, false, &mut rng);
            let y = blk.forward(&x);
            let dx = blk.backward(&dy);
            (y, dx)
        });
        for (y, dx) in &results {
            assert!(
                y.allclose(&y_want, 2e-4),
                "fwd diff {}",
                y.max_abs_diff(&y_want)
            );
            assert!(
                dx.allclose(&dx_want, 2e-4),
                "bwd diff {}",
                dx.max_abs_diff(&dx_want)
            );
        }
    }

    #[test]
    fn parallel_vit_trains_like_serial() {
        let cfg = TransformerConfig {
            layers: 2,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            vocab: 4,
            max_seq: 4,
        };
        let patch_dim = 6;
        let mut rng_data = init::rng(903);
        let x = init::uniform([4, 4, patch_dim], -1.0, 1.0, &mut rng_data);
        let targets = [0usize, 1, 2, 3];
        let steps = 5;
        let lr = 0.05;

        // serial trajectory (same seed => same *global* init up to sharding)
        let mut rng = init::rng(902);
        let mut serial = colossalai_models::VisionTransformer::new(&cfg, patch_dim, &mut rng);
        let mut serial_losses = Vec::new();
        for _ in 0..steps {
            serial.zero_grad();
            let logits = serial.forward(&x);
            let (loss, d) = colossalai_tensor::ops::cross_entropy(&logits, &targets);
            serial_losses.push(loss);
            let _ = serial.backward(&d);
            serial.visit_params(&mut |p| {
                let g = p.grad().clone();
                p.value_mut().axpy(-lr, &g);
            });
        }

        let world = World::new(system_i());
        let results = world.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            let mut rng = init::rng(902);
            let mut vit = VisionTransformer1d::new(ctx, &g, &cfg, patch_dim, &mut rng);
            let mut losses = Vec::new();
            for _ in 0..steps {
                vit.zero_grad();
                let logits = vit.forward(&x);
                let (loss, d) = colossalai_tensor::ops::cross_entropy(&logits, &targets);
                losses.push(loss);
                let _ = vit.backward(&d);
                vit.visit_params(&mut |p| {
                    let gr = p.grad().clone();
                    p.value_mut().axpy(-lr, &gr);
                });
            }
            losses
        });
        // NOTE: the parallel model's RNG consumption differs (it draws the
        // same matrices in the same order — wq..w2 per block — so the global
        // init matches exactly)
        for losses in &results {
            for (a, b) in losses.iter().zip(&serial_losses) {
                assert!(
                    (a - b).abs() < 2e-3,
                    "loss curves diverged: {losses:?} vs {serial_losses:?}"
                );
            }
        }
    }
}
