//! Experimental automatic parallelization (Section 3.3).
//!
//! Two pieces, mirroring the paper's description of what it improves over
//! Alpa:
//!
//! * **Sharding-spec conversion search** — Alpa hardcodes a conversion
//!   table, limiting the number of sharded dimensions; Colossal-AI searches
//!   conversion paths greedily. [`conversion_path`] runs a shortest-path
//!   search over the spec graph using the collectives' modeled costs, so
//!   any spec pair gets an optimal multi-step plan without a table.
//! * **Checkpoint-aware strategy search** — activation checkpointing is
//!   folded into the per-layer strategy choice ([`plan_strategies`]), so a
//!   model can be simultaneously sharded *and* checkpointed to fit a memory
//!   budget at minimal step time.

use std::collections::HashMap;

/// How a (logically 2-D) tensor is laid out across `p` devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShardSpec {
    /// Full copy on every device.
    Replicated,
    /// Split along dimension `0` or `1`.
    Shard(usize),
    /// Each device holds a partial sum (the state after a local matmul
    /// against a row-sharded weight, before any reduction).
    Partial,
}

impl ShardSpec {
    /// All specs reachable in the search.
    pub fn all() -> [ShardSpec; 4] {
        [
            ShardSpec::Replicated,
            ShardSpec::Shard(0),
            ShardSpec::Shard(1),
            ShardSpec::Partial,
        ]
    }
}

/// One conversion step and its collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvOp {
    /// `Shard(d) -> Replicated`.
    AllGather(usize),
    /// `Replicated -> Shard(d)` (a local slice; free of communication).
    Slice(usize),
    /// `Shard(a) -> Shard(b)`.
    AllToAll(usize, usize),
    /// `Partial -> Replicated`.
    AllReduce,
    /// `Partial -> Shard(d)`.
    ReduceScatter(usize),
}

/// Element-hops a single conversion step moves, for a tensor of `elems`
/// elements over `p` devices (ring-algorithm accounting, matching
/// `colossalai-comm`'s meters).
pub fn step_cost(op: ConvOp, elems: u64, p: u64) -> u64 {
    match op {
        ConvOp::Slice(_) => 0,
        ConvOp::AllGather(_) => (p - 1) * elems,
        ConvOp::AllToAll(_, _) => (p - 1) * elems / p,
        ConvOp::AllReduce => 2 * (p - 1) * elems,
        ConvOp::ReduceScatter(_) => (p - 1) * elems,
    }
}

/// Single-step transitions available from `from`.
fn neighbors(from: ShardSpec) -> Vec<(ConvOp, ShardSpec)> {
    match from {
        ShardSpec::Replicated => vec![
            (ConvOp::Slice(0), ShardSpec::Shard(0)),
            (ConvOp::Slice(1), ShardSpec::Shard(1)),
        ],
        ShardSpec::Shard(d) => {
            let other = 1 - d;
            vec![
                (ConvOp::AllGather(d), ShardSpec::Replicated),
                (ConvOp::AllToAll(d, other), ShardSpec::Shard(other)),
            ]
        }
        ShardSpec::Partial => vec![
            (ConvOp::AllReduce, ShardSpec::Replicated),
            (ConvOp::ReduceScatter(0), ShardSpec::Shard(0)),
            (ConvOp::ReduceScatter(1), ShardSpec::Shard(1)),
        ],
    }
}

/// Minimal-cost conversion path `from -> to` for an `elems`-element tensor
/// over `p` devices. Returns `(ops, total element-hops)`.
///
/// The graph is tiny (4 specs), so exhaustive Dijkstra *is* the greedy
/// search — no hardcoded table and no dimension limit.
pub fn conversion_path(from: ShardSpec, to: ShardSpec, elems: u64, p: u64) -> (Vec<ConvOp>, u64) {
    assert!(p >= 2, "conversion over fewer than 2 devices is trivial");
    if from == to {
        return (Vec::new(), 0);
    }
    // Dijkstra over <= 4 nodes
    let mut best: HashMap<ShardSpec, (u64, Vec<ConvOp>)> = HashMap::new();
    best.insert(from, (0, Vec::new()));
    let mut frontier = vec![from];
    while let Some(cur) = frontier.pop() {
        let (cur_cost, cur_path) = best[&cur].clone();
        for (op, next) in neighbors(cur) {
            let cost = cur_cost + step_cost(op, elems, p);
            let better = best.get(&next).is_none_or(|(c, _)| cost < *c);
            if better {
                let mut path = cur_path.clone();
                path.push(op);
                best.insert(next, (cost, path));
                frontier.push(next);
            }
        }
    }
    let (cost, path) = best
        .get(&to)
        .unwrap_or_else(|| panic!("no conversion path {from:?} -> {to:?}"))
        .clone();
    (path, cost)
}

// ---------------------------------------------------------------------------

/// Per-layer description fed to the strategy search.
#[derive(Clone, Copy, Debug)]
pub struct LayerProfile {
    /// Forward FLOPs of the layer.
    pub flops: u64,
    /// Activation bytes the layer caches for backward (unsharded).
    pub act_bytes: u64,
    /// Weight bytes (unsharded).
    pub weight_bytes: u64,
    /// The spec the layer's kernel wants its input in.
    pub input_spec: ShardSpec,
    /// The spec the layer's kernel produces.
    pub output_spec: ShardSpec,
}

/// A chosen per-layer strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerChoice {
    /// Whether the layer's activations are checkpointed (dropped and
    /// recomputed in backward).
    pub checkpoint: bool,
    /// Conversion cost (element-hops) paid on this layer's input boundary.
    pub conversion_cost: u64,
}

/// Search result.
#[derive(Clone, Debug)]
pub struct AutoPlan {
    pub choices: Vec<LayerChoice>,
    /// Total modeled step time units (compute FLOPs + lambda * comm hops).
    pub total_cost: u64,
    /// Peak activation + weight bytes per device under the plan.
    pub memory_bytes: u64,
}

/// Relative weight of one communicated element vs one FLOP in the
/// objective (a bandwidth-to-compute ratio; 16 matches an A100-class ratio
/// of ~125 TFLOP/s to ~200 GB/s at 4-byte elements).
pub const COMM_WEIGHT: u64 = 16;

/// Chooses, per layer, whether to checkpoint, and pays the sharding
/// conversion each layer boundary needs — minimizing compute + weighted
/// communication subject to a per-device memory budget over `p` devices.
///
/// Greedy-with-repair: start from the fastest plan (no checkpointing);
/// while over budget, checkpoint the layer with the largest
/// activation-bytes-per-extra-FLOP ratio. Returns `None` when even full
/// checkpointing cannot fit.
pub fn plan_strategies(layers: &[LayerProfile], p: u64, budget_bytes: u64) -> Option<AutoPlan> {
    assert!(!layers.is_empty(), "empty model");
    // boundary conversions are forced by adjacent specs (elems from bytes/4)
    let mut choices: Vec<LayerChoice> = Vec::with_capacity(layers.len());
    let mut comm = 0u64;
    for i in 0..layers.len() {
        let conv = if i == 0 {
            0
        } else {
            let elems = layers[i - 1].act_bytes / 4;
            let (_, cost) =
                conversion_path(layers[i - 1].output_spec, layers[i].input_spec, elems, p);
            cost
        };
        comm += conv;
        choices.push(LayerChoice {
            checkpoint: false,
            conversion_cost: conv,
        });
    }

    let weights: u64 = layers.iter().map(|l| l.weight_bytes / p).sum();
    let act_of = |l: &LayerProfile, ck: bool| -> u64 {
        // sharded activations: 1/p resident; checkpointing keeps only the
        // boundary input (modeled as 1/8 of the layer's activations)
        let full = l.act_bytes / p;
        if ck {
            full / 8
        } else {
            full
        }
    };
    let mem = |choices: &[LayerChoice]| -> u64 {
        weights
            + layers
                .iter()
                .zip(choices)
                .map(|(l, c)| act_of(l, c.checkpoint))
                .sum::<u64>()
    };
    let compute = |choices: &[LayerChoice]| -> u64 {
        layers
            .iter()
            .zip(choices)
            .map(|(l, c)| l.flops / p + if c.checkpoint { l.flops / p } else { 0 })
            .sum()
    };

    // repair loop: checkpoint the best-ratio layer until we fit
    while mem(&choices) > budget_bytes {
        let candidate = layers
            .iter()
            .enumerate()
            .filter(|(i, _)| !choices[*i].checkpoint)
            .max_by_key(|(_, l)| {
                // bytes saved per extra FLOP (scaled to avoid division)
                let saved = l.act_bytes / p - l.act_bytes / p / 8;
                (saved as u128 * 1_000_000 / (l.flops / p).max(1) as u128) as u64
            });
        match candidate {
            Some((i, _)) => choices[i].checkpoint = true,
            None => return None, // everything checkpointed and still OOM
        }
    }

    let total_cost = compute(&choices) + COMM_WEIGHT * comm;
    let memory_bytes = mem(&choices);
    Some(AutoPlan {
        choices,
        total_cost,
        memory_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = 4;
    const N: u64 = 1 << 20; // elements

    #[test]
    fn identity_conversion_is_free() {
        for s in ShardSpec::all() {
            let (ops, cost) = conversion_path(s, s, N, P);
            assert!(ops.is_empty());
            assert_eq!(cost, 0);
        }
    }

    #[test]
    fn replicated_to_shard_is_free_slice() {
        let (ops, cost) = conversion_path(ShardSpec::Replicated, ShardSpec::Shard(1), N, P);
        assert_eq!(ops, vec![ConvOp::Slice(1)]);
        assert_eq!(cost, 0);
    }

    #[test]
    fn shard_to_shard_uses_all_to_all_not_gather_slice() {
        // all-to-all moves (p-1)/p * N; gather+slice would move (p-1) * N
        let (ops, cost) = conversion_path(ShardSpec::Shard(0), ShardSpec::Shard(1), N, P);
        assert_eq!(ops, vec![ConvOp::AllToAll(0, 1)]);
        assert_eq!(cost, (P - 1) * N / P);
        assert!(cost < (P - 1) * N, "must beat the via-replicated path");
    }

    #[test]
    fn partial_to_shard_uses_reduce_scatter() {
        let (ops, cost) = conversion_path(ShardSpec::Partial, ShardSpec::Shard(0), N, P);
        assert_eq!(ops, vec![ConvOp::ReduceScatter(0)]);
        // cheaper than all-reduce then slice
        assert!(cost < step_cost(ConvOp::AllReduce, N, P));
    }

    #[test]
    fn search_matches_brute_force_on_all_pairs() {
        // brute force over paths of length <= 3
        fn brute(from: ShardSpec, to: ShardSpec) -> u64 {
            let mut best = u64::MAX;
            fn rec(cur: ShardSpec, to: ShardSpec, cost: u64, depth: usize, best: &mut u64) {
                if cur == to {
                    *best = (*best).min(cost);
                    return;
                }
                if depth == 0 {
                    return;
                }
                for (op, next) in neighbors(cur) {
                    rec(next, to, cost + step_cost(op, N, P), depth - 1, best);
                }
            }
            rec(from, to, 0, 3, &mut best);
            best
        }
        for from in ShardSpec::all() {
            for to in ShardSpec::all() {
                if to == ShardSpec::Partial && from != ShardSpec::Partial {
                    continue; // partial states are produced by kernels, not conversions
                }
                let (_, got) = conversion_path(from, to, N, P);
                assert_eq!(got, brute(from, to), "{from:?} -> {to:?}");
            }
        }
    }

    fn layer(flops: u64, act: u64, out: ShardSpec, inp: ShardSpec) -> LayerProfile {
        LayerProfile {
            flops,
            act_bytes: act,
            weight_bytes: 1 << 20,
            input_spec: inp,
            output_spec: out,
        }
    }

    #[test]
    fn loose_budget_checkpoints_nothing() {
        let layers = vec![
            layer(1 << 30, 1 << 24, ShardSpec::Shard(0), ShardSpec::Shard(0)),
            layer(1 << 30, 1 << 24, ShardSpec::Shard(0), ShardSpec::Shard(0)),
        ];
        let plan = plan_strategies(&layers, P, u64::MAX).unwrap();
        assert!(plan.choices.iter().all(|c| !c.checkpoint));
        // matched specs: no conversion traffic
        assert!(plan.choices.iter().all(|c| c.conversion_cost == 0));
    }

    #[test]
    fn tight_budget_checkpoints_cheap_layers_first() {
        // layer 1 has huge activations but tiny flops -> best ratio
        let layers = vec![
            layer(1 << 30, 1 << 20, ShardSpec::Shard(0), ShardSpec::Shard(0)),
            layer(1 << 10, 1 << 28, ShardSpec::Shard(0), ShardSpec::Shard(0)),
            layer(1 << 30, 1 << 20, ShardSpec::Shard(0), ShardSpec::Shard(0)),
        ];
        let no_fit_without = (1u64 << 20) / P + (1 << 28) / P + (1 << 20) / P + 3 * ((1 << 20) / P);
        let plan = plan_strategies(&layers, P, no_fit_without - 1).unwrap();
        assert!(plan.choices[1].checkpoint, "the fat cheap layer goes first");
        assert!(!plan.choices[0].checkpoint);
        assert!(!plan.choices[2].checkpoint);
        assert!(plan.memory_bytes < no_fit_without);
    }

    #[test]
    fn impossible_budget_returns_none() {
        let layers = vec![layer(1, 1 << 30, ShardSpec::Shard(0), ShardSpec::Shard(0))];
        assert!(plan_strategies(&layers, P, 16).is_none());
    }

    #[test]
    fn mismatched_specs_pay_conversion() {
        let layers = vec![
            layer(1 << 20, 1 << 22, ShardSpec::Partial, ShardSpec::Replicated),
            layer(1 << 20, 1 << 22, ShardSpec::Shard(0), ShardSpec::Shard(1)),
        ];
        let plan = plan_strategies(&layers, P, u64::MAX).unwrap();
        // boundary: Partial -> Shard(1): a reduce-scatter
        let elems = layers[0].act_bytes / 4;
        assert_eq!(plan.choices[1].conversion_cost, (P - 1) * elems);
        assert!(plan.total_cost > layers.iter().map(|l| l.flops / P).sum::<u64>());
    }

    #[test]
    fn checkpointing_doubles_layer_compute() {
        let l = vec![layer(
            1 << 20,
            1 << 30,
            ShardSpec::Shard(0),
            ShardSpec::Shard(0),
        )];
        let loose = plan_strategies(&l, P, u64::MAX).unwrap();
        // force checkpointing with a budget below the plain activation size
        let tight_budget = (1u64 << 20) / P + (1 << 30) / P / 4;
        let tight = plan_strategies(&l, P, tight_budget).unwrap();
        assert!(tight.choices[0].checkpoint);
        assert_eq!(tight.total_cost, loose.total_cost + (1 << 20) / P);
    }
}
