//! Scaling benchmark of the event-driven rank scheduler: one hybrid
//! DP x TP x PP training step at 64 -> 4096 simulated ranks, all multiplexed
//! onto the same fixed worker pool (one running slot per host core).
//!
//! The point being measured is the *world backend*, not the arithmetic:
//! under the legacy thread-per-rank backend a 4096-rank world needs 4096
//! simultaneously runnable OS threads, while the scheduler parks every rank
//! at its next rendezvous / p2p / clock-advance yield point and only keeps
//! `pool` of them running — host cost stays bounded by the pool, not the
//! world size.
//!
//! Two derived columns make the scaling claim checkable:
//!
//! * **per-rank-step time** (`wall / (ranks * steps)`) must stay roughly
//!   flat from 64 to 4096 ranks. Before the keyed-condvar wakeup
//!   discipline, every p2p send `notify_all`ed the world-wide mailbox
//!   condvar, waking O(world) parked receivers per message — per-rank cost
//!   grew superlinearly (64 ranks: ~0.3 ms; 1024 ranks: ~5.5 ms).
//! * **wakes/msg** (`World::wake_stats`) must stay ~1 at every size: one
//!   delivery wakes one receiver. O(world) here means the herd is back.
//!
//! At 64 ranks (a size both backends can run comfortably) the same workload
//! is re-run under `COLOSSAL_WORLD=threads` semantics and the per-rank
//! losses, traffic stats and trace span sequences are compared bitwise —
//! the backend-parity contract of `tests/world_backend_parity.rs`, here
//! checked inside the shipped artifact. The largest scale also prints the
//! compacted min/med/max trace rollup (per-rank rows elide at >= 64 ranks).
//!
//! `--json` prints one machine-readable object (used by the CI smoke):
//! `{"completed": .., "ranks_max": .., "backend_match_64": ..,
//!   "wall_ms_max": .., "pool": .., "wakeups_per_msg": ..,
//!   "per_rank_step_ms_64": .., "per_rank_step_ms_max": ..,
//!   "per_rank_step_ratio": ..}`.

use colossalai_bench::print_table;
use colossalai_comm::workload::{run_hybrid, HybridSpec};
use colossalai_comm::{World, WorldBackend};
use colossalai_topology::systems::{fat_tree_1024, fat_tree_4096, fat_tree_512};
use colossalai_topology::Cluster;
use std::time::Instant;

const ELEMS: usize = 1024;
const STEPS: usize = 2;

/// (dp, tp, pp) shapes per scale; tp stays within the 8-GPU NVLink node.
const SCALES: &[(usize, usize, usize)] = &[
    (4, 4, 4),
    (4, 8, 4),
    (4, 8, 8),
    (8, 8, 8),
    (16, 8, 8),
    (16, 8, 16),
    (32, 8, 16),
];

fn spec_for(dp: usize, tp: usize, pp: usize) -> HybridSpec {
    HybridSpec {
        dp,
        tp,
        pp,
        elems: ELEMS,
        steps: STEPS,
    }
}

fn cluster_for(ranks: usize) -> Cluster {
    if ranks <= 512 {
        fat_tree_512()
    } else if ranks <= 1024 {
        fat_tree_1024()
    } else {
        fat_tree_4096()
    }
}

/// Runs `spec` under `backend` and returns (losses, world, wall seconds).
fn run_once(spec: &HybridSpec, backend: WorldBackend, traced: bool) -> (Vec<Vec<f32>>, World, f64) {
    let world = World::new(cluster_for(spec.ranks()));
    world.set_backend(Some(backend));
    world.set_tracing(traced);
    let t0 = Instant::now();
    let losses = world.run_on(spec.ranks(), |ctx| run_hybrid(ctx, spec));
    let dt = t0.elapsed().as_secs_f64();
    (losses, world, dt)
}

fn main() {
    let pool = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sched = WorldBackend::Sched { pool: 0 };

    // warm up allocators/pools so the 64-rank reference row is not billed
    // for one-time process setup
    let _ = run_once(&spec_for(4, 4, 4), sched, false);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut ranks_max = 0usize;
    let mut wall_ms_max = 0.0f64;
    let mut per_rank_step_ms_64 = 0.0f64;
    let mut per_rank_step_ms_max = 0.0f64;
    let mut wakeups_per_msg_worst = 0.0f64;
    let mut completed = true;
    for &(dp, tp, pp) in SCALES {
        let spec = spec_for(dp, tp, pp);
        let ranks = spec.ranks();
        let (losses, world, dt) = run_once(&spec, sched, false);
        let finite = losses.iter().flatten().all(|l| l.is_finite());
        completed &= finite && losses.len() == ranks;
        let checksum: f64 = losses.iter().flatten().map(|&l| l as f64).sum();
        let stats = world.stats();
        let wakes = world.wake_stats();
        let per_rank_step_ms = dt * 1e3 / (ranks * STEPS) as f64;
        if ranks_max == 0 {
            per_rank_step_ms_64 = per_rank_step_ms;
        }
        ranks_max = ranks_max.max(ranks);
        wall_ms_max = dt * 1e3;
        per_rank_step_ms_max = per_rank_step_ms;
        wakeups_per_msg_worst = wakeups_per_msg_worst.max(wakes.wakeups_per_msg());
        rows.push(vec![
            format!("{ranks}"),
            format!("{dp}x{tp}x{pp}"),
            world.cluster().name().to_string(),
            format!("{:.0}", dt * 1e3),
            format!("{:.3}", per_rank_step_ms),
            format!("{:.2}", wakes.wakeups_per_msg()),
            format!("{}", stats.ops),
            format!("{checksum:.6}"),
        ]);
    }

    // Backend parity at 64 ranks: the largest size where spawning one OS
    // thread per rank *and letting them all run* is still cheap enough to
    // do twice. Losses, stats and trace spans must match bit for bit.
    let spec64 = spec_for(4, 4, 4);
    let (l_sched, w_sched, _) = run_once(&spec64, sched, true);
    let (l_threads, w_threads, _) = run_once(&spec64, WorldBackend::Threads, true);
    let backend_match = l_sched == l_threads
        && w_sched.stats() == w_threads.stats()
        && w_sched.trace() == w_threads.trace();

    let per_rank_step_ratio = if per_rank_step_ms_64 > 0.0 {
        per_rank_step_ms_max / per_rank_step_ms_64
    } else {
        f64::INFINITY
    };

    if std::env::args().any(|a| a == "--json") {
        println!(
            "{{\"completed\": {completed}, \"ranks_max\": {ranks_max}, \
             \"backend_match_64\": {backend_match}, \
             \"wall_ms_max\": {wall_ms_max:.1}, \"pool\": {pool}, \
             \"wakeups_per_msg\": {wakeups_per_msg_worst:.3}, \
             \"per_rank_step_ms_64\": {per_rank_step_ms_64:.4}, \
             \"per_rank_step_ms_max\": {per_rank_step_ms_max:.4}, \
             \"per_rank_step_ratio\": {per_rank_step_ratio:.3}}}"
        );
        return;
    }

    print_table(
        &format!(
            "Event-driven world scaling: hybrid DPxTPxPP step, {STEPS} steps x \
             {ELEMS} elems, scheduler pool = {pool} slots"
        ),
        &[
            "ranks",
            "dp x tp x pp",
            "cluster",
            "wall ms",
            "ms/rank-step",
            "wakes/msg",
            "coll ops",
            "loss checksum",
        ],
        &rows,
    );
    println!(
        "\nbackend parity @ 64 ranks (threads vs scheduler): {}",
        if backend_match {
            "bitwise identical (losses, stats, trace)"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "per-rank-step growth 64 -> {ranks_max} ranks: {per_rank_step_ms_64:.3} ms -> \
         {per_rank_step_ms_max:.3} ms ({per_rank_step_ratio:.2}x)"
    );

    // The compacted rollup of the largest run: at >= 64 ranks per-rank rows
    // elide into min/med/max (rollup_table_full prints everything).
    let spec_max = {
        let &(dp, tp, pp) = SCALES.last().unwrap();
        spec_for(dp, tp, pp)
    };
    let (_, w_max, _) = run_once(&spec_max, sched, true);
    println!("\n{}", w_max.rollup_table());
    println!(
        "Every rank above ran as a resumable task on {pool} worker slots; \
         peak host threads stay O(pool + blocked ranks' parked stacks) and \
         results are invariant to the pool size (COLOSSAL_WORLD_POOL) and \
         to the backend (COLOSSAL_WORLD=threads)."
    );
}
