//! Pool/COW safety properties: storage recycled through the global pool
//! must never alias a live tensor's buffer, and copy-on-write semantics
//! survive recycling (`shares_storage` stays false once detached).

use colossalai_tensor::{init, pool, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn recycled_storage_never_aliases_live_tensors(n in 1usize..4096, seed in 0u64..1000) {
        let mut rng = init::rng(seed);
        let live = init::uniform([n], -1.0, 1.0, &mut rng);
        let snapshot = live.data().to_vec();
        // create + drop a same-size tensor: its storage re-parks in the pool
        drop(live.map(|v| v + 1.0));
        // a pooled draw must not hand back the live tensor's buffer
        let mut fresh = Tensor::zeros([n]);
        prop_assert!(!fresh.shares_storage(&live));
        fresh.data_mut().fill(7.0);
        prop_assert_eq!(live.data(), &snapshot[..]);
    }

    #[test]
    fn clone_drop_does_not_recycle_shared_storage(n in 1usize..2048, seed in 0u64..1000) {
        let mut rng = init::rng(seed);
        let a = init::uniform([n], -1.0, 1.0, &mut rng);
        let b = a.clone();
        prop_assert!(b.shares_storage(&a));
        let live_ptr = a.data().as_ptr();
        // `a` still owns the storage, so dropping the clone must NOT park
        // the buffer in the pool
        drop(b);
        let buf = pool::take_buffer(n);
        prop_assert!(buf.as_ptr() != live_ptr);
        pool::recycle(buf);
        prop_assert_eq!(a.numel(), n);
    }

    #[test]
    fn cow_detach_then_recycle_keeps_tensors_independent(
        rows in 1usize..8, cols in 1usize..128, seed in 0u64..1000
    ) {
        let mut rng = init::rng(seed);
        let a = init::uniform([rows, cols], -1.0, 1.0, &mut rng);
        let mut b = a.clone();
        b.data_mut()[0] += 1.0; // COW detach
        prop_assert!(!b.shares_storage(&a));
        let a_snap = a.data().to_vec();
        drop(b); // b's detached storage recycles
        // the next same-size tensor may reuse b's old buffer; scribbling on
        // it must never reach `a`
        let mut c = Tensor::zeros([rows, cols]);
        prop_assert!(!c.shares_storage(&a));
        c.data_mut().fill(42.0);
        prop_assert_eq!(a.data(), &a_snap[..]);
    }

    #[test]
    fn pooled_zeroed_buffers_are_clean(n in 1usize..4096, seed in 0u64..1000) {
        let mut rng = init::rng(seed);
        // park a dirty buffer of the right class
        drop(init::uniform([n], -1.0, 1.0, &mut rng));
        let z = Tensor::zeros([n]);
        prop_assert!(z.data().iter().all(|&v| v == 0.0));
    }
}
