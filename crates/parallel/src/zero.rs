//! The Zero Redundancy Optimizer (Rajbhandari et al., integrated in
//! Colossal-AI via the re-designed sharded tensor interface of Section 3.2).
//!
//! Three stages, all arithmetically identical to data-parallel AdamW:
//!
//! * **Stage 1** — optimizer states (FP32 master weights + Adam moments)
//!   sharded; gradients still all-reduced in full.
//! * **Stage 2** — gradients reduce-scattered, so each rank only ever
//!   materializes its gradient shard.
//! * **Stage 3** — parameters sharded too: ranks persist only their shard
//!   and re-materialize the full parameters by all-gather around each
//!   forward/backward.
//!
//! Because our reductions are rank-order deterministic, every stage yields
//! parameters *bitwise equal* to the plain data-parallel baseline — the key
//! invariant in DESIGN.md, checked by the tests below.
//!
//! Gradient communication is *bucketed*: the padded flat gradient is split
//! into p-aligned element ranges of at most the bucket capacity (default
//! 25 MB), and each bucket is reduced with one fused collective. The master
//! copy and Adam moments are laid out bucket-by-bucket (rank `r` owns the
//! `r`-th p-th of every bucket), so any bucket plan yields the same bits; a
//! single default bucket degenerates to the classic contiguous shard.
//! [`ZeroOptimizer::backward_overlapped`] additionally launches each
//! bucket's reduction on the comm stream during backward.

use crate::bucket::{BucketPlan, DEFAULT_BUCKET_BYTES};
use crate::data_parallel::{flatten_grads, flatten_params, unflatten_into};
use colossalai_autograd::{adamw_update, Layer};
use colossalai_comm::compress::{self, Compression};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_tensor::{pool, Tensor};

/// Which ZeRO stage to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZeroStage {
    One,
    Two,
    Three,
}

/// Per-device model-data bytes under each stage for `n` parameters over `p`
/// ranks at mixed precision (fp16 params/grads, fp32 master + moments) —
/// the memory story of Section 2.1.
pub fn model_data_bytes_per_device(stage: ZeroStage, n: u64, p: u64) -> u64 {
    let (params, grads, optim) = match stage {
        ZeroStage::One => (2 * n, 2 * n, 12 * n / p),
        ZeroStage::Two => (2 * n, 2 * n / p, 12 * n / p),
        ZeroStage::Three => (2 * n / p, 2 * n / p, 12 * n / p),
    };
    params + grads + optim
}

/// A ZeRO sharded AdamW over any [`Layer`] model.
pub struct ZeroOptimizer {
    stage: ZeroStage,
    ctx: DeviceCtx,
    group: Group,
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    /// Total (unpadded) parameter count.
    n: usize,
    /// Padded length divisible by the group size.
    padded: usize,
    /// p-aligned `(offset, len)` element buckets covering `[0, padded)`.
    buckets: Vec<(usize, usize)>,
    /// Element count of each parameter, in visit order.
    param_sizes: Vec<usize>,
    /// This rank's FP32 master shard: for each bucket in order, the `r`-th
    /// p-th of that bucket's elements.
    master: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    /// Reduced, scaled gradient shards (one per bucket) produced by
    /// [`ZeroOptimizer::backward_overlapped`], consumed by the next `step`.
    pending: Option<Vec<Tensor>>,
    /// Lossy gradient channel for the bucket reductions. Quantized channels
    /// (int8/fp16) apply to both the stage-1 all-reduce and the stage-2/3
    /// reduce-scatter; top-k has no sparse reduce-scatter wire format and
    /// falls back to the exact dense path (it is a DP-only channel).
    compress: Compression,
    /// Per-bucket error-feedback residuals for the quantized channels.
    residuals: Vec<Vec<f32>>,
}

/// The channel ZeRO actually runs: top-k degrades to exact dense (see the
/// `compress` field docs).
fn zero_effective(comp: Compression) -> Compression {
    match comp {
        Compression::TopK(_) => Compression::None,
        c => c,
    }
}

/// Quantizes one flat gradient bucket (updating its error-feedback
/// residual) and reduces it with the stage's collective at the matching
/// wire width. Free function so [`ZeroOptimizer::backward_overlapped`] can
/// call it under field-disjoint borrows; the caller owns the 1/p scale.
#[allow(clippy::too_many_arguments)]
fn reduce_bucket_quantized(
    ctx: &DeviceCtx,
    group: &Group,
    stage: ZeroStage,
    comp: Compression,
    residual: &mut Vec<f32>,
    mut bucket: Tensor,
    asynchronous: bool,
) -> Tensor {
    let comp = zero_effective(comp);
    if comp.is_lossy() {
        if residual.is_empty() {
            residual.resize(bucket.numel(), 0.0);
        }
        let _ = compress::compress_with_feedback(comp, bucket.data_mut(), residual);
    }
    let p = group.size();
    let r = group.rank();
    let sl = bucket.numel() / p;
    let mut shard = match stage {
        ZeroStage::One => {
            // full all-reduce, then slice: the ZeRO-1 communication shape
            let full = match (comp, asynchronous) {
                (Compression::Int8, false) => group.all_reduce_i8(ctx, bucket),
                (Compression::Int8, true) => group.all_reduce_async_i8(ctx, bucket),
                (Compression::Fp16, false) => group.all_reduce_half(ctx, bucket),
                (Compression::Fp16, true) => group.all_reduce_async_half(ctx, bucket),
                (_, false) => group.all_reduce(ctx, bucket),
                (_, true) => group.all_reduce_async(ctx, bucket),
            };
            full.narrow(0, r * sl, sl)
        }
        ZeroStage::Two | ZeroStage::Three => match (comp, asynchronous) {
            (Compression::Int8, false) => group.reduce_scatter_i8(ctx, bucket, 0),
            (Compression::Int8, true) => group.reduce_scatter_async_i8(ctx, bucket, 0),
            (Compression::Fp16, false) => group.reduce_scatter_half(ctx, bucket, 0),
            (Compression::Fp16, true) => group.reduce_scatter_async_half(ctx, bucket, 0),
            (_, false) => group.reduce_scatter(ctx, bucket, 0),
            (_, true) => group.reduce_scatter_async(ctx, bucket, 0),
        },
    };
    shard.scale(1.0 / p as f32);
    shard
}

impl ZeroOptimizer {
    /// Captures the model's current parameters as the master copy and
    /// shards all optimizer state. Buckets default to
    /// [`DEFAULT_BUCKET_BYTES`].
    pub fn new(
        ctx: &DeviceCtx,
        group: &Group,
        model: &mut dyn Layer,
        stage: ZeroStage,
        lr: f32,
        weight_decay: f32,
    ) -> Self {
        Self::with_bucket_bytes(
            ctx,
            group,
            model,
            stage,
            lr,
            weight_decay,
            DEFAULT_BUCKET_BYTES,
        )
    }

    /// Like [`ZeroOptimizer::new`] with an explicit gradient-bucket capacity.
    #[allow(clippy::too_many_arguments)]
    pub fn with_bucket_bytes(
        ctx: &DeviceCtx,
        group: &Group,
        model: &mut dyn Layer,
        stage: ZeroStage,
        lr: f32,
        weight_decay: f32,
        bucket_bytes: usize,
    ) -> Self {
        let mut param_sizes = Vec::new();
        model.visit_params(&mut |p| param_sizes.push(p.numel()));
        let flat = flatten_params(model);
        let n = flat.numel();
        let p = group.size();
        let padded = n.div_ceil(p) * p;
        let buckets = BucketPlan::element_ranges(n, p, bucket_bytes);
        let shard_len = padded / p;
        let mut full = flat.into_vec();
        full.resize(padded, 0.0);
        let r = group.rank();
        let mut master = Vec::with_capacity(shard_len);
        for &(o, b) in &buckets {
            let sl = b / p;
            master.extend_from_slice(&full[o + r * sl..o + (r + 1) * sl]);
        }
        assert_eq!(master.len(), shard_len);
        ZeroOptimizer {
            stage,
            ctx: ctx.clone(),
            group: group.clone(),
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            n,
            padded,
            buckets,
            param_sizes,
            master,
            m: vec![0.0; shard_len],
            v: vec![0.0; shard_len],
            pending: None,
            compress: compress::env_compression(),
            residuals: Vec::new(),
        }
    }

    /// Selects the lossy gradient channel (overriding the ambient
    /// `COLOSSAL_COMPRESS` default). Top-k degrades to exact dense under
    /// ZeRO; int8/fp16 quantize each bucket with error feedback before the
    /// stage's collective. Residual state resets on switch.
    pub fn with_compression(mut self, comp: Compression) -> Self {
        self.compress = comp;
        self.residuals.clear();
        self
    }

    /// The configured gradient-compression channel (before the ZeRO top-k
    /// fallback is applied).
    pub fn compression(&self) -> Compression {
        self.compress
    }

    /// Elements in one shard.
    pub fn shard_len(&self) -> usize {
        self.padded / self.group.size()
    }

    /// The p-aligned `(offset, len)` element buckets of the flat gradient.
    pub fn bucket_ranges(&self) -> &[(usize, usize)] {
        &self.buckets
    }

    /// Ensures one residual buffer per bucket exists (lazily, so exact runs
    /// never allocate them).
    fn ensure_residuals(&mut self) {
        if self.residuals.len() != self.buckets.len() {
            self.residuals = vec![Vec::new(); self.buckets.len()];
        }
    }

    /// Runs the model's backward with bucketed gradient reduction overlapped
    /// on the comm stream: each bucket's collective launches as soon as the
    /// produced gradient suffix covers its element range. The reduced shards
    /// are held as `pending` and consumed by the next [`ZeroOptimizer::step`]
    /// (which then skips its own gradient communication). Returns the input
    /// gradient; the trajectory stays bitwise-identical to the blocking path.
    pub fn backward_overlapped(&mut self, model: &mut dyn Layer, dy: &Tensor) -> Tensor {
        self.ensure_residuals();
        // element offset of each parameter in the flat layout
        let offsets: Vec<usize> = self
            .param_sizes
            .iter()
            .scan(0, |acc, &s| {
                let o = *acc;
                *acc += s;
                Some(o)
            })
            .collect();
        let mut flat = pool::take_zeroed(self.padded);
        let mut pi = self.param_sizes.len(); // start of the produced param suffix
        let mut elem_start = self.n; // pad [n, padded) counts as produced
        let mut next = self.buckets.len(); // buckets fire back to front
        let mut shards: Vec<Option<Tensor>> = vec![None; self.buckets.len()];
        // field-disjoint borrows of &mut self: backward_staged's closure
        // needs the plan and comm handles immutably and the residuals
        // mutably, but not the optimizer state
        let ctx = &self.ctx;
        let group = &self.group;
        let stage_kind = self.stage;
        let comp = self.compress;
        let n = self.n;
        let buckets = &self.buckets;
        let residuals = &mut self.residuals;
        let dx = model.backward_staged(dy, &mut |stage| {
            pi -= stage.len();
            for (k, g) in stage.iter().enumerate() {
                let o = offsets[pi + k];
                flat[o..o + g.numel()].copy_from_slice(g.data());
            }
            elem_start = offsets.get(pi).copied().unwrap_or(n);
            while next > 0 && buckets[next - 1].0 >= elem_start {
                next -= 1;
                let (o, b) = buckets[next];
                let bucket = Tensor::from_slice([b], &flat[o..o + b]);
                shards[next] = Some(reduce_bucket_quantized(
                    ctx,
                    group,
                    stage_kind,
                    comp,
                    &mut residuals[next],
                    bucket,
                    true,
                ));
            }
        });
        assert_eq!(pi, 0, "backward_staged must cover every parameter");
        assert_eq!(next, 0, "every bucket must have launched");
        pool::recycle(flat);
        // shards must be final before the optimizer reads them
        self.ctx.comm_sync();
        self.pending = Some(shards.into_iter().map(|s| s.unwrap()).collect());
        dx
    }

    /// Synchronizes gradients, updates this rank's shard, and re-materializes
    /// the full parameters into the model. Gradients are averaged over the
    /// group (data-parallel mean). Clears the model's gradients afterwards.
    /// Uses gradient shards left by [`ZeroOptimizer::backward_overlapped`]
    /// when present, skipping its own communication.
    pub fn step(&mut self, model: &mut dyn Layer) {
        let shard_len = self.shard_len();

        let grad_shards = match self.pending.take() {
            Some(shards) => shards,
            None => {
                self.ensure_residuals();
                let mut flat_grads = flatten_grads(model).into_vec();
                assert_eq!(flat_grads.len(), self.n, "model parameter set changed");
                flat_grads.resize(self.padded, 0.0);
                let buckets = &self.buckets;
                let residuals = &mut self.residuals;
                let mut shards: Vec<Tensor> = Vec::with_capacity(buckets.len());
                for (bi, &(o, b)) in buckets.iter().enumerate() {
                    let bucket = Tensor::from_slice([b], &flat_grads[o..o + b]);
                    shards.push(reduce_bucket_quantized(
                        &self.ctx,
                        &self.group,
                        self.stage,
                        self.compress,
                        &mut residuals[bi],
                        bucket,
                        false,
                    ));
                }
                pool::recycle(flat_grads);
                shards
            }
        };

        self.t += 1;
        let mut ms = 0;
        for shard in &grad_shards {
            let sl = shard.numel();
            adamw_update(
                &mut self.master[ms..ms + sl],
                shard.data(),
                &mut self.m[ms..ms + sl],
                &mut self.v[ms..ms + sl],
                self.t,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                self.weight_decay,
            );
            ms += sl;
        }
        assert_eq!(ms, shard_len);

        // re-materialize the full parameters
        let full = self.gather_full();
        let trimmed = full.narrow(0, 0, self.n);
        unflatten_into(model, &trimmed);
        model.zero_grad();
    }

    /// All-gathers the bucket-sharded master copy back into the padded flat
    /// parameter vector.
    fn gather_full(&self) -> Tensor {
        let p = self.group.size();
        let mut full = pool::take_zeroed(self.padded);
        let mut ms = 0;
        for &(o, b) in &self.buckets {
            let sl = b / p;
            let part = Tensor::from_slice([sl], &self.master[ms..ms + sl]);
            let gathered = self.group.all_gather_cat(&self.ctx, part, 0);
            full[o..o + b].copy_from_slice(gathered.data());
            ms += sl;
        }
        Tensor::from_vec([self.padded], full)
    }

    /// ZeRO-3 helper: drops the full parameters from the model, leaving
    /// zeros (the shard in `self.master` remains authoritative). Persistent
    /// parameter memory falls to `2N/p`.
    pub fn release_params(&self, model: &mut dyn Layer) {
        assert_eq!(
            self.stage,
            ZeroStage::Three,
            "release only applies to stage 3"
        );
        model.visit_params(&mut |p| p.value_mut().data_mut().fill(0.0));
    }

    /// ZeRO-3 helper: re-materializes full parameters by all-gathering the
    /// master shards (called before each forward pass).
    pub fn materialize_params(&self, model: &mut dyn Layer) {
        assert_eq!(
            self.stage,
            ZeroStage::Three,
            "materialize only applies to stage 3"
        );
        let full = self.gather_full();
        let trimmed = full.narrow(0, 0, self.n);
        unflatten_into(model, &trimmed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_parallel::{split_batch, DataParallel};
    use colossalai_autograd::{AdamW, Gelu, Linear, Sequential};
    use colossalai_comm::{OpKind, World};
    use colossalai_tensor::init;
    use colossalai_tensor::ops::cross_entropy;
    use colossalai_topology::systems::system_ii;

    fn make_model(seed: u64) -> Sequential {
        let mut rng = init::rng(seed);
        Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 6, 10, true, &mut rng)),
            Box::new(Gelu::new()),
            Box::new(Linear::from_rng("l2", 10, 4, true, &mut rng)),
        ])
    }

    /// Plain DP + AdamW baseline trajectory.
    fn ddp_trajectory(p: usize, steps: usize) -> Tensor {
        ddp_trajectory_compressed(p, steps, Compression::None)
    }

    /// DP baseline with an explicit gradient-compression channel.
    fn ddp_trajectory_compressed(p: usize, steps: usize, comp: Compression) -> Tensor {
        let world = World::new(system_ii());
        let mut out = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut dp = DataParallel::new(ctx, &g, make_model(900)).with_compression(comp);
            let mut opt = AdamW::new(0.01, 0.05);
            for s in 0..steps {
                let mut rng = init::rng(1000 + s as u64);
                let x = init::uniform([p * 2, 6], -1.0, 1.0, &mut rng);
                let t: Vec<usize> = (0..p * 2).map(|i| (i + s) % 4).collect();
                dp.zero_grad();
                let x_local = split_batch(&x, p, g.rank());
                let t_local: Vec<usize> = t.chunks(2).nth(g.rank()).unwrap().to_vec();
                let logits = dp.forward(&x_local);
                let (_, dlogits) = cross_entropy(&logits, &t_local);
                let _ = dp.backward(&dlogits);
                opt.step_layer(&mut dp);
            }
            flatten_params(&mut dp)
        });
        out.swap_remove(0)
    }

    /// ZeRO trajectory at a given stage. Gradients synchronize inside the
    /// ZeRO step (not via DataParallel), matching the real system layering.
    fn zero_trajectory(
        p: usize,
        steps: usize,
        stage: ZeroStage,
    ) -> (Tensor, colossalai_comm::CommStats) {
        zero_trajectory_opts(
            p,
            steps,
            stage,
            super::DEFAULT_BUCKET_BYTES,
            false,
            Compression::None,
        )
    }

    /// Like [`zero_trajectory`], with an explicit bucket capacity,
    /// optionally the comm-overlapped backward path, and a compression
    /// channel.
    fn zero_trajectory_opts(
        p: usize,
        steps: usize,
        stage: ZeroStage,
        bucket_bytes: usize,
        overlap: bool,
        comp: Compression,
    ) -> (Tensor, colossalai_comm::CommStats) {
        let world = World::new(system_ii());
        let mut out = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut model = make_model(900);
            let mut opt = ZeroOptimizer::with_bucket_bytes(
                ctx,
                &g,
                &mut model,
                stage,
                0.01,
                0.05,
                bucket_bytes,
            )
            .with_compression(comp);
            for s in 0..steps {
                let mut rng = init::rng(1000 + s as u64);
                let x = init::uniform([p * 2, 6], -1.0, 1.0, &mut rng);
                let t: Vec<usize> = (0..p * 2).map(|i| (i + s) % 4).collect();
                if stage == ZeroStage::Three {
                    opt.materialize_params(&mut model);
                }
                let x_local = split_batch(&x, p, g.rank());
                let t_local: Vec<usize> = t.chunks(2).nth(g.rank()).unwrap().to_vec();
                let logits = model.forward(&x_local);
                let (_, dlogits) = cross_entropy(&logits, &t_local);
                if overlap {
                    let _ = opt.backward_overlapped(&mut model, &dlogits);
                } else {
                    let _ = model.backward(&dlogits);
                }
                opt.step(&mut model);
                if stage == ZeroStage::Three {
                    opt.release_params(&mut model);
                    opt.materialize_params(&mut model);
                }
            }
            flatten_params(&mut model)
        });
        (out.swap_remove(0), world.stats())
    }

    #[test]
    fn zero1_bitwise_equals_ddp() {
        let want = ddp_trajectory(4, 3);
        let (got, _) = zero_trajectory(4, 3, ZeroStage::One);
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn zero2_bitwise_equals_ddp() {
        let want = ddp_trajectory(4, 3);
        let (got, _) = zero_trajectory(4, 3, ZeroStage::Two);
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn zero3_bitwise_equals_ddp() {
        let want = ddp_trajectory(4, 3);
        let (got, _) = zero_trajectory(4, 3, ZeroStage::Three);
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn tiny_buckets_stay_bitwise_equal_to_ddp() {
        // 16-element buckets over the 116-element padded flat grad → many
        // buckets, bucket-sharded master layout; the bits must not move
        let want = ddp_trajectory(4, 3);
        for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            let (got, _) = zero_trajectory_opts(4, 3, stage, 64, false, Compression::None);
            assert_eq!(got.data(), want.data(), "stage {stage:?} with tiny buckets");
        }
    }

    #[test]
    fn overlapped_backward_stays_bitwise_equal_to_ddp() {
        let want = ddp_trajectory(4, 3);
        for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            let (got, _) = zero_trajectory_opts(4, 3, stage, 64, true, Compression::None);
            assert_eq!(got.data(), want.data(), "stage {stage:?} overlapped");
        }
    }

    #[test]
    fn zero_stages_agree_bitwise_under_quantized_channels() {
        // Stages share `element_ranges` bucketing, so a quantized channel
        // perturbs each stage's gradients identically: all three must still
        // land on the same bits (and differ from the exact run — the lossy
        // channel really engaged).
        let (exact, _) = zero_trajectory(4, 3, ZeroStage::One);
        for comp in [Compression::Int8, Compression::Fp16] {
            let runs: Vec<Tensor> = [ZeroStage::One, ZeroStage::Two, ZeroStage::Three]
                .into_iter()
                .map(|stage| zero_trajectory_opts(4, 3, stage, DEFAULT_BUCKET_BYTES, false, comp).0)
                .collect();
            assert_eq!(runs[0].data(), runs[1].data(), "{comp:?}: stage1 == stage2");
            assert_eq!(runs[0].data(), runs[2].data(), "{comp:?}: stage1 == stage3");
            assert_ne!(runs[0].data(), exact.data(), "{comp:?} actually engaged");
        }
    }

    #[test]
    fn zero1_int8_matches_dp_int8_at_default_bucket_cap() {
        // At the default 25 MB cap both DP and ZeRO fuse all gradients into
        // a single bucket; ZeRO's tail padding is zeros, which change
        // neither the bucket's maxabs nor any quantized value — so the two
        // trajectories must agree bitwise.
        let want = ddp_trajectory_compressed(4, 3, Compression::Int8);
        let (got, _) = zero_trajectory_opts(
            4,
            3,
            ZeroStage::One,
            DEFAULT_BUCKET_BYTES,
            false,
            Compression::Int8,
        );
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn zero_topk_falls_back_to_exact_dense() {
        // Top-k has no sparse reduce-scatter wire format; ZeRO documents it
        // as DP-only and runs the exact dense path instead.
        let (exact, _) = zero_trajectory(4, 2, ZeroStage::Two);
        let (topk, _) = zero_trajectory_opts(
            4,
            2,
            ZeroStage::Two,
            DEFAULT_BUCKET_BYTES,
            false,
            Compression::TopK(4),
        );
        assert_eq!(topk.data(), exact.data());
    }

    #[test]
    fn overlapped_zero_backward_is_bitwise_neutral_under_int8() {
        for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            let (blocking, _) = zero_trajectory_opts(4, 2, stage, 64, false, Compression::Int8);
            let (overlapped, _) = zero_trajectory_opts(4, 2, stage, 64, true, Compression::Int8);
            assert_eq!(
                blocking.data(),
                overlapped.data(),
                "stage {stage:?}: overlap must not change compressed bits"
            );
        }
    }

    #[test]
    fn bucket_ranges_cover_padded_flat_grad() {
        let world = World::new(system_ii());
        world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mut model = make_model(903);
            let opt = ZeroOptimizer::with_bucket_bytes(
                ctx,
                &g,
                &mut model,
                ZeroStage::Two,
                0.01,
                0.0,
                64,
            );
            let mut o = 0;
            for &(off, len) in opt.bucket_ranges() {
                assert_eq!(off, o);
                assert_eq!(len % 4, 0);
                o += len;
            }
            assert_eq!(o, 116, "covers ceil(114/4)*4");
            assert!(opt.bucket_ranges().len() > 1);
        });
    }

    #[test]
    fn zero2_moves_less_gradient_traffic_than_zero1() {
        let (_, s1) = zero_trajectory(4, 2, ZeroStage::One);
        let (_, s2) = zero_trajectory(4, 2, ZeroStage::Two);
        // stage 1: all-reduce (2(p-1)n hops); stage 2: reduce-scatter
        // ((p-1)n hops) + the same param all-gather in both
        let grad1 = s1.elements_of(OpKind::AllReduce);
        let grad2 = s2.elements_of(OpKind::ReduceScatter);
        assert!(grad2 * 2 <= grad1 + 1, "rs {grad2} vs ar {grad1}");
    }

    #[test]
    fn memory_formula_monotone_in_stage() {
        let n = 1_000_000u64;
        let p = 8u64;
        let m1 = model_data_bytes_per_device(ZeroStage::One, n, p);
        let m2 = model_data_bytes_per_device(ZeroStage::Two, n, p);
        let m3 = model_data_bytes_per_device(ZeroStage::Three, n, p);
        assert!(m1 > m2 && m2 > m3);
        // stage 3 is the full 16/p bytes per param
        assert_eq!(m3, 16 * n / p);
        // p = 1 degenerates to plain mixed-precision training
        assert_eq!(model_data_bytes_per_device(ZeroStage::Three, n, 1), 16 * n);
    }

    #[test]
    fn padding_handles_indivisible_param_counts() {
        // model has 6*10+10+10*4+4 = 114 params; over 4 ranks -> padded 116
        let world = World::new(system_ii());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mut model = make_model(901);
            let opt = ZeroOptimizer::new(ctx, &g, &mut model, ZeroStage::Two, 0.01, 0.0);
            opt.shard_len()
        });
        assert_eq!(out, vec![29; 4]); // ceil(114/4) = 29
    }

    #[test]
    fn release_then_materialize_roundtrip() {
        let world = World::new(system_ii());
        world.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            let mut model = make_model(902);
            let before = flatten_params(&mut model);
            let opt = ZeroOptimizer::new(ctx, &g, &mut model, ZeroStage::Three, 0.01, 0.0);
            opt.release_params(&mut model);
            let released = flatten_params(&mut model);
            assert!(released.data().iter().all(|&x| x == 0.0));
            opt.materialize_params(&mut model);
            let after = flatten_params(&mut model);
            assert_eq!(before.data(), after.data());
        });
    }
}
