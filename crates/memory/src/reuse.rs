//! FP16 storage reuse (Fig 6 of the paper).
//!
//! During the forward pass a layer's FP16 parameters must be live; once its
//! backward has produced the FP16 gradient, the parameter copy is dead until
//! the optimizer rebuilds it from the FP32 master weights. Colossal-AI
//! therefore writes the gradient into the *same* storage, halving the FP16
//! model-data footprint at the backward peak.

use colossalai_tensor::Tensor;

/// What a [`ReusableBuffer`] currently holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Holds {
    /// FP16 parameters (valid during forward and up to this layer's
    /// backward).
    Param,
    /// FP16 gradients (valid from this layer's backward until the optimizer
    /// step consumes them).
    Grad,
}

/// A single storage area shared by a parameter and its gradient, with the
/// lifecycle of Fig 6 enforced at runtime.
#[derive(Clone, Debug)]
pub struct ReusableBuffer {
    data: Tensor,
    holds: Holds,
}

impl ReusableBuffer {
    /// Creates the buffer holding parameters.
    pub fn new_param(param: Tensor) -> Self {
        ReusableBuffer {
            data: param,
            holds: Holds::Param,
        }
    }

    /// Current occupant.
    pub fn holds(&self) -> Holds {
        self.holds
    }

    /// The parameter tensor. Panics if the storage has already been
    /// repurposed for gradients — i.e. catches use-after-free of the fp16
    /// weights.
    pub fn param(&self) -> &Tensor {
        assert_eq!(
            self.holds,
            Holds::Param,
            "fp16 parameter storage already reused for gradients"
        );
        &self.data
    }

    /// The gradient tensor. Panics before the gradient has been stored.
    pub fn grad(&self) -> &Tensor {
        assert_eq!(self.holds, Holds::Grad, "gradient not yet materialized");
        &self.data
    }

    /// Backward-pass transition: overwrite the parameter storage with the
    /// gradient (the Fig 6 reuse step). Shapes must match — it is the same
    /// allocation.
    pub fn store_grad(&mut self, grad: Tensor) {
        assert_eq!(self.holds, Holds::Param, "gradient stored twice");
        assert_eq!(
            self.data.shape(),
            grad.shape(),
            "gradient shape differs from parameter shape"
        );
        self.data = grad;
        self.holds = Holds::Grad;
    }

    /// Optimizer-step transition: consume the gradient and restore the
    /// (updated) parameter into the same storage.
    pub fn restore_param(&mut self, updated_param: Tensor) {
        assert_eq!(self.holds, Holds::Grad, "restore_param before store_grad");
        assert_eq!(
            self.data.shape(),
            updated_param.shape(),
            "parameter shape changed"
        );
        self.data = updated_param;
        self.holds = Holds::Param;
    }

    /// Bytes of fp16 storage this buffer occupies (half of the f32 payload,
    /// since it logically stores binary16).
    pub fn bytes(&self) -> u64 {
        (self.data.numel() * 2) as u64
    }
}

/// FP16 model-data bytes at the backward-pass peak *without* storage reuse:
/// parameters and gradients coexist.
pub fn peak_bytes_without_reuse(param_elems: u64) -> u64 {
    2 * param_elems * 2
}

/// FP16 model-data bytes at the backward-pass peak *with* storage reuse:
/// each layer's storage holds either the parameter or the gradient, never
/// both.
pub fn peak_bytes_with_reuse(param_elems: u64) -> u64 {
    param_elems * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_roundtrip() {
        let mut b = ReusableBuffer::new_param(Tensor::full([4], 1.0));
        assert_eq!(b.holds(), Holds::Param);
        assert_eq!(b.param().data(), &[1.0; 4]);
        b.store_grad(Tensor::full([4], 0.5));
        assert_eq!(b.holds(), Holds::Grad);
        assert_eq!(b.grad().data(), &[0.5; 4]);
        b.restore_param(Tensor::full([4], 0.9));
        assert_eq!(b.param().data(), &[0.9; 4]);
    }

    #[test]
    #[should_panic(expected = "already reused")]
    fn param_read_after_reuse_is_caught() {
        let mut b = ReusableBuffer::new_param(Tensor::zeros([2]));
        b.store_grad(Tensor::zeros([2]));
        let _ = b.param();
    }

    #[test]
    #[should_panic(expected = "stored twice")]
    fn double_grad_store_is_caught() {
        let mut b = ReusableBuffer::new_param(Tensor::zeros([2]));
        b.store_grad(Tensor::zeros([2]));
        b.store_grad(Tensor::zeros([2]));
    }

    #[test]
    #[should_panic(expected = "shape differs")]
    fn grad_shape_must_match_storage() {
        let mut b = ReusableBuffer::new_param(Tensor::zeros([2]));
        b.store_grad(Tensor::zeros([3]));
    }

    #[test]
    fn reuse_halves_peak() {
        let n = 10_000;
        assert_eq!(peak_bytes_with_reuse(n) * 2, peak_bytes_without_reuse(n));
    }

    #[test]
    fn bytes_reports_fp16() {
        let b = ReusableBuffer::new_param(Tensor::zeros([100]));
        assert_eq!(b.bytes(), 200);
    }
}
