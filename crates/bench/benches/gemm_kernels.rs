//! Criterion bench: local GEMM kernel generations on transformer shapes.
//!
//! Compares the two seed kernels (`gemm_ref_ikj`, `gemm_ref_blocked`) against
//! the packed register-blocked core (`kernel::gemm_mat`) and its row-panel
//! threaded variant, on shapes a transformer actually hits:
//!
//! * `512x512x512` — the square reference point quoted in `results/`;
//! * `128x768x768`  — BERT-base attention output projection, 128 tokens;
//! * `128x768x3072` — BERT-base MLP up-projection, 128 tokens;
//! * `64x64x64`     — a per-device tile after 2D/3D sharding.
//!
//! Run with `cargo bench --bench gemm_kernels`; numbers are recorded in
//! `results/gemm_kernels.txt`.

use colossalai_tensor::kernel::{gemm_mat, gemm_mat_bf16, gemm_mat_threaded, Mat};
use colossalai_tensor::matmul::{gemm_ref_blocked, gemm_ref_ikj, matmul_flops};
use colossalai_tensor::{axpy_slices, scale_slice, set_fast_mode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

const SHAPES: &[(usize, usize, usize)] = &[
    (512, 512, 512),
    (128, 768, 768),
    (128, 768, 3072),
    (64, 64, 64),
];

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels");
    group.sample_size(10);
    for &(m, k, n) in SHAPES {
        let a = rand_vec(m * k, 3);
        let b = rand_vec(k * n, 5);
        let mut out = vec![0.0f32; m * n];
        let gflop = matmul_flops(m, k, n) as f64 / 1e9;
        let label = |kernel: &str| format!("{kernel}/{m}x{k}x{n} ({gflop:.2} GFLOP)");

        group.bench_function(label("seed_ikj"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|x| *x = 0.0);
                gemm_ref_ikj(&a, &b, &mut out, m, k, n);
                std::hint::black_box(&mut out);
            });
        });

        group.bench_function(label("seed_blocked"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|x| *x = 0.0);
                gemm_ref_blocked(&a, &b, &mut out, m, k, n);
                std::hint::black_box(&mut out);
            });
        });

        group.bench_function(label("packed"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|x| *x = 0.0);
                gemm_mat(
                    Mat::row_major(&a, k),
                    Mat::row_major(&b, n),
                    &mut out,
                    m,
                    k,
                    n,
                );
                std::hint::black_box(&mut out);
            });
        });

        // paired fast-mode rows: same packed core with the FMA microkernel
        // (COLOSSAL_FAST) and the bf16-compute variant; the deterministic
        // default is restored after each so the other rows stay honest
        group.bench_function(label("packed_fast"), |bch| {
            set_fast_mode(true);
            bch.iter(|| {
                out.iter_mut().for_each(|x| *x = 0.0);
                gemm_mat(
                    Mat::row_major(&a, k),
                    Mat::row_major(&b, n),
                    &mut out,
                    m,
                    k,
                    n,
                );
                std::hint::black_box(&mut out);
            });
            set_fast_mode(false);
        });

        group.bench_function(label("packed_bf16"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|x| *x = 0.0);
                gemm_mat_bf16(
                    Mat::row_major(&a, k),
                    Mat::row_major(&b, n),
                    &mut out,
                    m,
                    k,
                    n,
                );
                std::hint::black_box(&mut out);
            });
        });

        for threads in [2, 4] {
            group.bench_function(label(&format!("packed_{threads}thr")), |bch| {
                bch.iter(|| {
                    out.iter_mut().for_each(|x| *x = 0.0);
                    gemm_mat_threaded(
                        Mat::row_major(&a, k),
                        Mat::row_major(&b, n),
                        &mut out,
                        m,
                        k,
                        n,
                        threads,
                    );
                    std::hint::black_box(&mut out);
                });
            });
        }
    }
    group.finish();
    micro_assert_axpy_scale();
}

/// Median seconds over `runs` timed executions of `f`.
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[runs / 2]
}

/// Guards the `chunks_exact` rewrite of `Tensor::axpy`/`scale`: the chunked
/// slice kernels must not regress against the plain scalar loops. The floor
/// is lenient (1.5x) so noisy shared-CPU CI never flakes; a real regression
/// (e.g. a dropped `#[inline]` forcing an outlined call per element) blows
/// well past it.
fn micro_assert_axpy_scale() {
    const N: usize = 1 << 16;
    const REPS: usize = 200;
    let src = rand_vec(N, 11);
    let base = rand_vec(N, 13);

    let mut dst = base.clone();
    let naive_axpy = median_secs(9, || {
        for _ in 0..REPS {
            for (a, &b) in dst.iter_mut().zip(&src) {
                *a += 0.5 * b;
            }
        }
        std::hint::black_box(&mut dst);
    });
    let mut dst = base.clone();
    let chunked_axpy = median_secs(9, || {
        for _ in 0..REPS {
            axpy_slices(&mut dst, 0.5, &src);
        }
        std::hint::black_box(&mut dst);
    });

    let mut dst = base.clone();
    let naive_scale = median_secs(9, || {
        for _ in 0..REPS {
            for v in dst.iter_mut() {
                *v *= 1.0001;
            }
        }
        std::hint::black_box(&mut dst);
    });
    let mut dst = base;
    let chunked_scale = median_secs(9, || {
        for _ in 0..REPS {
            scale_slice(&mut dst, 1.0001);
        }
        std::hint::black_box(&mut dst);
    });

    println!(
        "axpy  {N} elems x{REPS}: chunked {:.3} ms vs naive {:.3} ms ({:.2}x)",
        chunked_axpy * 1e3,
        naive_axpy * 1e3,
        naive_axpy / chunked_axpy
    );
    println!(
        "scale {N} elems x{REPS}: chunked {:.3} ms vs naive {:.3} ms ({:.2}x)",
        chunked_scale * 1e3,
        naive_scale * 1e3,
        naive_scale / chunked_scale
    );
    assert!(
        chunked_axpy <= naive_axpy * 1.5,
        "chunked axpy regressed: {chunked_axpy:.6}s vs naive {naive_axpy:.6}s"
    );
    assert!(
        chunked_scale <= naive_scale * 1.5,
        "chunked scale regressed: {chunked_scale:.6}s vs naive {naive_scale:.6}s"
    );
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
