//! A canonical hybrid-parallel training step used by the backend-parity
//! tests and the `world_scale` bench.
//!
//! The workload exercises every communication primitive a real DP x TP x PP
//! step uses — tensor-parallel all-reduce and all-gather, pipeline
//! point-to-point activation/gradient transfers, data-parallel gradient
//! all-reduce — with fully deterministic synthetic data (a pure hash of
//! `(rank, step, element)`), so its per-step losses, traffic stats and
//! traces are bitwise-comparable across execution backends, scheduler pool
//! sizes and world scales.

use crate::world::DeviceCtx;
use colossalai_tensor::Tensor;

/// Shape of a hybrid data x tensor x pipeline parallel run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridSpec {
    /// Data-parallel replicas.
    pub dp: usize,
    /// Tensor-parallel ways within a replica.
    pub tp: usize,
    /// Pipeline stages.
    pub pp: usize,
    /// Elements per rank-local activation/gradient tensor.
    pub elems: usize,
    /// Training steps to run.
    pub steps: usize,
}

impl HybridSpec {
    /// Total world size (`dp * tp * pp`).
    pub fn ranks(&self) -> usize {
        self.dp * self.tp * self.pp
    }

    /// `(stage, dp_index, tp_index)` of `rank`. Tensor-parallel neighbors
    /// get adjacent ranks (they communicate most), then data-parallel
    /// replicas, then pipeline stages — the usual hybrid rank layout.
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        let tp_idx = rank % self.tp;
        let dp_idx = (rank / self.tp) % self.dp;
        let stage = rank / (self.tp * self.dp);
        (stage, dp_idx, tp_idx)
    }

    /// Inverse of [`HybridSpec::coords`].
    pub fn rank_of(&self, stage: usize, dp_idx: usize, tp_idx: usize) -> usize {
        (stage * self.dp + dp_idx) * self.tp + tp_idx
    }
}

/// Deterministic synthetic activation value: splitmix64 of the element's
/// global coordinates folded to roughly [-1, 1). A pure function, so every
/// backend generates identical data without any shared RNG state.
fn synth(rank: usize, step: usize, i: usize) -> f32 {
    let mut z = (rank as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((step as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(i as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    ((z >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
}

/// Runs `spec.steps` hybrid-parallel training steps on this rank and
/// returns one loss value per step.
///
/// Per step: a forward pass (TP all-reduce of partial activations, P2P
/// hand-off along the pipeline, compute charges), a backward pass (P2P
/// gradient back-propagation, TP all-gather of sharded gradients), and a
/// data-parallel gradient all-reduce; the step loss is the mean of the
/// DP-reduced gradient. All ranks of a step report identical losses only
/// within a (stage, tp_idx) slice — the returned vector is per-rank, and
/// parity checks compare the whole `Vec<Vec<f32>>` across backends.
pub fn run_hybrid(ctx: &DeviceCtx, spec: &HybridSpec) -> Vec<f32> {
    assert!(spec.dp >= 1 && spec.tp >= 1 && spec.pp >= 1, "empty axis");
    assert!(
        spec.elems >= spec.tp && spec.elems.is_multiple_of(spec.tp),
        "elems must divide evenly into {} TP shards",
        spec.tp
    );
    let rank = ctx.rank();
    let (stage, dp_idx, tp_idx) = spec.coords(rank);
    let tp_group = ctx.group(
        &(0..spec.tp)
            .map(|t| spec.rank_of(stage, dp_idx, t))
            .collect::<Vec<_>>(),
    );
    let dp_group = ctx.group(
        &(0..spec.dp)
            .map(|d| spec.rank_of(stage, d, tp_idx))
            .collect::<Vec<_>>(),
    );
    let next = (stage + 1 < spec.pp).then(|| spec.rank_of(stage + 1, dp_idx, tp_idx));
    let prev = (stage > 0).then(|| spec.rank_of(stage - 1, dp_idx, tp_idx));

    let mut losses = Vec::with_capacity(spec.steps);
    for step in 0..spec.steps {
        let fwd_tag = (step * 2) as u64;
        let bwd_tag = fwd_tag + 1;

        // ---- forward: partial matmul output, TP-combined, piped onward
        let mut act = Tensor::from_vec(
            [spec.elems],
            (0..spec.elems).map(|i| synth(rank, step, i)).collect(),
        );
        ctx.charge_flops_f32(6 * spec.elems as u64);
        act = tp_group.all_reduce(ctx, act);
        if let Some(prev) = prev {
            let upstream = ctx.recv(prev, fwd_tag);
            act.axpy(0.5, &upstream);
        }
        ctx.charge_flops_f32(4 * spec.elems as u64);
        if let Some(next) = next {
            ctx.send(next, fwd_tag, act.clone());
        }

        // ---- backward: gradients flow back through the pipeline
        let mut grad = act;
        grad.scale(1.0 / spec.ranks() as f32);
        if let Some(next) = next {
            let downstream = ctx.recv(next, bwd_tag);
            grad.axpy(0.5, &downstream);
        }
        ctx.charge_flops_f32(8 * spec.elems as u64);
        if let Some(prev) = prev {
            ctx.send(prev, bwd_tag, grad.clone());
        }
        // TP ranks hold sharded weight gradients; gather the full view
        let shard = grad.chunk(0, spec.tp).swap_remove(tp_idx);
        let gathered = tp_group.all_gather_cat(ctx, shard, 0);
        grad.axpy(0.25, &gathered);

        // ---- optimizer: DP gradient reduction, then the step loss
        let reduced = dp_group.all_reduce(ctx, grad);
        ctx.charge_flops_f32(2 * spec.elems as u64);
        losses.push(reduced.mean());
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use colossalai_topology::systems::system_iii;

    #[test]
    fn coords_roundtrip() {
        let spec = HybridSpec {
            dp: 2,
            tp: 4,
            pp: 2,
            elems: 64,
            steps: 1,
        };
        assert_eq!(spec.ranks(), 16);
        for rank in 0..spec.ranks() {
            let (s, d, t) = spec.coords(rank);
            assert_eq!(spec.rank_of(s, d, t), rank);
        }
        // tp fastest: ranks 0..4 share stage 0 / replica 0
        assert_eq!(spec.coords(3), (0, 0, 3));
        assert_eq!(spec.coords(4), (0, 1, 0));
        assert_eq!(spec.coords(8), (1, 0, 0));
    }

    #[test]
    fn hybrid_step_runs_and_is_reproducible() {
        let spec = HybridSpec {
            dp: 2,
            tp: 2,
            pp: 2,
            elems: 32,
            steps: 2,
        };
        let run = || {
            let world = World::new(system_iii());
            world.run_on(spec.ranks(), |ctx| run_hybrid(ctx, &spec))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same workload, same world: identical losses");
        assert_eq!(a.len(), 8);
        assert_eq!(a[0].len(), 2);
        assert!(a.iter().flatten().all(|l| l.is_finite()));
    }
}
