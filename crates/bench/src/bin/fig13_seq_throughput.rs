//! E8 — Fig 13: BERT-Base training throughput, sequence parallelism vs 1D
//! tensor parallelism on System III; (a) at each mode's maximum batch,
//! (b) combined with 1-4 pipeline stages at parallel size 4.

use colossalai_bench::print_table;
use colossalai_models::TransformerConfig;
use colossalai_parallel::memcalc::{max_batch, seq_mode_admits, SeqMode};
use colossalai_parallel::throughput::{bert_pipeline_step, bert_step};
use colossalai_topology::systems::system_iii;

fn main() {
    let cfg = TransformerConfig::bert_base();
    let cluster = system_iii();
    let capacity = cluster.gpu(0).memory_bytes;
    let seq = 512;

    // Fig 13a: throughput at each mode's maximum batch
    let mut rows = Vec::new();
    for p in [4usize, 6, 8, 12] {
        let devices: Vec<usize> = (0..p).collect();
        let sp_b = max_batch(SeqMode::SequenceParallel, &cfg, seq, p, capacity);
        let sp = bert_step(
            SeqMode::SequenceParallel,
            &cfg,
            &cluster,
            &devices,
            sp_b,
            seq,
        );
        let (tp_cell, ratio) = if seq_mode_admits(SeqMode::TensorParallel1d, &cfg, p) {
            let tp_b = max_batch(SeqMode::TensorParallel1d, &cfg, seq, p, capacity);
            let tp = bert_step(
                SeqMode::TensorParallel1d,
                &cfg,
                &cluster,
                &devices,
                tp_b,
                seq,
            );
            (
                format!("{:.1} (b={})", tp.throughput(), tp_b),
                format!("{:.2}x", sp.throughput() / tp.throughput()),
            )
        } else {
            ("n/a".to_string(), "-".to_string())
        };
        rows.push(vec![
            p.to_string(),
            tp_cell,
            format!("{:.1} (b={})", sp.throughput(), sp_b),
            ratio,
        ]);
    }
    print_table(
        "Fig 13a: BERT-Base throughput (samples/s) at max batch, seq = 512",
        &["#GPUs", "1D TP", "Seq Parallel", "SP / TP"],
        &rows,
    );

    // Fig 13b: pipeline scaling at parallel size 4
    let devices: Vec<usize> = (0..4).collect();
    let (b, m) = (64usize, 8usize);
    let mut rows = Vec::new();
    for stages in [1usize, 2, 4] {
        let tp = bert_pipeline_step(
            SeqMode::TensorParallel1d,
            &cfg,
            &cluster,
            &devices,
            b,
            seq,
            stages,
            m,
        );
        let sp = bert_pipeline_step(
            SeqMode::SequenceParallel,
            &cfg,
            &cluster,
            &devices,
            b,
            seq,
            stages,
            m,
        );
        rows.push(vec![
            stages.to_string(),
            format!("{:.1}", tp.throughput()),
            format!("{:.1}", sp.throughput()),
            format!("{:.2}x", sp.throughput() / tp.throughput()),
        ]);
    }
    print_table(
        "Fig 13b: throughput with pipeline stages (parallel size 4, batch 64, 8 micro-batches)",
        &["stages", "1D TP", "Seq Parallel", "SP / TP"],
        &rows,
    );
    println!(
        "\nPaper reference: SP trains up to 1.43x faster than 1D TP, rising \
         to 1.55x with 4 pipeline stages (SP needs no scatter/gather at \
         stage boundaries)."
    );
}
