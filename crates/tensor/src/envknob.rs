//! Shared parsing for `COLOSSAL_*` environment knobs.
//!
//! Every knob follows one contract: unset means the documented default, a
//! well-formed value wins, and a malformed value falls back to the default
//! with a **one-time stderr warning** naming the variable, the rejected
//! value and the fallback — a typo in a knob must never silently change
//! behavior. All crates in the workspace route their knob parsing through
//! this module so the warning format stays uniform.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Warns (once per variable per process) that `var` carried an
/// unusable value and which fallback takes effect.
///
/// Format: `colossal: ignoring invalid VAR="value" (expected ...); using
/// fallback`. Repeated resolutions of the same variable stay silent so a
/// knob read in a hot path cannot spam stderr.
pub fn warn_invalid(var: &str, value: &str, expected: &str, fallback: &str) {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if warned.insert(var.to_string()) {
        eprintln!(
            "colossal: ignoring invalid {var}={value:?} (expected {expected}); using {fallback}"
        );
    }
}

/// Reads `var` as a `usize`: unset yields `default`, a parsable value wins,
/// and a malformed value yields `default` after a one-time [`warn_invalid`].
/// Range restrictions beyond "non-negative integer" (e.g. rejecting 0) are
/// the caller's job — warn through [`warn_invalid`] there too.
pub fn env_usize(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) => v,
            Err(_) => {
                warn_invalid(
                    var,
                    raw.trim(),
                    "a non-negative integer",
                    &default.to_string(),
                );
                default
            }
        },
    }
}

/// Reads `var` as a boolean flag: unset yields `default`; `1`, `on`,
/// `true`, `yes` (any case) mean on; `0`, `off`, `false`, `no` mean off;
/// anything else yields `default` after a one-time [`warn_invalid`].
pub fn env_flag(var: &str, default: bool) -> bool {
    match std::env::var(var) {
        Err(_) => default,
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "on" | "true" | "yes" => true,
            "0" | "off" | "false" | "no" => false,
            _ => {
                warn_invalid(
                    var,
                    raw.trim(),
                    "one of 1/0/on/off/true/false/yes/no",
                    if default { "on" } else { "off" },
                );
                default
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process state; each uses a distinct variable
    // name so parallel test threads cannot interfere.

    #[test]
    fn unset_yields_default_silently() {
        assert_eq!(env_usize("COLOSSAL_TEST_UNSET_KNOB", 7), 7);
    }

    #[test]
    fn valid_value_wins() {
        std::env::set_var("COLOSSAL_TEST_VALID_KNOB", " 42 ");
        assert_eq!(env_usize("COLOSSAL_TEST_VALID_KNOB", 7), 42);
    }

    #[test]
    fn malformed_value_falls_back() {
        std::env::set_var("COLOSSAL_TEST_BAD_KNOB", "banana");
        assert_eq!(env_usize("COLOSSAL_TEST_BAD_KNOB", 7), 7);
        // second resolution must stay silent (and still fall back)
        assert_eq!(env_usize("COLOSSAL_TEST_BAD_KNOB", 9), 9);
    }

    #[test]
    fn flag_accepts_the_documented_spellings() {
        for (v, want) in [
            ("1", true),
            ("on", true),
            ("TRUE", true),
            (" yes ", true),
            ("0", false),
            ("off", false),
            ("False", false),
            ("no", false),
        ] {
            std::env::set_var("COLOSSAL_TEST_FLAG_KNOB", v);
            assert_eq!(env_flag("COLOSSAL_TEST_FLAG_KNOB", !want), want, "{v:?}");
        }
    }

    #[test]
    fn flag_unset_and_malformed_fall_back() {
        assert!(env_flag("COLOSSAL_TEST_FLAG_UNSET", true));
        assert!(!env_flag("COLOSSAL_TEST_FLAG_UNSET", false));
        std::env::set_var("COLOSSAL_TEST_FLAG_BAD", "maybe");
        assert!(env_flag("COLOSSAL_TEST_FLAG_BAD", true));
        assert!(!env_flag("COLOSSAL_TEST_FLAG_BAD", false));
    }
}
