//! Process groups and their collective operations.
//!
//! Data movement is real (tensors cross threads through a rendezvous slot);
//! time is virtual (charged from the cluster's alpha-beta model for the
//! canonical ring algorithm of each collective). Reductions are applied in
//! rank order, so results are bit-deterministic across runs.

use crate::stats::OpKind;
use crate::trace::{group_track_name, SpanKind, Track};
use crate::world::DeviceCtx;
use colossalai_tensor::Tensor;
use colossalai_topology::{cost, DeviceId};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Wire width of a collective payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    /// 4 bytes/element (FP32).
    F32,
    /// 2 bytes/element (FP16 payloads of mixed-precision/ZeRO traffic).
    F16,
}

impl Wire {
    fn bytes(self) -> u64 {
        match self {
            Wire::F32 => 4,
            Wire::F16 => 2,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Collect,
    Distribute,
}

struct SlotState {
    phase: Phase,
    inputs: Vec<Option<Tensor>>,
    outputs: Vec<Option<Tensor>>,
    arrived: usize,
    picked: usize,
    t_max: f64,
    t_done: f64,
    /// Kind and wire bytes of the op in flight, published by the last
    /// arrival so every rank can emit its own trace span.
    op: Option<(OpKind, u64)>,
}

/// Shared state of one process group (all member handles point here).
pub(crate) struct GroupShared {
    members: Vec<DeviceId>,
    slot: Mutex<SlotState>,
    cv: Condvar,
}

impl GroupShared {
    pub(crate) fn new(members: Vec<DeviceId>) -> Self {
        let p = members.len();
        GroupShared {
            members,
            slot: Mutex::new(SlotState {
                phase: Phase::Collect,
                inputs: vec![None; p],
                outputs: vec![None; p],
                arrived: 0,
                picked: 0,
                t_max: 0.0,
                t_done: 0.0,
                op: None,
            }),
            cv: Condvar::new(),
        }
    }
}

/// A member's handle to a process group.
///
/// All members must invoke the same sequence of collectives (SPMD), exactly
/// like an MPI communicator or a NCCL process group.
#[derive(Clone)]
pub struct Group {
    shared: Arc<GroupShared>,
    my_index: usize,
}

impl Group {
    pub(crate) fn new(shared: Arc<GroupShared>, device: DeviceId) -> Group {
        let my_index = shared
            .members
            .iter()
            .position(|&m| m == device)
            .expect("device not in group");
        Group { shared, my_index }
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.shared.members.len()
    }

    /// This member's rank within the group (0-based, in member-list order).
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Global device ids of the members, in group-rank order.
    pub fn members(&self) -> &[DeviceId] {
        &self.shared.members
    }

    /// Core rendezvous: every rank deposits `input`; the last arrival runs
    /// `finish` (producing one output per rank, the op's virtual cost, the
    /// op kind and its element-hop count); every rank leaves with its output
    /// and a clock advanced to `max(arrival clocks) + cost`.
    ///
    /// When tracing is enabled, every rank emits a [`SpanKind::Collective`]
    /// span from its arrival to the group-wide completion, and the last
    /// arrival additionally emits one group-track span per op.
    fn rendezvous<F>(&self, ctx: &DeviceCtx, input: Tensor, finish: F) -> Tensor
    where
        F: FnOnce(&[Tensor]) -> (Vec<Tensor>, f64, OpKind, u64, Wire),
    {
        let p = self.size();
        if p == 1 {
            // single-rank group: identity data-wise and zero cost, but still
            // one group op — record the promised stats entry (zero element
            // hops) and a zero-length trace span
            let (mut outs, cost, kind, elements, wire) = finish(std::slice::from_ref(&input));
            let bytes = elements * wire.bytes();
            ctx.record_stats(kind, elements, bytes);
            let t_arrive = ctx.clock();
            ctx.advance(cost);
            if ctx.tracing() {
                let group = self.members().to_vec();
                ctx.trace_span(SpanKind::Collective { kind, bytes, group }, t_arrive);
                self.trace_group_span(ctx, kind, bytes, t_arrive, ctx.clock());
            }
            return outs.pop().expect("finish produced no output");
        }
        let shared = &*self.shared;
        let t_arrive = ctx.clock();
        let mut st = shared.slot.lock();
        // wait for the previous op to fully drain
        while st.phase == Phase::Distribute {
            shared.cv.wait(&mut st);
        }
        assert!(
            st.inputs[self.my_index].is_none(),
            "rank reentered collective"
        );
        st.inputs[self.my_index] = Some(input);
        st.arrived += 1;
        st.t_max = st.t_max.max(t_arrive);
        if st.arrived == p {
            // last arrival: combine and publish
            let inputs: Vec<Tensor> = st.inputs.iter_mut().map(|i| i.take().unwrap()).collect();
            let (outputs, cost, kind, elements, wire) = finish(&inputs);
            assert_eq!(outputs.len(), p, "finish must produce one output per rank");
            let bytes = elements * wire.bytes();
            st.outputs = outputs.into_iter().map(Some).collect();
            st.t_done = st.t_max + cost;
            st.phase = Phase::Distribute;
            st.op = Some((kind, bytes));
            ctx.record_stats(kind, elements, bytes);
            self.trace_group_span(ctx, kind, bytes, st.t_max, st.t_done);
            shared.cv.notify_all();
        } else {
            while st.phase == Phase::Collect {
                shared.cv.wait(&mut st);
            }
        }
        let out = st.outputs[self.my_index]
            .take()
            .expect("output already taken");
        let t_done = st.t_done;
        let (kind, bytes) = st.op.expect("op metadata published by last arrival");
        st.picked += 1;
        if st.picked == p {
            // last picker resets the slot for the next op
            st.phase = Phase::Collect;
            st.arrived = 0;
            st.picked = 0;
            st.t_max = 0.0;
            st.op = None;
            shared.cv.notify_all();
        }
        drop(st);
        ctx.advance_to(t_done);
        if ctx.tracing() {
            let group = self.members().to_vec();
            ctx.trace_span(SpanKind::Collective { kind, bytes, group }, t_arrive);
        }
        out
    }

    /// Emits the one-per-op span on this group's dedicated track.
    fn trace_group_span(&self, ctx: &DeviceCtx, kind: OpKind, bytes: u64, start: f64, end: f64) {
        if ctx.tracing() {
            let members = self.members();
            ctx.trace_span_on(
                Track::Group(group_track_name(members)),
                SpanKind::Collective {
                    kind,
                    bytes,
                    group: members.to_vec(),
                },
                start,
                end,
            );
        }
    }

    // ---- collectives ----------------------------------------------------

    /// Sum all-reduce at FP32 wire width.
    pub fn all_reduce(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_wire(ctx, t, Wire::F32)
    }

    /// Sum all-reduce at FP16 wire width (mixed-precision gradient traffic).
    pub fn all_reduce_half(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_wire(ctx, t, Wire::F16)
    }

    fn all_reduce_wire(&self, ctx: &DeviceCtx, t: Tensor, wire: Wire) -> Tensor {
        let p = self.size();
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        self.rendezvous(ctx, t, move |inputs| {
            let mut sum = inputs[0].clone();
            for x in &inputs[1..] {
                sum.axpy(1.0, x);
            }
            let n = sum.numel() as u64;
            let cost = cost::allreduce_time(&cluster, &members, n * wire.bytes());
            let elements = 2 * (p as u64 - 1) * n;
            (vec![sum; p], cost, OpKind::AllReduce, elements, wire)
        })
    }

    /// All-gather with concatenation along `dim`: every rank contributes a
    /// shard, every rank receives the full concatenation (in rank order).
    pub fn all_gather_cat(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.all_gather_cat_wire(ctx, t, dim, Wire::F32)
    }

    /// FP16-wire variant of [`Group::all_gather_cat`].
    pub fn all_gather_cat_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.all_gather_cat_wire(ctx, t, dim, Wire::F16)
    }

    fn all_gather_cat_wire(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, wire: Wire) -> Tensor {
        let p = self.size();
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        self.rendezvous(ctx, t, move |inputs| {
            let contrib = inputs[0].numel() as u64;
            let full = Tensor::cat(inputs, dim);
            let cost = cost::allgather_time(&cluster, &members, contrib * wire.bytes());
            let elements = (p as u64 - 1) * p as u64 * contrib;
            (vec![full; p], cost, OpKind::AllGather, elements, wire)
        })
    }

    /// Reduce-scatter: sums all contributions, then each rank keeps its
    /// rank-th chunk along `dim`.
    pub fn reduce_scatter(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.reduce_scatter_wire(ctx, t, dim, Wire::F32)
    }

    /// FP16-wire variant of [`Group::reduce_scatter`].
    pub fn reduce_scatter_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.reduce_scatter_wire(ctx, t, dim, Wire::F16)
    }

    fn reduce_scatter_wire(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, wire: Wire) -> Tensor {
        let p = self.size();
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        self.rendezvous(ctx, t, move |inputs| {
            let mut sum = inputs[0].clone();
            for x in &inputs[1..] {
                sum.axpy(1.0, x);
            }
            let n = sum.numel() as u64;
            let outs = sum.chunk(dim, p);
            let cost = cost::reduce_scatter_time(&cluster, &members, n * wire.bytes());
            let elements = (p as u64 - 1) * n;
            (outs, cost, OpKind::ReduceScatter, elements, wire)
        })
    }

    /// Broadcast from group-rank `root` at FP32 wire width. Non-root ranks'
    /// inputs are ignored (pass an empty tensor, e.g. `Tensor::zeros([0])`).
    pub fn broadcast(&self, ctx: &DeviceCtx, t: Tensor, root: usize) -> Tensor {
        self.broadcast_wire(ctx, t, root, Wire::F32)
    }

    /// FP16-wire variant of [`Group::broadcast`] (mixed-precision parameter
    /// fan-out charges half the bytes on the wire).
    pub fn broadcast_half(&self, ctx: &DeviceCtx, t: Tensor, root: usize) -> Tensor {
        self.broadcast_wire(ctx, t, root, Wire::F16)
    }

    fn broadcast_wire(&self, ctx: &DeviceCtx, t: Tensor, root: usize, wire: Wire) -> Tensor {
        let p = self.size();
        assert!(root < p, "broadcast root {root} out of range");
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        self.rendezvous(ctx, t, move |inputs| {
            let src = inputs[root].clone();
            let n = src.numel() as u64;
            let cost = cost::broadcast_time(&cluster, &members, n * wire.bytes());
            let elements = (p as u64 - 1) * n;
            (vec![src; p], cost, OpKind::Broadcast, elements, wire)
        })
    }

    /// Scatter from group-rank `root`: the root's tensor is chunked along
    /// `dim` into `size()` pieces; rank i receives piece i. Non-root inputs
    /// are ignored.
    pub fn scatter(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, root: usize) -> Tensor {
        self.scatter_wire(ctx, t, dim, root, Wire::F32)
    }

    /// FP16-wire variant of [`Group::scatter`].
    pub fn scatter_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, root: usize) -> Tensor {
        self.scatter_wire(ctx, t, dim, root, Wire::F16)
    }

    fn scatter_wire(
        &self,
        ctx: &DeviceCtx,
        t: Tensor,
        dim: usize,
        root: usize,
        wire: Wire,
    ) -> Tensor {
        let p = self.size();
        assert!(root < p, "scatter root {root} out of range");
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        self.rendezvous(ctx, t, move |inputs| {
            let src = &inputs[root];
            let n = src.numel() as u64;
            let outs = src.chunk_ragged(dim, p);
            // uneven chunks: the largest one gates the pairwise exchange
            let max_chunk = outs.iter().map(|c| c.numel() as u64).max().unwrap_or(0);
            let kept = outs[root].numel() as u64;
            let cost = cost::alltoall_time(&cluster, &members, max_chunk * wire.bytes());
            // the root wires out everything except its own chunk
            let elements = n - kept;
            (outs, cost, OpKind::Scatter, elements, wire)
        })
    }

    /// Gather to group-rank `root` with concatenation along `dim`; the root
    /// receives the concatenation, other ranks receive an empty tensor.
    pub fn gather_cat(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, root: usize) -> Tensor {
        self.gather_cat_wire(ctx, t, dim, root, Wire::F32)
    }

    /// FP16-wire variant of [`Group::gather_cat`].
    pub fn gather_cat_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, root: usize) -> Tensor {
        self.gather_cat_wire(ctx, t, dim, root, Wire::F16)
    }

    fn gather_cat_wire(
        &self,
        ctx: &DeviceCtx,
        t: Tensor,
        dim: usize,
        root: usize,
        wire: Wire,
    ) -> Tensor {
        let p = self.size();
        assert!(root < p, "gather root {root} out of range");
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        self.rendezvous(ctx, t, move |inputs| {
            // contributions may be ragged: bill what each rank actually sends
            let max_contrib = inputs
                .iter()
                .enumerate()
                .filter(|&(r, _)| r != root)
                .map(|(_, t)| t.numel() as u64)
                .max()
                .unwrap_or(0);
            let elements: u64 = inputs
                .iter()
                .enumerate()
                .filter(|&(r, _)| r != root)
                .map(|(_, t)| t.numel() as u64)
                .sum();
            let full = Tensor::cat(inputs, dim);
            let outs = (0..p)
                .map(|r| {
                    if r == root {
                        full.clone()
                    } else {
                        Tensor::zeros([0])
                    }
                })
                .collect();
            let cost = cost::alltoall_time(&cluster, &members, max_contrib * wire.bytes());
            (outs, cost, OpKind::Gather, elements, wire)
        })
    }

    /// All-to-all: each rank's tensor is chunked along `dim`; rank i ends
    /// with the concatenation (along `dim`) of everyone's chunk i.
    pub fn all_to_all(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.all_to_all_wire(ctx, t, dim, Wire::F32)
    }

    /// FP16-wire variant of [`Group::all_to_all`].
    pub fn all_to_all_half(&self, ctx: &DeviceCtx, t: Tensor, dim: usize) -> Tensor {
        self.all_to_all_wire(ctx, t, dim, Wire::F16)
    }

    fn all_to_all_wire(&self, ctx: &DeviceCtx, t: Tensor, dim: usize, wire: Wire) -> Tensor {
        let p = self.size();
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        self.rendezvous(ctx, t, move |inputs| {
            let n = inputs[0].numel() as u64;
            let per_rank: Vec<Vec<Tensor>> =
                inputs.iter().map(|t| t.chunk_ragged(dim, p)).collect();
            // chunk sizes need not divide evenly; the largest chunk gates
            // each pairwise exchange step
            let max_chunk = per_rank[0]
                .iter()
                .map(|c| c.numel() as u64)
                .max()
                .unwrap_or(0);
            let outs = (0..p)
                .map(|i| {
                    let mine: Vec<Tensor> =
                        per_rank.iter().map(|chunks| chunks[i].clone()).collect();
                    Tensor::cat(&mine, dim)
                })
                .collect();
            let cost = cost::alltoall_time(&cluster, &members, max_chunk * wire.bytes());
            // each rank wires out its tensor minus the chunk it keeps; the
            // kept chunks across ranks sum to exactly one tensor
            let elements = (p as u64 - 1) * n;
            (outs, cost, OpKind::AllToAll, elements, wire)
        })
    }

    /// Elementwise-max all-reduce (used by distributed gradient-norm and
    /// loss-scale synchronization).
    pub fn all_reduce_max(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_max_wire(ctx, t, Wire::F32)
    }

    /// FP16-wire variant of [`Group::all_reduce_max`].
    pub fn all_reduce_max_half(&self, ctx: &DeviceCtx, t: Tensor) -> Tensor {
        self.all_reduce_max_wire(ctx, t, Wire::F16)
    }

    fn all_reduce_max_wire(&self, ctx: &DeviceCtx, t: Tensor, wire: Wire) -> Tensor {
        let p = self.size();
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        self.rendezvous(ctx, t, move |inputs| {
            let mut acc = inputs[0].clone();
            for x in &inputs[1..] {
                acc = acc.zip(x, f32::max);
            }
            let n = acc.numel() as u64;
            let cost = cost::allreduce_time(&cluster, &members, n * wire.bytes());
            let elements = 2 * (p as u64 - 1) * n;
            (vec![acc; p], cost, OpKind::AllReduce, elements, wire)
        })
    }

    /// Sum-reduce to group-rank `root`: the root receives the elementwise
    /// sum of all contributions, other ranks receive an empty tensor.
    /// (Cost model: the mirror image of a pipelined broadcast.)
    pub fn reduce_sum(&self, ctx: &DeviceCtx, t: Tensor, root: usize) -> Tensor {
        self.reduce_sum_wire(ctx, t, root, Wire::F32)
    }

    /// FP16-wire variant of [`Group::reduce_sum`].
    pub fn reduce_sum_half(&self, ctx: &DeviceCtx, t: Tensor, root: usize) -> Tensor {
        self.reduce_sum_wire(ctx, t, root, Wire::F16)
    }

    fn reduce_sum_wire(&self, ctx: &DeviceCtx, t: Tensor, root: usize, wire: Wire) -> Tensor {
        let p = self.size();
        assert!(root < p, "reduce root {root} out of range");
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        self.rendezvous(ctx, t, move |inputs| {
            let mut sum = inputs[0].clone();
            for x in &inputs[1..] {
                sum.axpy(1.0, x);
            }
            let n = sum.numel() as u64;
            let outs = (0..p)
                .map(|r| {
                    if r == root {
                        sum.clone()
                    } else {
                        Tensor::zeros([0])
                    }
                })
                .collect();
            let cost = cost::broadcast_time(&cluster, &members, n * wire.bytes());
            let elements = (p as u64 - 1) * n;
            (outs, cost, OpKind::Reduce, elements, wire)
        })
    }

    /// Synchronization barrier; costs one latency-bound all-reduce of a
    /// single FP32 wire element.
    pub fn barrier(&self, ctx: &DeviceCtx) {
        let p = self.size();
        let members = self.members().to_vec();
        let cluster = ctx.cluster().clone();
        let wire = Wire::F32;
        let _ = self.rendezvous(ctx, Tensor::zeros([0]), move |_| {
            let cost = cost::allreduce_time(&cluster, &members, wire.bytes());
            (vec![Tensor::zeros([0]); p], cost, OpKind::Barrier, 0, wire)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use colossalai_topology::systems::{system_i, system_ii};

    #[test]
    fn all_reduce_sums_contributions() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = Tensor::full([2, 2], (ctx.rank() + 1) as f32);
            g.all_reduce(ctx, t)
        });
        for o in &out {
            assert!(o.allclose(&Tensor::full([2, 2], 10.0), 0.0));
        }
    }

    #[test]
    fn all_reduce_deterministic_order() {
        // reductions in rank order must be bitwise stable across runs
        let world = World::new(system_i());
        let a = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            g.all_reduce(ctx, Tensor::full([8], 0.1 + ctx.rank() as f32 * 1e-7))
        });
        let b = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            g.all_reduce(ctx, Tensor::full([8], 0.1 + ctx.rank() as f32 * 1e-7))
        });
        assert_eq!(a[0].data(), b[0].data());
    }

    #[test]
    fn all_gather_rank_order() {
        let world = World::new(system_i());
        let out = world.run_on(3, |ctx| {
            let g = ctx.world_group(3);
            g.all_gather_cat(ctx, Tensor::full([1, 2], ctx.rank() as f32), 0)
        });
        for o in &out {
            assert_eq!(o.dims(), &[3, 2]);
            assert_eq!(o.data(), &[0., 0., 1., 1., 2., 2.]);
        }
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = Tensor::arange(8).reshaped([8]);
            let full = g.all_reduce(ctx, t.clone());
            let mine = g.reduce_scatter(ctx, t, 0);
            let rebuilt = g.all_gather_cat(ctx, mine, 0);
            (full, rebuilt)
        });
        for (full, rebuilt) in &out {
            assert_eq!(full.data(), rebuilt.data());
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = if ctx.rank() == 2 {
                Tensor::full([3], 42.0)
            } else {
                Tensor::zeros([0])
            };
            g.broadcast(ctx, t, 2)
        });
        for o in &out {
            assert!(o.allclose(&Tensor::full([3], 42.0), 0.0));
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = if ctx.rank() == 0 {
                Tensor::arange(8)
            } else {
                Tensor::zeros([0])
            };
            g.scatter(ctx, t, 0, 0)
        });
        for (r, o) in out.iter().enumerate() {
            assert_eq!(o.data(), &[(2 * r) as f32, (2 * r + 1) as f32]);
        }
    }

    #[test]
    fn gather_only_root_receives() {
        let world = World::new(system_i());
        let out = world.run_on(3, |ctx| {
            let g = ctx.world_group(3);
            g.gather_cat(ctx, Tensor::full([1], ctx.rank() as f32), 0, 1)
        });
        assert_eq!(out[0].numel(), 0);
        assert_eq!(out[1].data(), &[0., 1., 2.]);
        assert_eq!(out[2].numel(), 0);
    }

    #[test]
    fn all_to_all_transposes_chunks() {
        let world = World::new(system_i());
        let out = world.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            // rank r holds [r*10, r*10+1]
            let t = Tensor::from_vec(
                [2],
                vec![ctx.rank() as f32 * 10.0, ctx.rank() as f32 * 10.0 + 1.0],
            );
            g.all_to_all(ctx, t, 0)
        });
        assert_eq!(out[0].data(), &[0., 10.]);
        assert_eq!(out[1].data(), &[1., 11.]);
    }

    #[test]
    fn all_reduce_max_takes_elementwise_max() {
        let world = World::new(system_i());
        let out = world.run_on(3, |ctx| {
            let g = ctx.world_group(3);
            // rank r holds [r, -r]
            let t = Tensor::from_vec([2], vec![ctx.rank() as f32, -(ctx.rank() as f32)]);
            g.all_reduce_max(ctx, t)
        });
        for o in &out {
            assert_eq!(o.data(), &[2.0, 0.0]);
        }
    }

    #[test]
    fn subgroups_are_independent() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let members: Vec<usize> = if ctx.rank() < 2 {
                vec![0, 1]
            } else {
                vec![2, 3]
            };
            let g = ctx.group(&members);
            g.all_reduce(ctx, Tensor::scalar(1.0)).item()
        });
        assert_eq!(out, vec![2.0; 4]);
    }

    #[test]
    fn collective_advances_clock_per_cost_model() {
        let bytes: usize = 1 << 20;
        let n = bytes / 4;
        for (cluster, name) in [(system_i(), "I"), (system_ii(), "II")] {
            let expected = colossalai_topology::cost::allreduce_time(
                &cluster,
                &(0..8).collect::<Vec<_>>(),
                bytes as u64,
            );
            let world = World::new(cluster);
            let clocks = world.run(|ctx| {
                let g = ctx.world_group(8);
                let _ = g.all_reduce(ctx, Tensor::zeros([n]));
                ctx.clock()
            });
            for c in &clocks {
                assert!(
                    (c - expected).abs() < 1e-12,
                    "system {name}: {c} vs {expected}"
                );
            }
        }
        // System II must be slower than System I for the same collective
        let t1 = colossalai_topology::cost::allreduce_time(
            &system_i(),
            &(0..8).collect::<Vec<_>>(),
            bytes as u64,
        );
        let t2 = colossalai_topology::cost::allreduce_time(
            &system_ii(),
            &(0..8).collect::<Vec<_>>(),
            bytes as u64,
        );
        assert!(t2 > t1);
    }

    #[test]
    fn stats_count_ring_allreduce_elements() {
        let world = World::new(system_i());
        world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let _ = g.all_reduce(ctx, Tensor::zeros([100]));
        });
        let stats = world.stats();
        // 2(p-1) * n = 2*3*100
        assert_eq!(stats.elements_of(OpKind::AllReduce), 600);
        assert_eq!(stats.ops_of(OpKind::AllReduce), 1);
    }

    #[test]
    fn half_wire_halves_bytes() {
        let world = World::new(system_i());
        world.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            let _ = g.all_reduce(ctx, Tensor::zeros([100]));
        });
        let full = world.stats().bytes;
        let world2 = World::new(system_i());
        world2.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            let _ = g.all_reduce_half(ctx, Tensor::zeros([100]));
        });
        let half = world2.stats().bytes;
        assert_eq!(full, 2 * half);
    }

    #[test]
    fn broadcast_half_wire_halves_bytes_and_time() {
        let payload = |rank: usize| {
            if rank == 0 {
                Tensor::zeros([1000])
            } else {
                Tensor::zeros([0])
            }
        };
        let world = World::new(system_i());
        let full_clock = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let _ = g.broadcast(ctx, payload(ctx.rank()), 0);
            ctx.clock()
        });
        let full_bytes = world.stats().bytes;
        let world2 = World::new(system_i());
        let half_clock = world2.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let _ = g.broadcast_half(ctx, payload(ctx.rank()), 0);
            ctx.clock()
        });
        let half_bytes = world2.stats().bytes;
        assert_eq!(full_bytes, 2 * half_bytes);
        // the virtual clock must also see the cheaper wire, not just stats
        assert!(half_clock[0] < full_clock[0]);
    }

    #[test]
    fn broadcast_outputs_share_storage_across_ranks() {
        // the fan-out of one buffer to p ranks must be p handles to one
        // allocation, not p deep copies
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = if ctx.rank() == 0 {
                Tensor::full([64], 3.0)
            } else {
                Tensor::zeros([0])
            };
            g.broadcast(ctx, t, 0)
        });
        for o in &out[1..] {
            assert!(o.shares_storage(&out[0]));
        }
    }

    #[test]
    fn mutating_one_collective_output_never_alters_siblings() {
        let world = World::new(system_i());
        let mut out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            g.all_reduce(ctx, Tensor::full([8], (ctx.rank() + 1) as f32))
        });
        assert!(out[1].shares_storage(&out[0]));
        out[0].scale(0.0); // rank 0 scrubs its copy, e.g. an optimizer step
        assert!(!out[0].shares_storage(&out[1]));
        for o in &out[1..] {
            assert!(
                o.allclose(&Tensor::full([8], 10.0), 0.0),
                "sibling rank was corrupted"
            );
        }
        // same property through the gather path
        let mut gathered = world.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            g.all_gather_cat(ctx, Tensor::full([2], ctx.rank() as f32), 0)
        });
        assert!(gathered[0].shares_storage(&gathered[1]));
        gathered[1].data_mut()[0] = 99.0;
        assert_eq!(gathered[0].data(), &[0., 0., 1., 1.]);
    }

    #[test]
    fn repeated_collectives_reuse_slot() {
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let mut acc = 0.0;
            for i in 0..50 {
                acc += g.all_reduce(ctx, Tensor::scalar(i as f32)).item();
            }
            acc
        });
        let expect: f32 = (0..50).map(|i| (i * 4) as f32).sum();
        assert_eq!(out, vec![expect; 4]);
    }

    #[test]
    fn many_concurrent_groups_stay_deterministic() {
        // 8 devices using overlapping row/col/pair groups concurrently for
        // many rounds: results and virtual clocks must replay identically
        let run = || {
            let world = World::new(system_i());

            world.run(|ctx| {
                let r = ctx.rank();
                let row = ctx.group(&if r < 4 {
                    vec![0, 1, 2, 3]
                } else {
                    vec![4, 5, 6, 7]
                });
                let col: Vec<usize> = (0..2).map(|q| q * 4 + (r % 4)).collect();
                let col = ctx.group(&col);
                let mut acc = Tensor::full([16], r as f32 * 0.01);
                for _ in 0..20 {
                    acc = row.all_reduce(ctx, acc);
                    acc = col.all_reduce(ctx, acc);
                    acc.scale(0.125);
                }
                (acc, ctx.clock())
            })
        };
        let a = run();
        let b = run();
        for ((ta, ca), (tb, cb)) in a.iter().zip(&b) {
            assert_eq!(ta.data(), tb.data(), "tensor results must replay");
            assert_eq!(ca, cb, "virtual clocks must replay");
        }
    }

    #[test]
    fn single_rank_group_is_identity() {
        let world = World::new(system_i());
        let out = world.run_on(1, |ctx| {
            let g = ctx.world_group(1);
            let t = g.all_reduce(ctx, Tensor::full([3], 7.0));
            (t, ctx.clock())
        });
        assert!(out[0].0.allclose(&Tensor::full([3], 7.0), 0.0));
        assert_eq!(out[0].1, 0.0);
    }

    #[test]
    fn single_rank_group_still_records_stats() {
        // p == 1 used to skip record_stats entirely; the op must still show
        // up in the ledger (with zero element hops — nothing crosses a wire)
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let g = ctx.world_group(1);
            let _ = g.all_reduce(ctx, Tensor::full([3], 7.0));
            g.barrier(ctx);
        });
        let stats = world.stats();
        assert_eq!(stats.ops_of(OpKind::AllReduce), 1);
        assert_eq!(stats.elements_of(OpKind::AllReduce), 0);
        assert_eq!(stats.ops_of(OpKind::Barrier), 1);
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn half_wire_halves_bytes_for_every_collective() {
        // the formerly hardcoded 4-byte ops must all bill through Wire
        type Op = fn(&Group, &DeviceCtx) -> Tensor;
        let cases: Vec<(Op, Op, OpKind)> = vec![
            (
                |g, ctx| g.scatter(ctx, Tensor::arange(8), 0, 0),
                |g, ctx| g.scatter_half(ctx, Tensor::arange(8), 0, 0),
                OpKind::Scatter,
            ),
            (
                |g, ctx| g.gather_cat(ctx, Tensor::full([5], 1.0), 0, 0),
                |g, ctx| g.gather_cat_half(ctx, Tensor::full([5], 1.0), 0, 0),
                OpKind::Gather,
            ),
            (
                |g, ctx| g.all_to_all(ctx, Tensor::arange(8), 0),
                |g, ctx| g.all_to_all_half(ctx, Tensor::arange(8), 0),
                OpKind::AllToAll,
            ),
            (
                |g, ctx| g.all_reduce_max(ctx, Tensor::full([9], 2.0)),
                |g, ctx| g.all_reduce_max_half(ctx, Tensor::full([9], 2.0)),
                OpKind::AllReduce,
            ),
            (
                |g, ctx| g.reduce_sum(ctx, Tensor::full([7], 3.0), 0),
                |g, ctx| g.reduce_sum_half(ctx, Tensor::full([7], 3.0), 0),
                OpKind::Reduce,
            ),
        ];
        for (full_op, half_op, kind) in cases {
            let world = World::new(system_i());
            world.run_on(4, |ctx| {
                let g = ctx.world_group(4);
                let _ = full_op(&g, ctx);
            });
            let full = world.stats().bytes;
            let world2 = World::new(system_i());
            world2.run_on(4, |ctx| {
                let g = ctx.world_group(4);
                let _ = half_op(&g, ctx);
            });
            let half = world2.stats().bytes;
            assert!(full > 0, "{kind:?} must bill nonzero bytes");
            assert_eq!(full, 2 * half, "{kind:?} half wire must halve bytes");
        }
    }

    #[test]
    fn uneven_all_to_all_counts_exact_elements() {
        // n = 10, p = 4: chunks are 3/3/2/2. The old accounting truncated to
        // n/p and undercounted; each rank wires out n minus its kept chunk,
        // and the kept chunks sum to one tensor: (p-1)*n = 30 element hops.
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let base = ctx.rank() as f32 * 100.0;
            let t = Tensor::from_vec([10], (0..10).map(|i| base + i as f32).collect());
            g.all_to_all(ctx, t, 0)
        });
        // rank 0 gets everyone's first (3-element) chunk
        assert_eq!(
            out[0].data(),
            &[0., 1., 2., 100., 101., 102., 200., 201., 202., 300., 301., 302.]
        );
        // rank 2 gets everyone's third (2-element) chunk
        assert_eq!(out[2].data(), &[6., 7., 106., 107., 206., 207., 306., 307.]);
        let stats = world.stats();
        assert_eq!(stats.elements_of(OpKind::AllToAll), 30);
        assert_eq!(stats.bytes, 30 * 4);
    }

    #[test]
    fn uneven_scatter_counts_exact_elements() {
        // n = 10, p = 4 from root 0: root keeps its 3-element chunk and
        // wires out the remaining 7 elements
        let world = World::new(system_i());
        let out = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let t = if ctx.rank() == 0 {
                Tensor::arange(10)
            } else {
                Tensor::zeros([0])
            };
            g.scatter(ctx, t, 0, 0)
        });
        assert_eq!(out[0].data(), &[0., 1., 2.]);
        assert_eq!(out[1].data(), &[3., 4., 5.]);
        assert_eq!(out[2].data(), &[6., 7.]);
        assert_eq!(out[3].data(), &[8., 9.]);
        let stats = world.stats();
        assert_eq!(stats.elements_of(OpKind::Scatter), 7);
        assert_eq!(stats.bytes, 7 * 4);
    }

    #[test]
    fn barrier_records_op_without_bytes() {
        let world = World::new(system_i());
        let clocks = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            g.barrier(ctx);
            ctx.clock()
        });
        let stats = world.stats();
        assert_eq!(stats.ops_of(OpKind::Barrier), 1);
        assert_eq!(stats.bytes, 0);
        // latency-bound, but not free
        for c in &clocks {
            assert!(*c > 0.0);
        }
    }
}
