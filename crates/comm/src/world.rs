//! The simulated multi-device world: one OS thread per device, a shared
//! cluster model, a virtual clock per device, and global traffic stats.

use crate::group::{Group, GroupShared};
use crate::stats::CommStats;
use crate::trace::{self, RankRollup, Span, SpanKind, Tracer, Track};
use colossalai_tensor::Tensor;
use colossalai_topology::{AllReduceAlgo, Cluster, DeviceId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Point-to-point mailboxes keyed by (from, to, tag); each message carries
/// its virtual arrival time.
type Mailbox = HashMap<(DeviceId, DeviceId, u64), VecDeque<(Tensor, f64)>>;

/// Shared state behind a [`World`].
pub(crate) struct WorldInner {
    pub(crate) cluster: Cluster,
    pub(crate) stats: Mutex<CommStats>,
    pub(crate) tracer: Tracer,
    /// When set, every all-reduce uses this schedule instead of consulting
    /// the cost-model selector (benches and tests pin the algorithm).
    forced_algo: Mutex<Option<AllReduceAlgo>>,
    groups: Mutex<HashMap<Vec<DeviceId>, Arc<GroupShared>>>,
    mailbox: Mutex<Mailbox>,
    mailbox_cv: Condvar,
}

/// A simulated cluster execution context.
///
/// `World::run` launches one thread per participating device and hands each
/// a [`DeviceCtx`]. Collectives exchange real tensors through shared memory
/// while charging virtual time according to the cluster's link model, so
/// results are numerically real and timings follow the modeled hardware.
///
/// # Examples
///
/// ```
/// use colossalai_comm::World;
/// use colossalai_tensor::Tensor;
/// use colossalai_topology::systems::system_i;
///
/// let world = World::new(system_i());
/// let sums = world.run_on(4, |ctx| {
///     let group = ctx.world_group(4);
///     group.all_reduce(ctx, Tensor::scalar(ctx.rank() as f32)).item()
/// });
/// assert_eq!(sums, vec![6.0; 4]); // 0 + 1 + 2 + 3 on every rank
/// ```
pub struct World {
    inner: Arc<WorldInner>,
}

impl World {
    /// Creates a world over `cluster`.
    pub fn new(cluster: Cluster) -> World {
        World {
            inner: Arc::new(WorldInner {
                cluster,
                stats: Mutex::new(CommStats::default()),
                tracer: Tracer::default(),
                forced_algo: Mutex::new(None),
                groups: Mutex::new(HashMap::new()),
                mailbox: Mutex::new(HashMap::new()),
                mailbox_cv: Condvar::new(),
            }),
        }
    }

    /// The cluster model.
    pub fn cluster(&self) -> &Cluster {
        &self.inner.cluster
    }

    /// Runs `f` on the first `n` devices of the cluster, one thread each,
    /// and returns the per-rank results ordered by rank.
    ///
    /// Panics in any device thread propagate (the run aborts with that
    /// panic), so test assertions inside device closures work as usual.
    pub fn run_on<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        assert!(
            n >= 1 && n <= self.inner.cluster.n_devices(),
            "cannot run on {n} devices of a {}-device cluster",
            self.inner.cluster.n_devices()
        );
        let inner = &self.inner;
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let inner = Arc::clone(inner);
                    scope.spawn(move || {
                        let ctx = DeviceCtx {
                            world: inner,
                            rank,
                            clock: Arc::new(AtomicU64::new(0.0f64.to_bits())),
                            comm_clock: Arc::new(AtomicU64::new(0.0f64.to_bits())),
                            flops: Arc::new(AtomicU64::new(0)),
                        };
                        f(&ctx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("device thread panicked"))
                .collect()
        })
    }

    /// Runs `f` on every device of the cluster.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        self.run_on(self.inner.cluster.n_devices(), f)
    }

    /// Snapshot of the accumulated communication statistics.
    pub fn stats(&self) -> CommStats {
        self.inner.stats.lock().clone()
    }

    /// Clears accumulated statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&self) {
        *self.inner.stats.lock() = CommStats::default();
    }

    /// Pins the all-reduce schedule for every group in this world, or
    /// restores per-call cost-model selection with `None`. Data results are
    /// identical either way (the reduction order is canonical); only the
    /// charged time, element-hop stats and trace phases differ.
    pub fn force_allreduce_algo(&self, algo: Option<AllReduceAlgo>) {
        *self.inner.forced_algo.lock() = algo;
    }

    // ---- tracing --------------------------------------------------------

    /// Turns span recording on or off (off by default; the disabled path
    /// costs one relaxed atomic load per potential span).
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracer.set_enabled(on);
    }

    /// Enables span recording. Shorthand for `set_tracing(true)`.
    pub fn enable_tracing(&self) {
        self.set_tracing(true);
    }

    /// Whether spans are currently being recorded.
    pub fn tracing(&self) -> bool {
        self.inner.tracer.enabled()
    }

    /// Snapshot of all recorded spans, in recording order.
    pub fn trace(&self) -> Vec<Span> {
        self.inner.tracer.snapshot()
    }

    /// Drops all recorded spans (e.g. after a warm-up step).
    pub fn clear_trace(&self) {
        self.inner.tracer.clear();
    }

    /// Chrome/Perfetto `trace_events` JSON of the recorded spans: one track
    /// per simulated device plus one per collective group. Load the output
    /// at `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn trace_json(&self) -> String {
        trace::chrome_trace_json(&self.trace())
    }

    /// Per-rank rollup of the recorded leaf spans: seconds in compute,
    /// communication, memory movement and idle.
    pub fn trace_rollup(&self) -> Vec<RankRollup> {
        trace::rollup(&self.trace())
    }

    /// The rollup formatted as a fixed-width table.
    pub fn rollup_table(&self) -> String {
        trace::rollup_table(&self.trace_rollup())
    }
}

/// Per-device execution context handed to the closure of [`World::run`].
///
/// Holds the device's virtual clock. Compute is charged explicitly via
/// [`DeviceCtx::charge_flops_f32`] / [`DeviceCtx::charge_seconds`];
/// communication is charged implicitly by the collectives in
/// [`Group`] type.
/// Cloning a `DeviceCtx` yields a handle to the *same* device: clones share
/// the clock and FLOP counter, so layers and optimizers can each hold one.
#[derive(Clone)]
pub struct DeviceCtx {
    pub(crate) world: Arc<WorldInner>,
    pub(crate) rank: DeviceId,
    clock: Arc<AtomicU64>,
    /// The communication stream's clock: `async` collectives accrue here
    /// while compute keeps running on `clock`; [`DeviceCtx::comm_sync`]
    /// joins the two.
    comm_clock: Arc<AtomicU64>,
    flops: Arc<AtomicU64>,
}

impl DeviceCtx {
    /// Global device id of this context.
    pub fn rank(&self) -> DeviceId {
        self.rank
    }

    /// The cluster model.
    pub fn cluster(&self) -> &Cluster {
        &self.world.cluster
    }

    /// Current virtual time in seconds.
    ///
    /// The clock is only ever written by its own device thread, so relaxed
    /// atomics are sufficient — the `Arc<AtomicU64>` exists to let clones of
    /// the ctx (held by layers, optimizers, schedules) share one clock, not
    /// for cross-thread communication.
    pub fn clock(&self) -> f64 {
        f64::from_bits(self.clock.load(Ordering::Relaxed))
    }

    fn set_clock(&self, t: f64) {
        self.clock.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Advances the virtual clock by `dt` seconds.
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0, "negative time step");
        self.set_clock(self.clock() + dt);
    }

    /// Forces the clock to at least `t` (used when receiving messages).
    pub(crate) fn advance_to(&self, t: f64) {
        if t > self.clock() {
            self.set_clock(t);
        }
    }

    // ---- comm stream ----------------------------------------------------

    /// Current virtual time of the communication stream in seconds. Lags
    /// the main clock while no async collective is in flight.
    pub fn comm_clock(&self) -> f64 {
        f64::from_bits(self.comm_clock.load(Ordering::Relaxed))
    }

    fn set_comm_clock(&self, t: f64) {
        self.comm_clock.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Earliest virtual time a newly launched async collective can start on
    /// this rank: the later of the two streams (compute must have produced
    /// the payload; the comm stream must have drained prior ops).
    pub(crate) fn comm_ready(&self) -> f64 {
        self.clock().max(self.comm_clock())
    }

    /// Forces the comm-stream clock to at least `t`.
    pub(crate) fn comm_advance_to(&self, t: f64) {
        if t > self.comm_clock() {
            self.set_comm_clock(t);
        }
    }

    /// Joins the comm stream into the main clock: both become
    /// `max(main, comm)`. Call before consuming the result of an async
    /// collective (e.g. before `optimizer.step`); a no-op when the comm
    /// stream is already behind the main clock.
    pub fn comm_sync(&self) {
        let t = self.comm_ready();
        self.set_clock(t);
        self.set_comm_clock(t);
    }

    /// The world-wide pinned all-reduce schedule, if any (see
    /// [`World::force_allreduce_algo`]).
    pub(crate) fn forced_allreduce_algo(&self) -> Option<AllReduceAlgo> {
        *self.world.forced_algo.lock()
    }

    /// Charges `flops` of FP32 compute at this device's modeled rate.
    pub fn charge_flops_f32(&self, flops: u64) {
        self.flops.fetch_add(flops, Ordering::Relaxed);
        let dt = self.world.cluster.gpu(self.rank).compute_time_f32(flops);
        self.advance(dt);
    }

    /// Charges `flops` of FP16 tensor-core compute.
    pub fn charge_flops_f16(&self, flops: u64) {
        self.flops.fetch_add(flops, Ordering::Relaxed);
        let dt = self.world.cluster.gpu(self.rank).compute_time_f16(flops);
        self.advance(dt);
    }

    /// Charges raw seconds (e.g. host-side optimizer time, offload DMA).
    pub fn charge_seconds(&self, dt: f64) {
        self.advance(dt);
    }

    /// Total FLOPs charged so far.
    pub fn flops(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
    }

    /// Records traffic into the world-level stats (one call per group op).
    pub(crate) fn record_stats(&self, kind: crate::stats::OpKind, elements: u64, bytes: u64) {
        self.world.stats.lock().record(kind, elements, bytes);
    }

    // ---- tracing --------------------------------------------------------

    /// Whether the world is recording spans (cheap; callers may skip span
    /// bookkeeping entirely when false).
    pub fn tracing(&self) -> bool {
        self.world.tracer.enabled()
    }

    /// Records a span on this device's track from `start` to the current
    /// clock. No-op unless tracing is enabled.
    pub fn trace_span(&self, kind: SpanKind, start: f64) {
        if self.tracing() {
            self.world.tracer.record(Span {
                rank: self.rank,
                track: Track::Device(self.rank),
                kind,
                start,
                end: self.clock(),
            });
        }
    }

    /// Records a span on an arbitrary track (used by collectives for the
    /// per-group timeline).
    pub(crate) fn trace_span_on(&self, track: Track, kind: SpanKind, start: f64, end: f64) {
        if self.tracing() {
            self.world.tracer.record(Span {
                rank: self.rank,
                track,
                kind,
                start,
                end,
            });
        }
    }

    /// Runs `f` inside a [`SpanKind::Phase`] span named `name`. Phase spans
    /// nest over the leaf spans `f` records.
    pub fn trace_phase<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.tracing() {
            return f();
        }
        let start = self.clock();
        let out = f();
        self.trace_span(
            SpanKind::Phase {
                name: name.to_string(),
            },
            start,
        );
        out
    }

    /// Obtains (or creates) the process group over `members`.
    ///
    /// Every member must call with the *same* member list (order included);
    /// the calling device must itself be a member.
    pub fn group(&self, members: &[DeviceId]) -> Group {
        assert!(
            members.contains(&self.rank),
            "device {} is not in group {:?}",
            self.rank,
            members
        );
        let mut dedup = members.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            members.len(),
            "duplicate members in {members:?}"
        );
        let shared = {
            let mut groups = self.world.groups.lock();
            Arc::clone(
                groups
                    .entry(members.to_vec())
                    .or_insert_with(|| Arc::new(GroupShared::new(members.to_vec()))),
            )
        };
        Group::new(shared, self.rank)
    }

    /// The group of all devices participating in runs of size `n`
    /// (devices `0..n`).
    pub fn world_group(&self, n: usize) -> Group {
        let members: Vec<DeviceId> = (0..n).collect();
        self.group(&members)
    }

    // ---- point-to-point -------------------------------------------------

    /// Sends `t` to device `to` under `tag`. Synchronous-send model: the
    /// sender's clock advances by the full transfer time and the message
    /// becomes visible to the receiver at the sender's post-send clock.
    pub fn send(&self, to: DeviceId, tag: u64, t: Tensor) {
        assert_ne!(to, self.rank, "send to self");
        let bytes = (t.numel() * 4) as u64;
        let dt = self.world.cluster.p2p_time(self.rank, to, bytes);
        let t_start = self.clock();
        self.advance(dt);
        self.trace_span(
            SpanKind::P2p {
                peer: to,
                tag,
                bytes,
                is_send: true,
            },
            t_start,
        );
        let arrival = self.clock();
        {
            let mut stats = self.world.stats.lock();
            stats.record(crate::stats::OpKind::SendRecv, t.numel() as u64, bytes);
        }
        let mut mb = self.world.mailbox.lock();
        mb.entry((self.rank, to, tag))
            .or_default()
            .push_back((t, arrival));
        self.world.mailbox_cv.notify_all();
    }

    /// Receives the next message from `from` under `tag`, blocking until it
    /// arrives. The receiver's clock advances to at least the message's
    /// arrival time.
    pub fn recv(&self, from: DeviceId, tag: u64) -> Tensor {
        assert_ne!(from, self.rank, "recv from self");
        let key = (from, self.rank, tag);
        let t_start = self.clock();
        let mut mb = self.world.mailbox.lock();
        loop {
            if let Some(queue) = mb.get_mut(&key) {
                if let Some((t, arrival)) = queue.pop_front() {
                    drop(mb);
                    self.advance_to(arrival);
                    self.trace_span(
                        SpanKind::P2p {
                            peer: from,
                            tag,
                            bytes: (t.numel() * 4) as u64,
                            is_send: false,
                        },
                        t_start,
                    );
                    return t;
                }
            }
            self.world.mailbox_cv.wait(&mut mb);
        }
    }

    /// Full-duplex ring exchange: sends `t` to `to` while receiving from
    /// `from`. Both transfers overlap, so only one transfer time is charged
    /// (the p2p links are modeled as full duplex).
    pub fn ring_exchange(&self, to: DeviceId, from: DeviceId, tag: u64, t: Tensor) -> Tensor {
        self.send(to, tag, t);
        self.recv(from, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_topology::systems::system_i;

    #[test]
    fn run_returns_rank_ordered_results() {
        let world = World::new(system_i());
        let ranks = world.run(|ctx| ctx.rank());
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn run_on_subset() {
        let world = World::new(system_i());
        let out = world.run_on(3, |ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn clock_advances_with_flops() {
        let world = World::new(system_i());
        let clocks = world.run_on(2, |ctx| {
            ctx.charge_flops_f32(1_000_000_000_000);
            ctx.clock()
        });
        // 1 TFLOP on a 19.5 TFLOPS A100 at 40% MFU: ~0.128s
        assert!(clocks[0] > 0.1 && clocks[0] < 0.2, "clock {}", clocks[0]);
        assert_eq!(clocks[0], clocks[1]);
    }

    #[test]
    fn p2p_moves_data_and_time() {
        let world = World::new(system_i());
        let out = world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, Tensor::from_vec([3], vec![1., 2., 3.]));
                ctx.clock()
            } else {
                let t = ctx.recv(0, 0);
                assert_eq!(t.data(), &[1., 2., 3.]);
                ctx.clock()
            }
        });
        assert!(out[0] > 0.0);
        assert!(out[1] >= out[0]);
    }

    #[test]
    fn p2p_fifo_per_tag() {
        let world = World::new(system_i());
        world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, Tensor::scalar(1.0));
                ctx.send(1, 7, Tensor::scalar(2.0));
                ctx.send(1, 9, Tensor::scalar(3.0));
            } else {
                // tag 9 can be drained before tag 7
                assert_eq!(ctx.recv(0, 9).item(), 3.0);
                assert_eq!(ctx.recv(0, 7).item(), 1.0);
                assert_eq!(ctx.recv(0, 7).item(), 2.0);
            }
        });
    }

    #[test]
    fn ring_exchange_charges_once() {
        let world = World::new(system_i());
        let clocks = world.run_on(2, |ctx| {
            let to = 1 - ctx.rank();
            let got = ctx.ring_exchange(to, to, 0, Tensor::scalar(ctx.rank() as f32));
            assert_eq!(got.item(), to as f32);
            ctx.clock()
        });
        let single = system_i().p2p_time(0, 1, 4);
        assert!(
            (clocks[0] - single).abs() < 1e-12,
            "{} vs {}",
            clocks[0],
            single
        );
    }

    #[test]
    #[should_panic(expected = "device thread panicked")]
    fn group_requires_membership() {
        let world = World::new(system_i());
        world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                let _ = ctx.group(&[1]);
            }
        });
    }
}
