//! BERT-style bidirectional encoder (runnable scale) for the sequence-
//! parallelism experiments (Figs 12-13): token + position embeddings, a
//! non-causal Transformer stack, final LayerNorm and a token-level
//! vocabulary head (masked-LM objective shape).

use crate::config::TransformerConfig;
use crate::transformer::TransformerBlock;
use colossalai_autograd::{Embedding, Layer, LayerNorm, Linear, Param, PositionEmbedding};
use colossalai_tensor::init::InitRng;
use colossalai_tensor::Tensor;

/// A runnable BERT encoder. Input: `[batch, seq]` token ids (as f32);
/// output: `[batch, seq, vocab]` logits.
pub struct Bert {
    tok: Embedding,
    pos: PositionEmbedding,
    blocks: Vec<TransformerBlock>,
    ln_f: LayerNorm,
    head: Linear,
}

impl Bert {
    pub fn new(cfg: &TransformerConfig, rng: &mut InitRng) -> Self {
        let blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock::new(
                    &format!("bert.block{i}"),
                    cfg.hidden,
                    cfg.heads,
                    cfg.mlp_ratio,
                    false,
                    rng,
                )
            })
            .collect();
        Bert {
            tok: Embedding::new("bert.tok", cfg.vocab, cfg.hidden, rng),
            pos: PositionEmbedding::new("bert", cfg.max_seq, cfg.hidden, rng),
            blocks,
            ln_f: LayerNorm::new("bert.ln_f", cfg.hidden),
            head: Linear::from_rng("bert.head", cfg.hidden, cfg.vocab, true, rng),
        }
    }
}

impl Layer for Bert {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "BERT input must be [batch, seq] token ids");
        let mut h = self.tok.forward(x);
        h = self.pos.forward(&h);
        for blk in &mut self.blocks {
            h = blk.forward(&h);
        }
        let h = self.ln_f.forward(&h);
        self.head.forward(&h)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dh = self.head.backward(dy);
        dh = self.ln_f.backward(&dh);
        for blk in self.blocks.iter_mut().rev() {
            dh = blk.backward(&dh);
        }
        let dh = self.pos.backward(&dh);
        self.tok.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok.visit_params(f);
        self.pos.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_tensor::init;
    use colossalai_tensor::ops::cross_entropy;

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            layers: 2,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            vocab: 11,
            max_seq: 6,
        }
    }

    #[test]
    fn logits_shape() {
        let mut rng = init::rng(70);
        let mut bert = Bert::new(&tiny_cfg(), &mut rng);
        let x = Tensor::from_vec(
            [2, 6],
            vec![1., 2., 3., 4., 5., 6., 0., 9., 10., 3., 2., 1.],
        );
        let y = bert.forward(&x);
        assert_eq!(y.dims(), &[2, 6, 11]);
    }

    #[test]
    fn mlm_training_reduces_loss() {
        let mut rng = init::rng(71);
        let mut bert = Bert::new(&tiny_cfg(), &mut rng);
        let x = Tensor::from_vec([1, 6], vec![1., 2., 3., 4., 5., 6.]);
        let targets: Vec<usize> = vec![2, 3, 4, 5, 6, 7]; // next-token-ish labels
        let mut losses = Vec::new();
        for _ in 0..12 {
            bert.zero_grad();
            let logits = bert.forward(&x).reshaped([6, 11]);
            let (loss, dlogits) = cross_entropy(&logits, &targets);
            losses.push(loss);
            let _ = bert.backward(&dlogits.reshaped([1, 6, 11]));
            bert.visit_params(&mut |p| {
                let g = p.grad().clone();
                p.value_mut().axpy(-0.05, &g);
            });
        }
        assert!(losses.last().unwrap() < &(losses[0] * 0.7), "{losses:?}");
    }

    #[test]
    fn not_causal_future_affects_past() {
        // bidirectional: changing the last token changes position 0's output
        let mut rng = init::rng(72);
        let mut bert = Bert::new(&tiny_cfg(), &mut rng);
        let x1 = Tensor::from_vec([1, 6], vec![1., 2., 3., 4., 5., 6.]);
        let x2 = Tensor::from_vec([1, 6], vec![1., 2., 3., 4., 5., 9.]);
        let y1 = bert.forward(&x1);
        let y2 = bert.forward(&x2);
        let mut differs = false;
        for v in 0..11 {
            if (y1.at(&[0, 0, v]) - y2.at(&[0, 0, v])).abs() > 1e-6 {
                differs = true;
            }
        }
        assert!(differs, "BERT must attend bidirectionally");
    }
}
