//! The parallel context manager (Fig 1): carves the device space into
//! data- / pipeline- / tensor-parallel axes and hands out the process-group
//! member lists each axis needs.
//!
//! Device layout (matching Colossal-AI's `gpc`): the global rank factorizes
//! as `rank = ((dp * pipeline_size) + pp) * tensor_size + tp`, i.e. tensor
//! groups are innermost (NVLink-adjacent devices), then pipeline stages,
//! then data-parallel replicas — the ordering that keeps the most
//! communication-intensive axis on the fastest links.

use crate::config::Config;
use colossalai_topology::DeviceId;

/// Which axis a group lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelAxis {
    Data,
    Pipeline,
    Tensor,
}

/// A device's coordinates in the 3-axis parallel space, plus the member
/// lists of each of its groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelContext {
    rank: DeviceId,
    world: usize,
    dp_degree: usize,
    pp_degree: usize,
    tp_degree: usize,
    dp_rank: usize,
    pp_rank: usize,
    tp_rank: usize,
}

impl ParallelContext {
    /// Builds the context for `rank` in a world of `world` devices under
    /// `config`. Panics if the world size is not `dp * pp * tp`.
    pub fn new(config: &Config, rank: DeviceId, world: usize) -> Self {
        let tp = config.tensor_size();
        let pp = config.pipeline_size();
        let per_replica = tp * pp;
        assert!(
            world.is_multiple_of(per_replica),
            "world size {world} not divisible by tensor*pipeline = {per_replica}"
        );
        let dp = match config.parallel.data {
            Some(d) if d > 0 => {
                assert_eq!(
                    d * per_replica,
                    world,
                    "data degree {d} inconsistent with world {world}"
                );
                d
            }
            _ => world / per_replica,
        };
        assert!(rank < world, "rank {rank} out of world {world}");
        let tp_rank = rank % tp;
        let pp_rank = (rank / tp) % pp;
        let dp_rank = rank / (tp * pp);
        ParallelContext {
            rank,
            world,
            dp_degree: dp,
            pp_degree: pp,
            tp_degree: tp,
            dp_rank,
            pp_rank,
            tp_rank,
        }
    }

    /// Global device id.
    pub fn rank(&self) -> DeviceId {
        self.rank
    }

    /// Total devices.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Degree of an axis.
    pub fn degree(&self, axis: ParallelAxis) -> usize {
        match axis {
            ParallelAxis::Data => self.dp_degree,
            ParallelAxis::Pipeline => self.pp_degree,
            ParallelAxis::Tensor => self.tp_degree,
        }
    }

    /// This device's rank along an axis.
    pub fn axis_rank(&self, axis: ParallelAxis) -> usize {
        match axis {
            ParallelAxis::Data => self.dp_rank,
            ParallelAxis::Pipeline => self.pp_rank,
            ParallelAxis::Tensor => self.tp_rank,
        }
    }

    /// Global device ids of this device's group along an axis, in axis-rank
    /// order (the list every member passes to `DeviceCtx::group`).
    pub fn group_members(&self, axis: ParallelAxis) -> Vec<DeviceId> {
        let tp = self.tp_degree;
        let pp = self.pp_degree;
        match axis {
            ParallelAxis::Tensor => {
                let base = self.rank - self.tp_rank;
                (0..tp).map(|t| base + t).collect()
            }
            ParallelAxis::Pipeline => (0..pp)
                .map(|s| (self.dp_rank * pp + s) * tp + self.tp_rank)
                .collect(),
            ParallelAxis::Data => (0..self.dp_degree)
                .map(|d| (d * pp + self.pp_rank) * tp + self.tp_rank)
                .collect(),
        }
    }

    /// True when this device runs the first pipeline stage.
    pub fn is_first_stage(&self) -> bool {
        self.pp_rank == 0
    }

    /// True when this device runs the last pipeline stage.
    pub fn is_last_stage(&self) -> bool {
        self.pp_rank + 1 == self.pp_degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn cfg(tensor: usize, pipeline: usize) -> Config {
        let json = format!(
            r#"{{ "parallel": {{ "tensor": {{ "size": {tensor}, "mode": "1d" }},
                                 "pipeline": {{ "size": {pipeline} }} }} }}"#
        );
        Config::from_json(&json).unwrap()
    }

    #[test]
    fn factorization_covers_world() {
        let c = cfg(2, 2);
        let world = 8; // dp = 2
        for rank in 0..world {
            let ctx = ParallelContext::new(&c, rank, world);
            assert_eq!(ctx.degree(ParallelAxis::Data), 2);
            // the rank reconstructs from its coordinates
            let r = (ctx.axis_rank(ParallelAxis::Data) * 2 + ctx.axis_rank(ParallelAxis::Pipeline))
                * 2
                + ctx.axis_rank(ParallelAxis::Tensor);
            assert_eq!(r, rank);
        }
    }

    #[test]
    fn tensor_groups_are_adjacent() {
        let c = cfg(4, 1);
        let ctx = ParallelContext::new(&c, 5, 8);
        assert_eq!(ctx.group_members(ParallelAxis::Tensor), vec![4, 5, 6, 7]);
        assert_eq!(ctx.axis_rank(ParallelAxis::Tensor), 1);
    }

    #[test]
    fn groups_are_consistent_across_members() {
        // every member of a group must compute the identical member list
        let c = cfg(2, 2);
        let world = 8;
        for axis in [
            ParallelAxis::Data,
            ParallelAxis::Pipeline,
            ParallelAxis::Tensor,
        ] {
            for rank in 0..world {
                let ctx = ParallelContext::new(&c, rank, world);
                let members = ctx.group_members(axis);
                assert_eq!(members[ctx.axis_rank(axis)], rank, "self position");
                for &m in &members {
                    let other = ParallelContext::new(&c, m, world);
                    assert_eq!(other.group_members(axis), members, "axis {axis:?}");
                }
            }
        }
    }

    #[test]
    fn groups_partition_the_world() {
        let c = cfg(2, 2);
        let world = 8;
        for axis in [
            ParallelAxis::Data,
            ParallelAxis::Pipeline,
            ParallelAxis::Tensor,
        ] {
            let mut seen = vec![0u32; world];
            for rank in 0..world {
                let ctx = ParallelContext::new(&c, rank, world);
                for m in ctx.group_members(axis) {
                    seen[m] += 1;
                }
            }
            // each device appears exactly degree times (once per member)
            let ctx0 = ParallelContext::new(&c, 0, world);
            let deg = ctx0.degree(axis) as u32;
            assert!(seen.iter().all(|&s| s == deg), "{axis:?}: {seen:?}");
        }
    }

    #[test]
    fn stage_predicates() {
        let c = cfg(1, 4);
        assert!(ParallelContext::new(&c, 0, 4).is_first_stage());
        assert!(ParallelContext::new(&c, 3, 4).is_last_stage());
        assert!(!ParallelContext::new(&c, 1, 4).is_first_stage());
        assert!(!ParallelContext::new(&c, 1, 4).is_last_stage());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn world_must_factor() {
        let c = cfg(3, 1);
        let _ = ParallelContext::new(&c, 0, 8);
    }

    #[test]
    fn explicit_data_degree_checked() {
        let json = r#"{ "parallel": { "tensor": { "size": 2, "mode": "1d" }, "data": 2 } }"#;
        let c = Config::from_json(json).unwrap();
        let ctx = ParallelContext::new(&c, 0, 4);
        assert_eq!(ctx.degree(ParallelAxis::Data), 2);
    }
}
