//! The parallelized model zoo (Section 4): ready-made ViT / BERT / GPT
//! constructors that read the [`crate::config::Config`] and return the
//! right serial or tensor-parallel implementation — "this does not require
//! the users to have domain expertise".
//!
//! Only 1D tensor parallelism builds full models (matching what Colossal-AI
//! ships as `titans` model components); 2D/2.5D/3D remain layer-level APIs
//! in `colossalai-parallel`.

use crate::config::Config;
use crate::context::{ParallelAxis, ParallelContext};
use colossalai_autograd::Layer;
use colossalai_comm::DeviceCtx;
use colossalai_models::TransformerConfig;
use colossalai_parallel::{Bert1d, Gpt1d, TpMode, VisionTransformer1d};
use colossalai_tensor::init;

/// Builds a ViT per the config: serial when `tensor.size <= 1`, 1D
/// tensor-parallel otherwise. All ranks must pass the same `seed` so the
/// shards agree on the global initialization.
pub fn build_vit(
    ctx: &DeviceCtx,
    config: &Config,
    world: usize,
    model_cfg: &TransformerConfig,
    patch_dim: usize,
    seed: u64,
) -> Box<dyn Layer> {
    let mut rng = init::rng(seed);
    match tp_group(ctx, config, world) {
        Some(group) => Box::new(VisionTransformer1d::new(
            ctx, &group, model_cfg, patch_dim, &mut rng,
        )),
        None => Box::new(colossalai_models::VisionTransformer::new(
            model_cfg, patch_dim, &mut rng,
        )),
    }
}

/// Builds a GPT per the config (serial or 1D-parallel with the
/// vocabulary-parallel head).
pub fn build_gpt(
    ctx: &DeviceCtx,
    config: &Config,
    world: usize,
    model_cfg: &TransformerConfig,
    seed: u64,
) -> Box<dyn Layer> {
    let mut rng = init::rng(seed);
    match tp_group(ctx, config, world) {
        Some(group) => Box::new(Gpt1d::new(ctx, &group, model_cfg, &mut rng)),
        None => Box::new(colossalai_models::Gpt::new(model_cfg, &mut rng)),
    }
}

/// Builds a BERT per the config (serial or 1D-parallel with the
/// vocabulary-parallel MLM head).
pub fn build_bert(
    ctx: &DeviceCtx,
    config: &Config,
    world: usize,
    model_cfg: &TransformerConfig,
    seed: u64,
) -> Box<dyn Layer> {
    let mut rng = init::rng(seed);
    match tp_group(ctx, config, world) {
        Some(group) => Box::new(Bert1d::new(ctx, &group, model_cfg, &mut rng)),
        None => Box::new(colossalai_models::Bert::new(model_cfg, &mut rng)),
    }
}

/// The tensor-parallel group this rank belongs to, or `None` when the config
/// requests no tensor parallelism. Panics on unsupported modes with a
/// pointer at the layer-level APIs.
fn tp_group(ctx: &DeviceCtx, config: &Config, world: usize) -> Option<colossalai_comm::Group> {
    if config.tensor_size() <= 1 {
        return None;
    }
    match config.tp_mode() {
        Some(TpMode::OneD) | None => {}
        Some(other) => panic!(
            "the model zoo builds full models for 1d tensor parallelism only; \
             use the {} layer APIs in colossalai-parallel directly",
            other.label()
        ),
    }
    let pctx = ParallelContext::new(config, ctx.rank(), world);
    let members = pctx.group_members(ParallelAxis::Tensor);
    Some(ctx.group(&members))
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_comm::World;
    use colossalai_tensor::ops::cross_entropy;
    use colossalai_tensor::Tensor;
    use colossalai_topology::systems::system_i;

    fn vit_cfg() -> TransformerConfig {
        TransformerConfig {
            layers: 1,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            vocab: 4,
            max_seq: 4,
        }
    }

    #[test]
    fn zoo_vit_serial_and_parallel_agree() {
        let cfg = vit_cfg();
        let mut rng = init::rng(900);
        let x = init::uniform([2, 4, 6], -1.0, 1.0, &mut rng);
        let targets = [0usize, 2];

        // serial through the zoo
        let world = World::new(system_i());
        let serial_loss = world.run_on(1, |ctx| {
            let config = Config::from_json("{}").unwrap();
            let mut vit = build_vit(ctx, &config, 1, &cfg, 6, 901);
            let logits = vit.forward(&x);
            cross_entropy(&logits, &targets).0
        })[0];

        // 1D-parallel through the zoo
        let losses = world.run_on(2, |ctx| {
            let config =
                Config::from_json(r#"{ "parallel": { "tensor": { "size": 2, "mode": "1d" } } }"#)
                    .unwrap();
            let mut vit = build_vit(ctx, &config, 2, &cfg, 6, 901);
            let logits = vit.forward(&x);
            cross_entropy(&logits, &targets).0
        });
        for l in &losses {
            assert!(
                (l - serial_loss).abs() < 1e-4,
                "zoo parallel ViT diverged: {l} vs {serial_loss}"
            );
        }
    }

    #[test]
    fn zoo_gpt_parallel_runs_sharded() {
        let cfg = TransformerConfig {
            layers: 1,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            vocab: 8,
            max_seq: 4,
        };
        let world = World::new(system_i());
        world.run_on(2, |ctx| {
            let config =
                Config::from_json(r#"{ "parallel": { "tensor": { "size": 2, "mode": "1d" } } }"#)
                    .unwrap();
            let mut gpt = build_gpt(ctx, &config, 2, &cfg, 902);
            let tokens = Tensor::from_vec([1, 4], vec![0., 1., 2., 3.]);
            let out = gpt.forward(&tokens);
            // vocabulary stays sharded through the zoo path
            assert_eq!(*out.dims().last().unwrap(), cfg.vocab / 2);
        });
    }

    #[test]
    #[should_panic(expected = "device thread panicked")]
    fn zoo_rejects_advanced_modes() {
        let world = World::new(system_i());
        world.run_on(4, |ctx| {
            let config =
                Config::from_json(r#"{ "parallel": { "tensor": { "size": 4, "mode": "2d" } } }"#)
                    .unwrap();
            let _ = build_bert(ctx, &config, 4, &vit_cfg(), 903);
        });
    }
}
