//! The trainer + life-cycle hooks of Fig 1's "Trainer / Engine" tier.

use crate::engine::Engine;
use colossalai_tensor::ops::cross_entropy;
use colossalai_tensor::Tensor;

/// Life-cycle hooks users can attach to a [`Trainer`] — the extensibility
/// point Section 4 ("Extensibility") describes.
pub trait Hook {
    /// Before the engine processes step `step`.
    fn before_step(&mut self, _step: u64) {}
    /// After a successful optimizer step with the step's loss.
    fn after_step(&mut self, _step: u64, _loss: f32) {}
    /// When the loss scaler skips a step.
    fn on_skip(&mut self, _step: u64) {}
    /// After the final step of `fit`.
    fn after_fit(&mut self, _steps: u64) {}
}

/// Records losses (the built-in metric hook).
#[derive(Default)]
pub struct LossRecorder {
    pub losses: Vec<f32>,
    pub skips: u64,
}

impl Hook for LossRecorder {
    fn after_step(&mut self, _step: u64, loss: f32) {
        self.losses.push(loss);
    }
    fn on_skip(&mut self, _step: u64) {
        self.skips += 1;
    }
}

/// Drives an [`Engine`] over a stream of classification batches.
pub struct Trainer {
    engine: Engine,
    hooks: Vec<Box<dyn Hook>>,
}

impl Trainer {
    pub fn new(engine: Engine) -> Self {
        Trainer {
            engine,
            hooks: Vec::new(),
        }
    }

    /// Attaches a hook (fired in attachment order).
    pub fn add_hook(&mut self, hook: Box<dyn Hook>) {
        self.hooks.push(hook);
    }

    /// The wrapped engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Evaluates classification accuracy over `batches` evaluation batches
    /// (no gradient updates; activations are consumed by a throwaway
    /// backward to keep layer caches balanced).
    pub fn evaluate(
        &mut self,
        batches: u64,
        mut data: impl FnMut(u64) -> (Tensor, Vec<usize>),
    ) -> f32 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for b in 0..batches {
            let (x, targets) = data(b);
            let logits = self.engine.forward(&x);
            let classes = *logits.dims().last().unwrap();
            let rows = logits.numel() / classes;
            let preds = colossalai_tensor::ops::argmax_rows(&logits.reshape([rows, classes]));
            correct += preds.iter().zip(&targets).filter(|(p, t)| p == t).count();
            total += targets.len();
            // flush activation caches so the next forward starts clean
            let _ = self.engine.backward(&Tensor::zeros(logits.shape().clone()));
            self.engine.zero_grad();
        }
        correct as f32 / total.max(1) as f32
    }

    /// Runs `steps` optimizer steps; `data(step)` produces the batch
    /// (inputs, integer targets). Returns the per-step losses.
    pub fn fit(
        &mut self,
        steps: u64,
        mut data: impl FnMut(u64) -> (Tensor, Vec<usize>),
    ) -> Vec<f32> {
        let ctx = self.engine.device().clone();
        let mut losses = Vec::with_capacity(steps as usize);
        for step in 0..steps {
            let mut body = |this: &mut Self, losses: &mut Vec<f32>| {
                for h in &mut this.hooks {
                    h.before_step(step);
                }
                let (x, targets) = data(step);
                this.engine.zero_grad();
                let logits = this.engine.forward(&x);
                let flat_classes = *logits.dims().last().unwrap();
                let rows = logits.numel() / flat_classes;
                let (loss, dlogits) =
                    cross_entropy(&logits.reshape([rows, flat_classes]), &targets);
                let _ = this
                    .engine
                    .backward(&dlogits.reshaped(logits.shape().clone()));
                if this.engine.step() {
                    losses.push(loss);
                    for h in &mut this.hooks {
                        h.after_step(step, loss);
                    }
                } else {
                    for h in &mut this.hooks {
                        h.on_skip(step);
                    }
                }
            };
            // the phase label is only materialized when tracing is on
            match ctx.tracing().then(|| format!("step{step}")) {
                Some(label) => ctx.trace_phase(&label, || body(self, &mut losses)),
                None => body(self, &mut losses),
            }
        }
        for h in &mut self.hooks {
            h.after_fit(steps);
        }
        losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::{initialize, OptimizerSpec};
    use colossalai_autograd::{Gelu, Layer, Linear, Sequential};
    use colossalai_comm::World;
    use colossalai_tensor::init;
    use colossalai_topology::systems::system_i;

    fn make_model(seed: u64) -> Box<dyn Layer> {
        let mut rng = init::rng(seed);
        Box::new(Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 4, 8, true, &mut rng)),
            Box::new(Gelu::new()),
            Box::new(Linear::from_rng("l2", 8, 3, true, &mut rng)),
        ]))
    }

    struct CountingHook {
        befores: u64,
        afters: u64,
        fits: u64,
    }

    impl Hook for CountingHook {
        fn before_step(&mut self, _s: u64) {
            self.befores += 1;
        }
        fn after_step(&mut self, _s: u64, _l: f32) {
            self.afters += 1;
        }
        fn after_fit(&mut self, _s: u64) {
            self.fits += 1;
        }
    }

    #[test]
    fn trainer_reduces_loss_and_fires_hooks() {
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let cfg = Config::from_json("{}").unwrap();
            let engine = initialize(
                ctx,
                &cfg,
                1,
                make_model(60),
                OptimizerSpec::AdamW {
                    lr: 0.02,
                    weight_decay: 0.0,
                },
            );
            let mut trainer = Trainer::new(engine);
            trainer.add_hook(Box::new(CountingHook {
                befores: 0,
                afters: 0,
                fits: 0,
            }));
            let mut rng = init::rng(61);
            let x = init::uniform([6, 4], -1.0, 1.0, &mut rng);
            let t: Vec<usize> = (0..6).map(|i| i % 3).collect();
            let losses = trainer.fit(20, |_| (x.clone(), t.clone()));
            assert_eq!(losses.len(), 20);
            assert!(losses.last().unwrap() < &(losses[0] * 0.7), "{losses:?}");
        });
    }

    #[test]
    fn loss_recorder_collects() {
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let cfg = Config::from_json("{}").unwrap();
            let engine = initialize(
                ctx,
                &cfg,
                1,
                make_model(62),
                OptimizerSpec::Sgd {
                    lr: 0.05,
                    momentum: 0.9,
                },
            );
            let mut trainer = Trainer::new(engine);
            trainer.add_hook(Box::<LossRecorder>::default());
            let mut rng = init::rng(63);
            let x = init::uniform([4, 4], -1.0, 1.0, &mut rng);
            let losses = trainer.fit(5, |_| (x.clone(), vec![0, 1, 2, 0]));
            assert_eq!(losses.len(), 5);
        });
    }

    #[test]
    fn evaluate_reports_accuracy() {
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let cfg = Config::from_json("{}").unwrap();
            let engine = initialize(
                ctx,
                &cfg,
                1,
                make_model(66),
                OptimizerSpec::AdamW {
                    lr: 0.05,
                    weight_decay: 0.0,
                },
            );
            let mut trainer = Trainer::new(engine);
            let mut rng = init::rng(67);
            let x = init::uniform([9, 4], -1.0, 1.0, &mut rng);
            let t: Vec<usize> = (0..9).map(|i| i % 3).collect();
            let before = trainer.evaluate(1, |_| (x.clone(), t.clone()));
            let _ = trainer.fit(40, |_| (x.clone(), t.clone()));
            let after = trainer.evaluate(1, |_| (x.clone(), t.clone()));
            assert!((0.0..=1.0).contains(&before));
            assert!(
                after >= before,
                "training should not hurt training-set accuracy"
            );
            assert!(
                after > 0.8,
                "memorizing 9 samples should reach high accuracy, got {after}"
            );
        });
    }

    #[test]
    fn trainer_handles_3d_logits() {
        // token-level targets (BERT-style [b, s, vocab] logits)
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let cfg = Config::from_json("{}").unwrap();
            let mut rng = init::rng(64);
            let model: Box<dyn Layer> = Box::new(Linear::from_rng("l", 4, 5, true, &mut rng));
            let engine = initialize(
                ctx,
                &cfg,
                1,
                model,
                OptimizerSpec::AdamW {
                    lr: 0.05,
                    weight_decay: 0.0,
                },
            );
            let mut trainer = Trainer::new(engine);
            let x = init::uniform([2, 3, 4], -1.0, 1.0, &mut rng);
            let targets: Vec<usize> = (0..6).map(|i| i % 5).collect();
            let losses = trainer.fit(10, |_| (x.clone(), targets.clone()));
            assert!(losses.last().unwrap() < &losses[0]);
        });
    }
}
