//! Distributed data parallelism: replicated model, sharded batch, gradient
//! all-reduce — the baseline every ZeRO stage must match bitwise.
//!
//! Gradient sync is *bucketed*: gradients are fused into size-capped flat
//! buckets (default 25 MB) so each bucket pays one all-reduce latency term
//! instead of one per parameter. With [`DataParallel::with_overlap`], each
//! bucket's all-reduce launches asynchronously on the comm stream as soon as
//! its last gradient is produced during backward, hiding communication
//! behind the remaining backward compute. Both paths are bit-identical to
//! naive per-parameter all-reduce.

use crate::bucket::{BucketedGradSync, DEFAULT_BUCKET_BYTES};
use colossalai_autograd::{Layer, Param};
use colossalai_comm::{Compression, DeviceCtx, Group};
use colossalai_tensor::Tensor;

/// Splits a global batch along dim 0 for `rank` of `p` (every rank sees the
/// same deterministic global batch and takes its slice).
pub fn split_batch(x: &Tensor, p: usize, rank: usize) -> Tensor {
    x.chunk(0, p).swap_remove(rank)
}

/// Wraps a replicated model with data-parallel gradient synchronization.
pub struct DataParallel<M: Layer> {
    ctx: DeviceCtx,
    group: Group,
    model: M,
    sync: BucketedGradSync,
    overlap: bool,
}

impl<M: Layer> DataParallel<M> {
    /// The model must have been constructed identically on every rank (same
    /// seed) — exactly how real DDP assumes rank-0 broadcast weights.
    /// Gradient sync is fused into [`DEFAULT_BUCKET_BYTES`] buckets and
    /// blocks at the end of backward; see [`DataParallel::with_overlap`].
    pub fn new(ctx: &DeviceCtx, group: &Group, model: M) -> Self {
        Self::with_bucket_bytes(ctx, group, model, DEFAULT_BUCKET_BYTES)
    }

    /// Like [`DataParallel::new`] with an explicit bucket capacity in bytes.
    pub fn with_bucket_bytes(
        ctx: &DeviceCtx,
        group: &Group,
        mut model: M,
        bucket_bytes: usize,
    ) -> Self {
        let sync = BucketedGradSync::new(&mut model, bucket_bytes);
        DataParallel {
            ctx: ctx.clone(),
            group: group.clone(),
            model,
            sync,
            overlap: false,
        }
    }

    /// Enables (or disables) backward-overlapped gradient sync: each
    /// bucket's all-reduce launches on the comm stream as soon as its last
    /// gradient is produced, and backward ends with a stream join.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Selects the lossy gradient-compression channel (top-k / int8 / fp16
    /// with error feedback), overriding the ambient `COLOSSAL_COMPRESS`
    /// default the sync engine starts from.
    pub fn with_compression(mut self, comp: Compression) -> Self {
        self.sync.set_compression(comp);
        self
    }

    /// The bucket-sync engine (for inspecting the plan).
    pub fn grad_sync(&self) -> &BucketedGradSync {
        &self.sync
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// All-reduces the gradients (one fused collective per bucket) and
    /// divides by the world size, leaving the *mean* gradient on every rank.
    pub fn sync_grads(&mut self) {
        self.sync
            .sync_blocking(&self.ctx, &self.group, &mut self.model);
    }
}

impl<M: Layer> Layer for DataParallel<M> {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.model.forward(x)
    }

    /// Backward through the local replica, then synchronize gradients —
    /// overlapped with backward compute when enabled.
    fn backward(&mut self, dy: &Tensor) -> Tensor {
        if self.overlap {
            self.sync
                .backward_overlapped(&self.ctx, &self.group, &mut self.model, dy)
        } else {
            let dx = self.model.backward(dy);
            self.sync_grads();
            dx
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.model.visit_params(f);
    }
}

/// Total elements across a model's parameters (pre-sizes flatten buffers).
fn total_param_elems(model: &mut dyn Layer) -> usize {
    let mut n = 0;
    model.visit_params(&mut |p| n += p.numel());
    n
}

/// Flattens all parameter values of a model into one vector (ZeRO's working
/// representation). Order is the model's `visit_params` order.
pub fn flatten_params(model: &mut dyn Layer) -> Tensor {
    let mut out = colossalai_tensor::pool::take_buffer(total_param_elems(model));
    model.visit_params(&mut |p| out.extend_from_slice(p.value().data()));
    Tensor::from_vec([out.len()], out)
}

/// Flattens all parameter gradients into one vector.
pub fn flatten_grads(model: &mut dyn Layer) -> Tensor {
    let mut out = colossalai_tensor::pool::take_buffer(total_param_elems(model));
    model.visit_params(&mut |p| out.extend_from_slice(p.grad().data()));
    Tensor::from_vec([out.len()], out)
}

/// Writes a flat vector back into the model's parameters (inverse of
/// [`flatten_params`]).
pub fn unflatten_into(model: &mut dyn Layer, flat: &Tensor) {
    unflatten_from_slice(model, flat.data());
}

/// Slice-based variant of [`unflatten_into`]: writes `flat` back into the
/// parameters without requiring the caller to wrap it in a tensor first
/// (the hybrid optimizer holds its master copy as a plain buffer).
pub fn unflatten_from_slice(model: &mut dyn Layer, flat: &[f32]) {
    let mut off = 0;
    model.visit_params(&mut |p| {
        let n = p.numel();
        let shape = p.value().shape().clone();
        // pooled copy instead of `to_vec` per parameter
        p.set_value(Tensor::from_slice(shape, &flat[off..off + n]));
        off += n;
    });
    assert_eq!(off, flat.len(), "flat vector length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::{AdamW, Linear, Sequential};
    use colossalai_comm::World;
    use colossalai_tensor::init;
    use colossalai_tensor::ops::cross_entropy;
    use colossalai_topology::systems::system_i;

    fn make_model(seed: u64) -> Sequential {
        let mut rng = init::rng(seed);
        Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 4, 8, true, &mut rng)),
            Box::new(colossalai_autograd::Gelu::new()),
            Box::new(Linear::from_rng("l2", 8, 3, true, &mut rng)),
        ])
    }

    #[test]
    fn flatten_roundtrip() {
        let mut m = make_model(600);
        let flat = flatten_params(&mut m);
        assert_eq!(flat.numel(), 4 * 8 + 8 + 8 * 3 + 3);
        let mut m2 = make_model(601); // different weights
        unflatten_into(&mut m2, &flat);
        assert_eq!(flatten_params(&mut m2), flat);
    }

    #[test]
    fn dp_training_equals_serial_large_batch() {
        // DP over p ranks on a batch of p*k must produce the same parameter
        // trajectory as serial training on the full batch
        let p = 4;
        let steps = 3;
        let mut rng = init::rng(602);
        let xs: Vec<Tensor> = (0..steps)
            .map(|_| init::uniform([8, 4], -1.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<Vec<usize>> = (0..steps)
            .map(|s| (0..8).map(|i| (i + s) % 3).collect())
            .collect();

        // serial reference
        let mut serial = make_model(603);
        let mut s_opt = AdamW::new(0.01, 0.01);
        for s in 0..steps {
            serial.zero_grad();
            let logits = serial.forward(&xs[s]);
            let (_, dlogits) = cross_entropy(&logits, &targets[s]);
            let _ = serial.backward(&dlogits);
            s_opt.step_layer(&mut serial);
        }
        let want = flatten_params(&mut serial);

        // data-parallel run
        let world = World::new(system_i());
        let results = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            // pin the exact channel: this test compares against serial
            // training, so it must not inherit COLOSSAL_COMPRESS
            let mut dp =
                DataParallel::new(ctx, &g, make_model(603)).with_compression(Compression::None);
            let mut opt = AdamW::new(0.01, 0.01);
            for s in 0..steps {
                dp.zero_grad();
                let x_local = split_batch(&xs[s], p, g.rank());
                let t_local: Vec<usize> = targets[s].chunks(8 / p).nth(g.rank()).unwrap().to_vec();
                let logits = dp.forward(&x_local);
                // cross_entropy means over the local rows; averaging those
                // local means across ranks (the sync_grads 1/p) equals the
                // serial mean over the full batch, since shards are equal.
                let (_, dlogits) = cross_entropy(&logits, &t_local);
                let _ = dp.backward(&dlogits);
                opt.step_layer(&mut dp);
            }
            flatten_params(&mut dp)
        });
        for r in &results {
            assert!(
                r.allclose(&want, 1e-5),
                "DP diverged from serial by {}",
                r.max_abs_diff(&want)
            );
        }
        // and all ranks agree exactly
        assert_eq!(results[0].data(), results[1].data());
    }

    #[test]
    fn dp_overlap_matches_blocking_trajectory_bitwise() {
        use colossalai_topology::systems::system_iii;
        let p = 4;
        let steps = 2;
        let mut rng = init::rng(640);
        let xs: Vec<Tensor> = (0..steps)
            .map(|_| init::uniform([8, 4], -1.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<Vec<usize>> = (0..steps)
            .map(|s| (0..8).map(|i| (i + s) % 3).collect())
            .collect();

        let run = |overlap: bool| {
            let world = World::new(system_iii());
            world.run_on(p, |ctx| {
                let g = ctx.world_group(p);
                // tiny buckets so several fire per backward
                let mut dp = DataParallel::with_bucket_bytes(ctx, &g, make_model(641), 64)
                    .with_overlap(overlap);
                let mut opt = AdamW::new(0.01, 0.01);
                for s in 0..steps {
                    dp.zero_grad();
                    let x_local = split_batch(&xs[s], p, g.rank());
                    let t_local: Vec<usize> =
                        targets[s].chunks(8 / p).nth(g.rank()).unwrap().to_vec();
                    let logits = dp.forward(&x_local);
                    let (_, dlogits) = cross_entropy(&logits, &t_local);
                    let _ = dp.backward(&dlogits);
                    opt.step_layer(&mut dp);
                }
                flatten_params(&mut dp)
            })
        };
        let blocking = run(false);
        let overlapped = run(true);
        for (b, o) in blocking.iter().zip(&overlapped) {
            assert_eq!(b.data(), o.data(), "overlap must not change the math");
        }
    }

    #[test]
    fn sync_grads_produces_identical_grads() {
        let p = 2;
        let world = World::new(system_i());
        let grads = world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut dp = DataParallel::new(ctx, &g, make_model(604));
            // different data per rank
            let mut rng = init::rng(700 + g.rank() as u64);
            let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
            let y = dp.forward(&x);
            let _ = dp.backward(&Tensor::ones(y.shape().clone()));
            flatten_grads(&mut dp)
        });
        assert_eq!(grads[0].data(), grads[1].data());
    }
}
