//! E5 — Fig 11: best ViT training throughput per tensor-parallel mode on
//! System I (full-mesh NVLink) and System II (NVLink between adjacent pairs
//! only).

use colossalai_bench::print_table;
use colossalai_models::TransformerConfig;
use colossalai_parallel::throughput::tp_best_throughput;
use colossalai_parallel::TpMode;
use colossalai_topology::systems::{system_i, system_ii};
use colossalai_topology::Cluster;

fn modes_for(p: usize) -> Vec<TpMode> {
    let mut m = vec![TpMode::OneD];
    for cand in [
        TpMode::TwoD,
        TpMode::TwoPointFiveD { depth: 2 },
        TpMode::ThreeD,
    ] {
        if cand.admits(p) {
            m.push(cand);
        }
    }
    m
}

fn section(cluster: &Cluster) {
    let mut rows = Vec::new();
    for (p, cfg) in [
        (4usize, TransformerConfig::vit_fig11_4gpu()),
        (8, TransformerConfig::vit_fig11_8gpu()),
    ] {
        let devices: Vec<usize> = (0..p).collect();
        let base = tp_best_throughput(TpMode::OneD, &cfg, cluster, &devices)
            .expect("1D always admits")
            .throughput();
        for mode in modes_for(p) {
            if let Some(est) = tp_best_throughput(mode, &cfg, cluster, &devices) {
                rows.push(vec![
                    p.to_string(),
                    mode.label(),
                    est.batch.to_string(),
                    format!("{:.2}", est.throughput()),
                    format!("{:+.1}%", 100.0 * (est.throughput() / base - 1.0)),
                ]);
            }
        }
    }
    print_table(
        &format!(
            "Fig 11: ViT throughput on {} (64 layers; h=3072/48H on 4 GPUs, h=4096/64H on 8)",
            cluster.name()
        ),
        &["#GPUs", "mode", "best batch", "img/s", "vs 1D"],
        &rows,
    );
}

fn main() {
    section(&system_i());
    section(&system_ii());
    println!(
        "\nPaper reference: on System I 1D wins everywhere; on System II 2D \
         is ~40% faster than 1D at 4 GPUs and 2.5D ~20.6% faster at 8 GPUs, \
         while 3D still trails."
    );
}
