//! Learning-rate schedules: linear warmup composed with constant, linear or
//! cosine decay — the schedules behind the paper's ViT/BERT training runs.

/// A learning-rate schedule: step number -> multiplier of the base LR.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant at the base LR.
    Constant,
    /// Linear warmup over `warmup` steps, then constant.
    WarmupConstant { warmup: u64 },
    /// Linear warmup, then linear decay to zero at `total` steps.
    WarmupLinear { warmup: u64, total: u64 },
    /// Linear warmup, then cosine decay to `min_factor` at `total` steps.
    WarmupCosine {
        warmup: u64,
        total: u64,
        min_factor: f32,
    },
}

impl LrSchedule {
    /// The LR multiplier at (0-based) optimizer step `step`.
    pub fn factor(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::WarmupConstant { warmup } => warmup_factor(step, warmup),
            LrSchedule::WarmupLinear { warmup, total } => {
                assert!(total > warmup, "total must exceed warmup");
                if step < warmup {
                    warmup_factor(step, warmup)
                } else if step >= total {
                    0.0
                } else {
                    (total - step) as f32 / (total - warmup) as f32
                }
            }
            LrSchedule::WarmupCosine {
                warmup,
                total,
                min_factor,
            } => {
                assert!(total > warmup, "total must exceed warmup");
                assert!((0.0..=1.0).contains(&min_factor));
                if step < warmup {
                    warmup_factor(step, warmup)
                } else {
                    let progress = ((step - warmup) as f32 / (total - warmup) as f32).min(1.0);
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                    min_factor + (1.0 - min_factor) * cos
                }
            }
        }
    }

    /// The absolute learning rate at `step` for a base LR.
    pub fn lr(&self, base_lr: f32, step: u64) -> f32 {
        base_lr * self.factor(step)
    }
}

fn warmup_factor(step: u64, warmup: u64) -> f32 {
    if step >= warmup {
        // covers warmup == 0 as well
        1.0
    } else {
        (step + 1) as f32 / warmup as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for s in [0u64, 10, 1000] {
            assert_eq!(LrSchedule::Constant.factor(s), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let sched = LrSchedule::WarmupConstant { warmup: 4 };
        assert_eq!(sched.factor(0), 0.25);
        assert_eq!(sched.factor(1), 0.5);
        assert_eq!(sched.factor(3), 1.0);
        assert_eq!(sched.factor(100), 1.0);
    }

    #[test]
    fn linear_decays_to_zero() {
        let sched = LrSchedule::WarmupLinear {
            warmup: 2,
            total: 10,
        };
        assert!(sched.factor(1) <= 1.0);
        assert_eq!(sched.factor(2), 1.0);
        assert_eq!(sched.factor(6), 0.5);
        assert_eq!(sched.factor(10), 0.0);
        assert_eq!(sched.factor(50), 0.0);
    }

    #[test]
    fn cosine_hits_min_at_total() {
        let sched = LrSchedule::WarmupCosine {
            warmup: 0,
            total: 100,
            min_factor: 0.1,
        };
        assert!((sched.factor(0) - 1.0).abs() < 1e-6);
        assert!((sched.factor(50) - 0.55).abs() < 1e-5); // midpoint of [0.1, 1]
        assert!((sched.factor(100) - 0.1).abs() < 1e-6);
        assert!((sched.factor(500) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn schedules_are_monotone_after_warmup() {
        for sched in [
            LrSchedule::WarmupLinear {
                warmup: 5,
                total: 50,
            },
            LrSchedule::WarmupCosine {
                warmup: 5,
                total: 50,
                min_factor: 0.0,
            },
        ] {
            let mut prev = f32::INFINITY;
            for s in 5..60 {
                let f = sched.factor(s);
                assert!(f <= prev + 1e-6, "{sched:?} rose at step {s}");
                prev = f;
            }
        }
    }

    #[test]
    fn lr_scales_base() {
        let sched = LrSchedule::WarmupConstant { warmup: 2 };
        assert_eq!(sched.lr(0.02, 0), 0.01);
        assert_eq!(sched.lr(0.02, 5), 0.02);
    }

    #[test]
    fn zero_warmup_starts_at_full() {
        assert_eq!(LrSchedule::WarmupConstant { warmup: 0 }.factor(0), 1.0);
    }
}
