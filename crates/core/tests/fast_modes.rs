//! Engine/config wiring for the fast numeric mode: `compute.fast` in the
//! JSON config must flip the process-wide [`colossalai_tensor::fast_mode`]
//! knob at `initialize` time, a missing field must leave the ambient state
//! alone, and the AMP matmul helpers must dispatch to the bf16-compute GEMM
//! exactly when fast mode is on.
//!
//! The knob is process-global, so every test serializes on one mutex and
//! restores the deterministic default before releasing it.

use std::sync::Mutex;

use colossalai_autograd::{Layer, Linear};
use colossalai_comm::World;
use colossalai_core::amp::{amp_matmul, amp_matmul_nd};
use colossalai_core::{initialize, Config, OptimizerSpec};
use colossalai_tensor::{fast_mode, init, matmul, matmul_bf16, matmul_nd_bf16, set_fast_mode};
use colossalai_topology::systems::system_i;

static FAST_LOCK: Mutex<()> = Mutex::new(());

fn make_model(seed: u64) -> Box<dyn Layer> {
    let mut rng = init::rng(seed);
    Box::new(Linear::from_rng("l", 4, 3, true, &mut rng))
}

fn init_with(cfg_json: &str) {
    let world = World::new(system_i());
    world.run_on(1, |ctx| {
        let cfg = Config::from_json(cfg_json).unwrap();
        let _engine = initialize(
            ctx,
            &cfg,
            1,
            make_model(7),
            OptimizerSpec::Sgd {
                lr: 0.1,
                momentum: 0.9,
            },
        );
    });
}

#[test]
fn compute_fast_flips_the_global_knob() {
    let _g = FAST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_fast_mode(false);
    init_with(r#"{ "compute": { "fast": true } }"#);
    assert!(fast_mode(), "compute.fast=true must enable fast mode");
    init_with(r#"{ "compute": { "fast": false } }"#);
    assert!(!fast_mode(), "compute.fast=false must disable fast mode");
    // missing field: ambient state (whatever it is) survives initialize
    set_fast_mode(true);
    init_with("{}");
    assert!(fast_mode(), "missing compute.fast must keep ambient state");
    set_fast_mode(false);
    init_with("{}");
    assert!(!fast_mode(), "missing compute.fast must keep ambient state");
}

#[test]
fn amp_matmul_dispatches_on_fast_mode() {
    let _g = FAST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = init::rng(21);
    let (m, k, n) = (6, 18, 5);
    let a = init::uniform([m, k], -1.0, 1.0, &mut rng);
    let b = init::uniform([k, n], -1.0, 1.0, &mut rng);
    let a3 = init::uniform([2, 3, k], -1.0, 1.0, &mut rng);

    set_fast_mode(false);
    assert_eq!(amp_matmul(&a, &b).data(), matmul(&a, &b).data());

    set_fast_mode(true);
    assert_eq!(amp_matmul(&a, &b).data(), matmul_bf16(&a, &b).data());
    let got = amp_matmul_nd(&a3, &b);
    assert_eq!(got.dims(), &[2, 3, n]);
    assert_eq!(got.data(), matmul_nd_bf16(&a3, &b).data());
    set_fast_mode(false);
}
