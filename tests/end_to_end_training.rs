//! Integration: full engine-level training paths across crates — GPT with
//! ZeRO, BERT serially vs sequence-parallel, mixed precision end to end.

use colossalai::comm::World;
use colossalai::core::{initialize, Config, OptimizerSpec};
use colossalai::models::data::SyntheticText;
use colossalai::models::{Gpt, TransformerConfig};
use colossalai::parallel::data_parallel::flatten_params;
use colossalai::tensor::{init, Tensor};
use colossalai::topology::systems::{system_i, system_ii};
use colossalai_autograd::Layer;

fn tiny_gpt_cfg() -> TransformerConfig {
    TransformerConfig {
        layers: 2,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        vocab: 13,
        max_seq: 6,
    }
}

#[test]
fn gpt_engine_with_zero_matches_ddp_engine() {
    let cfg = tiny_gpt_cfg();
    let data = SyntheticText::new(cfg.vocab, 5);

    let run = |config_json: &str| -> Vec<f32> {
        let world = World::new(system_ii());
        let config = Config::from_json(config_json).unwrap();
        let mut out = world.run_on(2, |ctx| {
            let mut rng = init::rng(4242);
            let model: Box<dyn Layer> = Box::new(Gpt::new(&cfg, &mut rng));
            let mut engine = initialize(
                ctx,
                &config,
                2,
                model,
                OptimizerSpec::AdamW {
                    lr: 0.01,
                    weight_decay: 0.0,
                },
            );
            for step in 0..4u64 {
                let tokens = data.batch(2, cfg.max_seq, step);
                let local = tokens.chunk(0, 2).swap_remove(ctx.rank());
                engine.zero_grad();
                let logits = engine.forward(&local);
                // next-token loss against the synthetic recurrence
                let vocab = cfg.vocab;
                let flat = logits.reshape([cfg.max_seq, vocab]);
                let targets = data.next_tokens(&local);
                let (_, d) = colossalai::tensor::ops::cross_entropy(&flat, &targets);
                let _ = engine.backward(&d.reshaped(logits.shape().clone()));
                assert!(engine.step());
            }
            flatten_params(engine.model_mut()).into_vec()
        });
        out.swap_remove(0)
    };

    let plain = run("{}");
    for stage in 1..=3 {
        let z = run(&format!(r#"{{ "zero": {{ "stage": {stage} }} }}"#));
        assert_eq!(
            z, plain,
            "ZeRO-{stage} engine diverged from plain DP engine"
        );
    }
}

#[test]
fn mixed_precision_engine_trains_gpt() {
    let cfg = tiny_gpt_cfg();
    let data = SyntheticText::new(cfg.vocab, 6);
    let world = World::new(system_i());
    let losses = world.run_on(1, |ctx| {
        let config = Config::from_json(r#"{ "mixed_precision": true, "grad_clip": 5.0 }"#).unwrap();
        let mut rng = init::rng(4243);
        let model: Box<dyn Layer> = Box::new(Gpt::new(&cfg, &mut rng));
        let mut engine = initialize(
            ctx,
            &config,
            1,
            model,
            OptimizerSpec::AdamW {
                lr: 0.02,
                weight_decay: 0.0,
            },
        );
        let mut losses = Vec::new();
        for step in 0..12u64 {
            let tokens = data.batch(1, cfg.max_seq, step % 2); // cycle 2 batches
            engine.zero_grad();
            let logits = engine.forward(&tokens);
            let vocab = cfg.vocab;
            let flat = logits.reshape([cfg.max_seq, vocab]);
            let targets = data.next_tokens(&tokens);
            let (loss, d) = colossalai::tensor::ops::cross_entropy(&flat, &targets);
            let _ = engine.backward(&d.reshaped(logits.shape().clone()));
            if engine.step() {
                losses.push(loss);
            }
        }
        losses
    });
    let l = &losses[0];
    assert!(
        l.len() >= 10,
        "most steps should succeed under loss scaling"
    );
    assert!(
        l.last().unwrap() < &(l[0] * 0.9),
        "fp16 training must still converge: {l:?}"
    );
}

#[test]
fn bert_mlm_training_on_masked_synthetic_text() {
    // the Wikipedia-substitute MLM pipeline end to end: mask tokens,
    // predict the originals at the masked positions, loss must fall
    use colossalai::models::Bert;
    let cfg = TransformerConfig {
        layers: 2,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        vocab: 17, // vocab-1 is the mask id
        max_seq: 8,
    };
    let data = SyntheticText::new(cfg.vocab, 21);
    let mut rng = init::rng(2200);
    let mut bert = Bert::new(&cfg, &mut rng);
    let mut losses: Vec<(u64, f32)> = Vec::new();
    for step in 0..72u64 {
        let tokens = data.batch(2, cfg.max_seq, step % 3);
        let (masked, targets, positions) = data.mask_for_mlm(&tokens, 0.25, step % 3);
        if targets.is_empty() {
            continue;
        }
        bert.zero_grad();
        let logits = bert.forward(&masked); // [2, s, vocab]
                                            // loss only at masked positions
        let vocab = cfg.vocab;
        let rows: Vec<Tensor> = positions
            .iter()
            .map(|&p| logits.reshape([2 * cfg.max_seq, vocab]).narrow(0, p, 1))
            .collect();
        let picked = Tensor::cat(&rows, 0);
        let (loss, dpicked) = colossalai::tensor::ops::cross_entropy(&picked, &targets);
        losses.push((step % 3, loss));
        // scatter gradient back to full logits
        let mut dlogits = Tensor::zeros([2 * cfg.max_seq, vocab]);
        for (i, &p) in positions.iter().enumerate() {
            for v in 0..vocab {
                dlogits.set(&[p, v], dpicked.at(&[i, v]));
            }
        }
        let _ = bert.backward(&dlogits.reshaped([2, cfg.max_seq, vocab]));
        bert.visit_params(&mut |p| {
            let g = p.grad().clone();
            p.value_mut().axpy(-0.05, &g);
        });
    }
    // The corpus cycles through 3 fixed batches, so convergence must be
    // judged per batch: comparing step N's loss against step 0's would
    // compare losses of *different* data whose difficulty differs.
    for phase in 0..3u64 {
        let ph: Vec<f32> = losses
            .iter()
            .filter(|&&(p, _)| p == phase)
            .map(|&(_, l)| l)
            .collect();
        assert!(
            ph.len() >= 2,
            "batch {phase} must be trained more than once"
        );
        assert!(
            ph.last().unwrap() < &(ph[0] * 0.8),
            "MLM loss must fall on every batch of the deterministic corpus; batch {phase}: {ph:?}"
        );
    }
}

#[test]
fn virtual_time_reflects_topology() {
    // the same DP training is slower (virtual time) on System II than on
    // System I because gradient all-reduces cross PCIe
    let cfg = tiny_gpt_cfg();
    let data = SyntheticText::new(cfg.vocab, 7);
    let run = |cluster: colossalai::topology::Cluster| -> f64 {
        let world = World::new(cluster);
        let clocks = world.run_on(4, |ctx| {
            let config = Config::from_json("{}").unwrap();
            let mut rng = init::rng(4244);
            let model: Box<dyn Layer> = Box::new(Gpt::new(&cfg, &mut rng));
            let mut engine = initialize(
                ctx,
                &config,
                4,
                model,
                OptimizerSpec::Sgd {
                    lr: 0.01,
                    momentum: 0.0,
                },
            );
            for step in 0..2u64 {
                let tokens = data.batch(4, cfg.max_seq, step);
                let local = tokens.chunk(0, 4).swap_remove(ctx.rank());
                engine.zero_grad();
                let logits = engine.forward(&local);
                let flat = logits.reshape([cfg.max_seq, cfg.vocab]);
                let targets = data.next_tokens(&local);
                let (_, d) = colossalai::tensor::ops::cross_entropy(&flat, &targets);
                let _ = engine.backward(&d.reshaped(logits.shape().clone()));
                engine.step();
            }
            ctx.clock()
        });
        clocks.into_iter().fold(0.0, f64::max)
    };
    let t_i = run(system_i());
    let t_ii = run(system_ii());
    assert!(
        t_ii > t_i,
        "System II ({t_ii:.6}s) must be slower than System I ({t_i:.6}s)"
    );
}
