//! Communication traffic accounting.
//!
//! Every collective records the element-hops the *modeled* (ring-family)
//! algorithm would move. Summed over all ranks, these counts reproduce the
//! closed forms of Table 1, which the `colossalai-parallel` crate's volume
//! tests check against its analytic formulas.

use std::collections::HashMap;

/// Which collective produced the traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    AllReduce,
    AllGather,
    ReduceScatter,
    Broadcast,
    Scatter,
    Gather,
    AllToAll,
    Reduce,
    SendRecv,
    Barrier,
}

impl OpKind {
    pub fn name(self) -> &'static str {
        match self {
            OpKind::AllReduce => "all_reduce",
            OpKind::AllGather => "all_gather",
            OpKind::ReduceScatter => "reduce_scatter",
            OpKind::Broadcast => "broadcast",
            OpKind::Scatter => "scatter",
            OpKind::Gather => "gather",
            OpKind::AllToAll => "all_to_all",
            OpKind::Reduce => "reduce",
            OpKind::SendRecv => "send_recv",
            OpKind::Barrier => "barrier",
        }
    }
}

/// Aggregate communication statistics for a world or a phase.
///
/// `PartialEq` compares the full breakdown; the backend-parity tests use it
/// to assert the scheduler and thread-per-rank backends account identically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of collective invocations (counted once per group op, not per
    /// rank).
    pub ops: u64,
    /// Total element-hops moved across links by the modeled algorithms.
    pub elements: u64,
    /// Total bytes (elements x wire width).
    pub bytes: u64,
    /// Breakdown per op kind: (ops, elements).
    pub by_op: HashMap<OpKind, (u64, u64)>,
}

impl CommStats {
    /// Records one group operation.
    pub fn record(&mut self, kind: OpKind, elements: u64, bytes: u64) {
        self.ops += 1;
        self.elements += elements;
        self.bytes += bytes;
        let e = self.by_op.entry(kind).or_insert((0, 0));
        e.0 += 1;
        e.1 += elements;
    }

    /// Element-hops attributed to `kind`.
    pub fn elements_of(&self, kind: OpKind) -> u64 {
        self.by_op.get(&kind).map_or(0, |&(_, e)| e)
    }

    /// Op count attributed to `kind`.
    pub fn ops_of(&self, kind: OpKind) -> u64 {
        self.by_op.get(&kind).map_or(0, |&(o, _)| o)
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.ops += other.ops;
        self.elements += other.elements;
        self.bytes += other.bytes;
        for (&k, &(o, e)) in &other.by_op {
            let entry = self.by_op.entry(k).or_insert((0, 0));
            entry.0 += o;
            entry.1 += e;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = CommStats::default();
        s.record(OpKind::AllReduce, 100, 400);
        s.record(OpKind::AllReduce, 50, 200);
        s.record(OpKind::Broadcast, 10, 40);
        assert_eq!(s.ops, 3);
        assert_eq!(s.elements, 160);
        assert_eq!(s.bytes, 640);
        assert_eq!(s.elements_of(OpKind::AllReduce), 150);
        assert_eq!(s.ops_of(OpKind::AllReduce), 2);
        assert_eq!(s.elements_of(OpKind::AllToAll), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats::default();
        a.record(OpKind::AllGather, 5, 20);
        let mut b = CommStats::default();
        b.record(OpKind::AllGather, 7, 28);
        b.record(OpKind::SendRecv, 3, 12);
        a.merge(&b);
        assert_eq!(a.elements_of(OpKind::AllGather), 12);
        assert_eq!(a.elements_of(OpKind::SendRecv), 3);
        assert_eq!(a.ops, 3);
    }
}
