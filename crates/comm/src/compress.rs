//! Lossy gradient-compression channels with error feedback.
//!
//! Three wire formats ride under the bucketed gradient sync: top-k
//! sparsification (send only the `k` largest-magnitude elements per bucket
//! as (index, value) pairs), int8 quantization (1 byte/element at a
//! per-bucket max-abs scale) and fp16 rounding (2 bytes/element). Each is
//! paired with an **error-feedback residual**: whatever the channel did not
//! send this step is carried and added into the next step's gradient, so
//! the compressed trajectory tracks the exact one (EF-SGD).
//!
//! The channels are built so the feedback bookkeeping is *exact*: for every
//! element, `sent + residual == gradient + carried residual` holds bitwise
//! in f32. Top-k sends either the exact value or nothing. For the quantized
//! channels the sent value `s` of an accumulated gradient `a` satisfies
//! `s/2 <= a <= 2s` (round-to-nearest to a coarser grid) or `s == 0`, so by
//! the Sterbenz lemma the subtraction `a - s` is exact. The invariant is
//! asserted in tests and documented in DESIGN.md §14.

use colossalai_tensor::{envknob, f16::F16};
use std::sync::OnceLock;

/// Which lossy channel (if any) a gradient sync sends its buckets through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compression {
    /// Exact f32 gradients — the default.
    None,
    /// Keep only the `k` largest-magnitude elements per bucket (ties break
    /// toward the lower index); the wire carries (u32 index, f32 value)
    /// pairs at [`crate::Wire::IdxVal`] width.
    TopK(usize),
    /// Round-to-nearest int8 at a per-bucket max-abs scale; the wire
    /// carries 1 byte/element ([`crate::Wire::I8`]).
    Int8,
    /// Round-to-nearest-even fp16; the wire carries 2 bytes/element
    /// ([`crate::Wire::F16`]).
    Fp16,
}

impl Compression {
    /// Parses the `comm.compress` / `COLOSSAL_COMPRESS` spellings:
    /// `none`, `int8`, `fp16`, `topk(k)` with `k >= 1`. Case-insensitive;
    /// anything else is `None` (the caller decides how loudly to reject).
    pub fn parse(s: &str) -> Option<Compression> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "none" => Some(Compression::None),
            "int8" => Some(Compression::Int8),
            "fp16" => Some(Compression::Fp16),
            _ => {
                let inner = s.strip_prefix("topk(")?.strip_suffix(')')?;
                let k = inner.trim().parse::<usize>().ok()?;
                if k == 0 {
                    None
                } else {
                    Some(Compression::TopK(k))
                }
            }
        }
    }

    /// The canonical config spelling of this channel.
    pub fn name(self) -> String {
        match self {
            Compression::None => "none".into(),
            Compression::TopK(k) => format!("topk({k})"),
            Compression::Int8 => "int8".into(),
            Compression::Fp16 => "fp16".into(),
        }
    }

    /// True for every channel that can drop information (needs a residual).
    pub fn is_lossy(self) -> bool {
        self != Compression::None
    }
}

/// The environment knob behind the ambient compression default.
pub const COMPRESS_ENV: &str = "COLOSSAL_COMPRESS";

/// The process-wide ambient compression: `COLOSSAL_COMPRESS`, resolved once
/// (first call wins; later changes to the environment are ignored, like
/// every other `COLOSSAL_*` knob). Unset means [`Compression::None`];
/// malformed values warn once through [`envknob::warn_invalid`] and fall
/// back to `None`. Explicit `comm.compress` config overrides this.
pub fn env_compression() -> Compression {
    static RESOLVED: OnceLock<Compression> = OnceLock::new();
    *RESOLVED.get_or_init(|| match std::env::var(COMPRESS_ENV) {
        Err(_) => Compression::None,
        Ok(raw) => Compression::parse(&raw).unwrap_or_else(|| {
            envknob::warn_invalid(
                COMPRESS_ENV,
                raw.trim(),
                "none|topk(k>=1)|int8|fp16",
                "none",
            );
            Compression::None
        }),
    })
}

/// Indices of the `k` largest-magnitude elements of `x` (ties break toward
/// the lower index). The *set* is uniquely determined by the total order
/// (|value| desc, index asc), so the selection is deterministic even though
/// the underlying partition is unstable. Returned unsorted.
fn topk_indices(x: &[f32], k: usize) -> Vec<u32> {
    let n = x.len();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    if k == 0 {
        idx.clear();
        return idx;
    }
    if k < n {
        idx.select_nth_unstable_by(k - 1, |&a, &b| {
            x[b as usize]
                .abs()
                .total_cmp(&x[a as usize].abs())
                .then(a.cmp(&b))
        });
        idx.truncate(k);
    }
    idx
}

/// Applies `comp`'s lossy channel to this step's accumulated gradient —
/// the raw gradient in `x` plus the carried residual in `res` — leaving
/// the wire payload ("sent") in `x` and the new residual in `res`.
///
/// Per element, with `a = gradient + carried residual` (one f32 add):
/// `x_out + res_out == a` **bitwise** — top-k sends the exact value or
/// nothing, and the quantized channels' round-to-nearest output is within
/// a factor of two of `a` (or exactly zero), making `a - sent` exact by
/// the Sterbenz lemma. Returns the wire elements the channel sends per
/// rank: the dense `x.len()` for the quantized channels, the kept
/// `min(k, len)` (index, value) pairs for top-k.
pub fn compress_with_feedback(comp: Compression, x: &mut [f32], res: &mut [f32]) -> usize {
    assert_eq!(x.len(), res.len(), "residual must mirror the bucket");
    match comp {
        Compression::None => x.len(),
        Compression::Fp16 => {
            for (xi, ri) in x.iter_mut().zip(res.iter_mut()) {
                let a = *xi + *ri;
                let s = F16::from_f32(a).to_f32();
                *xi = s;
                *ri = a - s;
            }
            x.len()
        }
        Compression::Int8 => {
            let mut maxabs = 0.0f32;
            for (xi, ri) in x.iter_mut().zip(res.iter_mut()) {
                *xi += *ri;
                maxabs = maxabs.max(xi.abs());
            }
            if maxabs == 0.0 {
                // nothing to quantize; the residual is fully consumed
                res.fill(0.0);
                return x.len();
            }
            let scale = maxabs / 127.0;
            for (xi, ri) in x.iter_mut().zip(res.iter_mut()) {
                let a = *xi;
                let s = (a / scale).round().clamp(-127.0, 127.0) * scale;
                *xi = s;
                *ri = a - s;
            }
            x.len()
        }
        Compression::TopK(k) => {
            for (xi, ri) in x.iter_mut().zip(res.iter_mut()) {
                *xi += *ri;
            }
            let mut kept = topk_indices(x, k);
            kept.sort_unstable();
            let sent = kept.len();
            let mut next = kept.into_iter().peekable();
            for (i, (xi, ri)) in x.iter_mut().zip(res.iter_mut()).enumerate() {
                if next.peek() == Some(&(i as u32)) {
                    next.next();
                    *ri = 0.0;
                } else {
                    *ri = *xi;
                    *xi = 0.0;
                }
            }
            sent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_spelling() {
        for (s, want) in [
            ("none", Compression::None),
            ("int8", Compression::Int8),
            ("fp16", Compression::Fp16),
            ("topk(32)", Compression::TopK(32)),
            (" TopK( 7 ) ", Compression::TopK(7)),
            ("INT8", Compression::Int8),
        ] {
            assert_eq!(Compression::parse(s), Some(want), "{s:?}");
            assert_eq!(Compression::parse(&want.name()), Some(want));
        }
        for bad in ["", "topk(0)", "topk(-1)", "topk()", "topk", "int4", "fp8"] {
            assert_eq!(Compression::parse(bad), None, "{bad:?}");
        }
    }

    fn wiggly(n: usize) -> Vec<f32> {
        // deterministic, sign-alternating, wide dynamic range
        (0..n)
            .map(|i| {
                let s = if i % 2 == 0 { 1.0 } else { -1.0 };
                s * ((i as f32 * 0.713).sin() * 1.5 + 0.01 * i as f32)
            })
            .collect()
    }

    #[test]
    fn error_feedback_invariant_is_bitwise_for_every_channel() {
        for comp in [Compression::TopK(5), Compression::Int8, Compression::Fp16] {
            let grad = wiggly(97);
            let mut res = wiggly(97);
            for r in res.iter_mut() {
                *r *= 1e-3;
            }
            let carried = res.clone();
            let mut x = grad.clone();
            compress_with_feedback(comp, &mut x, &mut res);
            for i in 0..grad.len() {
                let a = grad[i] + carried[i];
                assert_eq!(
                    x[i] + res[i],
                    a,
                    "{comp:?} element {i}: sent {} + residual {} != accumulated {a}",
                    x[i],
                    res[i]
                );
            }
        }
    }

    #[test]
    fn topk_keeps_exactly_the_largest_magnitudes() {
        let mut x = vec![0.1, -5.0, 0.2, 3.0, -0.3, 4.0, 0.0, -2.0];
        let mut res = vec![0.0; 8];
        let sent = compress_with_feedback(Compression::TopK(3), &mut x, &mut res);
        assert_eq!(sent, 3);
        assert_eq!(x, vec![0.0, -5.0, 0.0, 3.0, 0.0, 4.0, 0.0, 0.0]);
        assert_eq!(res, vec![0.1, 0.0, 0.2, 0.0, -0.3, 0.0, 0.0, -2.0]);
        // k >= len sends everything and leaves no residual
        let mut y = vec![1.0, -2.0];
        let mut r = vec![0.5, 0.5];
        assert_eq!(
            compress_with_feedback(Compression::TopK(10), &mut y, &mut r),
            2
        );
        assert_eq!(y, vec![1.5, -1.5]);
        assert_eq!(r, vec![0.0, 0.0]);
    }

    #[test]
    fn topk_ties_break_toward_lower_index() {
        let mut x = vec![2.0, -2.0, 2.0, 1.0];
        let mut res = vec![0.0; 4];
        compress_with_feedback(Compression::TopK(2), &mut x, &mut res);
        assert_eq!(x, vec![2.0, -2.0, 0.0, 0.0]);
    }

    #[test]
    fn int8_quantizes_to_the_shared_grid_and_handles_zero() {
        let mut x = vec![127.0, -63.5, 0.2, 0.0];
        let mut res = vec![0.0; 4];
        compress_with_feedback(Compression::Int8, &mut x, &mut res);
        // scale = 1.0: values snap to whole steps
        assert_eq!(x, vec![127.0, -64.0, 0.0, 0.0]);
        assert_eq!(res, vec![0.0, 0.5, 0.2, 0.0]);
        // all-zero bucket: nothing to send, residual consumed
        let mut z = vec![0.0; 3];
        let mut rz = vec![0.0; 3];
        compress_with_feedback(Compression::Int8, &mut z, &mut rz);
        assert_eq!(z, vec![0.0; 3]);
        assert_eq!(rz, vec![0.0; 3]);
    }

    #[test]
    fn residual_feeds_back_until_small_values_get_sent() {
        // a value far below the quantization step must eventually accumulate
        // through the residual and be transmitted
        let mut sent_total = 0.0f32;
        let mut res = vec![0.0f32; 2];
        for _ in 0..64 {
            let mut x = vec![1.0, 0.02]; // step stays ~1/127*1 ≈ 0.008? no: maxabs 1.0
            compress_with_feedback(Compression::Int8, &mut x, &mut res);
            sent_total += x[1];
        }
        // 64 steps x 0.02 = 1.28 total; the channel must have forwarded most
        assert!(
            (sent_total - 64.0 * 0.02).abs() <= 0.02,
            "error feedback lost mass: {sent_total}"
        );
    }
}
