//! Criterion bench + ablation: GPipe vs 1F1B schedules — real execution
//! wall time plus the modeled bubble/memory trade-off.

use colossalai_autograd::{Gelu, Linear, Sequential};
use colossalai_comm::World;
use colossalai_parallel::pipeline::{bubble_fraction, PipelineStage, Schedule};
use colossalai_tensor::init::{self, InitRng};
use colossalai_tensor::ops::cross_entropy;
use colossalai_tensor::Tensor;
use colossalai_topology::systems::system_i;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn stage_layers(rng: &mut InitRng) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::from_rng("a", 16, 16, true, rng)),
        Box::new(Gelu::new()),
    ])
}

fn run_schedule(schedule: Schedule, p: usize, m: usize) {
    let world = World::new(system_i());
    world.run_on(p, |ctx| {
        let devices: Vec<usize> = (0..p).collect();
        let mut rng = init::rng(9); // same seed on all ranks
                                    // each rank keeps one chunk of a 2*p-layer model: build p chunks,
                                    // keep ours (cheap enough at bench scale)
        let mut chunks: Vec<Sequential> = (0..p).map(|_| stage_layers(&mut rng)).collect();
        let mine = chunks.swap_remove(ctx.rank());
        let mut stage = PipelineStage::new(ctx, &devices, mine);
        let mut data_rng = init::rng(100);
        let micros: Vec<Tensor> = (0..m)
            .map(|_| init::uniform([2, 16], -1.0, 1.0, &mut data_rng))
            .collect();
        let mut lf = |_: u64, out: &Tensor| cross_entropy(out, &[0, 1]);
        let _ = stage.run_step(
            schedule,
            stage.is_first().then_some(&micros[..]),
            stage
                .is_last()
                .then_some(&mut lf as &mut dyn FnMut(u64, &Tensor) -> (f32, Tensor)),
            m,
        );
    });
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_schedules");
    group.sample_size(10);
    for &(p, m) in &[(2usize, 8usize), (4, 8)] {
        group.bench_with_input(
            BenchmarkId::new("gpipe", format!("p{p}_m{m}")),
            &(p, m),
            |b, &(p, m)| b.iter(|| run_schedule(Schedule::GPipe, p, m)),
        );
        group.bench_with_input(
            BenchmarkId::new("one_f_one_b", format!("p{p}_m{m}")),
            &(p, m),
            |b, &(p, m)| b.iter(|| run_schedule(Schedule::OneFOneB, p, m)),
        );
    }
    group.finish();

    println!("\n== pipeline ablation: bubble fraction (p stages, m micro-batches) ==");
    for p in [2usize, 4, 8] {
        for m in [4usize, 16, 64] {
            println!("p={p:<2} m={m:<3} bubble = {:.3}", bubble_fraction(p, m));
        }
    }
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
