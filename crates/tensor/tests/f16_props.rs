//! Property tests for the software binary16: the conversion must be the
//! *nearest* representable half value, with ties to even — checked against
//! a brute-force neighbor search over bit patterns.

use colossalai_tensor::F16;
use proptest::prelude::*;

/// All finite half values as f32, from a bit pattern.
fn half_value(bits: u16) -> Option<f32> {
    let h = F16(bits);
    h.is_finite().then(|| h.to_f32())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn conversion_is_nearest_with_ties_to_even(x in -70000.0f32..70000.0) {
        let h = F16::from_f32(x);
        if !h.is_finite() {
            // overflow: |x| must be beyond the overflow threshold
            // (max finite + half an ulp = 65520)
            prop_assert!(x.abs() >= 65519.99, "{} overflowed early", x);
            return Ok(());
        }
        let v = h.to_f32();
        let err = (x - v).abs();
        // check both neighboring bit patterns are no closer
        for delta in [-1i32, 1] {
            let nb = (h.0 as i32 + delta) as u16;
            // skip crossing the sign boundary nonsense patterns
            if (nb & 0x8000) != (h.0 & 0x8000) && h.0 != 0 && h.0 != 0x8000 {
                continue;
            }
            if let Some(nv) = half_value(nb) {
                let nerr = (x - nv).abs();
                prop_assert!(
                    err < nerr + 1e-12 * x.abs().max(1.0)
                        || (err == nerr && h.0 & 1 == 0),
                    "{}: chose {} (err {}) but neighbor {} is closer (err {})",
                    x, v, err, nv, nerr
                );
            }
        }
    }

    #[test]
    fn roundtrip_fixed_point(bits in 0u16..0x7C00) {
        // every finite positive half converts to f32 and back unchanged
        let v = F16(bits).to_f32();
        prop_assert_eq!(F16::from_f32(v).0, bits);
        // and the negative counterpart
        let neg = F16(bits | 0x8000).to_f32();
        prop_assert_eq!(F16::from_f32(neg).0, bits | 0x8000);
    }

    #[test]
    fn conversion_is_monotone(a in -65000.0f32..65000.0, b in -65000.0f32..65000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let vlo = F16::from_f32(lo).to_f32();
        let vhi = F16::from_f32(hi).to_f32();
        prop_assert!(vlo <= vhi, "monotonicity violated: f({})={} > f({})={}", lo, vlo, hi, vhi);
    }
}
