//! Deterministic parameter initializers.
//!
//! All randomness in the workspace flows through seeded ChaCha8 streams so
//! that every experiment is bit-reproducible and — crucially for the
//! ZeRO/tensor-parallel equivalence tests — every parallel mode can construct
//! the *same* global parameters before sharding them.

use crate::tensor::Tensor;
use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seeded RNG used across the workspace.
pub type InitRng = ChaCha8Rng;

/// Creates the workspace-standard RNG from a seed.
pub fn rng(seed: u64) -> InitRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Uniform values in `[lo, hi)`.
pub fn uniform(
    shape: impl Into<crate::shape::Shape>,
    lo: f32,
    hi: f32,
    rng: &mut InitRng,
) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data)
}

/// Normal values with the given mean and standard deviation (Box–Muller).
pub fn normal(
    shape: impl Into<crate::shape::Shape>,
    mean: f32,
    std: f32,
    rng: &mut InitRng,
) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let dist = NormalDist { mean, std };
    let data = (0..n).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(shape, data)
}

struct NormalDist {
    mean: f32,
    std: f32,
}

impl Distribution<f32> for NormalDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller; one value per call keeps the stream position simple
        // and deterministic regardless of how callers interleave draws.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        self.mean + self.std * z
    }
}

/// LeCun-normal initialization (the "Jax initialization" of the paper's ViT
/// experiment, Section 5.2): std = sqrt(1 / fan_in) for a `[fan_in, fan_out]`
/// weight.
pub fn lecun_normal(fan_in: usize, fan_out: usize, rng: &mut InitRng) -> Tensor {
    let std = (1.0 / fan_in as f32).sqrt();
    normal([fan_in, fan_out], 0.0, std, rng)
}

/// Xavier/Glorot-uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut InitRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform([fan_in, fan_out], -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = uniform([4, 4], -1.0, 1.0, &mut rng(7));
        let b = uniform([4, 4], -1.0, 1.0, &mut rng(7));
        assert_eq!(a, b);
        let c = uniform([4, 4], -1.0, 1.0, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_within_bounds() {
        let t = uniform([1000], -0.25, 0.75, &mut rng(1));
        assert!(t.data().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn normal_moments() {
        let t = normal([20000], 2.0, 3.0, &mut rng(2));
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn lecun_std_scales_with_fan_in() {
        let t = lecun_normal(400, 100, &mut rng(3));
        let mean = t.mean();
        let std = (t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32)
            .sqrt();
        assert!((std - 0.05).abs() < 0.005, "std {std}");
    }

    #[test]
    fn xavier_bound() {
        let t = xavier_uniform(10, 14, &mut rng(4));
        let a = (6.0f32 / 24.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= a));
    }
}
