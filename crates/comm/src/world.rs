//! The simulated multi-device world: per-device virtual clocks, a shared
//! cluster model, global traffic stats, and two execution backends — the
//! event-driven rank scheduler (default) and the legacy thread-per-rank
//! mode.

use crate::group::{Group, GroupShared, Wire};
use crate::sched::{AbortRun, Scheduler};
use crate::stats::CommStats;
use crate::trace::{self, RankRollup, Span, SpanKind, Tracer, Track};
use colossalai_tensor::{envknob, Tensor};
use colossalai_topology::{AllReduceAlgo, Cluster, DeviceId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// One point-to-point mailbox: the FIFO for a single `(from, to, tag)` key
/// plus that key's *own* wakeup condvar.
///
/// The per-key condvar is the core of the wakeup discipline: a delivery
/// notifies only the receiver parked on this exact key, so a message in a
/// 4096-rank world wakes one task — not every parked receiver world-wide
/// (the old single `mailbox_cv` + `notify_all` herd made every message
/// cost O(parked ranks) scheduler readmissions).
#[derive(Default)]
struct MailSlot {
    /// Messages in flight: payload, virtual arrival time, wire bytes (as
    /// charged by the sender — the receiver traces the same width).
    queue: VecDeque<(Tensor, f64, u64)>,
    /// A receiver is parked on `cv` right now (set/cleared under the
    /// mailbox lock). Lets the sender skip the notify entirely when nobody
    /// is parked, and lets `abort_wake` find every occupied slot.
    waiting: bool,
    /// Keyed wakeup target. `Arc` so a receiver can clone it and park via
    /// [`DeviceCtx::wait_on`] after releasing its borrow of the map entry.
    cv: Arc<Condvar>,
}

/// Point-to-point mailboxes keyed by (from, to, tag).
type Mailbox = HashMap<(DeviceId, DeviceId, u64), MailSlot>;

/// Wakeup-discipline observability counters (see [`WakeStats`]).
///
/// These measure *host* scheduling behavior — how many times tasks came
/// off a condvar — and are deliberately **not** part of [`CommStats`]:
/// wake counts may vary across backends, pool sizes and runs (spurious
/// wakeups, abort races), so they must never enter the bitwise parity
/// surface that `tests/world_backend_parity.rs` compares.
#[derive(Default)]
struct WakeCounters {
    /// Point-to-point messages delivered into a mailbox.
    p2p_msgs: AtomicU64,
    /// Times a receiver came off a mailbox condvar wait.
    p2p_wakes: AtomicU64,
    /// Times a task came off a group-rendezvous condvar wait.
    group_wakes: AtomicU64,
}

/// Snapshot of the world's wakeup counters ([`World::wake_stats`]).
///
/// With keyed per-`(from, to, tag)` mailbox condvars, one delivery wakes at
/// most one receiver, so `p2p_wakes / p2p_msgs` stays ~1 at any world size
/// — that ratio is the regression guard for the O(world) `notify_all` herd
/// this design replaced. Host-timing-dependent; excluded from the
/// deterministic [`CommStats`] parity surface.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WakeStats {
    /// Point-to-point messages delivered.
    pub p2p_msgs: u64,
    /// Mailbox condvar wakeups observed by receivers.
    pub p2p_wakes: u64,
    /// Group-rendezvous condvar wakeups observed by members.
    pub group_wakes: u64,
}

impl WakeStats {
    /// Mailbox wakeups per delivered message (0 when no messages flowed).
    /// ~1 under the keyed-condvar discipline; O(world) under a broadcast
    /// herd.
    pub fn wakeups_per_msg(&self) -> f64 {
        if self.p2p_msgs == 0 {
            0.0
        } else {
            self.p2p_wakes as f64 / self.p2p_msgs as f64
        }
    }
}

/// How [`World::run_on`] executes its rank closures.
///
/// Both backends produce bitwise-identical results, clocks, stats and
/// traces (`tests/world_backend_parity.rs`); they differ only in host
/// scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorldBackend {
    /// Legacy mode: all `n` rank threads run concurrently, scheduled by the
    /// OS. Fine up to a few dozen ranks; thrashes beyond that.
    Threads,
    /// Event-driven rank scheduler: every rank is a resumable task and at
    /// most `pool` of them execute at once, admitted from a central queue
    /// ordered by `(virtual_time, rank)`. `pool == 0` means "host cores".
    /// This is what lets 512–4096-rank worlds run in bounded memory and
    /// wall time.
    Sched {
        /// Number of concurrently running rank tasks (0 = host cores).
        pool: usize,
    },
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Backend requested by `COLOSSAL_WORLD` / `COLOSSAL_WORLD_POOL` (read
/// once): `threads` for the legacy mode, `sched` (or unset) for the
/// scheduler. Any other value warns once and falls back to the scheduler.
fn env_backend() -> WorldBackend {
    static BACKEND: OnceLock<WorldBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        let threads = match std::env::var("COLOSSAL_WORLD") {
            Err(_) => false,
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "threads" => true,
                "sched" => false,
                other => {
                    envknob::warn_invalid(
                        "COLOSSAL_WORLD",
                        other,
                        "\"sched\" or \"threads\"",
                        "sched",
                    );
                    false
                }
            },
        };
        if threads {
            WorldBackend::Threads
        } else {
            WorldBackend::Sched {
                pool: envknob::env_usize("COLOSSAL_WORLD_POOL", 0),
            }
        }
    })
}

/// Per-rank stack size under the scheduler: `COLOSSAL_WORLD_STACK` bytes,
/// else 1 MiB — enough for the simulated workloads while keeping a
/// 4096-rank world around 4 GiB of (mostly uncommitted) reservations.
/// A malformed or zero value warns once and keeps the default.
fn rank_stack_bytes() -> usize {
    static STACK: OnceLock<usize> = OnceLock::new();
    *STACK.get_or_init(|| {
        const DEFAULT: usize = 1 << 20;
        let v = envknob::env_usize("COLOSSAL_WORLD_STACK", DEFAULT);
        if v == 0 {
            envknob::warn_invalid(
                "COLOSSAL_WORLD_STACK",
                "0",
                "a stack size in bytes >= 1",
                &DEFAULT.to_string(),
            );
            DEFAULT
        } else {
            v
        }
    })
}

/// Shared state behind a [`World`].
pub(crate) struct WorldInner {
    pub(crate) cluster: Cluster,
    pub(crate) stats: Mutex<CommStats>,
    pub(crate) tracer: Tracer,
    /// When set, every all-reduce uses this schedule instead of consulting
    /// the cost-model selector (benches and tests pin the algorithm).
    forced_algo: Mutex<Option<AllReduceAlgo>>,
    groups: Mutex<HashMap<Vec<DeviceId>, Arc<GroupShared>>>,
    mailbox: Mutex<Mailbox>,
    /// Wakeup observability (never part of the parity surface).
    wakes: WakeCounters,
    /// Programmatic backend override (wins over the environment).
    backend: Mutex<Option<WorldBackend>>,
}

impl WorldInner {
    /// Wakes every task parked on a resource condvar (keyed mailbox slots,
    /// group rendezvous) so they can observe the abort flag and unwind.
    ///
    /// The condvar table is keyed, so abort must *iterate* it: every slot's
    /// cv is collected under the mailbox lock (serializing against a
    /// receiver between its abort check and its wait — the receiver holds
    /// the mailbox lock from check to park) and notified after. Any
    /// receiver that parks later necessarily entered `wait_on` after the
    /// abort flag rose and unwinds on its pre-wait check instead.
    fn abort_wake(&self) {
        let cvs: Vec<Arc<Condvar>> = {
            let mb = self.mailbox.lock();
            mb.values().map(|slot| Arc::clone(&slot.cv)).collect()
        };
        for cv in cvs {
            cv.notify_all();
        }
        let groups: Vec<Arc<GroupShared>> = self.groups.lock().values().cloned().collect();
        for g in groups {
            g.abort_wake();
        }
    }

    /// Count one observed wakeup from a group-rendezvous condvar.
    pub(crate) fn count_group_wake(&self) {
        self.wakes.group_wakes.fetch_add(1, Ordering::Relaxed);
    }
}

/// A simulated cluster execution context.
///
/// `World::run` launches one task per participating device and hands each
/// a [`DeviceCtx`]. Collectives exchange real tensors through shared memory
/// while charging virtual time according to the cluster's link model, so
/// results are numerically real and timings follow the modeled hardware.
///
/// # Examples
///
/// ```
/// use colossalai_comm::World;
/// use colossalai_tensor::Tensor;
/// use colossalai_topology::systems::system_i;
///
/// let world = World::new(system_i());
/// let sums = world.run_on(4, |ctx| {
///     let group = ctx.world_group(4);
///     group.all_reduce(ctx, Tensor::scalar(ctx.rank() as f32)).item()
/// });
/// assert_eq!(sums, vec![6.0; 4]); // 0 + 1 + 2 + 3 on every rank
/// ```
pub struct World {
    inner: Arc<WorldInner>,
}

impl World {
    /// Creates a world over `cluster`.
    pub fn new(cluster: Cluster) -> World {
        World {
            inner: Arc::new(WorldInner {
                cluster,
                stats: Mutex::new(CommStats::default()),
                tracer: Tracer::default(),
                forced_algo: Mutex::new(None),
                groups: Mutex::new(HashMap::new()),
                mailbox: Mutex::new(HashMap::new()),
                wakes: WakeCounters::default(),
                backend: Mutex::new(None),
            }),
        }
    }

    /// The cluster model.
    pub fn cluster(&self) -> &Cluster {
        &self.inner.cluster
    }

    /// Pins the execution backend for this world (`None` restores the
    /// `COLOSSAL_WORLD` / default resolution). Results are identical either
    /// way; this exists for benches and the backend-parity tests.
    pub fn set_backend(&self, backend: Option<WorldBackend>) {
        *self.inner.backend.lock() = backend;
    }

    /// The backend the next [`World::run_on`] call will use, with the
    /// scheduler's `pool = 0` already resolved to the host core count.
    pub fn backend(&self) -> WorldBackend {
        let b = self.inner.backend.lock().unwrap_or_else(env_backend);
        match b {
            WorldBackend::Sched { pool: 0 } => WorldBackend::Sched { pool: host_cores() },
            other => other,
        }
    }

    /// Runs `f` on the first `n` devices of the cluster and returns the
    /// per-rank results ordered by rank.
    ///
    /// Under the default scheduler backend each rank is a task on a fixed
    /// worker pool; under [`WorldBackend::Threads`] every rank gets a free
    /// running OS thread. Panics in any rank abort the run and propagate
    /// with the panicking rank's message (`"device thread panicked: ..."`),
    /// so test assertions inside device closures work as usual.
    pub fn run_on<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        assert!(
            n >= 1 && n <= self.inner.cluster.n_devices(),
            "cannot run on {n} devices of a {}-device cluster",
            self.inner.cluster.n_devices()
        );
        match self.backend() {
            WorldBackend::Threads => self.run_threads(n, f),
            WorldBackend::Sched { pool } => self.run_sched(n, pool, f),
        }
    }

    /// The legacy thread-per-rank backend.
    fn run_threads<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        let inner = &self.inner;
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let inner = Arc::clone(inner);
                    scope.spawn(move || {
                        let ctx = DeviceCtx::new(inner, rank, None);
                        f(&ctx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("device thread panicked"))
                .collect()
        })
    }

    /// The event-driven scheduler backend: `n` parked rank tasks admitted
    /// onto `pool` running slots in `(virtual_time, rank)` order.
    fn run_sched<R, F>(&self, n: usize, pool: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        let pool = if pool == 0 { host_cores() } else { pool };
        let sched = Scheduler::new(n, pool);
        // (rank, message) of every rank that panicked on its own (peers
        // unwound by the abort marker are not recorded)
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let inner = &self.inner;
        let f = &f;
        let results: Vec<Option<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let inner = Arc::clone(inner);
                    let sched = Arc::clone(&sched);
                    let panics = &panics;
                    std::thread::Builder::new()
                        .name(format!("colossal-rank-{rank}"))
                        .stack_size(rank_stack_bytes())
                        .spawn_scoped(scope, move || {
                            let ctx = DeviceCtx::new(Arc::clone(&inner), rank, Some(&sched));
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    sched.wait_admitted(rank);
                                    ctx.check_abort();
                                    f(&ctx)
                                }));
                            let out = match out {
                                Ok(v) => Some(v),
                                Err(payload) => {
                                    if !payload.is::<AbortRun>() {
                                        // as_ref, not &payload: the latter would
                                        // unsize the Box itself into `dyn Any`
                                        panics.lock().push((rank, panic_message(payload.as_ref())));
                                        sched.abort_all();
                                        inner.abort_wake();
                                    }
                                    None
                                }
                            };
                            sched.task_done(rank);
                            out
                        })
                        .expect("spawn rank task")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(None))
                .collect()
        });
        let primary = panics.into_inner().into_iter().min_by_key(|&(r, _)| r);
        if let Some((rank, msg)) = primary {
            panic!("device thread panicked: rank {rank}: {msg}");
        }
        results
            .into_iter()
            .map(|r| r.expect("rank task produced no result"))
            .collect()
    }

    /// Runs `f` on every device of the cluster.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&DeviceCtx) -> R + Send + Sync,
    {
        self.run_on(self.inner.cluster.n_devices(), f)
    }

    /// Snapshot of the accumulated communication statistics.
    pub fn stats(&self) -> CommStats {
        self.inner.stats.lock().clone()
    }

    /// Clears accumulated statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&self) {
        *self.inner.stats.lock() = CommStats::default();
    }

    /// Snapshot of the wakeup-discipline counters: messages delivered and
    /// condvar wakeups observed. `wakeups_per_msg()` ~1 proves keyed
    /// per-`(from, to, tag)` wakeups; O(world) means the herd is back.
    /// Host-timing-dependent — never compared for backend parity.
    pub fn wake_stats(&self) -> WakeStats {
        WakeStats {
            p2p_msgs: self.inner.wakes.p2p_msgs.load(Ordering::Relaxed),
            p2p_wakes: self.inner.wakes.p2p_wakes.load(Ordering::Relaxed),
            group_wakes: self.inner.wakes.group_wakes.load(Ordering::Relaxed),
        }
    }

    /// Clears the wakeup counters (e.g. after a warm-up phase).
    pub fn reset_wake_stats(&self) {
        self.inner.wakes.p2p_msgs.store(0, Ordering::Relaxed);
        self.inner.wakes.p2p_wakes.store(0, Ordering::Relaxed);
        self.inner.wakes.group_wakes.store(0, Ordering::Relaxed);
    }

    /// Pins the all-reduce schedule for every group in this world, or
    /// restores per-call cost-model selection with `None`. Data results are
    /// identical either way (the reduction order is canonical); only the
    /// charged time, element-hop stats and trace phases differ.
    pub fn force_allreduce_algo(&self, algo: Option<AllReduceAlgo>) {
        *self.inner.forced_algo.lock() = algo;
    }

    // ---- tracing --------------------------------------------------------

    /// Turns span recording on or off (off by default; the disabled path
    /// costs one relaxed atomic load per potential span).
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracer.set_enabled(on);
    }

    /// Enables span recording. Shorthand for `set_tracing(true)`.
    pub fn enable_tracing(&self) {
        self.set_tracing(true);
    }

    /// Whether spans are currently being recorded.
    pub fn tracing(&self) -> bool {
        self.inner.tracer.enabled()
    }

    /// Snapshot of all recorded spans in canonical lane order (device
    /// tracks by rank, comm-stream tracks by rank, then group tracks by
    /// name; within a lane, recording order). The snapshot is
    /// bitwise-identical across backends and pool sizes.
    pub fn trace(&self) -> Vec<Span> {
        self.inner.tracer.snapshot()
    }

    /// Drops all recorded spans (e.g. after a warm-up step).
    pub fn clear_trace(&self) {
        self.inner.tracer.clear();
    }

    /// Chrome/Perfetto `trace_events` JSON of the recorded spans: one track
    /// per simulated device plus one per collective group. Load the output
    /// at `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn trace_json(&self) -> String {
        trace::chrome_trace_json(&self.trace())
    }

    /// Per-rank rollup of the recorded leaf spans: seconds in compute,
    /// communication, memory movement and idle.
    pub fn trace_rollup(&self) -> Vec<RankRollup> {
        trace::rollup(&self.trace())
    }

    /// The rollup formatted as a fixed-width table. At 64 ranks and above
    /// the per-rank rows collapse into min/median/max summary lines; use
    /// [`World::rollup_table_full`] to force every row.
    pub fn rollup_table(&self) -> String {
        trace::rollup_table(&self.trace_rollup())
    }

    /// The rollup table with one row per rank regardless of world size.
    pub fn rollup_table_full(&self) -> String {
        trace::rollup_table_full(&self.trace_rollup())
    }
}

/// Human-readable text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-device execution context handed to the closure of [`World::run`].
///
/// Holds the device's virtual clock. Compute is charged explicitly via
/// [`DeviceCtx::charge_flops_f32`] / [`DeviceCtx::charge_seconds`];
/// communication is charged implicitly by the collectives in
/// [`Group`] type.
/// Cloning a `DeviceCtx` yields a handle to the *same* device: clones share
/// the clock and FLOP counter, so layers and optimizers can each hold one.
#[derive(Clone)]
pub struct DeviceCtx {
    pub(crate) world: Arc<WorldInner>,
    pub(crate) rank: DeviceId,
    clock: Arc<AtomicU64>,
    /// The communication stream's clock: `async` collectives accrue here
    /// while compute keeps running on `clock`; [`DeviceCtx::comm_sync`]
    /// joins the two.
    comm_clock: Arc<AtomicU64>,
    flops: Arc<AtomicU64>,
    /// The run's rank scheduler (`None` under the legacy threads backend).
    sched: Option<Arc<Scheduler>>,
}

impl DeviceCtx {
    fn new(world: Arc<WorldInner>, rank: DeviceId, sched: Option<&Arc<Scheduler>>) -> DeviceCtx {
        DeviceCtx {
            world,
            rank,
            clock: Arc::new(AtomicU64::new(0.0f64.to_bits())),
            comm_clock: Arc::new(AtomicU64::new(0.0f64.to_bits())),
            flops: Arc::new(AtomicU64::new(0)),
            sched: sched.map(Arc::clone),
        }
    }

    /// Global device id of this context.
    pub fn rank(&self) -> DeviceId {
        self.rank
    }

    /// The cluster model.
    pub fn cluster(&self) -> &Cluster {
        &self.world.cluster
    }

    /// Current virtual time in seconds.
    ///
    /// The clock is only ever written by its own device task, so relaxed
    /// atomics are sufficient — the `Arc<AtomicU64>` exists to let clones of
    /// the ctx (held by layers, optimizers, schedules) share one clock, not
    /// for cross-thread communication.
    pub fn clock(&self) -> f64 {
        f64::from_bits(self.clock.load(Ordering::Relaxed))
    }

    fn set_clock(&self, t: f64) {
        self.clock.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Advances the virtual clock by `dt` seconds. A clock advance is a
    /// scheduler yield point: if another rank task is ready at an earlier
    /// virtual time, the slot is handed over (which never changes results —
    /// only host execution order).
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0, "negative time step");
        self.set_clock(self.clock() + dt);
        self.maybe_yield();
    }

    /// Forces the clock to at least `t` (used when receiving messages).
    pub(crate) fn advance_to(&self, t: f64) {
        if t > self.clock() {
            self.set_clock(t);
        }
        self.maybe_yield();
    }

    /// Yields the running slot when an earlier-in-virtual-time task is
    /// ready (no-op under the threads backend).
    #[inline]
    fn maybe_yield(&self) {
        if let Some(sched) = &self.sched {
            sched.maybe_yield(self.rank, self.clock());
        }
    }

    /// Unwinds (silently) when the run is aborting after another rank's
    /// panic. No-op under the threads backend.
    pub(crate) fn check_abort(&self) {
        if let Some(sched) = &self.sched {
            if sched.abort.load(Ordering::Relaxed) {
                std::panic::resume_unwind(Box::new(AbortRun));
            }
        }
    }

    /// Scheduler-aware condvar wait: releases this task's running slot
    /// while parked so another ready rank can execute (the threads backend
    /// waits directly). The resource lock (`guard`) is held through the
    /// wait as usual; slot reacquisition happens with it released, so lock
    /// order is always resource → scheduler.
    pub(crate) fn wait_on<T>(&self, cv: &Condvar, guard: &mut parking_lot::MutexGuard<'_, T>) {
        match &self.sched {
            None => cv.wait(guard),
            Some(sched) => {
                self.check_abort();
                sched.begin_block(self.rank);
                cv.wait(guard);
                let (rank, clock) = (self.rank, self.clock());
                parking_lot::MutexGuard::unlocked(guard, || sched.end_block(rank, clock));
                self.check_abort();
            }
        }
    }

    // ---- comm stream ----------------------------------------------------

    /// Current virtual time of the communication stream in seconds. Lags
    /// the main clock while no async collective is in flight.
    pub fn comm_clock(&self) -> f64 {
        f64::from_bits(self.comm_clock.load(Ordering::Relaxed))
    }

    fn set_comm_clock(&self, t: f64) {
        self.comm_clock.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Earliest virtual time a newly launched async collective can start on
    /// this rank: the later of the two streams (compute must have produced
    /// the payload; the comm stream must have drained prior ops).
    pub(crate) fn comm_ready(&self) -> f64 {
        self.clock().max(self.comm_clock())
    }

    /// Forces the comm-stream clock to at least `t`.
    pub(crate) fn comm_advance_to(&self, t: f64) {
        if t > self.comm_clock() {
            self.set_comm_clock(t);
        }
    }

    /// Joins the comm stream into the main clock: both become
    /// `max(main, comm)`. Call before consuming the result of an async
    /// collective (e.g. before `optimizer.step`); a no-op when the comm
    /// stream is already behind the main clock.
    pub fn comm_sync(&self) {
        let t = self.comm_ready();
        self.set_clock(t);
        self.set_comm_clock(t);
    }

    /// The world-wide pinned all-reduce schedule, if any (see
    /// [`World::force_allreduce_algo`]).
    pub(crate) fn forced_allreduce_algo(&self) -> Option<AllReduceAlgo> {
        *self.world.forced_algo.lock()
    }

    /// Charges `flops` of FP32 compute at this device's modeled rate.
    pub fn charge_flops_f32(&self, flops: u64) {
        self.flops.fetch_add(flops, Ordering::Relaxed);
        let dt = self.world.cluster.gpu(self.rank).compute_time_f32(flops);
        self.advance(dt);
    }

    /// Charges `flops` of FP16 tensor-core compute.
    pub fn charge_flops_f16(&self, flops: u64) {
        self.flops.fetch_add(flops, Ordering::Relaxed);
        let dt = self.world.cluster.gpu(self.rank).compute_time_f16(flops);
        self.advance(dt);
    }

    /// Charges raw seconds (e.g. host-side optimizer time, offload DMA).
    pub fn charge_seconds(&self, dt: f64) {
        self.advance(dt);
    }

    /// Total FLOPs charged so far.
    pub fn flops(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
    }

    /// Records traffic into the world-level stats (one call per group op).
    pub(crate) fn record_stats(&self, kind: crate::stats::OpKind, elements: u64, bytes: u64) {
        self.world.stats.lock().record(kind, elements, bytes);
    }

    // ---- tracing --------------------------------------------------------

    /// Whether the world is recording spans (cheap; callers may skip span
    /// bookkeeping entirely when false).
    pub fn tracing(&self) -> bool {
        self.world.tracer.enabled()
    }

    /// Records a span on this device's track from `start` to the current
    /// clock. No-op unless tracing is enabled.
    pub fn trace_span(&self, kind: SpanKind, start: f64) {
        if self.tracing() {
            self.world.tracer.record(Span {
                rank: self.rank,
                track: Track::Device(self.rank),
                kind,
                start,
                end: self.clock(),
            });
        }
    }

    /// Records a span on an arbitrary track (used by collectives for the
    /// per-group timeline).
    pub(crate) fn trace_span_on(&self, track: Track, kind: SpanKind, start: f64, end: f64) {
        if self.tracing() {
            self.world.tracer.record(Span {
                rank: self.rank,
                track,
                kind,
                start,
                end,
            });
        }
    }

    /// Records a span attributed to an explicit rank (group-track spans use
    /// the group's first member so traces don't depend on arrival order).
    pub(crate) fn trace_span_as(
        &self,
        rank: DeviceId,
        track: Track,
        kind: SpanKind,
        start: f64,
        end: f64,
    ) {
        if self.tracing() {
            self.world.tracer.record(Span {
                rank,
                track,
                kind,
                start,
                end,
            });
        }
    }

    /// Runs `f` inside a [`SpanKind::Phase`] span named `name`. Phase spans
    /// nest over the leaf spans `f` records.
    pub fn trace_phase<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.tracing() {
            return f();
        }
        let start = self.clock();
        let out = f();
        self.trace_span(
            SpanKind::Phase {
                name: name.to_string(),
            },
            start,
        );
        out
    }

    /// Obtains (or creates) the process group over `members`.
    ///
    /// Every member must call with the *same* member list (order included);
    /// the calling device must itself be a member.
    pub fn group(&self, members: &[DeviceId]) -> Group {
        assert!(
            members.contains(&self.rank),
            "device {} is not in group {:?}",
            self.rank,
            members
        );
        let mut dedup = members.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            members.len(),
            "duplicate members in {members:?}"
        );
        let shared = {
            let mut groups = self.world.groups.lock();
            Arc::clone(
                groups
                    .entry(members.to_vec())
                    .or_insert_with(|| Arc::new(GroupShared::new(members.to_vec()))),
            )
        };
        Group::new(shared, self.rank)
    }

    /// The group of all devices participating in runs of size `n`
    /// (devices `0..n`).
    pub fn world_group(&self, n: usize) -> Group {
        let members: Vec<DeviceId> = (0..n).collect();
        self.group(&members)
    }

    // ---- point-to-point -------------------------------------------------

    /// Sends `t` to device `to` under `tag` at FP32 wire width.
    /// Synchronous-send model: the sender's clock advances by the full
    /// transfer time and the message becomes visible to the receiver at the
    /// sender's post-send clock.
    pub fn send(&self, to: DeviceId, tag: u64, t: Tensor) {
        self.send_wire(to, tag, t, Wire::F32);
    }

    /// FP16-wire variant of [`DeviceCtx::send`]: charges 2 bytes/element on
    /// the link (mixed-precision activation/gradient traffic between
    /// pipeline stages). The payload tensor is unchanged — only the billed
    /// width differs.
    pub fn send_half(&self, to: DeviceId, tag: u64, t: Tensor) {
        self.send_wire(to, tag, t, Wire::F16);
    }

    fn send_wire(&self, to: DeviceId, tag: u64, t: Tensor, wire: Wire) {
        assert_ne!(to, self.rank, "send to self");
        self.check_abort();
        let bytes = t.numel() as u64 * wire.bytes();
        let dt = self.world.cluster.p2p_time(self.rank, to, bytes);
        let t_start = self.clock();
        self.advance(dt);
        self.trace_span(
            SpanKind::P2p {
                peer: to,
                tag,
                bytes,
                is_send: true,
            },
            t_start,
        );
        let arrival = self.clock();
        self.record_stats(crate::stats::OpKind::SendRecv, t.numel() as u64, bytes);
        let mut mb = self.world.mailbox.lock();
        let slot = mb.entry((self.rank, to, tag)).or_default();
        slot.queue.push_back((t, arrival, bytes));
        self.world.wakes.p2p_msgs.fetch_add(1, Ordering::Relaxed);
        // Keyed wakeup: only the receiver parked on this exact (from, to,
        // tag) is notified — and only if one is actually parked. `waiting`
        // is read under the mailbox lock, so a receiver that has not parked
        // yet will instead find the message when it checks the queue.
        if slot.waiting {
            let cv = Arc::clone(&slot.cv);
            drop(mb);
            cv.notify_one();
        }
    }

    /// Receives the next message from `from` under `tag`, blocking until it
    /// arrives. The receiver's clock advances to at least the message's
    /// arrival time; the traced byte count is the width the sender charged.
    pub fn recv(&self, from: DeviceId, tag: u64) -> Tensor {
        assert_ne!(from, self.rank, "recv from self");
        self.check_abort();
        let key = (from, self.rank, tag);
        let t_start = self.clock();
        let mut mb = self.world.mailbox.lock();
        loop {
            let slot = mb.entry(key).or_default();
            if let Some((t, arrival, bytes)) = slot.queue.pop_front() {
                slot.waiting = false;
                drop(mb);
                self.advance_to(arrival);
                self.trace_span(
                    SpanKind::P2p {
                        peer: from,
                        tag,
                        bytes,
                        is_send: false,
                    },
                    t_start,
                );
                return t;
            }
            slot.waiting = true;
            let cv = Arc::clone(&slot.cv);
            self.wait_on(&cv, &mut mb);
            self.world.wakes.p2p_wakes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Full-duplex ring exchange: sends `t` to `to` while receiving from
    /// `from`. Both transfers overlap, so only one transfer time is charged
    /// (the p2p links are modeled as full duplex).
    pub fn ring_exchange(&self, to: DeviceId, from: DeviceId, tag: u64, t: Tensor) -> Tensor {
        self.send(to, tag, t);
        self.recv(from, tag)
    }

    /// FP16-wire variant of [`DeviceCtx::ring_exchange`].
    pub fn ring_exchange_half(&self, to: DeviceId, from: DeviceId, tag: u64, t: Tensor) -> Tensor {
        self.send_half(to, tag, t);
        self.recv(from, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_topology::systems::system_i;

    #[test]
    fn run_returns_rank_ordered_results() {
        let world = World::new(system_i());
        let ranks = world.run(|ctx| ctx.rank());
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn run_on_subset() {
        let world = World::new(system_i());
        let out = world.run_on(3, |ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn clock_advances_with_flops() {
        let world = World::new(system_i());
        let clocks = world.run_on(2, |ctx| {
            ctx.charge_flops_f32(1_000_000_000_000);
            ctx.clock()
        });
        // 1 TFLOP on a 19.5 TFLOPS A100 at 40% MFU: ~0.128s
        assert!(clocks[0] > 0.1 && clocks[0] < 0.2, "clock {}", clocks[0]);
        assert_eq!(clocks[0], clocks[1]);
    }

    #[test]
    fn p2p_moves_data_and_time() {
        let world = World::new(system_i());
        let out = world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, Tensor::from_vec([3], vec![1., 2., 3.]));
                ctx.clock()
            } else {
                let t = ctx.recv(0, 0);
                assert_eq!(t.data(), &[1., 2., 3.]);
                ctx.clock()
            }
        });
        assert!(out[0] > 0.0);
        assert!(out[1] >= out[0]);
    }

    #[test]
    fn p2p_fifo_per_tag() {
        let world = World::new(system_i());
        world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, Tensor::scalar(1.0));
                ctx.send(1, 7, Tensor::scalar(2.0));
                ctx.send(1, 9, Tensor::scalar(3.0));
            } else {
                // tag 9 can be drained before tag 7
                assert_eq!(ctx.recv(0, 9).item(), 3.0);
                assert_eq!(ctx.recv(0, 7).item(), 1.0);
                assert_eq!(ctx.recv(0, 7).item(), 2.0);
            }
        });
    }

    #[test]
    fn p2p_bills_wire_width() {
        // send charges 4 bytes/element, send_half 2 — in link time, stats
        // bytes and the wakeup-count denominator alike
        let world = World::new(system_i());
        let clocks = world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, Tensor::from_vec([4], vec![1.0; 4]));
                let t_full = ctx.clock();
                ctx.send_half(1, 1, Tensor::from_vec([4], vec![1.0; 4]));
                (t_full, ctx.clock() - t_full)
            } else {
                assert_eq!(ctx.recv(0, 0).numel(), 4);
                assert_eq!(ctx.recv(0, 1).numel(), 4);
                (0.0, 0.0)
            }
        });
        let sys = system_i();
        assert!((clocks[0].0 - sys.p2p_time(0, 1, 16)).abs() < 1e-12);
        assert!((clocks[0].1 - sys.p2p_time(0, 1, 8)).abs() < 1e-12);
        let stats = world.stats();
        assert_eq!(stats.bytes, 16 + 8, "stats charge wire bytes, not numel*4");
        assert_eq!(stats.elements_of(crate::stats::OpKind::SendRecv), 8);
        assert_eq!(world.wake_stats().p2p_msgs, 2);
    }

    #[test]
    fn ring_exchange_charges_once() {
        let world = World::new(system_i());
        let clocks = world.run_on(2, |ctx| {
            let to = 1 - ctx.rank();
            let got = ctx.ring_exchange(to, to, 0, Tensor::scalar(ctx.rank() as f32));
            assert_eq!(got.item(), to as f32);
            ctx.clock()
        });
        let single = system_i().p2p_time(0, 1, 4);
        assert!(
            (clocks[0] - single).abs() < 1e-12,
            "{} vs {}",
            clocks[0],
            single
        );
    }

    #[test]
    #[should_panic(expected = "device thread panicked")]
    fn group_requires_membership() {
        let world = World::new(system_i());
        world.run_on(2, |ctx| {
            if ctx.rank() == 0 {
                let _ = ctx.group(&[1]);
            }
        });
    }

    #[test]
    fn backend_resolution_prefers_explicit_setting() {
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Threads));
        assert_eq!(world.backend(), WorldBackend::Threads);
        world.set_backend(Some(WorldBackend::Sched { pool: 3 }));
        assert_eq!(world.backend(), WorldBackend::Sched { pool: 3 });
        // pool 0 resolves to the host core count
        world.set_backend(Some(WorldBackend::Sched { pool: 0 }));
        let WorldBackend::Sched { pool } = world.backend() else {
            panic!("expected scheduler backend");
        };
        assert!(pool >= 1);
    }

    #[test]
    fn single_slot_pool_runs_collectives() {
        // pool = 1 serializes all ranks; the rendezvous must release the
        // slot while waiting or this deadlocks
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Sched { pool: 1 }));
        let sums = world.run_on(4, |ctx| {
            let g = ctx.world_group(4);
            let s = g.all_reduce(ctx, Tensor::scalar(ctx.rank() as f32)).item();
            // p2p under pool = 1: ring neighbor exchange
            let to = (ctx.rank() + 1) % 4;
            let from = (ctx.rank() + 3) % 4;
            let got = ctx.ring_exchange(to, from, 5, Tensor::scalar(s));
            got.item()
        });
        assert_eq!(sums, vec![6.0; 4]);
    }

    #[test]
    fn sched_panic_reports_rank_and_message() {
        let world = World::new(system_i());
        world.set_backend(Some(WorldBackend::Sched { pool: 2 }));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            world.run_on(4, |ctx| {
                if ctx.rank() == 2 {
                    panic!("rank two exploded");
                }
                // peers park in a rendezvous that can never complete; the
                // abort must unwind them
                let g = ctx.world_group(4);
                g.barrier(ctx);
            });
        }))
        .expect_err("run must propagate the panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("device thread panicked"), "{msg}");
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("rank two exploded"), "{msg}");
    }
}
