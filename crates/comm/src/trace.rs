//! World-level virtual-clock event tracer.
//!
//! Every device records typed [`Span`]s against its virtual clock:
//! compute segments, collectives, point-to-point transfers, memory-tier
//! movement and high-level engine phases. The tracer lives in the
//! [`crate::World`] so one timeline sees every layer — collectives in this
//! crate, pipeline schedules in `colossalai-parallel`, engine phases in
//! `colossalai-core`, chunk/offload movement in `colossalai-memory`.
//!
//! Tracing is off by default and costs one relaxed atomic load per
//! potential span when disabled. When enabled, spans are appended to
//! per-track *lanes* (a `BTreeMap<Track, Vec<Span>>`): within a lane the
//! recording order is deterministic (a device track is written only by its
//! own rank in program order; a group track is serialized by the rendezvous
//! slot), and [`Tracer::snapshot`] concatenates lanes in canonical
//! [`Track`] order. Snapshots are therefore bitwise identical across
//! execution backends and scheduler pool sizes, even though the interleaving
//! of host threads differs — the backend-parity tests compare them with
//! `assert_eq!`.
//!
//! [`chrome_trace_json`] exports the Chrome/Perfetto `trace_events`
//! format: one track (`tid`) per simulated device under the `devices`
//! process, plus one track per collective group under the `groups`
//! process. Load the file at `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::stats::OpKind;
use colossalai_topology::DeviceId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// What a span represents.
#[derive(Clone, Debug, PartialEq)]
pub enum SpanKind {
    /// A device-local compute segment (kernel time, optimizer math, ...).
    Compute {
        /// Human-readable label (e.g. `F3` for the forward of micro-batch 3).
        label: String,
    },
    /// One collective operation as observed by one rank: from its arrival
    /// at the rendezvous to the group-wide completion time.
    Collective {
        kind: OpKind,
        /// Wire bytes the modeled algorithm moves (elements x wire width).
        bytes: u64,
        /// Group members in rank order.
        group: Vec<DeviceId>,
    },
    /// A point-to-point transfer endpoint (send charges the wire, recv
    /// spans the wait until the message's virtual arrival).
    P2p {
        peer: DeviceId,
        tag: u64,
        bytes: u64,
        is_send: bool,
    },
    /// Data movement between memory tiers (chunk migration, offload DMA).
    MemMove {
        bytes: u64,
        from: &'static str,
        to: &'static str,
    },
    /// A high-level phase (forward / backward / optimizer). Phases nest
    /// *over* leaf spans; the non-overlap invariant applies to leaves only.
    Phase { name: String },
}

impl SpanKind {
    /// True for [`SpanKind::Phase`] spans (which may enclose leaf spans).
    pub fn is_phase(&self) -> bool {
        matches!(self, SpanKind::Phase { .. })
    }

    /// Display name used as the Chrome-trace event name.
    pub fn name(&self) -> String {
        match self {
            SpanKind::Compute { label } => label.clone(),
            SpanKind::Collective { kind, .. } => kind.name().to_string(),
            SpanKind::P2p {
                peer,
                is_send: true,
                ..
            } => format!("send->{peer}"),
            SpanKind::P2p { peer, .. } => format!("recv<-{peer}"),
            SpanKind::MemMove { from, to, .. } => format!("{from}->{to}"),
            SpanKind::Phase { name } => name.clone(),
        }
    }

    /// Chrome-trace category (`cat` field); also drives the rollup buckets.
    pub fn category(&self) -> &'static str {
        match self {
            SpanKind::Compute { .. } => "compute",
            SpanKind::Collective { .. } => "collective",
            SpanKind::P2p { .. } => "p2p",
            SpanKind::MemMove { .. } => "memmove",
            SpanKind::Phase { .. } => "phase",
        }
    }
}

/// Which timeline a span renders on. The derived order (devices by rank,
/// then comm streams by rank, then groups by name) is the canonical lane
/// order of [`Tracer::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// The per-device track of `rank`.
    Device(DeviceId),
    /// The communication-stream track of `rank`: collectives launched
    /// `async` render here, in parallel with the device's compute track,
    /// so backward/comm overlap is visible in the Chrome trace.
    DeviceComm(DeviceId),
    /// A per-collective-group track (one group-wide span per op).
    Group(String),
}

/// One traced event over virtual time.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Rank the span is attributed to (for group tracks: the group's first
    /// member, so traces don't depend on which rank arrived last).
    pub rank: DeviceId,
    pub track: Track,
    pub kind: SpanKind,
    /// Virtual start time in seconds.
    pub start: f64,
    /// Virtual end time in seconds (`>= start`).
    pub end: f64,
}

impl Span {
    /// Span duration in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The world-global span sink. Disabled by default; when disabled,
/// [`Tracer::record`] is a single relaxed atomic load. Spans are stored in
/// per-track lanes so snapshots don't depend on how the host interleaved
/// the recording threads.
#[derive(Default)]
pub struct Tracer {
    enabled: AtomicBool,
    lanes: Mutex<BTreeMap<Track, Vec<Span>>>,
}

impl Tracer {
    /// Whether spans are currently being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records `span` if tracing is enabled.
    pub fn record(&self, span: Span) {
        if self.enabled() {
            self.lanes
                .lock()
                .entry(span.track.clone())
                .or_default()
                .push(span);
        }
    }

    /// Snapshot of all recorded spans: lanes in canonical [`Track`] order,
    /// each lane in recording order. Bitwise-deterministic for a
    /// deterministic workload, regardless of backend or pool size.
    pub fn snapshot(&self) -> Vec<Span> {
        self.lanes.lock().values().flatten().cloned().collect()
    }

    /// Drops all recorded spans (e.g. after a warm-up step).
    pub fn clear(&self) {
        self.lanes.lock().clear();
    }
}

/// A compact track name for a collective group, e.g. `g0-1-2-3`.
pub fn group_track_name(members: &[DeviceId]) -> String {
    let ids: Vec<String> = members.iter().map(|m| m.to_string()).collect();
    format!("g{}", ids.join("-"))
}

/// Per-rank time rollup over the leaf spans of a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankRollup {
    pub rank: DeviceId,
    /// Seconds in [`SpanKind::Compute`] spans.
    pub compute: f64,
    /// Seconds in [`SpanKind::Collective`] + [`SpanKind::P2p`] spans.
    pub comm: f64,
    /// Seconds of comm-stream ([`Track::DeviceComm`]) spans. These run in
    /// parallel with the main track, so they are *not* part of busy time
    /// and do not reduce idle.
    pub comm_overlap: f64,
    /// Seconds in [`SpanKind::MemMove`] spans.
    pub mem: f64,
    /// Makespan minus busy time (waiting on peers, pipeline bubbles, ...).
    pub idle: f64,
}

/// Rolls up per-rank busy/idle time. The makespan is the maximum span end
/// over *all* ranks, so idle includes time a rank spends finished while
/// others still work. Phase spans (which nest over leaves) and group-track
/// spans are excluded from the busy sums.
pub fn rollup(spans: &[Span]) -> Vec<RankRollup> {
    let makespan = spans
        .iter()
        .filter(|s| matches!(s.track, Track::Device(_) | Track::DeviceComm(_)))
        .map(|s| s.end)
        .fold(0.0, f64::max);
    let mut per_rank: std::collections::BTreeMap<DeviceId, RankRollup> = Default::default();
    for s in spans {
        let rank = match s.track {
            Track::Device(rank) => rank,
            Track::DeviceComm(rank) => {
                per_rank
                    .entry(rank)
                    .or_insert(RankRollup {
                        rank,
                        ..Default::default()
                    })
                    .comm_overlap += s.duration();
                continue;
            }
            Track::Group(_) => continue,
        };
        let r = per_rank.entry(rank).or_insert(RankRollup {
            rank,
            ..Default::default()
        });
        match &s.kind {
            SpanKind::Compute { .. } => r.compute += s.duration(),
            SpanKind::Collective { .. } | SpanKind::P2p { .. } => r.comm += s.duration(),
            SpanKind::MemMove { .. } => r.mem += s.duration(),
            SpanKind::Phase { .. } => {}
        }
    }
    let mut out: Vec<RankRollup> = per_rank.into_values().collect();
    for r in &mut out {
        r.idle = (makespan - r.compute - r.comm - r.mem).max(0.0);
    }
    out
}

/// World sizes at or above this print the compact min/median/max rollup
/// instead of one row per rank (a 4096-rank table is unreadable noise).
pub const ROLLUP_COMPACT_THRESHOLD: usize = 64;

/// Formats a rollup as a fixed-width table (times in milliseconds). The
/// `pool_hit%` column reports the storage pool's global hit rate and the
/// `par_util%` column the worker-pool utilization (the share of intra-op
/// task units executed by `tensor::par` workers rather than the submitting
/// rank threads); both pools are process-wide, so every rank shows the same
/// figures. Footers summarize the full allocator and worker-pool counters.
///
/// At [`ROLLUP_COMPACT_THRESHOLD`] ranks and above, the per-rank rows
/// collapse into per-column min/median/max summary lines; use
/// [`rollup_table_full`] to force every row.
pub fn rollup_table(rollups: &[RankRollup]) -> String {
    rollup_table_opts(rollups, rollups.len() < ROLLUP_COMPACT_THRESHOLD)
}

/// [`rollup_table`] with one row per rank regardless of world size.
pub fn rollup_table_full(rollups: &[RankRollup]) -> String {
    rollup_table_opts(rollups, true)
}

/// [`rollup_table`] with explicit row control: `full` prints every rank,
/// otherwise the compact min/median/max summary (median is the upper
/// median, the sorted element at `len / 2`).
pub fn rollup_table_opts(rollups: &[RankRollup], full: bool) -> String {
    let pool = colossalai_tensor::pool::stats();
    let par = colossalai_tensor::par::stats();
    let mut out = String::from(
        "rank   compute_ms      comm_ms   overlap_ms    pool_hit%    par_util%       mem_ms      idle_ms\n\
         -------------------------------------------------------------------------------------------------\n",
    );
    let row = |out: &mut String, label: &str, r: &RankRollup| {
        out.push_str(&format!(
            "{:>4} {:>12.3} {:>12.3} {:>12.3} {:>12.1} {:>12.1} {:>12.3} {:>12.3}\n",
            label,
            r.compute * 1e3,
            r.comm * 1e3,
            r.comm_overlap * 1e3,
            pool.hit_rate() * 100.0,
            par.util() * 100.0,
            r.mem * 1e3,
            r.idle * 1e3
        ));
    };
    if full || rollups.is_empty() {
        for r in rollups {
            row(&mut out, &r.rank.to_string(), r);
        }
    } else {
        // each column is summarized independently, so a summary "row" is
        // not any single rank's rollup
        let stat = |pick: fn(&[f64]) -> f64| {
            let col = |get: fn(&RankRollup) -> f64| {
                let mut v: Vec<f64> = rollups.iter().map(get).collect();
                v.sort_by(f64::total_cmp);
                pick(&v)
            };
            RankRollup {
                rank: 0,
                compute: col(|r| r.compute),
                comm: col(|r| r.comm),
                comm_overlap: col(|r| r.comm_overlap),
                mem: col(|r| r.mem),
                idle: col(|r| r.idle),
            }
        };
        row(&mut out, "min", &stat(|v| v[0]));
        row(&mut out, "med", &stat(|v| v[v.len() / 2]));
        row(&mut out, "max", &stat(|v| v[v.len() - 1]));
        out.push_str(&format!(
            "ranks: {} (per-rank rows elided; rollup_table_full prints all)\n",
            rollups.len()
        ));
    }
    out.push_str(&format!("pool: {}\n", pool.summary()));
    out.push_str(&format!("pool class hw: {}\n", pool.class_summary()));
    out.push_str(&format!("par:  {}\n", par.summary()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Pretty-prints microsecond timestamps without float-format surprises.
fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

const DEVICES_PID: u64 = 0;
const GROUPS_PID: u64 = 1;
/// Comm-stream tracks use `COMM_TID_BASE + rank` so they sort after every
/// plausible device tid while staying in the `devices` process.
const COMM_TID_BASE: u64 = 1000;

/// Serializes spans as Chrome/Perfetto `trace_events` JSON.
///
/// Every span becomes one complete (`"ph":"X"`) event with timestamps in
/// virtual microseconds; metadata events name the process/thread tracks.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(spans.len() + 8);
    // metadata: process names
    for (pid, name) in [(DEVICES_PID, "devices"), (GROUPS_PID, "groups")] {
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{name}"}}}}"#
        ));
    }
    // stable tid assignment for group tracks, in first-seen order
    let mut group_tids: Vec<String> = Vec::new();
    let mut seen_ranks: Vec<DeviceId> = Vec::new();
    let mut seen_comm_ranks: Vec<DeviceId> = Vec::new();
    for s in spans {
        let (pid, tid) = match &s.track {
            Track::Device(rank) => {
                if !seen_ranks.contains(rank) {
                    seen_ranks.push(*rank);
                    events.push(format!(
                        r#"{{"name":"thread_name","ph":"M","pid":{DEVICES_PID},"tid":{rank},"args":{{"name":"device {rank}"}}}}"#
                    ));
                }
                (DEVICES_PID, *rank as u64)
            }
            Track::DeviceComm(rank) => {
                // comm-stream tracks sit just below their device track
                let tid = COMM_TID_BASE + *rank as u64;
                if !seen_comm_ranks.contains(rank) {
                    seen_comm_ranks.push(*rank);
                    events.push(format!(
                        r#"{{"name":"thread_name","ph":"M","pid":{DEVICES_PID},"tid":{tid},"args":{{"name":"device {rank} comm"}}}}"#
                    ));
                }
                (DEVICES_PID, tid)
            }
            Track::Group(name) => {
                let tid = match group_tids.iter().position(|g| g == name) {
                    Some(i) => i as u64,
                    None => {
                        group_tids.push(name.clone());
                        let tid = (group_tids.len() - 1) as u64;
                        events.push(format!(
                            r#"{{"name":"thread_name","ph":"M","pid":{GROUPS_PID},"tid":{tid},"args":{{"name":"{}"}}}}"#,
                            json_escape(name)
                        ));
                        tid
                    }
                };
                (GROUPS_PID, tid)
            }
        };
        let args = match &s.kind {
            SpanKind::Compute { label } => {
                format!(r#"{{"label":"{}"}}"#, json_escape(label))
            }
            SpanKind::Collective { kind, bytes, group } => {
                let ids: Vec<String> = group.iter().map(|m| m.to_string()).collect();
                format!(
                    r#"{{"op":"{}","bytes":{bytes},"group":[{}]}}"#,
                    kind.name(),
                    ids.join(",")
                )
            }
            SpanKind::P2p {
                peer,
                tag,
                bytes,
                is_send,
            } => {
                format!(r#"{{"peer":{peer},"tag":{tag},"bytes":{bytes},"send":{is_send}}}"#)
            }
            SpanKind::MemMove { bytes, from, to } => {
                format!(r#"{{"bytes":{bytes},"from":"{from}","to":"{to}"}}"#)
            }
            SpanKind::Phase { name } => format!(r#"{{"phase":"{}"}}"#, json_escape(name)),
        };
        events.push(format!(
            r#"{{"name":"{}","cat":"{}","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{tid},"args":{args}}}"#,
            json_escape(&s.kind.name()),
            s.kind.category(),
            us(s.start),
            us(s.end - s.start),
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: DeviceId, kind: SpanKind, start: f64, end: f64) -> Span {
        Span {
            rank,
            track: Track::Device(rank),
            kind,
            start,
            end,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        t.record(span(0, SpanKind::Compute { label: "x".into() }, 0.0, 1.0));
        assert!(t.snapshot().is_empty());
        t.set_enabled(true);
        t.record(span(0, SpanKind::Compute { label: "x".into() }, 0.0, 1.0));
        assert_eq!(t.snapshot().len(), 1);
        t.clear();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn rollup_buckets_and_idle() {
        let spans = vec![
            span(0, SpanKind::Compute { label: "a".into() }, 0.0, 2.0),
            span(
                0,
                SpanKind::Collective {
                    kind: OpKind::AllReduce,
                    bytes: 4,
                    group: vec![0, 1],
                },
                2.0,
                3.0,
            ),
            span(1, SpanKind::Compute { label: "b".into() }, 0.0, 1.0),
            // phases never count as busy time
            span(0, SpanKind::Phase { name: "fwd".into() }, 0.0, 3.0),
        ];
        let r = rollup(&spans);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].rank, 0);
        assert!((r[0].compute - 2.0).abs() < 1e-12);
        assert!((r[0].comm - 1.0).abs() < 1e-12);
        assert!((r[0].idle - 0.0).abs() < 1e-12);
        // rank 1 idles while rank 0 finishes the collective
        assert!((r[1].idle - 2.0).abs() < 1e-12);
        let table = rollup_table(&r);
        assert!(table.contains("idle_ms"));
        assert!(table.contains("pool_hit%"));
        assert!(table.contains("pool: hits="));
        assert!(table.contains("par_util%"));
        assert!(table.contains("par:  jobs="));
    }

    #[test]
    fn snapshot_orders_lanes_canonically() {
        let t = Tracer::default();
        t.set_enabled(true);
        // record in scrambled lane order — the snapshot must not care
        t.record(Span {
            rank: 0,
            track: Track::Group("g0-1".into()),
            kind: SpanKind::Phase { name: "op".into() },
            start: 0.0,
            end: 1.0,
        });
        t.record(span(1, SpanKind::Compute { label: "b".into() }, 0.0, 1.0));
        t.record(Span {
            rank: 0,
            track: Track::DeviceComm(0),
            kind: SpanKind::Phase { name: "ar".into() },
            start: 0.0,
            end: 1.0,
        });
        t.record(span(0, SpanKind::Compute { label: "a".into() }, 0.0, 1.0));
        t.record(span(0, SpanKind::Compute { label: "a2".into() }, 1.0, 2.0));
        let tracks: Vec<Track> = t.snapshot().into_iter().map(|s| s.track).collect();
        assert_eq!(
            tracks,
            vec![
                Track::Device(0),
                Track::Device(0),
                Track::Device(1),
                Track::DeviceComm(0),
                Track::Group("g0-1".into()),
            ]
        );
    }

    #[test]
    fn big_rollup_compacts_to_min_med_max() {
        let rollups: Vec<RankRollup> = (0..ROLLUP_COMPACT_THRESHOLD)
            .map(|rank| RankRollup {
                rank,
                compute: rank as f64,
                ..Default::default()
            })
            .collect();
        let table = rollup_table(&rollups);
        assert!(table.contains(" min"), "{table}");
        assert!(table.contains(" med"), "{table}");
        assert!(table.contains(" max"), "{table}");
        assert!(table.contains("ranks: 64"), "{table}");
        // min 0ms, upper median 32000ms, max 63000ms in the compute column
        assert!(table.contains("0.000"), "{table}");
        assert!(table.contains("32000.000"), "{table}");
        assert!(table.contains("63000.000"), "{table}");
        // one row below threshold stays per-rank
        let small = rollup_table(&rollups[..ROLLUP_COMPACT_THRESHOLD - 1]);
        assert!(!small.contains(" med"), "{small}");
        assert!(small.contains("\n  62 "), "{small}");
        // the full variant always prints every rank
        let full = rollup_table_full(&rollups);
        assert!(full.contains("\n  63 "), "{full}");
        assert!(!full.contains(" med"), "{full}");
    }

    #[test]
    fn chrome_json_names_tracks_once() {
        let spans = vec![
            span(3, SpanKind::Compute { label: "k".into() }, 0.0, 1.0),
            span(3, SpanKind::Compute { label: "k".into() }, 1.0, 2.0),
            Span {
                rank: 0,
                track: Track::Group(group_track_name(&[0, 1])),
                kind: SpanKind::Collective {
                    kind: OpKind::Broadcast,
                    bytes: 16,
                    group: vec![0, 1],
                },
                start: 0.0,
                end: 0.5,
            },
        ];
        let json = chrome_trace_json(&spans);
        assert_eq!(json.matches("\"thread_name\"").count(), 2);
        assert_eq!(json.matches(r#""ph":"X""#).count(), 3);
        assert!(json.contains(r#""name":"g0-1""#));
    }

    #[test]
    fn comm_stream_spans_roll_up_separately() {
        let collective = SpanKind::Collective {
            kind: OpKind::AllReduce,
            bytes: 4,
            group: vec![0, 1],
        };
        let spans = vec![
            span(
                0,
                SpanKind::Compute {
                    label: "bwd".into(),
                },
                0.0,
                4.0,
            ),
            // async all-reduce overlapping the compute span
            Span {
                rank: 0,
                track: Track::DeviceComm(0),
                kind: collective.clone(),
                start: 1.0,
                end: 5.0,
            },
        ];
        let r = rollup(&spans);
        assert_eq!(r.len(), 1);
        assert!((r[0].compute - 4.0).abs() < 1e-12);
        assert!((r[0].comm - 0.0).abs() < 1e-12);
        assert!((r[0].comm_overlap - 4.0).abs() < 1e-12);
        // makespan covers the comm track: 5s total, 4s busy on main track
        assert!((r[0].idle - 1.0).abs() < 1e-12);
        let table = rollup_table(&r);
        assert!(table.contains("overlap_ms"));
        let json = chrome_trace_json(&spans);
        assert!(json.contains(r#""name":"device 0 comm""#));
        assert!(json.contains(&format!(r#""tid":{}"#, COMM_TID_BASE)));
    }

    #[test]
    fn escaping_survives_quotes() {
        let s = span(
            0,
            SpanKind::Compute {
                label: "a\"b\\c".into(),
            },
            0.0,
            1.0,
        );
        let json = chrome_trace_json(&[s]);
        assert!(json.contains(r#"a\"b\\c"#));
    }
}
