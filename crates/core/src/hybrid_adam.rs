//! The hybrid (CPU + GPU) Adam of Section 3.2.
//!
//! DeepSpeed's CPU Adam statically keeps *all* FP32 master weights in host
//! memory; Colossal-AI's hybrid Adam watches GPU headroom and keeps a
//! `gpu_fraction` of the parameters (and their moments) device-resident,
//! updating on both processors. The arithmetic is the shared
//! [`colossalai_autograd::adamw_update`] kernel on both halves, so any split
//! produces *bitwise identical* parameters — only the time and transfer
//! volume change.

use colossalai_autograd::{adamw_update, Layer};
use colossalai_memory::offload::{plan, ModelData, OffloadPlan, PlacementPolicy};
use colossalai_parallel::data_parallel::{flatten_grads, flatten_params, unflatten_from_slice};
use colossalai_tensor::pool;
use colossalai_topology::{HostSpec, Link};

/// Hybrid AdamW over a flat parameter vector split at `gpu_elems`.
pub struct HybridAdam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    /// Number of leading elements updated on the GPU; the rest update on
    /// the CPU.
    gpu_elems: usize,
    n: usize,
    master: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl HybridAdam {
    /// Captures the model's parameters; `gpu_fraction` of them will be
    /// updated device-side.
    pub fn new(model: &mut dyn Layer, gpu_fraction: f64, lr: f32, weight_decay: f32) -> Self {
        assert!((0.0..=1.0).contains(&gpu_fraction), "fraction out of range");
        let master = flatten_params(model).into_vec();
        let n = master.len();
        let gpu_elems = ((n as f64) * gpu_fraction).round() as usize;
        HybridAdam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            gpu_elems,
            n,
            m: vec![0.0; n],
            v: vec![0.0; n],
            master,
        }
    }

    /// Builds the split from an adaptive placement plan.
    pub fn from_plan(
        model: &mut dyn Layer,
        plan: &OffloadPlan,
        lr: f32,
        weight_decay: f32,
    ) -> Self {
        let frac = plan.opt_gpu_fraction;
        HybridAdam::new(model, frac, lr, weight_decay)
    }

    /// Parameters updated on the GPU.
    pub fn gpu_elems(&self) -> usize {
        self.gpu_elems
    }

    /// Parameters updated on the CPU.
    pub fn cpu_elems(&self) -> usize {
        self.n - self.gpu_elems
    }

    /// One hybrid step: the GPU half and the CPU half run the identical
    /// AdamW kernel on their slices, then the model is refreshed from the
    /// master copy. Returns the modeled step overhead in seconds (PCIe
    /// traffic for the CPU half's gradients/params + CPU compute time).
    pub fn step(&mut self, model: &mut dyn Layer, pcie: Link, host: &HostSpec) -> f64 {
        let grads = flatten_grads(model).into_vec();
        assert_eq!(grads.len(), self.n, "model parameter set changed");
        self.t += 1;
        let g = self.gpu_elems;
        // "GPU" half
        adamw_update(
            &mut self.master[..g],
            &grads[..g],
            &mut self.m[..g],
            &mut self.v[..g],
            self.t,
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            self.weight_decay,
        );
        // "CPU" half — same kernel, same hyper-parameters
        adamw_update(
            &mut self.master[g..],
            &grads[g..],
            &mut self.m[g..],
            &mut self.v[g..],
            self.t,
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            self.weight_decay,
        );
        // write the master copy straight back into the params (no clone of
        // the flat master per step) and hand the grad buffer to the pool
        unflatten_from_slice(model, &self.master);
        pool::recycle(grads);
        model.zero_grad();

        // cost model: the CPU half's fp16 gradients go down and updated
        // fp16 params come back over PCIe; CPU Adam runs at host FLOPs
        let cpu_elems = (self.n - g) as u64;
        if cpu_elems == 0 {
            return 0.0;
        }
        let bytes = 2 * cpu_elems; // fp16 each way
        pcie.transfer_time(bytes) * 2.0
            + (cpu_elems * colossalai_memory::offload::ADAM_FLOPS_PER_PARAM) as f64 / host.cpu_flops
    }
}

/// Convenience: the adaptive placement plan for a single device training
/// `n_params` with `working_bytes` of activations on a `capacity` GPU.
pub fn adaptive_plan(n_params: u64, capacity: u64, working_bytes: u64) -> OffloadPlan {
    plan(
        PlacementPolicy::Adaptive,
        ModelData {
            n_params,
            dp_degree: 1,
        },
        capacity,
        working_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::{AdamW, Linear, Sequential};
    use colossalai_tensor::init;

    fn make_model(seed: u64) -> Sequential {
        let mut rng = init::rng(seed);
        Sequential::new(vec![
            Box::new(Linear::from_rng("a", 5, 7, true, &mut rng)),
            Box::new(Linear::from_rng("b", 7, 3, true, &mut rng)),
        ])
    }

    fn set_grads(model: &mut dyn Layer, seed: u64) {
        let mut rng = init::rng(seed);
        model.visit_params(&mut |p| {
            let g = init::uniform(p.value().shape().clone(), -1.0, 1.0, &mut rng);
            p.accumulate_grad(&g);
        });
    }

    #[test]
    fn any_split_matches_full_gpu_bitwise() {
        // reference: gpu_fraction = 1.0
        let run = |frac: f64| -> Vec<f32> {
            let mut model = make_model(77);
            let mut opt = HybridAdam::new(&mut model, frac, 0.01, 0.02);
            for s in 0..4 {
                set_grads(&mut model, 100 + s);
                let _ = opt.step(&mut model, Link::pcie(), &HostSpec::dgx());
            }
            flatten_params(&mut model).into_vec()
        };
        let full_gpu = run(1.0);
        for frac in [0.0, 0.25, 0.5, 0.9] {
            assert_eq!(run(frac), full_gpu, "fraction {frac} diverged");
        }
    }

    #[test]
    fn matches_standard_adamw() {
        let mut reference = make_model(78);
        let mut std_opt = AdamW::new(0.01, 0.02);
        let mut hybrid_model = make_model(78);
        let mut hybrid = HybridAdam::new(&mut hybrid_model, 0.5, 0.01, 0.02);
        for s in 0..3 {
            set_grads(&mut reference, 200 + s);
            std_opt.step_layer(&mut reference);
            reference.zero_grad();
            set_grads(&mut hybrid_model, 200 + s);
            let _ = hybrid.step(&mut hybrid_model, Link::pcie(), &HostSpec::dgx());
        }
        let a = flatten_params(&mut reference);
        let b = flatten_params(&mut hybrid_model);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn overhead_zero_when_fully_on_gpu() {
        let mut model = make_model(79);
        let mut opt = HybridAdam::new(&mut model, 1.0, 0.01, 0.0);
        set_grads(&mut model, 300);
        let t = opt.step(&mut model, Link::pcie(), &HostSpec::dgx());
        assert_eq!(t, 0.0);
    }

    #[test]
    fn overhead_grows_with_cpu_share() {
        let overhead = |frac: f64| -> f64 {
            let mut model = make_model(80);
            let mut opt = HybridAdam::new(&mut model, frac, 0.01, 0.0);
            set_grads(&mut model, 301);
            opt.step(&mut model, Link::pcie(), &HostSpec::dgx())
        };
        let half = overhead(0.5);
        let none = overhead(0.0);
        assert!(none > half && half > 0.0);
    }

    #[test]
    fn from_plan_uses_opt_fraction() {
        let mut model = make_model(81);
        // plenty of headroom: plan keeps everything on GPU
        let plan = adaptive_plan(1_000, 1 << 30, 0);
        let opt = HybridAdam::from_plan(&mut model, &plan, 0.01, 0.0);
        assert_eq!(opt.cpu_elems(), 0);
    }
}
