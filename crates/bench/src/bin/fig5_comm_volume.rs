//! E1 — Table 1 / Fig 5: communication volume of tensor-parallel modes for
//! `Y = W X` (h = 1024, s = 512, b = 32) as the device count scales.

use colossalai_bench::{fmt_elements, print_table};
use colossalai_parallel::volume::{fig5_series, MatmulShape, TpMode};

fn main() {
    let shape = MatmulShape {
        b: 32,
        s: 512,
        h: 1024,
    };
    println!(
        "Fig 5 shape: X = (b={}, s={}, h={}), S_X = {}, S_W = {}",
        shape.b,
        shape.s,
        shape.h,
        fmt_elements(shape.s_x()),
        fmt_elements(shape.s_w())
    );

    // Table 1's closed forms at representative counts
    let counts = [4usize, 8, 16, 32, 64, 128, 256, 512];
    let series = fig5_series(&counts);
    let mut rows = Vec::new();
    for (p, entries) in &series {
        let cell = |label: &str| -> String {
            entries
                .iter()
                .find(|(l, _)| l == label)
                .map_or("-".to_string(), |(_, v)| fmt_elements(*v))
        };
        rows.push(vec![
            p.to_string(),
            cell("1D"),
            cell("2D"),
            cell("2.5D (d=2)"),
            cell("3D"),
        ]);
    }
    print_table(
        "Fig 5: total communication volume (elements) per Y = WX",
        &["#GPUs", "1D", "2D", "2.5D (d=2)", "3D"],
        &rows,
    );

    // crossover commentary like the paper's Section 3.1
    let v1_64 = TpMode::OneD.volume(shape, 64);
    let v2_64 = TpMode::TwoD.volume(shape, 64);
    let v3_64 = TpMode::ThreeD.volume(shape, 64);
    println!(
        "\nAt 64 GPUs: 2D moves {:.1}% and 3D {:.1}% of 1D's volume — the \
         advanced modes' advantage that drives Table 3.",
        100.0 * v2_64 as f64 / v1_64 as f64,
        100.0 * v3_64 as f64 / v1_64 as f64
    );
}
