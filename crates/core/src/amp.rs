//! Automatic mixed precision: fp16 parameter/gradient emulation with
//! dynamic loss scaling, plus the Fig 6 storage-reuse accounting.
//!
//! Numerics: master weights stay fp32; before each forward the working
//! parameters are rounded through binary16 (software [`colossalai_tensor::F16`]),
//! gradients are computed against those rounded weights and rounded to fp16
//! themselves — the exact numeric path of GPU fp16 training with fp32
//! accumulate.

use colossalai_autograd::Layer;
use colossalai_tensor::f16::convert_slice;
use colossalai_tensor::Tensor;

/// Dynamic loss scaler (the DeepSpeed/Apex scheme): scale doubles after a
/// streak of finite-gradient steps and halves on overflow, skipping the
/// step.
#[derive(Clone, Debug)]
pub struct GradScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    good_steps: u32,
}

impl Default for GradScaler {
    fn default() -> Self {
        GradScaler {
            scale: 65536.0,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 200,
            good_steps: 0,
        }
    }
}

impl GradScaler {
    pub fn new(initial_scale: f32) -> Self {
        GradScaler {
            scale: initial_scale,
            ..Default::default()
        }
    }

    /// Current loss scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Scales the loss gradient before backward.
    pub fn scale_grad(&self, dy: &Tensor) -> Tensor {
        dy.map(|v| v * self.scale)
    }

    /// Unscales accumulated gradients and updates the scale. Returns `false`
    /// (step must be skipped, gradients cleared) when any gradient is
    /// non-finite.
    pub fn unscale_and_update(&mut self, model: &mut dyn Layer) -> bool {
        let mut finite = true;
        model.visit_params(&mut |p| {
            if p.grad().data().iter().any(|v| !v.is_finite()) {
                finite = false;
            }
        });
        if !finite {
            self.scale *= self.backoff_factor;
            self.good_steps = 0;
            model.zero_grad();
            return false;
        }
        let inv = 1.0 / self.scale;
        model.visit_params(&mut |p| p.grad_mut().scale(inv));
        self.good_steps += 1;
        if self.good_steps >= self.growth_interval {
            self.scale *= self.growth_factor;
            self.good_steps = 0;
        }
        true
    }
}

/// Rounds every parameter through fp16 (the "cast weights to half for the
/// forward" step) via the batched [`convert_slice`] sweep. Master copies
/// should be snapshotted by the optimizer before calling this.
pub fn quantize_params_f16(model: &mut dyn Layer) {
    model.visit_params(&mut |p| convert_slice(p.value_mut().data_mut()));
}

/// Rounds every gradient through fp16 (gradients live in the reused fp16
/// storage of Fig 6), batched like [`quantize_params_f16`].
pub fn quantize_grads_f16(model: &mut dyn Layer) {
    model.visit_params(&mut |p| convert_slice(p.grad_mut().data_mut()));
}

/// The AMP matmul: deterministic full-precision GEMM by default; under
/// [`colossalai_tensor::fast_mode`] the bf16 storage-and-compute GEMM
/// ([`colossalai_tensor::matmul_bf16`]) — operands rounded to bf16 as they
/// are packed, f32 accumulation — so the mixed-precision path runs its
/// *compute*, not just its storage, in reduced precision. Results under
/// fast mode differ from the deterministic GEMM by the bf16 operand
/// rounding (documented ULP budget, DESIGN.md §13).
pub fn amp_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    if colossalai_tensor::fast_mode() {
        colossalai_tensor::matmul_bf16(a, b)
    } else {
        colossalai_tensor::matmul(a, b)
    }
}

/// [`amp_matmul`] for left operands with arbitrary leading dimensions (the
/// linear-layer activation contract of `matmul_nd`).
pub fn amp_matmul_nd(a: &Tensor, b: &Tensor) -> Tensor {
    if colossalai_tensor::fast_mode() {
        colossalai_tensor::matmul_nd_bf16(a, b)
    } else {
        colossalai_tensor::matmul_nd(a, b)
    }
}

/// FP16 model-data bytes for `n` parameters with and without the Fig 6
/// parameter/gradient storage reuse.
pub fn fp16_model_bytes(n_params: u64, reuse_storage: bool) -> u64 {
    if reuse_storage {
        colossalai_memory::reuse::peak_bytes_with_reuse(n_params)
    } else {
        colossalai_memory::reuse::peak_bytes_without_reuse(n_params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::{Linear, Param};
    use colossalai_tensor::init;

    fn model_with_grad(grad_val: f32) -> Linear {
        let mut rng = init::rng(42);
        let mut l = Linear::from_rng("l", 2, 2, false, &mut rng);
        l.visit_params(&mut |p: &mut Param| {
            p.accumulate_grad(&Tensor::full([2, 2], grad_val));
        });
        l
    }

    #[test]
    fn overflow_halves_scale_and_skips() {
        let mut scaler = GradScaler::new(1024.0);
        let mut m = model_with_grad(f32::INFINITY);
        assert!(!scaler.unscale_and_update(&mut m));
        assert_eq!(scaler.scale(), 512.0);
        // gradients were cleared so the step is safely skippable
        m.visit_params(&mut |p| assert!(p.grad().data().iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn finite_grads_are_unscaled() {
        let mut scaler = GradScaler::new(8.0);
        let mut m = model_with_grad(16.0);
        assert!(scaler.unscale_and_update(&mut m));
        m.visit_params(&mut |p| assert_eq!(p.grad().data(), &[2.0; 4]));
        assert_eq!(
            scaler.scale(),
            8.0,
            "scale unchanged before growth interval"
        );
    }

    #[test]
    fn scale_grows_after_interval() {
        let mut scaler = GradScaler::new(4.0);
        scaler.growth_interval = 3;
        for _ in 0..3 {
            let mut m = model_with_grad(1.0);
            assert!(scaler.unscale_and_update(&mut m));
        }
        assert_eq!(scaler.scale(), 8.0);
    }

    #[test]
    fn scale_grad_multiplies() {
        let scaler = GradScaler::new(4.0);
        let dy = Tensor::full([3], 0.5);
        assert_eq!(scaler.scale_grad(&dy).data(), &[2.0; 3]);
    }

    #[test]
    fn quantization_rounds_through_f16() {
        let mut rng = init::rng(43);
        let mut l = Linear::from_rng("l", 4, 4, false, &mut rng);
        let before: Vec<f32> = l.weight().value().data().to_vec();
        quantize_params_f16(&mut l);
        let after = l.weight().value().data();
        for (b, a) in before.iter().zip(after) {
            assert!((b - a).abs() <= b.abs() * 2.0f32.powi(-11) + 1e-8);
            // and the value is exactly representable in f16 now
            let h = colossalai_tensor::F16::from_f32(*a);
            assert_eq!(h.to_f32(), *a);
        }
    }

    #[test]
    fn reuse_accounting() {
        assert_eq!(fp16_model_bytes(1000, true), 2000);
        assert_eq!(fp16_model_bytes(1000, false), 4000);
    }

    #[test]
    fn amp_matmul_close_to_full_precision() {
        // mode-agnostic: in the deterministic default the two are equal; in
        // fast mode (e.g. the COLOSSAL_FAST=1 CI leg) amp_matmul takes the
        // bf16 GEMM and must stay within the operand-rounding budget. The
        // dedicated fast-mode toggling tests live in tests/fast_modes.rs.
        let mut rng = init::rng(7);
        let (m, k, n) = (9, 33, 11);
        let a = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let b = init::uniform([k, n], -1.0, 1.0, &mut rng);
        let got = amp_matmul(&a, &b);
        let want = colossalai_tensor::matmul(&a, &b);
        let tol = k as f32 * 2.0f32.powi(-7);
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() <= tol, "{g} vs {w}");
        }
        let a3 = init::uniform([2, 5, k], -1.0, 1.0, &mut rng).reshaped([2, 5, k]);
        let got_nd = amp_matmul_nd(&a3, &b);
        assert_eq!(got_nd.dims(), &[2, 5, n]);
    }
}
