//! Integration: topology-aware hierarchical collectives and bucketed,
//! backward-overlapped gradient sync.
//!
//! The contract under test: the all-reduce *algorithm* (flat ring,
//! two-level hierarchical, binomial tree, recursive halving-doubling) and
//! the *schedule* (blocking vs comm-stream overlapped) only move virtual
//! time — the numbers are bitwise-identical to the serial reference in
//! every case, including ragged groups where a schedule degrades to the
//! ring.

use colossalai::autograd::{AdamW, Layer, Linear, Sequential};
use colossalai::comm::{AllReduceAlgo, DeviceCtx, SpanKind, Track, World};
use colossalai::parallel::data_parallel::{flatten_params, split_batch, DataParallel};
use colossalai::parallel::TimedLayer;
use colossalai::tensor::ops::cross_entropy;
use colossalai::tensor::{init, Tensor};
use colossalai::topology::systems::{system_i, system_ii, system_iii, system_iv};
use colossalai::topology::Cluster;

/// All-reduce over `members` under a pinned algorithm; every rank
/// contributes a deterministic rank-dependent payload.
fn allreduce_under(
    cluster: Cluster,
    members: &[usize],
    n: usize,
    algo: Option<AllReduceAlgo>,
) -> Vec<Vec<f32>> {
    let world = World::new(cluster);
    world.force_allreduce_algo(algo);
    let ranks = members.len().max(members.iter().max().unwrap() + 1);
    let members = members.to_vec();
    let out = world.run_on(ranks, |ctx| {
        if !members.contains(&ctx.rank()) {
            return Vec::new();
        }
        let g = ctx.group(&members);
        let mut rng = init::rng(0xC0FFEE + ctx.rank() as u64);
        let t = init::uniform([n], -1.0, 1.0, &mut rng);
        g.all_reduce(ctx, t).into_vec()
    });
    out.into_iter().filter(|v| !v.is_empty()).collect()
}

/// The serial reference: sum the same payloads in canonical rank order.
fn serial_sum(members: &[usize], n: usize) -> Vec<f32> {
    let mut acc = vec![0.0f32; n];
    for &r in members {
        let mut rng = init::rng(0xC0FFEE + r as u64);
        let t = init::uniform([n], -1.0, 1.0, &mut rng);
        for (a, x) in acc.iter_mut().zip(t.data()) {
            *a += x;
        }
    }
    acc
}

#[test]
fn hierarchical_equals_flat_equals_serial_on_every_system() {
    // group shapes across Systems I-IV, including ragged node populations
    // (hierarchical degrades to flat there) and 1-GPU-per-node System IV
    let cases: Vec<(&str, Cluster, Vec<usize>)> = vec![
        ("I full node", system_i(), (0..8).collect()),
        ("II half node", system_ii(), (0..4).collect()),
        ("II full node", system_ii(), (0..8).collect()),
        ("III one node", system_iii(), (0..4).collect()),
        ("III two nodes", system_iii(), (0..8).collect()),
        ("III four nodes", system_iii(), (0..16).collect()),
        ("III ragged", system_iii(), vec![0, 1, 2, 4, 5]),
        ("III leaders only", system_iii(), vec![0, 4, 8]),
        ("IV eight hosts", system_iv(), (0..8).collect()),
    ];
    let n = 101; // not divisible by most group sizes: exercises remainders
    for (label, cluster, members) in cases {
        let want = serial_sum(&members, n);
        for algo in [
            None,
            Some(AllReduceAlgo::FlatRing),
            Some(AllReduceAlgo::Hierarchical),
            Some(AllReduceAlgo::Tree),
            Some(AllReduceAlgo::RecursiveHalvingDoubling),
        ] {
            let got = allreduce_under(cluster.clone(), &members, n, algo);
            assert_eq!(got.len(), members.len(), "{label}: missing ranks");
            for g in &got {
                assert_eq!(
                    &g[..],
                    &want[..],
                    "{label} with {algo:?} diverged from the serial sum"
                );
            }
        }
    }
}

fn timed_model(ctx: &DeviceCtx, seed: u64) -> Sequential {
    let mut rng = init::rng(seed);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for i in 0..4 {
        let (d_in, d_out) = if i == 0 { (8, 32) } else { (32, 32) };
        layers.push(Box::new(TimedLayer::new(
            ctx,
            Linear::from_rng(&format!("l{i}"), d_in, d_out, true, &mut rng),
            10e-6,
            20e-6,
        )));
    }
    Sequential::new(layers)
}

/// One DP training run on System III; returns (params, max clock, world).
fn dp_run(p: usize, overlap: bool, trace: bool) -> (Vec<f32>, f64, World) {
    let world = World::new(system_iii());
    if trace {
        world.enable_tracing();
    }
    let mut rng = init::rng(31);
    let xs: Vec<Tensor> = (0..3)
        .map(|_| init::uniform([p * 2, 8], -1.0, 1.0, &mut rng))
        .collect();
    let out = world.run_on(p, |ctx| {
        let g = ctx.world_group(p);
        // 4 KiB buckets over ~3k params -> several buckets per backward
        let mut dp = DataParallel::with_bucket_bytes(ctx, &g, timed_model(ctx, 32), 4096)
            .with_overlap(overlap);
        let mut opt = AdamW::new(0.01, 0.01);
        for x in &xs {
            dp.zero_grad();
            let x_local = split_batch(x, p, g.rank());
            let t: Vec<usize> = (0..x_local.dims()[0]).map(|i| i % 32).collect();
            let logits = dp.forward(&x_local);
            let (_, d) = cross_entropy(&logits, &t);
            let _ = ctx.trace_phase("backward", || dp.backward(&d));
            opt.step_layer(&mut dp);
        }
        (flatten_params(&mut dp).into_vec(), ctx.clock())
    });
    let makespan = out.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    (out.into_iter().next().unwrap().0, makespan, world)
}

#[test]
fn overlapped_dp_step_is_faster_and_bitwise_identical_on_system_iii() {
    let (p_block, t_block, _) = dp_run(8, false, false);
    let (p_over, t_over, _) = dp_run(8, true, false);
    assert_eq!(p_block, p_over, "overlap changed the trajectory bits");
    assert!(
        t_over < t_block * 0.95,
        "overlap should measurably beat blocking: {t_over} vs {t_block}"
    );
}

#[test]
fn trace_shows_bucket_collectives_overlapping_backward_compute() {
    let (_, _, world) = dp_run(8, true, true);
    let spans = world.trace();

    // per-rank backward phase windows on the main device track
    let backward: Vec<_> = spans
        .iter()
        .filter(|s| {
            matches!(&s.kind, SpanKind::Phase { name } if name == "backward")
                && matches!(s.track, Track::Device(_))
        })
        .collect();
    assert!(!backward.is_empty(), "no backward phase spans recorded");

    // comm-stream spans: the async bucket all-reduces
    let comm: Vec<_> = spans
        .iter()
        .filter(|s| matches!(s.track, Track::DeviceComm(_)))
        .collect();
    assert!(!comm.is_empty(), "no comm-stream spans recorded");

    // at least one bucket collective must LAUNCH strictly inside a backward
    // phase on the same rank and still be running when a later part of the
    // phase executes — communication riding under compute
    let overlapping = comm.iter().any(|c| {
        backward
            .iter()
            .any(|b| b.rank == c.rank && c.start >= b.start && c.start < b.end && c.end > c.start)
    });
    assert!(
        overlapping,
        "no comm-stream span launched inside a backward phase"
    );

    // and the rollup accounts comm-stream time separately from busy time
    let rollup = world.trace_rollup();
    assert!(
        rollup.iter().any(|r| r.comm_overlap > 0.0),
        "rollup shows no comm-stream time"
    );
}
