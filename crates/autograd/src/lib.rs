//! # colossalai-autograd
//!
//! Module-style automatic differentiation over `colossalai-tensor`: layers
//! with explicit forward/backward and cached activations, trainable
//! parameters, activation checkpointing, optimizers (SGD / AdamW), and a
//! finite-difference gradient checker.
//!
//! The explicit-cache design (instead of a dynamic tape) mirrors how
//! Megatron-LM and Colossal-AI structure tensor-parallel layers: distributed
//! variants in `colossalai-parallel` implement the same [`layer::Layer`]
//! shape with collectives interleaved into forward/backward, and activation
//! checkpointing is a wrapper that drops caches and recomputes.

pub mod act;
pub mod attention;
pub mod checkpoint;
pub mod dropout;
pub mod embedding;
pub mod layer;
pub mod linear;
pub mod lr;
pub mod norm;
pub mod optim;
pub mod param;
pub mod state;

pub use act::{Gelu, Relu};
pub use attention::{merge_heads, split_heads, MultiHeadAttention};
pub use checkpoint::Checkpoint;
pub use dropout::Dropout;
pub use embedding::{Embedding, PositionEmbedding};
pub use layer::{grad_check, Layer, Sequential};
pub use linear::Linear;
pub use lr::LrSchedule;
pub use norm::LayerNorm;
pub use optim::{adamw_update, sgd_momentum_update, AdamState, AdamW, Sgd};
pub use param::Param;
pub use state::StateDict;
