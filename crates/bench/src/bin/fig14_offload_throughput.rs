//! E9 — Fig 14: throughput of sharded + offloaded training (GPT-2 10B,
//! batch 4/GPU) on System II, scaling 1 to 8 GPUs: DeepSpeed's static
//! CPU-offload policy vs Colossal-AI's adaptive placement. Includes the
//! OPT-13B batch-32 companion experiment (paper: 1.33x at 8 GPUs).

use colossalai_bench::{fmt_bytes, print_table};
use colossalai_memory::offload::PlacementPolicy;
use colossalai_models::TransformerConfig;
use colossalai_parallel::throughput::offload_step;
use colossalai_topology::systems::system_ii;

fn main() {
    let cluster = system_ii();

    // Fig 14: GPT-2 10B, batch 4 per GPU
    let gpt = TransformerConfig::gpt2_10b();
    println!(
        "GPT-2 10B: {} transformer parameters ({} of fp16 model data per \
         ZeRO-3 rank at dp=8)",
        gpt.transformer_params(),
        fmt_bytes(2 * gpt.transformer_params() / 8)
    );
    let mut rows = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let devices: Vec<usize> = (0..p).collect();
        let s = offload_step(PlacementPolicy::StaticCpu, &gpt, &cluster, &devices, 4);
        let a = offload_step(PlacementPolicy::Adaptive, &gpt, &cluster, &devices, 4);
        rows.push(vec![
            p.to_string(),
            format!("{:.2}", s.throughput()),
            format!("{:.2}", a.throughput()),
            format!("{:.2}x", a.throughput() / s.throughput()),
        ]);
    }
    print_table(
        "Fig 14: GPT-2 10B throughput (samples/s), batch 4/GPU on System II",
        &[
            "#GPUs",
            "DeepSpeed (static offload)",
            "Colossal-AI (adaptive)",
            "speedup",
        ],
        &rows,
    );

    // OPT-13B at batch 32: memory saturated, smaller but real gap
    let opt = TransformerConfig::opt_13b();
    let devices: Vec<usize> = (0..8).collect();
    let s = offload_step(PlacementPolicy::StaticCpu, &opt, &cluster, &devices, 32);
    let a = offload_step(PlacementPolicy::Adaptive, &opt, &cluster, &devices, 32);
    print_table(
        "OPT-13B, batch 32/GPU, 8 GPUs",
        &["system", "samples/s"],
        &[
            vec![
                "DeepSpeed (static)".into(),
                format!("{:.2}", s.throughput()),
            ],
            vec![
                "Colossal-AI (adaptive)".into(),
                format!("{:.2}", a.throughput()),
            ],
            vec![
                "speedup".into(),
                format!("{:.2}x", a.throughput() / s.throughput()),
            ],
        ],
    );
    println!(
        "\nPaper reference: with free GPU memory (batch 4) the adaptive \
         policy avoids most CPU traffic and wins decisively; with memory \
         saturated (OPT-13B, batch 32) it still wins 1.33x at 8 GPUs."
    );
}
