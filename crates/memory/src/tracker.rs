//! Per-device memory accounting with peak tracking and OOM detection.
//!
//! This is the instrument behind every memory figure in the paper's
//! evaluation: Fig 8's "max allocated CUDA memory" range tests and Fig 12's
//! max-batch/max-sequence searches both reduce to "allocate what the
//! strategy needs and watch the peak / the OOM line".

use std::fmt;

/// Error returned when an allocation would exceed device capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OomError {
    pub requested: u64,
    pub in_use: u64,
    pub capacity: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: requested {} B with {} B in use of {} B capacity",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// Tracks live and peak allocation against a fixed capacity.
#[derive(Clone, Debug)]
pub struct MemoryTracker {
    capacity: u64,
    in_use: u64,
    peak: u64,
    alloc_count: u64,
    free_count: u64,
}

impl MemoryTracker {
    /// Creates a tracker for a device with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryTracker {
            capacity,
            in_use: 0,
            peak: 0,
            alloc_count: 0,
            free_count: 0,
        }
    }

    /// An effectively unbounded tracker (host DRAM in most experiments).
    pub fn unbounded() -> Self {
        MemoryTracker::new(u64::MAX)
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Live bytes.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark since construction or the last [`Self::reset_peak`].
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Bytes still allocatable.
    pub fn headroom(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// Fraction of capacity currently in use (0 for an unbounded tracker).
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 || self.capacity == u64::MAX {
            0.0
        } else {
            self.in_use as f64 / self.capacity as f64
        }
    }

    /// Attempts to allocate `bytes`; fails without side effects on OOM.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OomError> {
        if bytes > self.headroom() {
            return Err(OomError {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        self.alloc_count += 1;
        Ok(())
    }

    /// Releases `bytes`. Panics if more is freed than is live (a
    /// double-free-style accounting bug).
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.in_use,
            "freeing {bytes} B with only {} B live",
            self.in_use
        );
        self.in_use -= bytes;
        self.free_count += 1;
    }

    /// Restarts peak tracking from the current live amount.
    pub fn reset_peak(&mut self) {
        self.peak = self.in_use;
    }

    /// (allocations, frees) so far — used by balance assertions in tests.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.alloc_count, self.free_count)
    }

    /// Runs `f` with `bytes` temporarily allocated (the transient-activation
    /// pattern: allocate, compute, free).
    pub fn with_scratch<R>(
        &mut self,
        bytes: u64,
        f: impl FnOnce(&mut Self) -> R,
    ) -> Result<R, OomError> {
        self.alloc(bytes)?;
        let r = f(self);
        self.free(bytes);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water() {
        let mut t = MemoryTracker::new(1000);
        t.alloc(400).unwrap();
        t.alloc(300).unwrap();
        t.free(500);
        t.alloc(100).unwrap();
        assert_eq!(t.in_use(), 300);
        assert_eq!(t.peak(), 700);
    }

    #[test]
    fn oom_is_side_effect_free() {
        let mut t = MemoryTracker::new(100);
        t.alloc(80).unwrap();
        let err = t.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(t.in_use(), 80);
        assert_eq!(t.peak(), 80);
        // exact fit succeeds
        t.alloc(20).unwrap();
        assert_eq!(t.headroom(), 0);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut t = MemoryTracker::new(100);
        t.alloc(10).unwrap();
        t.free(20);
    }

    #[test]
    fn scratch_restores_balance() {
        let mut t = MemoryTracker::new(100);
        t.alloc(40).unwrap();
        let peak_inside = t.with_scratch(50, |t| t.in_use()).unwrap();
        assert_eq!(peak_inside, 90);
        assert_eq!(t.in_use(), 40);
        assert_eq!(t.peak(), 90);
        // scratch larger than headroom fails cleanly
        assert!(t.with_scratch(100, |_| ()).is_err());
        assert_eq!(t.in_use(), 40);
    }

    #[test]
    fn utilization_fraction() {
        let mut t = MemoryTracker::new(200);
        assert_eq!(t.utilization(), 0.0);
        t.alloc(50).unwrap();
        assert_eq!(t.utilization(), 0.25);
        assert_eq!(MemoryTracker::unbounded().utilization(), 0.0);
    }

    #[test]
    fn reset_peak() {
        let mut t = MemoryTracker::new(100);
        t.alloc(60).unwrap();
        t.free(60);
        assert_eq!(t.peak(), 60);
        t.reset_peak();
        assert_eq!(t.peak(), 0);
    }
}
