//! 3D tensor parallelism over an `l x l x l` device cube (Agarwal et al.'s
//! 3D matmul, as adapted for tensor parallelism by Bian et al. — the
//! algorithm inside Colossal-AI).
//!
//! Layouts for `Y = X W` with `X: [M, K]`, `W: [K, N]` on device `(i, j, k)`:
//!
//! * `X` tile `[M/l^2, K/l]` — the first dimension is partitioned *twice*
//!   (by `i`, then `k`), the last once (by `j`), exactly the paper's
//!   "partition the first and last dimension only where the first dimension
//!   will be partitioned twice";
//! * `W` tile `[K/l^2, N/l]` — `K` split by `(j, i)`, `N` by `k`;
//! * `Y` tile `[M/l^2, N/l]` — `M` split by `(i, j)`, `N` by `k`.
//!
//! Forward: all-gather `X` over the `k`-axis, all-gather `W` over the
//! `i`-axis, local matmul, reduce-scatter over the `j`-axis. Each pass
//! therefore moves `(l-1)/l * (S_X + S_W + S_Y)` elements — the Table 1 row.

use colossalai_autograd::{Layer, Param};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_tensor::{matmul, matmul_at, matmul_bt, Tensor};
use colossalai_topology::DeviceId;

/// A device's place in the cube, with its three axis groups.
#[derive(Clone)]
pub struct Grid3d {
    pub l: usize,
    pub i: usize,
    pub j: usize,
    pub k: usize,
    /// Group varying `i` (fixed `j, k`).
    pub i_group: Group,
    /// Group varying `j` (fixed `i, k`).
    pub j_group: Group,
    /// Group varying `k` (fixed `i, j`).
    pub k_group: Group,
    /// Group varying both `i` and `j` (fixed `k`) — bias reduction.
    pub ij_group: Group,
}

impl Grid3d {
    /// Builds the cube over `members` ordered `members[i*l^2 + j*l + k]`.
    pub fn new(ctx: &DeviceCtx, members: &[DeviceId]) -> Self {
        let p = members.len();
        let l = crate::volume::int_cbrt(p).unwrap_or_else(|| {
            panic!("3D tensor parallelism requires a cubic device count, got {p}")
        });
        let my = members
            .iter()
            .position(|&m| m == ctx.rank())
            .expect("calling device not in 3D cube");
        let (i, rest) = (my / (l * l), my % (l * l));
        let (j, k) = (rest / l, rest % l);
        let at = |i: usize, j: usize, k: usize| members[i * l * l + j * l + k];
        let i_members: Vec<DeviceId> = (0..l).map(|q| at(q, j, k)).collect();
        let j_members: Vec<DeviceId> = (0..l).map(|q| at(i, q, k)).collect();
        let k_members: Vec<DeviceId> = (0..l).map(|q| at(i, j, q)).collect();
        let ij_members: Vec<DeviceId> = (0..l)
            .flat_map(|qi| (0..l).map(move |qj| (qi, qj)))
            .map(|(qi, qj)| at(qi, qj, k))
            .collect();
        Grid3d {
            l,
            i,
            j,
            k,
            i_group: ctx.group(&i_members),
            j_group: ctx.group(&j_members),
            k_group: ctx.group(&k_members),
            ij_group: ctx.group(&ij_members),
        }
    }
}

/// Slices the `X` tile `[M/l^2, K/l]` for device `(i, j, k)`.
pub fn tile_x_3d(global: &Tensor, g: &Grid3d) -> Tensor {
    let (m, kk) = (global.dims()[0], global.dims()[1]);
    let l = g.l;
    assert!(
        m % (l * l) == 0 && kk % l == 0,
        "X {m}x{kk} not tileable by l={l}"
    );
    let row_block = g.i * l + g.k;
    global
        .narrow(0, row_block * (m / (l * l)), m / (l * l))
        .narrow(1, g.j * (kk / l), kk / l)
}

/// Slices the `W` tile `[K/l^2, N/l]` for device `(i, j, k)`.
pub fn tile_w_3d(global: &Tensor, g: &Grid3d) -> Tensor {
    let (kk, n) = (global.dims()[0], global.dims()[1]);
    let l = g.l;
    assert!(
        kk % (l * l) == 0 && n % l == 0,
        "W {kk}x{n} not tileable by l={l}"
    );
    let row_block = g.j * l + g.i;
    global
        .narrow(0, row_block * (kk / (l * l)), kk / (l * l))
        .narrow(1, g.k * (n / l), n / l)
}

/// Slices the `Y` tile `[M/l^2, N/l]` for device `(i, j, k)`.
pub fn tile_y_3d(global: &Tensor, g: &Grid3d) -> Tensor {
    let (m, n) = (global.dims()[0], global.dims()[1]);
    let l = g.l;
    let row_block = g.i * l + g.j;
    global
        .narrow(0, row_block * (m / (l * l)), m / (l * l))
        .narrow(1, g.k * (n / l), n / l)
}

/// 3D-parallel linear layer.
pub struct Linear3d {
    ctx: DeviceCtx,
    grid: Grid3d,
    w: Param,
    bias: Option<Param>,
    cached_x: Option<Tensor>,
}

impl Linear3d {
    pub fn from_global(
        ctx: &DeviceCtx,
        grid: &Grid3d,
        name: &str,
        w_global: &Tensor,
        b_global: Option<&Tensor>,
    ) -> Self {
        let w = tile_w_3d(w_global, grid);
        let bias = b_global.map(|b| {
            let n = b.numel();
            Param::new(
                format!("{name}.bias"),
                b.narrow(0, grid.k * (n / grid.l), n / grid.l),
            )
        });
        Linear3d {
            ctx: ctx.clone(),
            grid: grid.clone(),
            w: Param::new(format!("{name}.weight"), w),
            bias,
            cached_x: None,
        }
    }
}

impl Layer for Linear3d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.rank(),
            2,
            "Linear3d operates on collapsed [M/l^2, K/l] tiles"
        );
        self.cached_x = Some(x.clone());
        let g = &self.grid;
        // gather the full row-block of X over the k axis
        let x_ij = g.k_group.all_gather_cat(&self.ctx, x.clone(), 0);
        // gather the full W panel over the i axis
        let w_jk = g
            .i_group
            .all_gather_cat(&self.ctx, self.w.value().clone(), 0);
        // local partial product, then sum over j with reduce-scatter
        let partial = matmul(&x_ij, &w_jk);
        let mut y = g.j_group.reduce_scatter(&self.ctx, partial, 0);
        if let Some(b) = &self.bias {
            y = y.add_bias(b.value());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let g = self.grid.clone();
        let x = self.cached_x.take().expect("backward before forward");

        if let Some(b) = &mut self.bias {
            let partial = colossalai_tensor::ops::sum_axis(dy, 0);
            let full = g.ij_group.all_reduce(&self.ctx, partial);
            b.accumulate_grad(&full);
        }

        // dX = dY W^T: gather dY over j, W over i; sum over k
        let dy_ik = g.j_group.all_gather_cat(&self.ctx, dy.clone(), 0);
        let w_jk = g
            .i_group
            .all_gather_cat(&self.ctx, self.w.value().clone(), 0);
        let partial_dx = matmul_bt(&dy_ik, &w_jk);
        let dx = g.k_group.reduce_scatter(&self.ctx, partial_dx, 0);

        // dW = X^T dY: gather X over k, dY over j; sum over i
        let x_ij = g.k_group.all_gather_cat(&self.ctx, x, 0);
        let partial_dw = matmul_at(&x_ij, &dy_ik);
        let dw = g.i_group.reduce_scatter(&self.ctx, partial_dw, 0);
        self.w.accumulate_grad(&dw);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::Linear;
    use colossalai_comm::{OpKind, World};
    use colossalai_tensor::init;
    use colossalai_topology::systems::system_i;

    fn run_case(l: usize, m: usize, k: usize, n: usize, with_bias: bool, seed: u64) {
        let p = l * l * l;
        let mut rng = init::rng(seed);
        let w = init::lecun_normal(k, n, &mut rng);
        let b = with_bias.then(|| init::uniform([n], -0.2, 0.2, &mut rng));
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let dy = init::uniform([m, n], -1.0, 1.0, &mut rng);

        let mut serial = Linear::from_parts("s", w.clone(), b.clone());
        let y_want = serial.forward(&x);
        let dx_want = serial.backward(&dy);

        let world = World::new(system_i());
        let results = world.run_on(p, |ctx| {
            let members: Vec<usize> = (0..p).collect();
            let grid = Grid3d::new(ctx, &members);
            let mut layer = Linear3d::from_global(ctx, &grid, "l3d", &w, b.as_ref());
            let y_tile = layer.forward(&tile_x_3d(&x, &grid));
            // verify forward tile placement immediately
            assert!(
                y_tile.allclose(&tile_y_3d(&y_want, &grid), 1e-3),
                "({}, {}, {}): fwd tile diff {}",
                grid.i,
                grid.j,
                grid.k,
                y_tile.max_abs_diff(&tile_y_3d(&y_want, &grid))
            );
            let dx_tile = layer.backward(&tile_y_3d(&dy, &grid));
            assert!(
                dx_tile.allclose(&tile_x_3d(&dx_want, &grid), 1e-3),
                "dx tile diff {}",
                dx_tile.max_abs_diff(&tile_x_3d(&dx_want, &grid))
            );
            let mut grads = Vec::new();
            layer.visit_params(&mut |p| grads.push(p.grad().clone()));
            (grid.i, grid.j, grid.k, grads)
        });

        // weight gradient tiles match the serial gradient's tiles
        let world2 = World::new(system_i());
        let dw_want = serial.weight().grad().clone();
        let checks: Vec<(usize, Tensor)> = results
            .iter()
            .enumerate()
            .map(|(idx, (_, _, _, g))| (idx, g[0].clone()))
            .collect();
        world2.run_on(p, |ctx| {
            let members: Vec<usize> = (0..p).collect();
            let grid = Grid3d::new(ctx, &members);
            let (idx, dw_got) = &checks[ctx.rank()];
            let _ = idx;
            let want = tile_w_3d(&dw_want, &grid);
            assert!(
                dw_got.allclose(&want, 1e-3),
                "dw tile diff {}",
                dw_got.max_abs_diff(&want)
            );
        });
    }

    #[test]
    fn linear3d_matches_serial_l2() {
        run_case(2, 8, 8, 8, false, 400);
    }

    #[test]
    fn linear3d_matches_serial_l2_with_bias() {
        run_case(2, 4, 8, 4, true, 401);
    }

    #[test]
    fn linear3d_matches_serial_rectangular() {
        run_case(2, 8, 4, 12, false, 402);
    }

    #[test]
    fn forward_volume_matches_table1_pass() {
        // one forward pass: AG(X over k) + AG(W over i) + RS(Y over j)
        // = (l-1)/l * (S_X + S_W + S_Y) elements
        let l = 2;
        let (m, k, n) = (8, 8, 8);
        let mut rng = init::rng(403);
        let w = init::lecun_normal(k, n, &mut rng);
        let x = init::uniform([m, k], -1.0, 1.0, &mut rng);
        let world = World::new(system_i());
        world.run_on(l * l * l, |ctx| {
            let members: Vec<usize> = (0..l * l * l).collect();
            let grid = Grid3d::new(ctx, &members);
            let mut layer = Linear3d::from_global(ctx, &grid, "l", &w, None);
            let _ = layer.forward(&tile_x_3d(&x, &grid));
        });
        let stats = world.stats();
        let measured =
            stats.elements_of(OpKind::AllGather) + stats.elements_of(OpKind::ReduceScatter);
        let (s_x, s_w, s_y) = ((m * k) as u64, (k * n) as u64, (m * n) as u64);
        // Ring-counted element-hops: every device *receives* (l-1)/l of its
        // gathered panel, and there are l^3 devices holding S/l^3 each, so a
        // full gather phase moves (l-1) * S element-hops. Table 1 prints
        // (l-1)/l * S — the same scaling in l, counted per unique datum
        // rather than per hop; `volume::volume_3d` keeps the paper's form.
        let expected = (l as u64 - 1) * (s_x + s_w + s_y);
        assert_eq!(measured, expected);
        assert_eq!(
            measured / l as u64,
            (l as u64 - 1) * (s_x + s_w + s_y) / l as u64,
            "paper convention = measured / l"
        );
    }

    #[test]
    #[should_panic(expected = "device thread panicked")]
    fn cube_requires_cubic_count() {
        let world = World::new(system_i());
        world.run_on(4, |ctx| {
            let members: Vec<usize> = (0..4).collect();
            let _ = Grid3d::new(ctx, &members);
        });
    }
}
