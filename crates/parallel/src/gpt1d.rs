//! A fully assembled 1D tensor-parallel GPT: vocabulary-parallel token
//! embedding, causal head-split Transformer blocks, and a vocabulary-
//! parallel LM head with the gather-free parallel cross-entropy — the
//! complete Megatron-LM decoder stack as shipped in Colossal-AI.

use crate::tp1d::shard_cols;
use crate::vit1d::TransformerBlock1d;
use crate::vocab_parallel::{vocab_parallel_cross_entropy, VocabParallelEmbedding};
use colossalai_autograd::{Layer, LayerNorm, Linear, Param, PositionEmbedding};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_models::TransformerConfig;
use colossalai_tensor::init::{self, InitRng};
use colossalai_tensor::Tensor;

/// 1D-parallel GPT. Construction draws the identical global weights (per
/// seed) as [`colossalai_models::Gpt::new`], so serial-vs-parallel
/// trajectories are directly comparable.
pub struct Gpt1d {
    ctx: DeviceCtx,
    group: Group,
    tok: VocabParallelEmbedding,
    pos: PositionEmbedding,
    blocks: Vec<TransformerBlock1d>,
    ln_f: LayerNorm,
    /// Column-sharded LM head: produces `[.., vocab/p]` logits that feed the
    /// vocabulary-parallel cross-entropy without gathering.
    head: Linear,
    vocab: usize,
}

impl Gpt1d {
    pub fn new(ctx: &DeviceCtx, group: &Group, cfg: &TransformerConfig, rng: &mut InitRng) -> Self {
        // draw order matches colossalai_models::Gpt::new: blocks first (the
        // struct initializer evaluates `blocks` before the embeddings)
        let blocks: Vec<TransformerBlock1d> = (0..cfg.layers)
            .map(|i| {
                TransformerBlock1d::from_rng(
                    ctx,
                    group,
                    &format!("gpt.block{i}"),
                    cfg.hidden,
                    cfg.heads,
                    cfg.mlp_ratio,
                    true,
                    rng,
                )
            })
            .collect();
        let tok = VocabParallelEmbedding::new(ctx, group, "gpt.tok", cfg.vocab, cfg.hidden, rng);
        let pos = PositionEmbedding::new("gpt", cfg.max_seq, cfg.hidden, rng);
        let head_global = init::lecun_normal(cfg.hidden, cfg.vocab, rng);
        let head = Linear::from_parts(
            "gpt.head",
            shard_cols(&head_global, group.size(), group.rank()),
            None,
        );
        Gpt1d {
            ctx: ctx.clone(),
            group: group.clone(),
            tok,
            pos,
            blocks,
            ln_f: LayerNorm::new("gpt.ln_f", cfg.hidden),
            head,
            vocab: cfg.vocab,
        }
    }

    /// Next-token LM loss and the *local* logits gradient, all without ever
    /// materializing the `[tokens, vocab]` matrix on any rank.
    pub fn lm_loss(&mut self, tokens: &Tensor) -> (f32, Tensor) {
        let (b, s) = (tokens.dims()[0], tokens.dims()[1]);
        let local_logits = self.forward(tokens); // [b, s, vocab/p]
        let local_v = *local_logits.dims().last().unwrap();
        // positions 0..s-1 predict tokens 1..s
        let pred = local_logits
            .narrow(1, 0, s - 1)
            .reshaped([b * (s - 1), local_v]);
        let targets: Vec<usize> = (0..b)
            .flat_map(|bi| (1..s).map(move |si| (bi, si)))
            .map(|(bi, si)| tokens.at(&[bi, si]) as usize)
            .collect();
        let (loss, dpred) = vocab_parallel_cross_entropy(&self.ctx, &self.group, &pred, &targets);
        let mut dlogits = Tensor::zeros([b, s, local_v]);
        for bi in 0..b {
            for si in 0..s - 1 {
                for v in 0..local_v {
                    dlogits.set(&[bi, si, v], dpred.at(&[bi * (s - 1) + si, v]));
                }
            }
        }
        (loss, dlogits)
    }

    /// Vocabulary size (global).
    pub fn vocab(&self) -> usize {
        self.vocab
    }
}

impl Layer for Gpt1d {
    /// Forward to *local* (vocabulary-sharded) logits `[b, s, vocab/p]`.
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = self.tok.forward(x);
        h = self.pos.forward(&h);
        for blk in &mut self.blocks {
            h = blk.forward(&h);
        }
        let h = self.ln_f.forward(&h);
        self.head.forward(&h)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        // the head is column-sharded with replicated input: dx contributions
        // sum across ranks
        let dh_partial = self.head.backward(dy);
        let dh = self.group.all_reduce(&self.ctx, dh_partial);
        let mut dh = self.ln_f.backward(&dh);
        for blk in self.blocks.iter_mut().rev() {
            dh = blk.backward(&dh);
        }
        let dh = self.pos.backward(&dh);
        self.tok.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok.visit_params(f);
        self.pos.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_comm::World;
    use colossalai_models::Gpt;
    use colossalai_topology::systems::system_i;

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            layers: 2,
            hidden: 8,
            heads: 4, // divisible by every tested parallel size
            mlp_ratio: 2,
            vocab: 12, // divisible by p = 2 and 4
            max_seq: 5,
        }
    }

    #[test]
    fn parallel_gpt_matches_serial_loss_and_training() {
        let cfg = tiny_cfg();
        let tokens = Tensor::from_vec([2, 5], vec![1., 4., 7., 10., 1., 3., 6., 9., 0., 11.]);
        let steps = 4;
        let lr = 0.05;

        // serial trajectory
        let mut rng = init::rng(4000);
        let mut serial = Gpt::new(&cfg, &mut rng);
        let mut want = Vec::new();
        for _ in 0..steps {
            serial.zero_grad();
            let (loss, d) = serial.lm_loss(&tokens);
            want.push(loss);
            let _ = serial.backward(&d);
            serial.visit_params(&mut |p| {
                let g = p.grad().clone();
                p.value_mut().axpy(-lr, &g);
            });
        }

        for p in [2usize, 4] {
            let world = World::new(system_i());
            let results = world.run_on(p, |ctx| {
                let g = ctx.world_group(p);
                let mut rng = init::rng(4000);
                let mut gpt = Gpt1d::new(ctx, &g, &cfg, &mut rng);
                let mut losses = Vec::new();
                for _ in 0..steps {
                    gpt.zero_grad();
                    let (loss, d) = gpt.lm_loss(&tokens);
                    losses.push(loss);
                    let _ = gpt.backward(&d);
                    gpt.visit_params(&mut |pp| {
                        let gr = pp.grad().clone();
                        pp.value_mut().axpy(-lr, &gr);
                    });
                }
                losses
            });
            for losses in &results {
                for (a, b) in losses.iter().zip(&want) {
                    assert!(
                        (a - b).abs() < 3e-3,
                        "p={p}: loss curves diverged: {losses:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_rank_materializes_full_logits() {
        let cfg = tiny_cfg();
        let tokens = Tensor::from_vec([1, 5], vec![0., 1., 2., 3., 4.]);
        let p = 4;
        let world = World::new(system_i());
        world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rng = init::rng(4001);
            let mut gpt = Gpt1d::new(ctx, &g, &cfg, &mut rng);
            let local = gpt.forward(&tokens);
            assert_eq!(
                *local.dims().last().unwrap(),
                cfg.vocab / p,
                "logits must stay vocabulary-sharded"
            );
        });
    }

    #[test]
    fn parallel_gpt_is_causal() {
        let cfg = tiny_cfg();
        let p = 2;
        let world = World::new(system_i());
        world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rng = init::rng(4002);
            let mut gpt = Gpt1d::new(ctx, &g, &cfg, &mut rng);
            let t1 = Tensor::from_vec([1, 5], vec![1., 2., 3., 4., 5.]);
            let t2 = Tensor::from_vec([1, 5], vec![1., 2., 3., 4., 11.]);
            let y1 = gpt.forward(&t1);
            let y2 = gpt.forward(&t2);
            for s in 0..4 {
                for v in 0..cfg.vocab / p {
                    assert!(
                        (y1.at(&[0, s, v]) - y2.at(&[0, s, v])).abs() < 1e-5,
                        "position {s} leaked future tokens"
                    );
                }
            }
        });
    }
}
