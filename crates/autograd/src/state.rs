//! Model state serialization: a `state_dict`-style snapshot of named
//! parameters, with a compact self-describing binary format (no external
//! serialization dependency — the format is 16 bytes of header per entry
//! plus raw little-endian payloads).

use crate::layer::Layer;
use colossalai_tensor::{Shape, Tensor};
use std::collections::BTreeMap;

/// An ordered snapshot of a model's parameters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
}

impl StateDict {
    /// Captures every parameter of `model` by name.
    ///
    /// Panics if two parameters share a name (checkpoints would silently
    /// lose one).
    pub fn capture(model: &mut dyn Layer) -> StateDict {
        let mut entries = BTreeMap::new();
        model.visit_params(&mut |p| {
            let prev = entries.insert(p.name().to_string(), p.value().clone());
            assert!(prev.is_none(), "duplicate parameter name: {}", p.name());
        });
        StateDict { entries }
    }

    /// Restores a snapshot into `model`. Every model parameter must be
    /// present with a matching shape; extra entries are an error too
    /// (strict loading, like `load_state_dict(strict=True)`).
    pub fn restore(&self, model: &mut dyn Layer) -> Result<(), String> {
        let mut used = 0usize;
        let mut err = None;
        model.visit_params(&mut |p| {
            if err.is_some() {
                return;
            }
            match self.entries.get(p.name()) {
                Some(v) if v.shape() == p.value().shape() => {
                    p.set_value(v.clone());
                    used += 1;
                }
                Some(v) => {
                    err = Some(format!(
                        "shape mismatch for {}: checkpoint {} vs model {}",
                        p.name(),
                        v.shape(),
                        p.value().shape()
                    ));
                }
                None => err = Some(format!("missing parameter: {}", p.name())),
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if used != self.entries.len() {
            return Err(format!(
                "checkpoint has {} entries but the model used {used}",
                self.entries.len()
            ));
        }
        Ok(())
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up one entry.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"CAI1"); // magic + version
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, tensor) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(tensor.rank() as u32).to_le_bytes());
            for &d in tensor.dims() {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &v in tensor.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parses the binary format back. Strictly validates structure.
    pub fn from_bytes(bytes: &[u8]) -> Result<StateDict, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            if *pos + n > bytes.len() {
                return Err("truncated checkpoint".to_string());
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let magic = take(&mut pos, 4)?;
        if magic != b"CAI1" {
            return Err("bad magic (not a colossalai checkpoint)".to_string());
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|_| "invalid utf-8 parameter name".to_string())?;
            let rank = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize);
            }
            let shape = Shape::new(dims);
            let numel = shape.numel();
            let mut data = Vec::with_capacity(numel);
            for _ in 0..numel {
                data.push(f32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()));
            }
            entries.insert(name, Tensor::from_vec(shape, data));
        }
        if pos != bytes.len() {
            return Err("trailing bytes after checkpoint".to_string());
        }
        Ok(StateDict { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Sequential;
    use crate::linear::Linear;
    use colossalai_tensor::init;

    fn model(seed: u64) -> Sequential {
        let mut rng = init::rng(seed);
        Sequential::new(vec![
            Box::new(Linear::from_rng("a", 3, 4, true, &mut rng)),
            Box::new(Linear::from_rng("b", 4, 2, false, &mut rng)),
        ])
    }

    #[test]
    fn capture_restore_roundtrip() {
        let mut m1 = model(1);
        let sd = StateDict::capture(&mut m1);
        assert_eq!(sd.len(), 3); // a.weight, a.bias, b.weight
        let mut m2 = model(2); // different init
        sd.restore(&mut m2).unwrap();
        let x = init::uniform([2, 3], -1.0, 1.0, &mut init::rng(3));
        use crate::layer::Layer;
        assert_eq!(m1.forward(&x).data(), m2.forward(&x).data());
    }

    #[test]
    fn binary_roundtrip_is_bitwise() {
        let mut m = model(4);
        let sd = StateDict::capture(&mut m);
        let bytes = sd.to_bytes();
        let back = StateDict::from_bytes(&bytes).unwrap();
        assert_eq!(sd, back);
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let mut m = model(5);
        let sd = StateDict::capture(&mut m);
        let mut rng = init::rng(6);
        let mut wrong = Sequential::new(vec![
            Box::new(Linear::from_rng("a", 3, 5, true, &mut rng)), // 5 != 4
            Box::new(Linear::from_rng("b", 5, 2, false, &mut rng)),
        ]);
        let err = sd.restore(&mut wrong).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
    }

    #[test]
    fn restore_rejects_missing_and_extra_params() {
        let mut m = model(7);
        let sd = StateDict::capture(&mut m);
        let mut rng = init::rng(8);
        // renamed layer -> both a missing and an extra entry
        let mut renamed = Sequential::new(vec![
            Box::new(Linear::from_rng("z", 3, 4, true, &mut rng)),
            Box::new(Linear::from_rng("b", 4, 2, false, &mut rng)),
        ]);
        assert!(sd.restore(&mut renamed).is_err());
    }

    #[test]
    fn corrupted_bytes_rejected() {
        let mut m = model(9);
        let bytes = StateDict::capture(&mut m).to_bytes();
        assert!(StateDict::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(StateDict::from_bytes(&bad_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(StateDict::from_bytes(&trailing).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_are_caught() {
        let mut rng = init::rng(10);
        let mut dup = Sequential::new(vec![
            Box::new(Linear::from_rng("same", 2, 2, false, &mut rng)),
            Box::new(Linear::from_rng("same", 2, 2, false, &mut rng)),
        ]);
        let _ = StateDict::capture(&mut dup);
    }
}
