//! E4 — Fig 10: communication bandwidth on Systems I and II, probing
//! 125 MB transfers like the paper's NCCL bandwidth test, plus the
//! all-reduce algorithm zoo (flat ring / hierarchical / binomial tree /
//! recursive halving-doubling) the topology-aware selector prices on the
//! multi-node System III.
//!
//! `--json` prints the System III all-reduce probe plus a latency-bound
//! small-message probe as JSON (used by CI to assert the hierarchical
//! schedule never loses to the flat ring, that halving-doubling carries
//! large power-of-two groups, and that the tree carries small messages).

use colossalai_bench::{fmt_bandwidth, print_table};
use colossalai_topology::bandwidth::{
    pairwise_extremes, probe_allreduce, probe_collective, AllReduceProbe,
};
use colossalai_topology::systems::{system_i, system_ii, system_iii};
use colossalai_topology::AllReduceAlgo;

const PROBE_BYTES: u64 = 125 << 20;

/// Latency-bound probe size: 1 KB is pure alpha-term territory.
const SMALL_BYTES: u64 = 1 << 10;

const ALLREDUCE_SIZES: [usize; 4] = [4, 8, 16, 32];

/// Small-message group sizes: 6 is not a power of two (tree territory),
/// 8 is (halving-doubling keeps winning on its lower beta term).
const SMALL_SIZES: [usize; 2] = [6, 8];

fn algo_name(a: AllReduceAlgo) -> &'static str {
    match a {
        AllReduceAlgo::FlatRing => "flat",
        AllReduceAlgo::Hierarchical => "hierarchical",
        AllReduceAlgo::Tree => "tree",
        AllReduceAlgo::RecursiveHalvingDoubling => "rhd",
    }
}

fn probe_json(p: &AllReduceProbe) -> String {
    format!(
        r#"{{"gpus":{},"flat":{:.1},"hierarchical":{:.1},"tree":{:.1},"rhd":{:.1},"selected":"{}"}}"#,
        p.group.len(),
        p.flat,
        p.hierarchical,
        p.tree,
        p.rhd,
        algo_name(p.selected)
    )
}

fn json_report() {
    let cluster = system_iii();
    let probes = probe_allreduce(&cluster, &ALLREDUCE_SIZES, PROBE_BYTES);
    let entries: Vec<String> = probes.iter().map(probe_json).collect();
    let small_cluster = system_i();
    let small: Vec<String> = probe_allreduce(&small_cluster, &SMALL_SIZES, SMALL_BYTES)
        .iter()
        .map(probe_json)
        .collect();
    println!(
        r#"{{"system":"{}","bytes":{},"probes":[{}],"small":{{"system":"{}","bytes":{},"probes":[{}]}}}}"#,
        cluster.name(),
        PROBE_BYTES,
        entries.join(","),
        small_cluster.name(),
        SMALL_BYTES,
        small.join(",")
    );
}

fn zoo_rows(probes: &[AllReduceProbe]) -> Vec<Vec<String>> {
    probes
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.group.len()),
                fmt_bandwidth(p.flat),
                fmt_bandwidth(p.hierarchical),
                fmt_bandwidth(p.tree),
                fmt_bandwidth(p.rhd),
                algo_name(p.selected).to_string(),
            ]
        })
        .collect()
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        json_report();
        return;
    }

    // Fig 10a: pairwise bandwidth
    let mut rows = Vec::new();
    for cluster in [system_i(), system_ii()] {
        let (min, max) = pairwise_extremes(&cluster, PROBE_BYTES);
        rows.push(vec![
            cluster.name().to_string(),
            fmt_bandwidth(max),
            fmt_bandwidth(min),
        ]);
    }
    print_table(
        "Fig 10a: GPU-pair bandwidth (125 MB message)",
        &["System", "best pair", "worst pair"],
        &rows,
    );

    // Fig 10b: collective (broadcast) bandwidth over growing groups
    let sizes = [2usize, 4, 8];
    let mut rows = Vec::new();
    for cluster in [system_i(), system_ii()] {
        let probes = probe_collective(&cluster, &sizes, PROBE_BYTES);
        let mut row = vec![cluster.name().to_string()];
        row.extend(probes.iter().map(|p| fmt_bandwidth(p.bandwidth)));
        rows.push(row);
    }
    print_table(
        "Fig 10b: collective broadcast bandwidth (125 MB)",
        &["System", "2 GPUs", "4 GPUs", "8 GPUs"],
        &rows,
    );

    // Fig 10c: the all-reduce zoo on the multi-node System III — the gaps
    // the topology-aware algorithm selector exploits
    let cluster = system_iii();
    let probes = probe_allreduce(&cluster, &ALLREDUCE_SIZES, PROBE_BYTES);
    print_table(
        &format!(
            "Fig 10c: all-reduce algorithm bandwidth on {} (125 MB)",
            cluster.name()
        ),
        &[
            "GPUs",
            "flat ring",
            "hierarchical",
            "tree",
            "rhd",
            "selected",
        ],
        &zoo_rows(&probes),
    );

    // Latency-bound regime: the same zoo at 1 KB on System I
    let small = probe_allreduce(&system_i(), &SMALL_SIZES, SMALL_BYTES);
    print_table(
        "All-reduce zoo, latency-bound (System I, 1 KB)",
        &[
            "GPUs",
            "flat ring",
            "hierarchical",
            "tree",
            "rhd",
            "selected",
        ],
        &zoo_rows(&small),
    );

    println!(
        "\nPaper reference: System I holds ~184 GB/s at every group size; \
         System II collapses to ~15 GB/s once the group spans a PCIe hop — \
         the topology effect behind Fig 11's mode ranking. On System III \
         (4 GPUs/node over InfiniBand) the hierarchical schedule keeps the \
         slow inter-node ring to p/4 leaders, so its advantage grows with \
         the node count. Power-of-two single-node groups ride recursive \
         halving-doubling (ring bandwidth at log latency); small messages \
         on non-power-of-two groups ride the binomial tree (fewest alpha \
         terms). The cost-model selector picks each exactly where it wins."
    );
}
