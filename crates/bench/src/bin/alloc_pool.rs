//! Wall-clock benchmark of hot-path allocation elimination on the
//! `dp_overlap` workload: 16 data-parallel ranks on System III training the
//! same 4x256x256 MLP with overlapped bucketed gradient sync and AdamW.
//!
//! Two configurations of the *same arithmetic*:
//!
//! * **fused + pool** — the production hot path: fused in-place kernels
//!   (`matmul_at_acc` gradient accumulation, in-place bias add,
//!   `sum_axis0_acc`) drawing every buffer from the size-classed storage
//!   pool.
//! * **composed + malloc** — the pre-pool allocating path: composed ops
//!   (`matmul_at` into a dW temporary + axpy, allocating `add_bias`,
//!   `sum_axis` temporary per bias grad) with `COLOSSAL_POOL`-off
//!   allocation, i.e. every hot-loop buffer is a fresh malloc.
//!
//! Unlike the other bench binaries, the interesting number here is *host*
//! time, not virtual time: allocator traffic is invisible to the virtual
//! clock. The two paths are bitwise-identical by the fused-kernel
//! equivalence contract (DESIGN.md §9.2), and this bench asserts that end
//! to end: both configurations must produce identical final parameters.
//!
//! Rounds are interleaved (composed, fused, composed, fused, ...) so slow
//! drift on a shared host hits both modes equally; each mode reports its
//! best-of-[`ROUNDS`] step time, measured over the step loop only (world
//! spawn and model init are identical in both modes and excluded).
//!
//! `--json` prints one machine-readable object (used by the CI smoke):
//! `{"pooled_steps_per_s": .., "unpooled_steps_per_s": .., "speedup": ..,
//!   "hit_rate": .., "bitwise_identical": ..}`.

use colossalai_autograd::{Layer, Linear, Param, Sequential};
use colossalai_bench::print_table;
use colossalai_comm::{DeviceCtx, World};
use colossalai_parallel::data_parallel::{flatten_params, split_batch, DataParallel};
use colossalai_parallel::DEFAULT_BUCKET_BYTES;
use colossalai_tensor::ops::{cross_entropy, sum_axis};
use colossalai_tensor::{init, matmul_at, matmul_bt, matmul_nd, pool, Tensor};
use colossalai_topology::systems::system_iii;
use std::time::Instant;

const P: usize = 16;
const STEPS: usize = 6;
const HIDDEN: usize = 256;
const LAYERS: usize = 4;
const ROUNDS: usize = 5;

/// The pre-pool hot path, kept verbatim as the benchmark baseline: composed
/// kernels that allocate a fresh buffer at every seam — `matmul_at` into a
/// dW temporary then axpy, a `sum_axis` temporary per bias gradient, an
/// allocating `add_bias` in forward. Bitwise-identical to [`Linear`] by the
/// fused-kernel equivalence contract; the warm-up pass asserts it.
struct BaselineLinear {
    w: Param,
    b: Param,
    cached_x: Option<Tensor>,
}

impl Layer for BaselineLinear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_x = Some(x.clone());
        let y = matmul_nd(x, self.w.value());
        y.add_bias(self.b.value())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_x.take().expect("backward before forward");
        let (rows, d_in) = x.shape().as_matrix();
        let x2 = x.reshape([rows, d_in]);
        let d_out = self.w.value().dims()[1];
        let dy2 = dy.reshape([rows, d_out]);
        self.w.accumulate_grad(&matmul_at(&x2, &dy2));
        self.b.accumulate_grad(&sum_axis(&dy2, 0));
        matmul_bt(&dy2, self.w.value()).reshaped(x.shape().clone())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

fn layer_dims() -> Vec<(String, usize, usize)> {
    let mut dims = vec![("in".to_string(), 32, HIDDEN)];
    for i in 0..LAYERS {
        dims.push((format!("h{i}"), HIDDEN, HIDDEN));
    }
    dims.push(("out".to_string(), HIDDEN, 8));
    dims
}

/// The production model: fused [`Linear`] layers.
fn make_model(seed: u64) -> Sequential {
    let mut rng = init::rng(seed);
    let layers: Vec<Box<dyn Layer>> = layer_dims()
        .into_iter()
        .map(|(name, d_in, d_out)| {
            Box::new(Linear::from_rng(&name, d_in, d_out, true, &mut rng)) as Box<dyn Layer>
        })
        .collect();
    Sequential::new(layers)
}

/// The baseline model: same weights (extracted from the identically-seeded
/// fused layers, so the RNG stream is consumed identically), composed ops.
fn make_baseline_model(seed: u64) -> Sequential {
    let mut fused = make_model(seed);
    let mut params: Vec<Param> = Vec::new();
    fused.visit_params(&mut |p| params.push(Param::new(p.name(), p.value().clone())));
    let layers: Vec<Box<dyn Layer>> = params
        .chunks_exact(2)
        .map(|wb| {
            Box::new(BaselineLinear {
                w: wb[0].clone(),
                b: wb[1].clone(),
                cached_x: None,
            }) as Box<dyn Layer>
        })
        .collect();
    Sequential::new(layers)
}

/// One full DP training pass (`steps` optimizer steps on every rank) in the
/// given configuration. Returns (per-step seconds, rank 0's flat
/// parameters). Each step is timed individually so a transient load spike
/// on a shared host taints single samples, not the whole pass; the clock
/// starts after world spawn + model init — setup is identical in both
/// configurations and is not step time.
fn train_pass(fused: bool, steps: usize) -> (Vec<f64>, Vec<f32>) {
    colossalai_tensor::set_pool_enabled(fused);
    let world = World::new(system_iii());
    let mut rng = init::rng(7);
    let xs: Vec<_> = (0..steps)
        .map(|_| init::uniform([P * 2, 32], -1.0, 1.0, &mut rng))
        .collect();
    let mut out = world.run_on(P, |ctx: &DeviceCtx| {
        let g = ctx.world_group(P);
        let model = if fused {
            make_model(11)
        } else {
            make_baseline_model(11)
        };
        let mut dp = DataParallel::with_bucket_bytes(
            ctx,
            &g,
            model,
            DEFAULT_BUCKET_BYTES.min(HIDDEN * HIDDEN * 2 * 4),
        )
        .with_overlap(true);
        let mut opt = colossalai_autograd::AdamW::new(0.01, 0.01);
        let mut dts = Vec::with_capacity(xs.len());
        for x in &xs {
            let t0 = Instant::now();
            dp.zero_grad();
            let x_local = split_batch(x, P, g.rank());
            let t: Vec<usize> = (0..x_local.dims()[0]).map(|i| i % 8).collect();
            let logits = dp.forward(&x_local);
            let (_, d) = cross_entropy(&logits, &t);
            let _ = dp.backward(&d);
            opt.step_layer(&mut dp);
            dts.push(t0.elapsed().as_secs_f64());
        }
        (dts, flatten_params(&mut dp).into_vec())
    });
    // ranks are in lockstep at every collective: per step, the slowest
    // rank's span is the wall step time
    let steps_dt: Vec<f64> = (0..steps)
        .map(|s| out.iter().map(|(t, _)| t[s]).fold(0.0, f64::max))
        .collect();
    (steps_dt, out.swap_remove(0).1)
}

fn main() {
    // Warm-up both configurations once (faults in allocator arenas; parks
    // the pooled working set) and check the equivalence contract end to
    // end, then interleave rounds so slow drift on a shared host — CPU
    // frequency, page cache, sibling load — hits both modes equally
    // instead of favoring whichever runs last. Best-of over rounds filters
    // scheduler noise.
    let (_, off_params) = train_pass(false, STEPS);
    let (_, on_params) = train_pass(true, STEPS);
    let identical = on_params == off_params;
    pool::reset_stats();
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..ROUNDS {
        let (dts, p) = train_pass(false, STEPS);
        assert_eq!(p, off_params, "training is deterministic");
        best_off = dts.into_iter().fold(best_off, f64::min);
        let (dts, p) = train_pass(true, STEPS);
        assert_eq!(p, on_params, "training is deterministic");
        best_on = dts.into_iter().fold(best_on, f64::min);
    }
    let hit_rate = pool::stats().hit_rate();
    let off_sps = 1.0 / best_off;
    let on_sps = 1.0 / best_on;
    let speedup = on_sps / off_sps;

    if std::env::args().any(|a| a == "--json") {
        println!(
            "{{\"pooled_steps_per_s\": {on_sps:.3}, \"unpooled_steps_per_s\": {off_sps:.3}, \
             \"speedup\": {speedup:.3}, \"hit_rate\": {hit_rate:.4}, \
             \"bitwise_identical\": {identical}}}"
        );
        return;
    }

    assert!(identical, "fused+pooled path changed the bits");
    let rows = vec![
        vec![
            "composed + malloc".to_string(),
            format!("{:.1}", off_sps),
            "-".to_string(),
            "1.00x".to_string(),
        ],
        vec![
            "fused + pool".to_string(),
            format!("{:.1}", on_sps),
            format!("{:.1}%", hit_rate * 100.0),
            format!("{speedup:.2}x"),
        ],
    ];
    print_table(
        &format!(
            "Hot-path allocation elimination, dp_overlap workload ({P} ranks, {} params, best of {ROUNDS}x{STEPS} steps)",
            HIDDEN * HIDDEN * LAYERS
        ),
        &["hot path", "steps/s (wall)", "pool hit", "speedup"],
        &rows,
    );
    println!("\npool: {}", pool::stats().summary());
    println!(
        "\nBoth rows run identical arithmetic — the fused kernels and the \
         storage pool change where bytes come from, never their values — \
         and the final parameters are asserted bitwise-identical. Set \
         COLOSSAL_POOL=off (or `mem.pool = false` in the config) to force \
         the allocating path at runtime."
    );
}
