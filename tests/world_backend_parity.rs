//! Backend-parity contract of the event-driven rank scheduler: the
//! scheduler backend — at ANY pool size — and the legacy thread-per-rank
//! backend produce bitwise-identical losses, byte-identical traffic stats
//! and identical trace span sequences for the same workload. Scheduling
//! decides only *when* ranks execute, never *what* they compute.

use colossalai_comm::workload::{run_hybrid, HybridSpec};
use colossalai_comm::{CommStats, Span, World, WorldBackend};
use colossalai_topology::systems::system_iii;

const SPEC: HybridSpec = HybridSpec {
    dp: 2,
    tp: 4,
    pp: 2,
    elems: 512,
    steps: 3,
};

/// Runs the canonical 16-rank hybrid DP x TP x PP workload under `backend`
/// and returns (per-rank per-step losses, stats, trace).
fn run_under(backend: WorldBackend) -> (Vec<Vec<f32>>, CommStats, Vec<Span>) {
    let world = World::new(system_iii());
    world.set_backend(Some(backend));
    world.enable_tracing();
    let losses = world.run_on(SPEC.ranks(), |ctx| run_hybrid(ctx, &SPEC));
    (losses, world.stats(), world.trace())
}

#[test]
fn scheduler_pools_match_threads_backend_bitwise() {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let (ref_losses, ref_stats, ref_trace) = run_under(WorldBackend::Threads);
    assert!(
        ref_losses.iter().flatten().all(|l| l.is_finite()),
        "workload must produce real losses"
    );
    assert!(ref_stats.ops > 0 && !ref_trace.is_empty());
    for pool in [1, 2, cores] {
        let (losses, stats, trace) = run_under(WorldBackend::Sched { pool });
        assert_eq!(
            losses, ref_losses,
            "losses diverged from threads backend at pool={pool}"
        );
        assert_eq!(
            stats, ref_stats,
            "traffic stats diverged from threads backend at pool={pool}"
        );
        assert_eq!(
            trace, ref_trace,
            "trace spans diverged from threads backend at pool={pool}"
        );
    }
}

#[test]
fn scheduler_handles_worlds_larger_than_its_pool() {
    // 64 ranks multiplexed onto 4 running slots: the scheduler must keep
    // making progress through rendezvous and p2p waits
    let spec = HybridSpec {
        dp: 4,
        tp: 4,
        pp: 4,
        elems: 64,
        steps: 2,
    };
    let world = World::new(colossalai_topology::systems::fat_tree_512());
    world.set_backend(Some(WorldBackend::Sched { pool: 4 }));
    let losses = world.run_on(spec.ranks(), |ctx| run_hybrid(ctx, &spec));
    assert_eq!(losses.len(), 64);
    assert!(losses.iter().flatten().all(|l| l.is_finite()));
}

#[test]
fn scheduler_propagates_rank_panics_with_rank_and_message() {
    let world = World::new(system_iii());
    world.set_backend(Some(WorldBackend::Sched { pool: 2 }));
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        world.run_on(8, |ctx| {
            if ctx.rank() == 3 {
                panic!("rank three exploded");
            }
            // peers park in a barrier that can never complete; the abort
            // must wake and unwind them instead of hanging the run
            let g = ctx.world_group(8);
            g.barrier(ctx);
        });
    }))
    .expect_err("a rank panic must abort the run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&'static str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("device thread panicked"), "{msg}");
    assert!(msg.contains("rank 3"), "{msg}");
    assert!(msg.contains("rank three exploded"), "{msg}");
}
