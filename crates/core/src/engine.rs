//! The execution engine behind `colossalai.initialize` (Listing 1): wraps a
//! model with the configured gradient synchronization, optimizer, mixed
//! precision and clipping, behind the same five calls the paper's snippet
//! uses — `zero_grad / forward / criterion / backward / step`.

use crate::amp::GradScaler;
use crate::config::Config;
use crate::context::{ParallelAxis, ParallelContext};
use colossalai_autograd::{AdamW, Checkpoint, Layer, LrSchedule, Sgd};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_parallel::bucket::BucketedGradSync;
use colossalai_parallel::zero::{ZeroOptimizer, ZeroStage};
use colossalai_tensor::Tensor;

/// Optimizer choice passed to [`initialize`].
pub enum OptimizerSpec {
    AdamW { lr: f32, weight_decay: f32 },
    Sgd { lr: f32, momentum: f32 },
}

enum EngineOptimizer {
    AdamW(AdamW),
    Sgd(Sgd),
    // boxed: ZeroOptimizer embeds its DeviceCtx + Group handles and is an
    // order of magnitude larger than the dense-optimizer variants
    Zero(Box<ZeroOptimizer>),
}

/// The training engine: owns the model and drives one rank's training.
pub struct Engine {
    model: Box<dyn Layer>,
    optimizer: EngineOptimizer,
    dp_group: Option<Group>,
    /// Tensor(model)-parallel group; gradient-norm clipping must span it
    /// because each rank holds only a shard of the parameters.
    mp_group: Option<Group>,
    ctx: DeviceCtx,
    /// Fused bucketed gradient sync over `dp_group` (non-ZeRO engines).
    grad_sync: Option<BucketedGradSync>,
    /// Overlap bucket collectives with backward compute when eligible.
    overlap: bool,
    /// Set when an overlapped backward already synchronized the gradients,
    /// so `step` must not reduce them again.
    grads_synced: bool,
    scaler: Option<GradScaler>,
    grad_clip: f32,
    lr_schedule: LrSchedule,
    base_lr: f32,
    /// Micro-batches per optimizer step (>= 1).
    accumulation: u32,
    micro_steps: u32,
    steps: u64,
    skipped: u64,
}

/// Builds an [`Engine`] from a config — the Rust analogue of
/// `colossalai.initialize(model, optimizer, ...)`.
///
/// `world` is the number of devices participating in this run (the closure
/// count passed to `World::run_on`).
pub fn initialize(
    ctx: &DeviceCtx,
    config: &Config,
    world: usize,
    model: Box<dyn Layer>,
    optimizer: OptimizerSpec,
) -> Engine {
    config.validate().expect("invalid configuration");
    // allocator policy: the config can turn pooled tensor storage off (the
    // COLOSSAL_POOL env var still wins over a `true` here)
    colossalai_tensor::set_pool_enabled(config.mem.pool);
    // intra-op parallel runtime: 0 means "keep the ambient env/default"
    if config.compute.threads > 0 {
        colossalai_tensor::set_kernel_threads(config.compute.threads);
    }
    if config.compute.par_cutoff > 0 {
        colossalai_tensor::par::set_par_cutoff(config.compute.par_cutoff);
    }
    if config.compute.par_flop_cutoff > 0 {
        colossalai_tensor::set_par_flop_cutoff(config.compute.par_flop_cutoff);
    }
    // fast numeric mode: missing means "keep the ambient COLOSSAL_FAST /
    // setter state"; an explicit true/false overrides it for the process
    if let Some(fast) = config.compute.fast {
        colossalai_tensor::set_fast_mode(fast);
    }
    // activation checkpointing: wrap the whole model (the paper's engine
    // applies it per injected module; at engine granularity the numerics
    // are identical and the memory model is strictly conservative)
    let mut model: Box<dyn Layer> = if config.activation_checkpoint {
        Box::new(Checkpoint::new(model))
    } else {
        model
    };
    let pctx = ParallelContext::new(config, ctx.rank(), world);
    let dp_members = pctx.group_members(ParallelAxis::Data);
    let dp_group = (dp_members.len() > 1).then(|| ctx.group(&dp_members));
    let mp_members = pctx.group_members(ParallelAxis::Tensor);
    let mp_group = (mp_members.len() > 1).then(|| ctx.group(&mp_members));

    let optimizer = match (config.zero, optimizer) {
        (Some(z), OptimizerSpec::AdamW { lr, weight_decay }) => {
            let stage = match z.stage {
                1 => ZeroStage::One,
                2 => ZeroStage::Two,
                _ => ZeroStage::Three,
            };
            let group = dp_group.clone().unwrap_or_else(|| ctx.group(&[ctx.rank()]));
            EngineOptimizer::Zero(Box::new(
                ZeroOptimizer::with_bucket_bytes(
                    ctx,
                    &group,
                    model.as_mut(),
                    stage,
                    lr,
                    weight_decay,
                    config.bucket_bytes(),
                )
                .with_compression(config.compression()),
            ))
        }
        (Some(_), OptimizerSpec::Sgd { .. }) => {
            panic!("ZeRO requires the AdamW optimizer in this reproduction")
        }
        (None, OptimizerSpec::AdamW { lr, weight_decay }) => {
            EngineOptimizer::AdamW(AdamW::new(lr, weight_decay))
        }
        (None, OptimizerSpec::Sgd { lr, momentum }) => EngineOptimizer::Sgd(Sgd::new(lr, momentum)),
    };

    let base_lr = match &optimizer {
        EngineOptimizer::AdamW(o) => o.lr,
        EngineOptimizer::Sgd(o) => o.lr,
        EngineOptimizer::Zero(o) => o.lr,
    };
    // plain (non-ZeRO) data-parallel engines sync gradients through fused
    // size-capped buckets instead of one all-reduce per parameter
    let grad_sync =
        (dp_group.is_some() && !matches!(optimizer, EngineOptimizer::Zero(_))).then(|| {
            BucketedGradSync::new(model.as_mut(), config.bucket_bytes())
                .with_compression(config.compression())
        });
    Engine {
        model,
        optimizer,
        dp_group,
        mp_group,
        ctx: ctx.clone(),
        grad_sync,
        overlap: config.comm.overlap,
        grads_synced: false,
        scaler: config.mixed_precision.then(GradScaler::default),
        grad_clip: config.grad_clip,
        lr_schedule: LrSchedule::Constant,
        base_lr,
        accumulation: config.gradient_accumulation.max(1),
        micro_steps: 0,
        steps: 0,
        skipped: 0,
    }
}

impl Engine {
    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.model.zero_grad();
        self.grads_synced = false;
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let ctx = self.ctx.clone();
        let model = &mut self.model;
        ctx.trace_phase("forward", || model.forward(x))
    }

    /// Backward pass from the loss gradient (scaled when mixed precision is
    /// on). Returns the input gradient.
    ///
    /// With `comm.overlap` on (the default) and no gradient accumulation,
    /// data-parallel gradient sync happens *inside* this call: each bucket's
    /// collective launches on the comm stream as soon as its last gradient
    /// is produced, and the streams join before returning. The synced
    /// gradients are bit-identical to the blocking path's.
    pub fn backward(&mut self, dloss: &Tensor) -> Tensor {
        let dy = match &self.scaler {
            Some(s) => s.scale_grad(dloss),
            None => dloss.clone(),
        };
        let ctx = self.ctx.clone();
        // overlap needs each backward to be a full, final gradient pass:
        // under accumulation, grads keep accumulating across micro-batches
        // and must only sync once at the end
        let overlap_eligible = self.overlap && self.accumulation == 1 && self.dp_group.is_some();
        if let (true, Some(sync), Some(g)) = (overlap_eligible, &mut self.grad_sync, &self.dp_group)
        {
            let g = g.clone();
            let model = &mut self.model;
            let dx = ctx.trace_phase("backward", || {
                sync.backward_overlapped(&ctx, &g, model, &dy)
            });
            self.grads_synced = true;
            return dx;
        }
        // ZeRO overlap: the reduced shards bypass the model's grads, so the
        // engine's unscale/clip hooks (which read model grads) must be off
        if overlap_eligible && self.scaler.is_none() && self.grad_clip == 0.0 {
            if let EngineOptimizer::Zero(o) = &mut self.optimizer {
                let model = &mut self.model;
                return ctx.trace_phase("backward", || o.backward_overlapped(model, &dy));
            }
        }
        let model = &mut self.model;
        ctx.trace_phase("backward", || model.backward(&dy))
    }

    /// Synchronizes gradients, applies unscaling/clipping and takes one
    /// optimizer step. Returns `false` if the step was skipped because of
    /// fp16 overflow.
    ///
    /// Under gradient accumulation (`gradient_accumulation > 1` in the
    /// config), the first `n-1` calls only bank gradients (cheap, no
    /// communication); the n-th call synchronizes once with the mean over
    /// all accumulated micro-batches and applies the optimizer — the
    /// standard large-effective-batch recipe.
    pub fn step(&mut self) -> bool {
        self.micro_steps += 1;
        if self.micro_steps < self.accumulation {
            return true; // bank gradients, defer the optimizer
        }
        self.micro_steps = 0;
        let ctx = self.ctx.clone();
        ctx.trace_phase("optimizer", || self.apply_step())
    }

    fn apply_step(&mut self) -> bool {
        if self.accumulation > 1 {
            let inv = 1.0 / self.accumulation as f32;
            self.model.visit_params(&mut |p| p.grad_mut().scale(inv));
        }
        // ZeRO synchronizes inside its own step; plain optimizers need the
        // data-parallel mean first (fused per bucket), unless an overlapped
        // backward already produced it
        if !self.grads_synced && !matches!(self.optimizer, EngineOptimizer::Zero(_)) {
            if let Some(g) = &self.dp_group {
                let g = g.clone();
                let sync = self.grad_sync.as_mut().expect("built with the dp group");
                sync.sync_blocking(&self.ctx, &g, &mut self.model);
            }
        }
        self.grads_synced = false;
        if let Some(scaler) = &mut self.scaler {
            if !scaler.unscale_and_update(self.model.as_mut()) {
                self.skipped += 1;
                return false;
            }
        }
        if self.grad_clip > 0.0 {
            match &self.mp_group {
                // sharded parameters: the global norm spans the tensor-
                // parallel group (replicated layers are counted once per
                // rank, a consistent overestimate that keeps replicas in
                // lockstep — the Megatron approximation)
                Some(g) => {
                    let g = g.clone();
                    clip_grad_norm_distributed(&self.ctx, &g, self.model.as_mut(), self.grad_clip);
                }
                None => {
                    clip_grad_norm(self.model.as_mut(), self.grad_clip);
                }
            }
        }
        // schedule the learning rate for this optimizer step
        let lr = self.lr_schedule.lr(self.base_lr, self.steps);
        match &mut self.optimizer {
            EngineOptimizer::AdamW(o) => o.lr = lr,
            EngineOptimizer::Sgd(o) => o.lr = lr,
            EngineOptimizer::Zero(o) => o.lr = lr,
        }
        match &mut self.optimizer {
            EngineOptimizer::AdamW(o) => {
                o.step_layer(self.model.as_mut());
                self.model.zero_grad();
            }
            EngineOptimizer::Sgd(o) => {
                o.step_layer(self.model.as_mut());
                self.model.zero_grad();
            }
            EngineOptimizer::Zero(o) => o.step(self.model.as_mut()),
        }
        self.steps += 1;
        true
    }

    /// The wrapped model.
    pub fn model_mut(&mut self) -> &mut dyn Layer {
        self.model.as_mut()
    }

    /// Installs a learning-rate schedule applied on top of the base LR.
    pub fn set_lr_schedule(&mut self, schedule: LrSchedule) {
        self.lr_schedule = schedule;
    }

    /// The learning rate the *next* optimizer step will use.
    pub fn current_lr(&self) -> f32 {
        self.lr_schedule.lr(self.base_lr, self.steps)
    }

    /// Optimizer steps taken (excluding overflow skips).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Steps skipped by the loss scaler.
    pub fn skipped_steps(&self) -> u64 {
        self.skipped
    }

    /// The device context driving this engine.
    pub fn device(&self) -> &DeviceCtx {
        &self.ctx
    }

    /// Snapshots the model parameters (per-rank: tensor-parallel engines
    /// checkpoint their shards, which restore onto the same parallel
    /// layout).
    pub fn state_dict(&mut self) -> colossalai_autograd::StateDict {
        colossalai_autograd::StateDict::capture(self.model.as_mut())
    }

    /// Restores a snapshot produced by [`Engine::state_dict`] on the same
    /// model/parallel layout.
    pub fn load_state_dict(&mut self, sd: &colossalai_autograd::StateDict) -> Result<(), String> {
        sd.restore(self.model.as_mut())
    }
}

/// Distributed gradient clipping for model-parallel shards: the global
/// gradient norm spans parameters scattered over a tensor-parallel group,
/// so each rank contributes its local sum of squares and the group
/// all-reduces the scalar before scaling (the Megatron `clip_grad_norm`
/// with a model-parallel reduction).
pub fn clip_grad_norm_distributed(
    ctx: &DeviceCtx,
    group: &Group,
    model: &mut dyn Layer,
    max_norm: f32,
) -> f32 {
    let mut sq = 0.0f64;
    model.visit_params(&mut |p| {
        sq += p
            .grad()
            .data()
            .iter()
            .map(|&g| g as f64 * g as f64)
            .sum::<f64>();
    });
    let global_sq = group.all_reduce(ctx, Tensor::scalar(sq as f32)).item();
    let norm = global_sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        model.visit_params(&mut |p| p.grad_mut().scale(scale));
    }
    norm
}

/// Clips gradients to a global L2 norm (Megatron-style).
pub fn clip_grad_norm(model: &mut dyn Layer, max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    model.visit_params(&mut |p| {
        sq += p
            .grad()
            .data()
            .iter()
            .map(|&g| g as f64 * g as f64)
            .sum::<f64>();
    });
    let norm = sq.sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        model.visit_params(&mut |p| p.grad_mut().scale(scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_autograd::{Linear, Param, Sequential};
    use colossalai_comm::World;
    use colossalai_tensor::init;
    use colossalai_tensor::ops::cross_entropy;
    use colossalai_topology::systems::system_i;

    fn make_model(seed: u64) -> Box<dyn Layer> {
        let mut rng = init::rng(seed);
        Box::new(Sequential::new(vec![
            Box::new(Linear::from_rng("l1", 4, 8, true, &mut rng)),
            Box::new(colossalai_autograd::Gelu::new()),
            Box::new(Linear::from_rng("l2", 8, 3, true, &mut rng)),
        ]))
    }

    #[test]
    fn serial_engine_trains() {
        let world = World::new(system_i());
        let losses = world.run_on(1, |ctx| {
            let cfg = Config::from_json("{}").unwrap();
            let mut engine = initialize(
                ctx,
                &cfg,
                1,
                make_model(10),
                OptimizerSpec::AdamW {
                    lr: 0.02,
                    weight_decay: 0.0,
                },
            );
            let mut rng = init::rng(11);
            let x = init::uniform([6, 4], -1.0, 1.0, &mut rng);
            let t: Vec<usize> = (0..6).map(|i| i % 3).collect();
            let mut losses = Vec::new();
            for _ in 0..15 {
                engine.zero_grad();
                let logits = engine.forward(&x);
                let (loss, dlogits) = cross_entropy(&logits, &t);
                losses.push(loss);
                let _ = engine.backward(&dlogits);
                assert!(engine.step());
            }
            losses
        });
        let l = &losses[0];
        assert!(l.last().unwrap() < &(l[0] * 0.7), "{l:?}");
    }

    #[test]
    fn dp_engine_matches_across_ranks() {
        let world = World::new(system_i());
        let params = world.run_on(4, |ctx| {
            let cfg = Config::from_json("{}").unwrap();
            let mut engine = initialize(
                ctx,
                &cfg,
                4,
                make_model(20),
                OptimizerSpec::AdamW {
                    lr: 0.01,
                    weight_decay: 0.01,
                },
            );
            // per-rank data
            let mut rng = init::rng(21 + ctx.rank() as u64);
            for _ in 0..3 {
                let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
                let t = vec![0usize, 1];
                engine.zero_grad();
                let logits = engine.forward(&x);
                let (_, d) = cross_entropy(&logits, &t);
                let _ = engine.backward(&d);
                engine.step();
            }
            colossalai_parallel::data_parallel::flatten_params(engine.model_mut())
        });
        for p in &params[1..] {
            assert_eq!(p.data(), params[0].data(), "replicas diverged");
        }
    }

    #[test]
    fn zero_engine_matches_plain_dp() {
        let run = |zero_json: &str| {
            let world = World::new(system_i());
            let mut out = world.run_on(2, |ctx| {
                let cfg = Config::from_json(zero_json).unwrap();
                let mut engine = initialize(
                    ctx,
                    &cfg,
                    2,
                    make_model(30),
                    OptimizerSpec::AdamW {
                        lr: 0.01,
                        weight_decay: 0.0,
                    },
                );
                let mut rng = init::rng(31 + ctx.rank() as u64);
                for _ in 0..3 {
                    let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
                    engine.zero_grad();
                    let logits = engine.forward(&x);
                    let (_, d) = cross_entropy(&logits, &[0, 2]);
                    let _ = engine.backward(&d);
                    engine.step();
                }
                colossalai_parallel::data_parallel::flatten_params(engine.model_mut())
            });
            out.swap_remove(0)
        };
        let plain = run("{}");
        for stage in 1..=3 {
            let z = run(&format!(r#"{{ "zero": {{ "stage": {stage} }} }}"#));
            assert_eq!(z.data(), plain.data(), "ZeRO-{stage} diverged from DDP");
        }
    }

    #[test]
    fn overlapped_engine_matches_blocking_bitwise_and_is_no_slower() {
        use colossalai_topology::systems::system_iii;
        let run = |json: &str| {
            let world = World::new(system_iii());
            let mut out = world.run_on(4, |ctx| {
                let cfg = Config::from_json(json).unwrap();
                let mut engine = initialize(
                    ctx,
                    &cfg,
                    4,
                    make_model(60),
                    OptimizerSpec::AdamW {
                        lr: 0.01,
                        weight_decay: 0.01,
                    },
                );
                let mut rng = init::rng(61 + ctx.rank() as u64);
                for _ in 0..3 {
                    let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
                    engine.zero_grad();
                    let logits = engine.forward(&x);
                    let (_, d) = cross_entropy(&logits, &[0, 1]);
                    let _ = engine.backward(&d);
                    engine.step();
                }
                let flat = colossalai_parallel::data_parallel::flatten_params(engine.model_mut());
                (flat, engine.device().clock())
            });
            out.swap_remove(0)
        };
        // bucket_mb 0 → one bucket per parameter, exercising multi-bucket fire
        let (blocking, t_block) = run(r#"{ "comm": { "bucket_mb": 0, "overlap": false } }"#);
        let (overlapped, t_overlap) = run(r#"{ "comm": { "bucket_mb": 0, "overlap": true } }"#);
        assert_eq!(
            blocking.data(),
            overlapped.data(),
            "overlap must not change the trajectory"
        );
        // the two paths accumulate the same per-op costs onto different
        // clocks (main vs comm stream), so allow one float-rounding ULP
        assert!(
            t_overlap <= t_block * (1.0 + 1e-12),
            "overlap slower: {t_overlap} vs {t_block}"
        );
    }

    #[test]
    fn mixed_precision_skips_on_overflow() {
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let cfg = Config::from_json(r#"{ "mixed_precision": true }"#).unwrap();
            let mut engine = initialize(
                ctx,
                &cfg,
                1,
                make_model(40),
                OptimizerSpec::Sgd {
                    lr: 0.1,
                    momentum: 0.0,
                },
            );
            // poison the gradient
            engine.model_mut().visit_params(&mut |p: &mut Param| {
                p.accumulate_grad(&Tensor::full(p.value().shape().clone(), f32::NAN));
            });
            assert!(!engine.step());
            assert_eq!(engine.skipped_steps(), 1);
            assert_eq!(engine.steps(), 0);
        });
    }

    #[test]
    fn lr_schedule_drives_the_optimizer() {
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let cfg = Config::from_json("{}").unwrap();
            let mut engine = initialize(
                ctx,
                &cfg,
                1,
                make_model(97),
                OptimizerSpec::Sgd {
                    lr: 1.0,
                    momentum: 0.0,
                },
            );
            engine.set_lr_schedule(LrSchedule::WarmupConstant { warmup: 2 });
            assert_eq!(engine.current_lr(), 0.5);
            // SGD with lr = 0.5 and grad = 1 moves params by -0.5
            engine.model_mut().visit_params(&mut |p: &mut Param| {
                p.accumulate_grad(&Tensor::ones(p.value().shape().clone()));
            });
            let mut before = Vec::new();
            engine
                .model_mut()
                .visit_params(&mut |p| before.push(p.value().data()[0]));
            assert!(engine.step());
            let mut after = Vec::new();
            engine
                .model_mut()
                .visit_params(&mut |p| after.push(p.value().data()[0]));
            assert!((before[0] - after[0] - 0.5).abs() < 1e-6);
            // after the warmup, full LR
            assert_eq!(engine.current_lr(), 1.0);
        });
    }

    #[test]
    fn gradient_accumulation_equals_large_batch() {
        // 4 micro-batches of 2 with accumulation == one batch of 8
        let mut rng = init::rng(95);
        let x = init::uniform([8, 4], -1.0, 1.0, &mut rng);
        let t: Vec<usize> = (0..8).map(|i| i % 3).collect();

        let run = |json: &str, micro: usize| {
            let world = World::new(system_i());
            let x = x.clone();
            let t = t.clone();
            let mut out = world.run_on(1, |ctx| {
                let cfg = Config::from_json(json).unwrap();
                let mut engine = initialize(
                    ctx,
                    &cfg,
                    1,
                    make_model(96),
                    OptimizerSpec::AdamW {
                        lr: 0.01,
                        weight_decay: 0.0,
                    },
                );
                for _ in 0..2 {
                    // one optimizer step's worth of micro-batches
                    for m in 0..(8 / micro) {
                        let xm = x.narrow(0, m * micro, micro);
                        let tm = t[m * micro..(m + 1) * micro].to_vec();
                        let logits = engine.forward(&xm);
                        let (_, d) = cross_entropy(&logits, &tm);
                        let _ = engine.backward(&d);
                        assert!(engine.step());
                    }
                }
                colossalai_parallel::data_parallel::flatten_params(engine.model_mut())
            });
            out.swap_remove(0)
        };

        let big = run("{}", 8);
        let accumulated = run(r#"{ "gradient_accumulation": 4 }"#, 2);
        // cross_entropy means per micro-batch; accumulation means over the 4
        // micro means = the big batch's mean (equal micro sizes)
        assert!(
            accumulated.allclose(&big, 1e-5),
            "accumulated diverged by {}",
            accumulated.max_abs_diff(&big)
        );
    }

    #[test]
    fn checkpointed_engine_matches_plain() {
        let run = |json: &str| {
            let world = World::new(system_i());
            let mut out = world.run_on(1, |ctx| {
                let cfg = Config::from_json(json).unwrap();
                let mut engine = initialize(
                    ctx,
                    &cfg,
                    1,
                    make_model(70),
                    OptimizerSpec::AdamW {
                        lr: 0.02,
                        weight_decay: 0.0,
                    },
                );
                let mut rng = init::rng(71);
                let x = init::uniform([4, 4], -1.0, 1.0, &mut rng);
                for _ in 0..4 {
                    engine.zero_grad();
                    let logits = engine.forward(&x);
                    let (_, d) = cross_entropy(&logits, &[0, 1, 2, 0]);
                    let _ = engine.backward(&d);
                    engine.step();
                }
                colossalai_parallel::data_parallel::flatten_params(engine.model_mut())
            });
            out.swap_remove(0)
        };
        let plain = run("{}");
        let ckpt = run(r#"{ "activation_checkpoint": true }"#);
        assert_eq!(
            plain.data(),
            ckpt.data(),
            "checkpointing must not change numerics"
        );
    }

    #[test]
    fn distributed_clip_matches_serial_clip() {
        // two ranks each hold half the "parameters"; distributed clipping
        // must produce the same scale a serial clip over all of them would
        let world = World::new(system_i());
        let norms = world.run_on(2, |ctx| {
            let g = ctx.world_group(2);
            let mut rng = init::rng(90 + ctx.rank() as u64);
            let mut model: Box<dyn Layer> = Box::new(Linear::from_rng("l", 3, 3, false, &mut rng));
            model.visit_params(&mut |p: &mut Param| {
                p.accumulate_grad(&Tensor::full(p.value().shape().clone(), 2.0));
            });
            let norm = clip_grad_norm_distributed(ctx, &g, model.as_mut(), 1.0);
            // check the post-clip global norm is 1
            let mut sq = 0.0f32;
            model.visit_params(&mut |p| {
                sq += p.grad().data().iter().map(|g| g * g).sum::<f32>();
            });
            (norm, sq)
        });
        // both ranks saw the same pre-clip global norm: sqrt(18 * 4) = 8.485
        assert!((norms[0].0 - (36.0f32 + 36.0).sqrt()).abs() < 1e-3);
        assert_eq!(norms[0].0, norms[1].0);
        // the *global* post-clip norm is 1 => each rank holds half the square
        let total_sq = norms[0].1 + norms[1].1;
        assert!(
            (total_sq - 1.0).abs() < 1e-4,
            "global norm after clip: {}",
            total_sq.sqrt()
        );
    }

    #[test]
    fn engine_checkpoint_roundtrip_preserves_trajectory() {
        let world = World::new(system_i());
        world.run_on(1, |ctx| {
            let cfg = Config::from_json("{}").unwrap();
            let mut engine = initialize(
                ctx,
                &cfg,
                1,
                make_model(98),
                OptimizerSpec::Sgd {
                    lr: 0.05,
                    momentum: 0.0,
                },
            );
            let mut rng = init::rng(99);
            let x = init::uniform([4, 4], -1.0, 1.0, &mut rng);
            let step = |e: &mut Engine| {
                e.zero_grad();
                let logits = e.forward(&x);
                let (_, d) = cross_entropy(&logits, &[0, 1, 2, 0]);
                let _ = e.backward(&d);
                e.step();
            };
            step(&mut engine);
            let snapshot = engine.state_dict();
            let bytes = snapshot.to_bytes();
            step(&mut engine);
            let after_two = colossalai_parallel::data_parallel::flatten_params(engine.model_mut());
            // roll back to the snapshot and replay: must land on the same
            // parameters (SGD without momentum is stateless)
            let restored = colossalai_autograd::StateDict::from_bytes(&bytes).unwrap();
            engine.load_state_dict(&restored).unwrap();
            step(&mut engine);
            let replayed = colossalai_parallel::data_parallel::flatten_params(engine.model_mut());
            assert_eq!(replayed.data(), after_two.data());
        });
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut model = make_model(50);
        model.visit_params(&mut |p| {
            p.accumulate_grad(&Tensor::full(p.value().shape().clone(), 1.0));
        });
        let n_params = model.n_params() as f32;
        let before = clip_grad_norm(model.as_mut(), 1.0);
        assert!((before - n_params.sqrt()).abs() < 1e-3);
        // all grads now have global norm 1
        let mut sq = 0.0f32;
        model.visit_params(&mut |p| sq += p.grad().data().iter().map(|g| g * g).sum::<f32>());
        assert!((sq.sqrt() - 1.0).abs() < 1e-5);
    }
}
