//! Visualizes the pipeline schedules as ASCII Gantt charts over virtual
//! time: GPipe's all-forward/all-backward waves vs 1F1B's interleaving,
//! with the measured bubble fraction against the analytic `(p-1)/(m+p-1)`.
//!
//! The chart is rendered from the world's shared tracer; pass
//! `--trace <out.json>` to also export the Chrome-trace JSON of the last
//! schedule (load it at chrome://tracing or ui.perfetto.dev).

use colossalai_autograd::{Layer, Linear, Sequential};
use colossalai_bench::{trace_arg, write_trace};
use colossalai_comm::World;
use colossalai_parallel::pipeline::{
    bubble_fraction, stage_events, PipelineStage, Schedule, StageEvent,
};
use colossalai_tensor::init;
use colossalai_tensor::ops::cross_entropy;
use colossalai_tensor::Tensor;
use colossalai_topology::systems::system_i;

const P: usize = 4;
const M: usize = 6;
const T_FWD: f64 = 1.0e-3;

fn run(schedule: Schedule) -> (World, f64) {
    let world = World::new(system_i());
    world.enable_tracing();
    let mut rng = init::rng(42);
    let micros: Vec<Tensor> = (0..M)
        .map(|_| init::uniform([2, 8], -1.0, 1.0, &mut rng))
        .collect();
    let out = world.run_on(P, |ctx| {
        let devices: Vec<usize> = (0..P).collect();
        let mut srng = init::rng(7 + ctx.rank() as u64);
        let layers = Sequential::new(vec![
            Box::new(Linear::from_rng("l", 8, 8, true, &mut srng)) as Box<dyn Layer>
        ]);
        let mut stage = PipelineStage::new(ctx, &devices, layers);
        stage.micro_forward_seconds = T_FWD;
        let mut lf = |_: u64, o: &Tensor| cross_entropy(o, &[0, 1]);
        let _ = stage.run_step(
            schedule,
            stage.is_first().then_some(&micros[..]),
            stage
                .is_last()
                .then_some(&mut lf as &mut dyn FnMut(u64, &Tensor) -> (f32, Tensor)),
            M,
        );
        ctx.clock()
    });
    let makespan = out.iter().copied().fold(0.0, f64::max);
    (world, makespan)
}

fn render(traces: &[Vec<StageEvent>], makespan: f64) {
    const WIDTH: usize = 96;
    let scale = WIDTH as f64 / makespan;
    for (stage, trace) in traces.iter().enumerate() {
        let mut line = vec!['.'; WIDTH];
        for ev in trace {
            let a = (ev.start * scale) as usize;
            let b = ((ev.end * scale) as usize).min(WIDTH).max(a + 1);
            let ch = if ev.forward {
                char::from_digit(ev.micro as u32 % 10, 10).unwrap()
            } else {
                // backward segments render as letters a.. for micro 0..
                (b'a' + (ev.micro % 26) as u8) as char
            };
            for slot in line.iter_mut().take(b).skip(a) {
                *slot = ch;
            }
        }
        println!("stage {stage} |{}|", line.iter().collect::<String>());
    }
    // measured bubble: idle fraction of the busiest-possible schedule
    let busy: f64 = traces
        .iter()
        .flat_map(|t| t.iter().map(|e| e.end - e.start))
        .sum();
    let bubble = 1.0 - busy / (makespan * traces.len() as f64);
    println!(
        "makespan {:.1} ms | measured idle fraction {:.3} | analytic bubble {:.3}",
        makespan * 1e3,
        bubble,
        bubble_fraction(P, M)
    );
}

fn main() {
    let trace_path = trace_arg();
    println!(
        "Pipeline schedules on {P} stages x {M} micro-batches (digits = \
         forward micro id, letters = backward; '.' = idle):\n"
    );
    let mut last_world = None;
    for (name, schedule) in [("GPipe", Schedule::GPipe), ("1F1B", Schedule::OneFOneB)] {
        println!("== {name} ==");
        let (world, makespan) = run(schedule);
        let spans = world.trace();
        let traces: Vec<Vec<StageEvent>> = (0..P).map(|r| stage_events(&spans, r)).collect();
        render(&traces, makespan);
        println!();
        last_world = Some(world);
    }
    let last = last_world.expect("at least one schedule ran");
    println!("Per-rank time rollup of the 1F1B step:");
    print!("{}", last.rollup_table());
    println!(
        "\nBoth schedules share the same bubble; 1F1B's advantage is peak \
         activation memory (it holds at most {P} micro-batches in flight \
         where GPipe holds all {M})."
    );
    if let Some(path) = trace_path {
        write_trace(&last, &path);
    }
}
