//! A fully assembled 1D tensor-parallel BERT encoder: vocabulary-parallel
//! token embedding, bidirectional head-split Transformer blocks, and a
//! vocabulary-parallel MLM head — completing the paper's "parallelized
//! popular model components such as BERT, GPT, ViT" (Section 4) alongside
//! [`crate::vit1d::VisionTransformer1d`] and [`crate::gpt1d::Gpt1d`].

use crate::tp1d::shard_cols;
use crate::vit1d::TransformerBlock1d;
use crate::vocab_parallel::{vocab_parallel_cross_entropy, VocabParallelEmbedding};
use colossalai_autograd::{Layer, LayerNorm, Linear, Param, PositionEmbedding};
use colossalai_comm::{DeviceCtx, Group};
use colossalai_models::TransformerConfig;
use colossalai_tensor::init::{self, InitRng};
use colossalai_tensor::Tensor;

/// 1D-parallel BERT. The RNG draw order matches
/// [`colossalai_models::Bert::new`] so serial and parallel instances share
/// global weights per seed. (The serial BERT's head has a bias; the
/// vocabulary-parallel head keeps it sharded along the vocabulary.)
pub struct Bert1d {
    ctx: DeviceCtx,
    group: Group,
    tok: VocabParallelEmbedding,
    pos: PositionEmbedding,
    blocks: Vec<TransformerBlock1d>,
    ln_f: LayerNorm,
    head: Linear,
    vocab: usize,
}

impl Bert1d {
    pub fn new(ctx: &DeviceCtx, group: &Group, cfg: &TransformerConfig, rng: &mut InitRng) -> Self {
        let blocks: Vec<TransformerBlock1d> = (0..cfg.layers)
            .map(|i| {
                TransformerBlock1d::from_rng(
                    ctx,
                    group,
                    &format!("bert.block{i}"),
                    cfg.hidden,
                    cfg.heads,
                    cfg.mlp_ratio,
                    false,
                    rng,
                )
            })
            .collect();
        let tok = VocabParallelEmbedding::new(ctx, group, "bert.tok", cfg.vocab, cfg.hidden, rng);
        let pos = PositionEmbedding::new("bert", cfg.max_seq, cfg.hidden, rng);
        let head_global = init::lecun_normal(cfg.hidden, cfg.vocab, rng);
        let p = group.size();
        let r = group.rank();
        // serial Bert's head has a zero bias: shard it along vocab
        let head = Linear::from_parts(
            "bert.head",
            shard_cols(&head_global, p, r),
            Some(Tensor::zeros([cfg.vocab / p])),
        );
        Bert1d {
            ctx: ctx.clone(),
            group: group.clone(),
            tok,
            pos,
            blocks,
            ln_f: LayerNorm::new("bert.ln_f", cfg.hidden),
            head,
            vocab: cfg.vocab,
        }
    }

    /// Masked-LM loss over flattened-position `targets` at `positions`
    /// (indices into `[b * s]`), sharded end to end — no rank holds the
    /// full `[tokens, vocab]` logits.
    pub fn mlm_loss(
        &mut self,
        masked_tokens: &Tensor,
        targets: &[usize],
        positions: &[usize],
    ) -> (f32, Tensor) {
        assert_eq!(targets.len(), positions.len());
        let (b, s) = (masked_tokens.dims()[0], masked_tokens.dims()[1]);
        let local_logits = self.forward(masked_tokens); // [b, s, V/p]
        let local_v = *local_logits.dims().last().unwrap();
        let flat = local_logits.reshape([b * s, local_v]);
        // pick the masked rows
        let picked_rows: Vec<Tensor> = positions.iter().map(|&p| flat.narrow(0, p, 1)).collect();
        let picked = Tensor::cat(&picked_rows, 0);
        let (loss, dpicked) =
            vocab_parallel_cross_entropy(&self.ctx, &self.group, &picked, targets);
        // scatter the gradient back into the full (local) logits
        let mut dlogits = Tensor::zeros([b * s, local_v]);
        for (i, &p) in positions.iter().enumerate() {
            for v in 0..local_v {
                dlogits.set(&[p, v], dpicked.at(&[i, v]));
            }
        }
        (loss, dlogits.reshaped([b, s, local_v]))
    }

    /// Vocabulary size (global).
    pub fn vocab(&self) -> usize {
        self.vocab
    }
}

impl Layer for Bert1d {
    /// Forward to local (vocabulary-sharded) logits `[b, s, vocab/p]`.
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = self.tok.forward(x);
        h = self.pos.forward(&h);
        for blk in &mut self.blocks {
            h = blk.forward(&h);
        }
        let h = self.ln_f.forward(&h);
        self.head.forward(&h)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dh_partial = self.head.backward(dy);
        let dh = self.group.all_reduce(&self.ctx, dh_partial);
        let mut dh = self.ln_f.backward(&dh);
        for blk in self.blocks.iter_mut().rev() {
            dh = blk.backward(&dh);
        }
        let dh = self.pos.backward(&dh);
        self.tok.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok.visit_params(f);
        self.pos.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_comm::World;
    use colossalai_models::data::SyntheticText;
    use colossalai_models::Bert;
    use colossalai_tensor::ops::cross_entropy;
    use colossalai_topology::systems::system_iii;

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            layers: 2,
            hidden: 8,
            heads: 4,
            mlp_ratio: 2,
            vocab: 16,
            max_seq: 6,
        }
    }

    /// Serial MLM step matching Bert1d::mlm_loss semantics.
    fn serial_mlm_losses(cfg: &TransformerConfig, steps: usize, lr: f32) -> Vec<f32> {
        let data = SyntheticText::new(cfg.vocab, 33);
        let mut rng = init::rng(5000);
        let mut bert = Bert::new(cfg, &mut rng);
        let mut losses = Vec::new();
        for step in 0..steps {
            let tokens = data.batch(2, cfg.max_seq, step as u64 % 2);
            let (masked, targets, positions) = data.mask_for_mlm(&tokens, 0.3, step as u64 % 2);
            if targets.is_empty() {
                losses.push(f32::NAN);
                continue;
            }
            bert.zero_grad();
            let logits = bert.forward(&masked);
            let vocab = cfg.vocab;
            let flat = logits.reshape([2 * cfg.max_seq, vocab]);
            let rows: Vec<Tensor> = positions.iter().map(|&p| flat.narrow(0, p, 1)).collect();
            let picked = Tensor::cat(&rows, 0);
            let (loss, dpicked) = cross_entropy(&picked, &targets);
            losses.push(loss);
            let mut dlogits = Tensor::zeros([2 * cfg.max_seq, vocab]);
            for (i, &p) in positions.iter().enumerate() {
                for v in 0..vocab {
                    dlogits.set(&[p, v], dpicked.at(&[i, v]));
                }
            }
            let _ = bert.backward(&dlogits.reshaped([2, cfg.max_seq, vocab]));
            bert.visit_params(&mut |p| {
                let g = p.grad().clone();
                p.value_mut().axpy(-lr, &g);
            });
        }
        losses
    }

    #[test]
    fn parallel_bert_mlm_matches_serial() {
        let cfg = tiny_cfg();
        let steps = 4;
        let lr = 0.05;
        let want = serial_mlm_losses(&cfg, steps, lr);
        let data = SyntheticText::new(cfg.vocab, 33);

        for p in [2usize, 4] {
            let world = World::new(system_iii());
            let results = world.run_on(p, |ctx| {
                let g = ctx.world_group(p);
                let mut rng = init::rng(5000);
                let mut bert = Bert1d::new(ctx, &g, &cfg, &mut rng);
                let mut losses = Vec::new();
                for step in 0..steps {
                    let tokens = data.batch(2, cfg.max_seq, step as u64 % 2);
                    let (masked, targets, positions) =
                        data.mask_for_mlm(&tokens, 0.3, step as u64 % 2);
                    if targets.is_empty() {
                        losses.push(f32::NAN);
                        continue;
                    }
                    bert.zero_grad();
                    let (loss, d) = bert.mlm_loss(&masked, &targets, &positions);
                    losses.push(loss);
                    let _ = bert.backward(&d);
                    bert.visit_params(&mut |pp| {
                        let gr = pp.grad().clone();
                        pp.value_mut().axpy(-lr, &gr);
                    });
                }
                losses
            });
            for losses in &results {
                for (a, b) in losses.iter().zip(&want) {
                    if a.is_nan() && b.is_nan() {
                        continue;
                    }
                    assert!(
                        (a - b).abs() < 3e-3,
                        "p={p}: MLM loss diverged: {losses:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bert1d_logits_stay_sharded() {
        let cfg = tiny_cfg();
        let p = 4;
        let world = World::new(system_iii());
        world.run_on(p, |ctx| {
            let g = ctx.world_group(p);
            let mut rng = init::rng(5001);
            let mut bert = Bert1d::new(ctx, &g, &cfg, &mut rng);
            let tokens = Tensor::from_vec([1, 6], vec![0., 1., 2., 3., 4., 5.]);
            let out = bert.forward(&tokens);
            assert_eq!(*out.dims().last().unwrap(), cfg.vocab / p);
        });
    }
}
