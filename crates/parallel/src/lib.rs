//! # colossalai-parallel
//!
//! The parallel training algorithms of the Colossal-AI paper, implemented
//! over the thread-backed simulated cluster:
//!
//! * [`tp1d`] — Megatron-LM 1D tensor parallelism (the baseline);
//! * [`tp2d`] — 2D tensor parallelism (SUMMA);
//! * [`tp25d`] — 2.5D tensor parallelism (Solomonik–Demmel style depth);
//! * [`tp3d`] — 3D tensor parallelism (Agarwal);
//! * [`sequence`] — sequence parallelism with Ring Self-Attention;
//! * [`data_parallel`] — distributed data parallelism;
//! * [`bucket`] — bucketed, backward-overlapped gradient synchronization;
//! * [`zero`] — the Zero Redundancy Optimizer, stages 1-3;
//! * [`pipeline`] — GPipe and 1F1B pipeline schedules;
//! * [`vocab_parallel`] — Megatron vocabulary-parallel embedding + the
//!   gather-free parallel cross-entropy;
//! * [`norm2d`] — 2D-parallel LayerNorm and a fully sharded MLP block;
//! * [`vit1d`] / [`gpt1d`] / [`bert_sp`] — fully assembled parallel models;
//! * [`auto`] — the experimental automatic parallelization of Section 3.3;
//! * [`volume`] — the closed-form communication volumes of Table 1 / Fig 5;
//! * [`memcalc`] — per-mode memory footprints behind Figs 8 and 12;
//! * [`throughput`] — step-time estimation at paper scale (Figs 11, 13, 14,
//!   Table 3).

pub mod auto;
pub mod bert1d;
pub mod bert_sp;
pub mod bucket;
pub mod data_parallel;
pub mod gpt1d;
pub mod memcalc;
pub mod norm2d;
pub mod pipeline;
pub mod sequence;
pub mod throughput;
pub mod timed;
pub mod tp1d;
pub mod tp25d;
pub mod tp2d;
pub mod tp3d;
pub mod vit1d;
pub mod vocab_parallel;
pub mod volume;
pub mod zero;

pub use bert1d::Bert1d;
pub use bucket::{Bucket, BucketPlan, BucketedGradSync, DEFAULT_BUCKET_BYTES};
pub use data_parallel::{split_batch, DataParallel};
pub use gpt1d::Gpt1d;
pub use norm2d::{LayerNorm2d, Mlp2d};
pub use pipeline::{PipelineStage, Schedule};
pub use sequence::RingSelfAttention;
pub use throughput::StepEstimate;
pub use timed::TimedLayer;
pub use tp1d::{ColumnParallelLinear, ParallelAttention1d, ParallelMlp, RowParallelLinear};
pub use tp25d::{Grid25d, Linear25d};
pub use tp2d::{Grid2d, Linear2d};
pub use tp3d::{Grid3d, Linear3d};
pub use vit1d::{TransformerBlock1d, VisionTransformer1d};
pub use vocab_parallel::{vocab_parallel_cross_entropy, VocabParallelEmbedding};
pub use volume::{MatmulShape, TpMode};
pub use zero::{ZeroOptimizer, ZeroStage};
