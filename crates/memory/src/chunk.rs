//! Chunk-based tensor memory management (the PatrickStar strategy that
//! Section 3.2 integrates).
//!
//! Small parameter tensors are packed back-to-back into fixed-size chunks;
//! data movement between GPU and CPU happens a whole chunk at a time, which
//! amortizes per-transfer latency and raises effective PCIe bandwidth
//! utilization — the `chunk_ablation` bench quantifies exactly this against
//! per-tensor movement.

use crate::tracker::MemoryTracker;
use colossalai_comm::{DeviceCtx, SpanKind};
use colossalai_topology::Link;

/// Which memory tier currently holds a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    Gpu,
    Cpu,
    /// NVMe spill tier (only used when a CPU budget is configured).
    Nvme,
}

/// Handle to a tensor packed inside a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TensorRef {
    chunk: usize,
    offset: usize,
    len: usize,
}

impl TensorRef {
    /// Number of elements in the referenced tensor.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length tensors.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the chunk holding this tensor.
    pub fn chunk_index(&self) -> usize {
        self.chunk
    }
}

struct Chunk {
    data: Vec<f32>,
    used: usize,
    tier: Tier,
    /// Monotonic timestamp of the last access (for LRU eviction).
    last_access: u64,
}

/// Cumulative data-movement cost incurred by chunk migrations.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MoveCost {
    /// Host-to-device bytes.
    pub h2d_bytes: u64,
    /// Device-to-host bytes.
    pub d2h_bytes: u64,
    /// Bytes moved to or from the NVMe tier.
    pub nvme_bytes: u64,
    /// Total virtual seconds spent on migrations.
    pub seconds: f64,
    /// Number of chunk migrations.
    pub moves: u64,
}

impl MoveCost {
    /// Accounts one PCIe move and returns the seconds it costs.
    fn add(&mut self, bytes: u64, to_gpu: bool, link: Link) -> f64 {
        if to_gpu {
            self.h2d_bytes += bytes;
        } else {
            self.d2h_bytes += bytes;
        }
        let dt = link.transfer_time(bytes);
        self.seconds += dt;
        self.moves += 1;
        dt
    }

    /// Accounts one NVMe move and returns the seconds it costs.
    fn add_nvme(&mut self, bytes: u64, link: Link) -> f64 {
        self.nvme_bytes += bytes;
        let dt = link.transfer_time(bytes);
        self.seconds += dt;
        self.moves += 1;
        dt
    }
}

/// Packs tensors into fixed-size chunks and migrates them between a
/// GPU-budgeted tier and host memory on access, evicting least-recently-used
/// chunks when the GPU budget is exhausted.
pub struct ChunkManager {
    chunk_elems: usize,
    chunks: Vec<Chunk>,
    gpu: MemoryTracker,
    /// Optional CPU DRAM budget; exceeding it spills LRU CPU chunks to NVMe.
    cpu: Option<MemoryTracker>,
    pcie: Link,
    nvme: Link,
    cost: MoveCost,
    tick: u64,
    /// When attached, migrations advance this device's virtual clock and
    /// (with tracing on) record [`SpanKind::MemMove`] spans.
    device: Option<DeviceCtx>,
}

impl ChunkManager {
    /// Creates a manager with `chunk_elems`-element chunks and a GPU budget
    /// of `gpu_budget_bytes`, moving data over `pcie`.
    ///
    /// New chunks are born on the GPU when the budget allows (they are
    /// written by compute), otherwise on the CPU.
    pub fn new(chunk_elems: usize, gpu_budget_bytes: u64, pcie: Link) -> Self {
        assert!(chunk_elems > 0, "chunk size must be positive");
        ChunkManager {
            chunk_elems,
            chunks: Vec::new(),
            gpu: MemoryTracker::new(gpu_budget_bytes),
            cpu: None,
            pcie,
            nvme: Link::nvme(),
            cost: MoveCost::default(),
            tick: 0,
            device: None,
        }
    }

    /// Attaches a device context: from now on every chunk migration charges
    /// the device's virtual clock and, when the world is tracing, records a
    /// memory-movement span.
    pub fn attach_device(&mut self, ctx: &DeviceCtx) {
        self.device = Some(ctx.clone());
    }

    /// Enables the NVMe spill tier: CPU-resident chunks beyond
    /// `cpu_budget_bytes` move to NVMe over `nvme` (Section 2.4's
    /// "CPU or NVMe disks").
    pub fn with_nvme_tier(mut self, cpu_budget_bytes: u64, nvme: Link) -> Self {
        self.cpu = Some(MemoryTracker::new(cpu_budget_bytes));
        self.nvme = nvme;
        self
    }

    /// Configured chunk size in elements.
    pub fn chunk_elems(&self) -> usize {
        self.chunk_elems
    }

    /// Number of chunks allocated so far.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes of one chunk (f32 payload).
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_elems as u64 * 4
    }

    /// GPU-resident bytes right now.
    pub fn gpu_in_use(&self) -> u64 {
        self.gpu.in_use()
    }

    /// Peak GPU-resident bytes.
    pub fn gpu_peak(&self) -> u64 {
        self.gpu.peak()
    }

    /// Cumulative migration cost.
    pub fn cost(&self) -> MoveCost {
        self.cost
    }

    /// Chunk counts per tier: `(gpu, cpu, nvme)`.
    pub fn tier_census(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in &self.chunks {
            match c.tier {
                Tier::Gpu => counts.0 += 1,
                Tier::Cpu => counts.1 += 1,
                Tier::Nvme => counts.2 += 1,
            }
        }
        counts
    }

    /// Registers a tensor of `data`, packing it into chunks. Tensors larger
    /// than a chunk are rejected (callers split big parameters first, as
    /// PatrickStar does).
    pub fn register(&mut self, data: &[f32]) -> TensorRef {
        assert!(
            data.len() <= self.chunk_elems,
            "tensor of {} elements exceeds chunk size {}",
            data.len(),
            self.chunk_elems
        );
        // find the last chunk with room, else open a new one
        let idx = match self.chunks.last() {
            Some(c) if c.used + data.len() <= self.chunk_elems => self.chunks.len() - 1,
            _ => {
                let on_gpu = self.gpu.alloc(self.chunk_bytes()).is_ok();
                self.chunks.push(Chunk {
                    data: vec![0.0; self.chunk_elems],
                    used: 0,
                    tier: Tier::Gpu, // provisional; corrected below
                    last_access: self.tick,
                });
                let idx = self.chunks.len() - 1;
                if !on_gpu {
                    // born on the CPU, which charges the CPU budget (and may
                    // spill an older CPU chunk to NVMe)
                    self.demote_to_cpu(idx);
                }
                idx
            }
        };
        let chunk = &mut self.chunks[idx];
        let offset = chunk.used;
        chunk.data[offset..offset + data.len()].copy_from_slice(data);
        chunk.used += data.len();
        TensorRef {
            chunk: idx,
            offset,
            len: data.len(),
        }
    }

    /// Tier currently holding the chunk of `r`.
    pub fn tier_of(&self, r: TensorRef) -> Tier {
        self.chunks[r.chunk].tier
    }

    /// Ensures the chunk of `r` is GPU-resident (migrating and evicting as
    /// needed) and returns a copy of the tensor data.
    pub fn read(&mut self, r: TensorRef) -> Vec<f32> {
        self.touch(r.chunk);
        self.chunks[r.chunk].data[r.offset..r.offset + r.len].to_vec()
    }

    /// Ensures GPU residency and overwrites the tensor data.
    pub fn write(&mut self, r: TensorRef, data: &[f32]) {
        assert_eq!(data.len(), r.len, "write length mismatch");
        self.touch(r.chunk);
        self.chunks[r.chunk].data[r.offset..r.offset + r.len].copy_from_slice(data);
    }

    /// Explicitly evicts the chunk of `r` to the CPU (used by lifecycle
    /// hooks that know a parameter will not be touched again this pass).
    pub fn evict(&mut self, r: TensorRef) {
        self.move_chunk(r.chunk, Tier::Cpu);
    }

    /// Brings the chunk of `r` to the GPU without reading.
    pub fn prefetch(&mut self, r: TensorRef) {
        self.touch(r.chunk);
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.chunks[idx].last_access = self.tick;
        if self.chunks[idx].tier != Tier::Gpu {
            self.move_chunk(idx, Tier::Gpu);
        }
    }

    /// Charges `dt` seconds of movement to the attached device (if any) and
    /// records the span when tracing.
    fn note_move(&self, bytes: u64, from: &'static str, to: &'static str, dt: f64) {
        if let Some(ctx) = &self.device {
            let start = ctx.clock();
            ctx.advance(dt);
            if ctx.tracing() {
                ctx.trace_span(SpanKind::MemMove { bytes, from, to }, start);
            }
        }
    }

    fn move_chunk(&mut self, idx: usize, to: Tier) {
        let from = self.chunks[idx].tier;
        if from == to {
            return;
        }
        match to {
            Tier::Gpu => {
                // make room by demoting LRU GPU chunks
                while self.gpu.alloc(self.chunk_bytes()).is_err() {
                    let victim = self
                        .chunks
                        .iter()
                        .enumerate()
                        .filter(|(i, c)| *i != idx && c.tier == Tier::Gpu)
                        .min_by_key(|(_, c)| c.last_access)
                        .map(|(i, _)| i)
                        .expect("GPU budget smaller than one chunk");
                    self.gpu.free(self.chunk_bytes());
                    let dt = self.cost.add(self.chunk_bytes(), false, self.pcie);
                    self.note_move(self.chunk_bytes(), "gpu", "cpu", dt);
                    self.demote_to_cpu(victim);
                }
                let cb = self.chunk_bytes();
                if from == Tier::Nvme {
                    // NVMe -> DRAM -> device
                    let dt = self.cost.add_nvme(cb, self.nvme);
                    self.note_move(cb, "nvme", "cpu", dt);
                }
                if from == Tier::Cpu {
                    if let Some(cpu) = &mut self.cpu {
                        cpu.free(cb);
                    }
                }
                self.chunks[idx].tier = Tier::Gpu;
                let dt = self.cost.add(cb, true, self.pcie);
                self.note_move(cb, "cpu", "gpu", dt);
            }
            Tier::Cpu => {
                assert_eq!(from, Tier::Gpu, "only GPU chunks demote directly to CPU");
                self.gpu.free(self.chunk_bytes());
                let dt = self.cost.add(self.chunk_bytes(), false, self.pcie);
                self.note_move(self.chunk_bytes(), "gpu", "cpu", dt);
                self.demote_to_cpu(idx);
            }
            Tier::Nvme => {
                panic!("chunks spill to NVMe only via CPU-budget pressure");
            }
        }
    }

    /// Places chunk `idx` on the CPU, spilling LRU CPU chunks to NVMe when a
    /// CPU budget is configured and exhausted.
    fn demote_to_cpu(&mut self, idx: usize) {
        let cb = self.chunk_bytes();
        while let Some(cpu) = &mut self.cpu {
            if cpu.alloc(cb).is_ok() {
                break;
            }
            let victim = self
                .chunks
                .iter()
                .enumerate()
                .filter(|(i, c)| *i != idx && c.tier == Tier::Cpu)
                .min_by_key(|(_, c)| c.last_access)
                .map(|(i, _)| i)
                .expect("CPU budget smaller than one chunk");
            self.chunks[victim].tier = Tier::Nvme;
            if let Some(cpu) = &mut self.cpu {
                cpu.free(cb);
            }
            let dt = self.cost.add_nvme(cb, self.nvme);
            self.note_move(cb, "cpu", "nvme", dt);
        }
        self.chunks[idx].tier = Tier::Cpu;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_topology::Link;

    fn mgr(chunk_elems: usize, budget_chunks: u64) -> ChunkManager {
        ChunkManager::new(
            chunk_elems,
            budget_chunks * chunk_elems as u64 * 4,
            Link::pcie(),
        )
    }

    #[test]
    fn packs_tensors_into_chunks() {
        let mut m = mgr(10, 8);
        let a = m.register(&[1.0; 4]);
        let b = m.register(&[2.0; 4]);
        let c = m.register(&[3.0; 4]); // does not fit -> new chunk
        assert_eq!(a.chunk_index(), 0);
        assert_eq!(b.chunk_index(), 0);
        assert_eq!(c.chunk_index(), 1);
        assert_eq!(m.n_chunks(), 2);
        assert_eq!(m.read(b), vec![2.0; 4]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = mgr(16, 4);
        let r = m.register(&[0.0; 16]);
        let payload: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        m.write(r, &payload);
        assert_eq!(m.read(r), payload);
    }

    #[test]
    fn eviction_when_over_budget() {
        // budget of 2 chunks, register 3 -> third chunk lands on CPU
        let mut m = mgr(4, 2);
        let a = m.register(&[1.0; 4]);
        let b = m.register(&[2.0; 4]);
        let c = m.register(&[3.0; 4]);
        assert_eq!(m.tier_of(a), Tier::Gpu);
        assert_eq!(m.tier_of(b), Tier::Gpu);
        assert_eq!(m.tier_of(c), Tier::Cpu);
        // touching c migrates it in, evicting LRU (a)
        assert_eq!(m.read(c), vec![3.0; 4]);
        assert_eq!(m.tier_of(c), Tier::Gpu);
        assert_eq!(m.tier_of(a), Tier::Cpu);
        assert_eq!(m.tier_of(b), Tier::Gpu);
    }

    #[test]
    fn lru_order_respects_access() {
        let mut m = mgr(4, 2);
        let a = m.register(&[1.0; 4]);
        let b = m.register(&[2.0; 4]);
        let c = m.register(&[3.0; 4]);
        // access a so b becomes LRU
        let _ = m.read(a);
        let _ = m.read(c);
        assert_eq!(m.tier_of(b), Tier::Cpu, "b was least recently used");
        assert_eq!(m.tier_of(a), Tier::Gpu);
    }

    #[test]
    fn migration_cost_accumulates() {
        let mut m = mgr(1024, 1);
        let a = m.register(&[1.0; 1024]);
        let b = m.register(&[2.0; 1024]); // CPU-born
        assert_eq!(m.cost().moves, 0);
        let _ = m.read(b); // evict a (d2h), fetch b (h2d)
        let cost = m.cost();
        assert_eq!(cost.moves, 2);
        assert_eq!(cost.d2h_bytes, 4096);
        assert_eq!(cost.h2d_bytes, 4096);
        assert!(cost.seconds > 0.0);
        let _ = m.read(a); // and back
        assert_eq!(m.cost().moves, 4);
    }

    #[test]
    fn data_survives_round_trips() {
        let mut m = mgr(8, 1);
        let a = m.register(&[7.0; 8]);
        let b = m.register(&[9.0; 8]);
        for _ in 0..5 {
            assert_eq!(m.read(a), vec![7.0; 8]);
            assert_eq!(m.read(b), vec![9.0; 8]);
        }
    }

    #[test]
    fn explicit_evict_frees_gpu() {
        let mut m = mgr(4, 2);
        let a = m.register(&[1.0; 4]);
        let before = m.gpu_in_use();
        m.evict(a);
        assert_eq!(m.gpu_in_use(), before - m.chunk_bytes());
        assert_eq!(m.tier_of(a), Tier::Cpu);
    }

    #[test]
    fn nvme_tier_spills_and_recovers_data() {
        // GPU fits 1 chunk, CPU fits 1 chunk, third chunk spills to NVMe
        let chunk_elems = 4usize;
        let cb = chunk_elems as u64 * 4;
        let mut m =
            ChunkManager::new(chunk_elems, cb, Link::pcie()).with_nvme_tier(cb, Link::nvme());
        let a = m.register(&[1.0; 4]); // GPU
        let b = m.register(&[2.0; 4]); // CPU (GPU full)
        let c = m.register(&[3.0; 4]); // CPU... then pressure
        assert_eq!(m.tier_of(a), Tier::Gpu);
        // touching c: promote to GPU, evicting a to CPU, which spills b or c
        assert_eq!(m.read(c), vec![3.0; 4]);
        let tiers: Vec<Tier> = [a, b, c].iter().map(|r| m.tier_of(*r)).collect();
        assert!(
            tiers.contains(&Tier::Nvme),
            "someone must be on NVMe: {tiers:?}"
        );
        assert!(m.cost().nvme_bytes > 0);
        // every tensor's data survives the full tier shuffle
        assert_eq!(m.read(a), vec![1.0; 4]);
        assert_eq!(m.read(b), vec![2.0; 4]);
        assert_eq!(m.read(c), vec![3.0; 4]);
    }

    #[test]
    fn tier_census_counts_every_chunk() {
        let chunk_elems = 4usize;
        let cb = chunk_elems as u64 * 4;
        let mut m =
            ChunkManager::new(chunk_elems, cb, Link::pcie()).with_nvme_tier(cb, Link::nvme());
        let _ = m.register(&[1.0; 4]);
        let _ = m.register(&[2.0; 4]);
        let _ = m.register(&[3.0; 4]);
        let (g, c, n) = m.tier_census();
        assert_eq!(g + c + n, 3);
        assert_eq!(g, 1, "one chunk fits the GPU budget");
    }

    #[test]
    fn without_nvme_tier_cpu_is_unbounded() {
        let mut m = mgr(4, 1);
        for _ in 0..10 {
            let _ = m.register(&[0.0; 4]);
        }
        // everything beyond the GPU budget sits on the CPU; nothing on NVMe
        assert_eq!(m.cost().nvme_bytes, 0);
    }

    #[test]
    fn nvme_reads_cost_more_than_cpu_reads() {
        let chunk_elems = 1024usize;
        let cb = chunk_elems as u64 * 4;
        let mut m =
            ChunkManager::new(chunk_elems, cb, Link::pcie()).with_nvme_tier(cb, Link::nvme());
        let a = m.register(&[1.0; 1024]);
        let b = m.register(&[2.0; 1024]);
        let c = m.register(&[3.0; 1024]);
        // cycle the three: some promotions come from NVMe, which is slower
        let before = m.cost().seconds;
        let _ = m.read(a);
        let _ = m.read(b);
        let _ = m.read(c);
        let after = m.cost();
        assert!(after.seconds > before);
        assert!(
            after.nvme_bytes > 0,
            "cycling three chunks through two slots must hit NVMe"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds chunk size")]
    fn oversized_tensor_rejected() {
        mgr(4, 2).register(&[0.0; 5]);
    }

    #[test]
    fn attached_device_charges_clock_and_traces_moves() {
        use colossalai_comm::{SpanKind, World};
        use colossalai_topology::systems::system_i;
        let world = World::new(system_i());
        world.enable_tracing();
        let out = world.run_on(1, |ctx| {
            let mut m = mgr(1024, 1);
            m.attach_device(ctx);
            let a = m.register(&[1.0; 1024]);
            let b = m.register(&[2.0; 1024]); // CPU-born
            let _ = m.read(b); // evict a (d2h), fetch b (h2d)
            let _ = m.read(a); // and back
            (m.cost(), ctx.clock())
        });
        let (cost, clock) = out[0];
        assert_eq!(cost.moves, 4);
        assert!(cost.seconds > 0.0);
        assert!(
            (clock - cost.seconds).abs() < 1e-12,
            "virtual clock must absorb migration time: {clock} vs {}",
            cost.seconds
        );
        let spans = world.trace();
        let moves: Vec<_> = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::MemMove { .. }))
            .collect();
        assert_eq!(moves.len(), 4, "one span per migration");
        for w in moves.windows(2) {
            assert!(w[1].start >= w[0].end - 1e-12, "moves must not overlap");
        }
    }

    #[test]
    fn unattached_manager_never_touches_a_clock() {
        // the default manager stays a pure planner: cost accrues in the
        // ledger only
        let mut m = mgr(1024, 1);
        let a = m.register(&[1.0; 1024]);
        let b = m.register(&[2.0; 1024]);
        let _ = m.read(b);
        let _ = m.read(a);
        assert!(m.cost().seconds > 0.0);
    }

    #[test]
    fn peak_tracks_budget_usage() {
        let mut m = mgr(4, 3);
        let _ = m.register(&[0.0; 4]);
        let _ = m.register(&[0.0; 4]);
        assert_eq!(m.gpu_peak(), 2 * m.chunk_bytes());
    }
}
