//! Dropout with deterministic, seeded masks.
//!
//! Determinism matters twice here: (a) reproducibility of every experiment,
//! and (b) activation checkpointing — the recomputed forward must draw the
//! *same* mask as the original forward, or gradients silently corrupt. The
//! layer therefore derives each forward's mask from `(seed, counter)` and
//! rolls the counter back when a backward consumes the forward, exactly the
//! RNG-state bookkeeping real frameworks do around checkpointed regions.

use crate::layer::Layer;
use crate::param::Param;
use colossalai_tensor::init;
use colossalai_tensor::Tensor;

/// Inverted dropout: active in training mode, identity in eval mode.
pub struct Dropout {
    p: f32,
    seed: u64,
    /// Forwards drawn so far; mask `i` is `f(seed, i)`.
    counter: u64,
    training: bool,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            seed,
            counter: 0,
            training: true,
            cached_mask: None,
        }
    }

    /// Switches between training (mask) and eval (identity) behaviour.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// True while masking is active.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Rolls the mask counter back by one forward — called by checkpointed
    /// regions before recomputation so the replayed forward reproduces the
    /// original mask.
    pub fn rewind_one(&mut self) {
        assert!(self.counter > 0, "rewind before any forward");
        self.counter -= 1;
    }

    fn mask_for(&self, numel: usize, index: u64) -> Tensor {
        let mut rng = init::rng(self.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let draws = init::uniform([numel], 0.0, 1.0, &mut rng);
        draws.map(|u| if u < keep { scale } else { 0.0 })
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.cached_mask = None;
            return x.clone();
        }
        let mask = self
            .mask_for(x.numel(), self.counter)
            .reshaped(x.shape().clone());
        self.counter += 1;
        let y = x.zip(&mask, |a, m| a * m);
        self.cached_mask = Some(mask);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self.cached_mask.take() {
            Some(mask) => dy.zip(&mask, |d, m| d * m),
            None => dy.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Tensor::arange(16);
        assert_eq!(d.forward(&x), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn training_zeroes_and_rescales() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + kept, 10_000, "values are 0 or 1/keep");
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "drop fraction {frac}");
        // inverted dropout preserves the expectation
        assert!((y.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor::ones([64]);
        let y = d.forward(&x);
        let dx = d.backward(&Tensor::ones([64]));
        // gradient is zero exactly where the forward dropped
        for (yy, dd) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yy == 0.0, *dd == 0.0);
        }
    }

    #[test]
    fn masks_differ_across_forwards_but_replay_after_rewind() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::ones([256]);
        let y1 = d.forward(&x);
        let _ = d.backward(&x);
        let y2 = d.forward(&x);
        let _ = d.backward(&x);
        assert_ne!(y1.data(), y2.data(), "fresh forwards draw fresh masks");
        // checkpoint recomputation: rewind, replay -> identical mask
        d.rewind_one();
        let y2_replay = d.forward(&x);
        assert_eq!(y2.data(), y2_replay.data());
    }

    #[test]
    fn deterministic_across_instances() {
        let x = Tensor::ones([128]);
        let mut a = Dropout::new(0.4, 77);
        let mut b = Dropout::new(0.4, 77);
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
        let mut c = Dropout::new(0.4, 78);
        assert_ne!(a.forward(&x).data(), c.forward(&x).data());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
