//! Presets for the four experimental systems of Table 2.

use crate::cluster::Cluster;
use crate::device::{GpuSpec, HostSpec};
use crate::link::Link;

/// System I: one node, 8x A100-80GB, full-mesh NVLink between any pair
/// (Fig 9a).
pub fn system_i() -> Cluster {
    let mut c = Cluster::homogeneous(
        "System I",
        1,
        8,
        GpuSpec::a100(80),
        HostSpec::dgx(),
        Link::infiniband_hdr(),
    );
    c.full_mesh_intra_node(Link::nvlink());
    c
}

/// System II: one node, 8x A100-80GB, NVLink only between the four adjacent
/// pairs (0-1, 2-3, 4-5, 6-7); all other pairs communicate over PCIe
/// (Fig 9b).
pub fn system_ii() -> Cluster {
    let mut c = Cluster::homogeneous(
        "System II",
        1,
        8,
        GpuSpec::a100(80),
        HostSpec::dgx(),
        Link::infiniband_hdr(),
    );
    for pair in 0..4 {
        c.add_link(2 * pair, 2 * pair + 1, Link::nvlink());
    }
    c
}

/// System III: 16 nodes x 4 A100-40GB, NVLink inside a node, InfiniBand HDR
/// (200 Gb/s) between nodes.
pub fn system_iii() -> Cluster {
    let mut c = Cluster::homogeneous(
        "System III",
        16,
        4,
        GpuSpec::a100(40),
        HostSpec::workstation(),
        Link::infiniband_hdr(),
    );
    c.full_mesh_intra_node(Link::nvlink());
    c
}

/// System IV: 64 nodes x 1 P100-16GB connected by the Cray Aries fabric.
pub fn system_iv() -> Cluster {
    Cluster::homogeneous(
        "System IV",
        64,
        1,
        GpuSpec::p100(),
        HostSpec::workstation(),
        Link::aries(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;

    #[test]
    fn table2_shapes() {
        assert_eq!(system_i().n_devices(), 8);
        assert_eq!(system_i().n_nodes(), 1);
        assert_eq!(system_ii().n_devices(), 8);
        assert_eq!(system_iii().n_devices(), 64);
        assert_eq!(system_iii().n_nodes(), 16);
        assert_eq!(system_iv().n_devices(), 64);
        assert_eq!(system_iv().n_nodes(), 64);
    }

    #[test]
    fn system_i_fully_connected() {
        let c = system_i();
        let all: Vec<usize> = (0..8).collect();
        assert!(c.fully_nvlinked(&all));
    }

    #[test]
    fn system_ii_adjacent_only() {
        let c = system_ii();
        assert_eq!(c.link(0, 1).kind, LinkKind::NvLink);
        assert_eq!(c.link(6, 7).kind, LinkKind::NvLink);
        assert_eq!(c.link(0, 2).kind, LinkKind::Pcie);
        assert_eq!(c.link(1, 7).kind, LinkKind::Pcie);
        assert!(!c.fully_nvlinked(&(0..8).collect::<Vec<_>>()));
        assert!(c.fully_nvlinked(&[4, 5]));
    }

    #[test]
    fn system_iii_cross_node_is_ib() {
        let c = system_iii();
        assert_eq!(c.link(0, 4).kind, LinkKind::InfiniBandHdr);
        assert_eq!(c.link(0, 3).kind, LinkKind::NvLink);
    }

    #[test]
    fn system_iv_all_cross_node() {
        let c = system_iv();
        assert_eq!(c.link(0, 1).kind, LinkKind::Aries);
        assert_eq!(c.gpu(0).name, "P100-16GB");
    }

    #[test]
    fn memory_capacities_match_table2() {
        assert_eq!(system_i().gpu(0).memory_bytes, 80 << 30);
        assert_eq!(system_iii().gpu(0).memory_bytes, 40 << 30);
        assert_eq!(system_iv().gpu(0).memory_bytes, 16 << 30);
    }
}
