//! Event-driven rank scheduler: runs an `n`-rank world on a fixed pool of
//! concurrently-executing rank tasks.
//!
//! The legacy backend (`COLOSSAL_WORLD=threads`) lets all `n` device
//! threads run at once, which stops scaling long before the 512–4096-rank
//! worlds the topology presets describe: the host thrashes between
//! hundreds of runnable threads, every rendezvous wakes a stampede, and
//! the OS — not virtual time — decides execution order.
//!
//! Under this scheduler each rank is still an OS thread (its stack *is*
//! the task's resumable state), but at most `pool` of them hold a *running
//! slot* at any instant. Everyone else is parked: either **ready** in a
//! central event queue ordered by `(virtual_time, rank)`, or **blocked**
//! on a rendezvous/mailbox condvar with its slot released. Every
//! rendezvous wait, point-to-point wait and clock advance is a yield
//! point, so execution follows virtual-time order — the rank furthest
//! behind in simulated time runs next, exactly like a discrete-event
//! simulator's event loop.
//!
//! # Determinism
//!
//! Scheduling never touches data: collectives reduce in canonical rank
//! order behind a rendezvous barrier, mailboxes are keyed FIFO per
//! `(from, to, tag)`, and per-device clocks are pure functions of the work
//! charged. The scheduler only decides *when* each rank executes, so
//! losses, clocks, traffic stats and (with the lane-based tracer) trace
//! snapshots are bitwise identical for every pool size and for the legacy
//! thread-per-rank backend. `tests/world_backend_parity.rs` asserts this.
//!
//! # Panic propagation
//!
//! A panicking rank aborts the whole run: the scheduler raises the abort
//! flag, wakes every parked task (admission queue, mailbox, group
//! rendezvous), and peers unwind with a silent [`AbortRun`] marker
//! (re-raised via `resume_unwind`, which skips the panic hook). `run_on`
//! then re-panics with the original rank's message under the existing
//! `"device thread panicked"` contract.

use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "no task is waiting in the ready queue" (greater than any
/// `f64::to_bits` of a finite non-negative clock).
const NO_READY: u64 = u64::MAX;

/// Unwind payload used to abort peer ranks after one rank panicked. Raised
/// with `resume_unwind` so the panic hook stays silent; `run_on` recognizes
/// it and reports only the original panic.
pub(crate) struct AbortRun;

/// The event queue: ranks waiting for a running slot, ordered by
/// `(virtual_time_bits, rank)`. Non-negative `f64` clocks order identically
/// to their IEEE-754 bit patterns, so the key is a plain integer pair.
struct SchedState {
    /// Maximum number of ranks holding a running slot.
    pool: usize,
    /// Ranks currently holding a slot.
    running: usize,
    /// Ready tasks, min-first by `(clock bits, rank)`.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    /// `granted[r]` — rank `r` holds a running slot.
    granted: Vec<bool>,
}

/// Central scheduler of one `World::run_on` call. Shared by every rank's
/// [`crate::DeviceCtx`]; dropped when the run completes.
pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    /// One admission condvar per rank (all associated with `state`), so
    /// granting a slot wakes exactly the chosen task.
    task_cvs: Vec<Condvar>,
    /// Raised once any rank panics; every wait loop checks it.
    pub(crate) abort: AtomicBool,
    /// Clock bits of the earliest ready task ([`NO_READY`] when the queue
    /// is empty): the lock-free gate that keeps [`Scheduler::maybe_yield`]
    /// to a single relaxed load on the hot path.
    min_ready: AtomicU64,
}

impl Scheduler {
    /// Creates the scheduler for `n` ranks on `pool` slots (clamped to at
    /// least 1) and grants the initial slots in rank order.
    pub(crate) fn new(n: usize, pool: usize) -> Arc<Scheduler> {
        let mut ready = BinaryHeap::with_capacity(n);
        for rank in 0..n {
            ready.push(Reverse((0u64, rank)));
        }
        let sched = Scheduler {
            state: Mutex::new(SchedState {
                pool: pool.max(1),
                running: 0,
                ready,
                granted: vec![false; n],
            }),
            task_cvs: (0..n).map(|_| Condvar::new()).collect(),
            abort: AtomicBool::new(false),
            min_ready: AtomicU64::new(0),
        };
        {
            let mut st = sched.state.lock();
            sched.admit_locked(&mut st);
        }
        Arc::new(sched)
    }

    /// Grants free slots to the earliest ready tasks and refreshes the
    /// `min_ready` gate. Called under the state lock after every change to
    /// `running` or `ready`.
    fn admit_locked(&self, st: &mut SchedState) {
        while st.running < st.pool {
            let Some(Reverse((_, rank))) = st.ready.pop() else {
                break;
            };
            st.running += 1;
            st.granted[rank] = true;
            self.task_cvs[rank].notify_one();
        }
        let min = st.ready.peek().map_or(NO_READY, |Reverse((k, _))| *k);
        self.min_ready.store(min, Ordering::Relaxed);
    }

    /// Parks until `rank` holds a running slot (initial admission). Returns
    /// without a slot when the run is aborting; the caller must check the
    /// abort flag.
    pub(crate) fn wait_admitted(&self, rank: usize) {
        let mut st = self.state.lock();
        while !st.granted[rank] {
            if self.abort.load(Ordering::Relaxed) {
                return;
            }
            self.task_cvs[rank].wait(&mut st);
        }
    }

    /// Running → blocked: releases the slot before the caller parks on a
    /// resource condvar (rendezvous, mailbox), letting the next ready task
    /// run. Safe to call with the resource lock held: the scheduler lock is
    /// a leaf — no scheduler path acquires resource locks.
    pub(crate) fn begin_block(&self, rank: usize) {
        let mut st = self.state.lock();
        debug_assert!(st.granted[rank], "begin_block without a slot");
        st.granted[rank] = false;
        st.running -= 1;
        self.admit_locked(&mut st);
    }

    /// Blocked → ready at `vtime` → parks until readmitted. Must be called
    /// with every resource lock released (the caller uses
    /// `MutexGuard::unlocked`). Returns slot-less when aborting.
    pub(crate) fn end_block(&self, rank: usize, vtime: f64) {
        let mut st = self.state.lock();
        st.ready.push(Reverse((vtime.to_bits(), rank)));
        self.admit_locked(&mut st);
        while !st.granted[rank] {
            if self.abort.load(Ordering::Relaxed) {
                return;
            }
            self.task_cvs[rank].wait(&mut st);
        }
    }

    /// Cooperative yield at a clock-advance point: if a ready task waits at
    /// an earlier virtual time, hand it the slot and requeue. One relaxed
    /// load when nobody earlier is waiting — cheap enough for every
    /// `advance` call.
    #[inline]
    pub(crate) fn maybe_yield(&self, rank: usize, vtime: f64) {
        if self.min_ready.load(Ordering::Relaxed) < vtime.to_bits() {
            self.yield_slot(rank, vtime);
        }
    }

    #[cold]
    fn yield_slot(&self, rank: usize, vtime: f64) {
        let key = (vtime.to_bits(), rank);
        let mut st = self.state.lock();
        // the gate is racy by design; recheck under the lock
        if !st.granted[rank] || st.ready.peek().is_none_or(|Reverse(k)| *k >= key) {
            return;
        }
        st.granted[rank] = false;
        st.running -= 1;
        st.ready.push(Reverse(key));
        self.admit_locked(&mut st);
        while !st.granted[rank] {
            if self.abort.load(Ordering::Relaxed) {
                return;
            }
            self.task_cvs[rank].wait(&mut st);
        }
    }

    /// Releases `rank`'s slot when its closure returns (or unwinds) and
    /// admits the next ready task. Idempotent for slot-less tasks (aborted
    /// before admission).
    pub(crate) fn task_done(&self, rank: usize) {
        let mut st = self.state.lock();
        if st.granted[rank] {
            st.granted[rank] = false;
            st.running -= 1;
        }
        self.admit_locked(&mut st);
    }

    /// Raises the abort flag and wakes every task parked on an admission
    /// condvar. Resource condvars (mailbox, groups) are woken separately by
    /// `WorldInner::abort_wake`. Holding the state lock while notifying
    /// closes the check-then-wait race in the admission loops.
    pub(crate) fn abort_all(&self) {
        self.abort.store(true, Ordering::SeqCst);
        let _st = self.state.lock();
        for cv in &self.task_cvs {
            cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_bounds_concurrent_slots() {
        let sched = Scheduler::new(8, 3);
        let st = sched.state.lock();
        assert_eq!(st.running, 3);
        assert_eq!(st.granted.iter().filter(|&&g| g).count(), 3);
        // earliest ranks first: keys are (0, rank)
        assert!(st.granted[0] && st.granted[1] && st.granted[2]);
    }

    #[test]
    fn block_admits_next_ready_task() {
        let sched = Scheduler::new(4, 1);
        assert!(sched.state.lock().granted[0]);
        sched.begin_block(0);
        assert!(sched.state.lock().granted[1], "slot moves to next rank");
        sched.task_done(1);
        assert!(sched.state.lock().granted[2]);
    }

    #[test]
    fn ready_queue_orders_by_time_then_rank() {
        let sched = Scheduler::new(3, 1);
        // rank 0 runs; 1 and 2 wait at t=0. Block 0, then requeue it at a
        // later time: ranks 1 and 2 must both run before 0 gets a slot.
        sched.begin_block(0);
        assert!(sched.state.lock().granted[1]);
        {
            let mut st = sched.state.lock();
            st.ready.push(Reverse((1.0f64.to_bits(), 0)));
            sched.admit_locked(&mut st);
        }
        sched.task_done(1);
        assert!(sched.state.lock().granted[2], "t=0 beats t=1");
        sched.task_done(2);
        assert!(sched.state.lock().granted[0]);
    }

    #[test]
    fn min_ready_gate_tracks_queue_head() {
        let sched = Scheduler::new(2, 2);
        assert_eq!(sched.min_ready.load(Ordering::Relaxed), NO_READY);
        sched.begin_block(0);
        {
            let mut st = sched.state.lock();
            st.pool = 1; // shrink so rank 0 queues instead of readmitting
            st.ready.push(Reverse((2.5f64.to_bits(), 0)));
            sched.admit_locked(&mut st);
        }
        assert_eq!(sched.min_ready.load(Ordering::Relaxed), 2.5f64.to_bits());
    }

    #[test]
    fn abort_releases_admission_waiters() {
        let sched = Scheduler::new(2, 1);
        let s2 = Arc::clone(&sched);
        let h = std::thread::spawn(move || s2.wait_admitted(1));
        sched.abort_all();
        h.join().unwrap(); // returns (slot-less) instead of hanging
        assert!(sched.abort.load(Ordering::Relaxed));
    }
}
