//! Trains a Vision Transformer with 1D tensor parallelism on 4 simulated
//! GPUs and verifies the loss trajectory matches the serial model exactly —
//! the workload of the paper's Fig 7 / Fig 11 experiments at example scale.
//!
//! Run with: `cargo run --release --example vit_tensor_parallel`

use colossalai::comm::World;
use colossalai::models::data::SyntheticVision;
use colossalai::models::{TransformerConfig, VisionTransformer};
use colossalai::parallel::vit1d::VisionTransformer1d;
use colossalai::tensor::init;
use colossalai::tensor::ops::cross_entropy;
use colossalai::topology::systems::system_i;
use colossalai_autograd::Layer;

const STEPS: usize = 25;
const LR: f32 = 0.03;
const BATCH: usize = 8;

fn main() {
    let cfg = TransformerConfig {
        layers: 2,
        hidden: 16,
        heads: 4,
        mlp_ratio: 2,
        vocab: 6,
        max_seq: 9,
    };
    let patch_dim = 12;
    let data = SyntheticVision::new(cfg.max_seq, patch_dim, cfg.vocab, 99);

    // serial reference run
    let mut rng = init::rng(1234);
    let mut serial = VisionTransformer::new(&cfg, patch_dim, &mut rng);
    let mut serial_losses = Vec::new();
    for step in 0..STEPS {
        let (x, t) = data.batch(BATCH, step as u64);
        serial.zero_grad();
        let logits = serial.forward(&x);
        let (loss, d) = cross_entropy(&logits, &t);
        serial_losses.push(loss);
        let _ = serial.backward(&d);
        serial.visit_params(&mut |p| {
            let g = p.grad().clone();
            p.value_mut().axpy(-LR, &g);
        });
    }

    // the same model sharded over 4 tensor-parallel devices
    let world = World::new(system_i());
    let tp_losses = world.run_on(4, |ctx| {
        let group = ctx.world_group(4);
        let mut rng = init::rng(1234); // same seed -> same global weights
        let mut vit = VisionTransformer1d::new(ctx, &group, &cfg, patch_dim, &mut rng);
        let mut losses = Vec::new();
        for step in 0..STEPS {
            let (x, t) = data.batch(BATCH, step as u64);
            vit.zero_grad();
            let logits = vit.forward(&x);
            let (loss, d) = cross_entropy(&logits, &t);
            losses.push(loss);
            let _ = vit.backward(&d);
            vit.visit_params(&mut |p| {
                let g = p.grad().clone();
                p.value_mut().axpy(-LR, &g);
            });
        }
        (losses, ctx.clock())
    });

    println!("step  serial-loss  1D-TP-loss");
    for (i, (s, t)) in serial_losses.iter().zip(&tp_losses[0].0).enumerate() {
        println!("{i:>4}  {s:>11.5}  {t:>10.5}");
    }
    let max_dev = serial_losses
        .iter()
        .zip(&tp_losses[0].0)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\nmax deviation from the serial trajectory: {max_dev:.2e}");
    assert!(
        max_dev < 1e-3,
        "tensor parallelism must be arithmetically faithful"
    );
    println!(
        "virtual time on device 0: {:.3} ms of modeled communication",
        tp_losses[0].1 * 1e3
    );
    println!("1D tensor-parallel ViT matches serial training — OK");
}
