//! Multi-head self-attention with a full analytic backward pass.

use crate::layer::Layer;
use crate::linear::Linear;
use crate::param::Param;
use colossalai_tensor::init::InitRng;
use colossalai_tensor::ops::{softmax_backward_inplace, softmax_inplace};
use colossalai_tensor::{bmm, bmm_at, bmm_bt, Tensor};

/// Large negative value used for masking (avoids NaN that `-inf` would
/// produce on fully masked rows).
const MASK_VALUE: f32 = -1.0e9;

/// Splits `[b, s, d]` into per-head batches `[b*h, s, d/h]`.
pub fn split_heads(x: &Tensor, heads: usize) -> Tensor {
    let (b, s, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    assert_eq!(
        d % heads,
        0,
        "hidden size {d} not divisible by {heads} heads"
    );
    let dk = d / heads;
    x.reshape([b, s, heads, dk])
        .permute(&[0, 2, 1, 3])
        .reshaped([b * heads, s, dk])
}

/// Inverse of [`split_heads`].
pub fn merge_heads(x: &Tensor, heads: usize) -> Tensor {
    let (bh, s, dk) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    assert_eq!(bh % heads, 0, "batch {bh} not divisible by {heads} heads");
    let b = bh / heads;
    x.reshape([b, heads, s, dk])
        .permute(&[0, 2, 1, 3])
        .reshaped([b, s, heads * dk])
}

/// Standard multi-head self-attention (`softmax(QK^T / sqrt(dk)) V` followed
/// by an output projection), optionally causal (GPT-style).
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    causal: bool,
    cache: Option<AttnCache>,
}

struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attn: Tensor,
}

impl MultiHeadAttention {
    pub fn new(name: &str, dim: usize, heads: usize, causal: bool, rng: &mut InitRng) -> Self {
        assert_eq!(
            dim % heads,
            0,
            "hidden size {dim} not divisible by {heads} heads"
        );
        MultiHeadAttention {
            wq: Linear::from_rng(&format!("{name}.q"), dim, dim, true, rng),
            wk: Linear::from_rng(&format!("{name}.k"), dim, dim, true, rng),
            wv: Linear::from_rng(&format!("{name}.v"), dim, dim, true, rng),
            wo: Linear::from_rng(&format!("{name}.o"), dim, dim, true, rng),
            heads,
            causal,
            cache: None,
        }
    }

    /// Builds from pre-constructed projections (used by tensor-parallel
    /// shards, which split the projections by head).
    pub fn from_parts(
        wq: Linear,
        wk: Linear,
        wv: Linear,
        wo: Linear,
        heads: usize,
        causal: bool,
    ) -> Self {
        MultiHeadAttention {
            wq,
            wk,
            wv,
            wo,
            heads,
            causal,
            cache: None,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    fn apply_causal_mask(&self, scores: &mut Tensor) {
        if !self.causal {
            return;
        }
        let s = scores.dims()[1];
        let data = scores.data_mut();
        for chunk in data.chunks_mut(s * s) {
            for i in 0..s {
                for j in (i + 1)..s {
                    chunk[i * s + j] = MASK_VALUE;
                }
            }
        }
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 3, "attention input must be [batch, seq, dim]");
        let heads = self.heads;
        // head width comes from the projection output, not the input: the
        // two differ in tensor-parallel shards where wq maps d -> d/p
        let dk = self.wq.d_out() / heads;
        let scale = 1.0 / (dk as f32).sqrt();

        let q = split_heads(&self.wq.forward(x), heads);
        let k = split_heads(&self.wk.forward(x), heads);
        let v = split_heads(&self.wv.forward(x), heads);

        let mut scores = bmm_bt(&q, &k);
        scores.scale(scale);
        self.apply_causal_mask(&mut scores);
        // scores is uniquely owned here: softmax runs in place, no copy
        softmax_inplace(&mut scores);
        let attn = scores;
        let z = bmm(&attn, &v);
        let merged = merge_heads(&z, heads);
        let out = self.wo.forward(&merged);
        self.cache = Some(AttnCache { q, k, v, attn });
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let AttnCache { q, k, v, attn } = self.cache.take().expect("backward before forward");
        let heads = self.heads;
        let dk = q.dims()[2];
        let scale = 1.0 / (dk as f32).sqrt();

        let dmerged = self.wo.backward(dy);
        let dz = split_heads(&dmerged, heads);

        // z = attn @ v
        let dattn = bmm_bt(&dz, &v);
        let dv = bmm_at(&attn, &dz);
        // attn = softmax(scores); masked entries carry ~zero probability, so
        // their gradient contribution vanishes automatically. dattn is
        // uniquely owned, so the softmax backward mutates it in place.
        let mut dscores = dattn;
        softmax_backward_inplace(&attn, &mut dscores);
        dscores.scale(scale);
        // scores = q @ k^T
        let dq = bmm(&dscores, &k);
        let dk_grad = bmm_at(&dscores, &q);

        let dx_q = self.wq.backward(&merge_heads(&dq, heads));
        let dx_k = self.wk.backward(&merge_heads(&dk_grad, heads));
        let dx_v = self.wv.backward(&merge_heads(&dv, heads));
        dx_q.zip(&dx_k, |a, b| a + b).zip(&dx_v, |a, b| a + b)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::grad_check;
    use colossalai_tensor::init;

    #[test]
    fn split_merge_roundtrip() {
        let x = Tensor::arange(2 * 3 * 8).reshaped([2, 3, 8]);
        for heads in [1, 2, 4] {
            let split = split_heads(&x, heads);
            assert_eq!(split.dims(), &[2 * heads, 3, 8 / heads]);
            assert_eq!(merge_heads(&split, heads), x);
        }
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = init::rng(20);
        let mut mha = MultiHeadAttention::new("attn", 8, 2, false, &mut rng);
        let x = init::uniform([2, 5, 8], -1.0, 1.0, &mut rng);
        let y = mha.forward(&x);
        assert_eq!(y.dims(), &[2, 5, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut rng = init::rng(21);
        let mut mha = MultiHeadAttention::new("attn", 4, 1, true, &mut rng);
        // two inputs that differ only in the last position must produce the
        // same outputs at all earlier positions
        let mut x1 = init::uniform([1, 4, 4], -1.0, 1.0, &mut rng);
        let y1 = mha.forward(&x1);
        for i in 0..4 {
            x1.set(&[0, 3, i], 99.0);
        }
        let y2 = mha.forward(&x1);
        for s in 0..3 {
            for d in 0..4 {
                assert!(
                    (y1.at(&[0, s, d]) - y2.at(&[0, s, d])).abs() < 1e-6,
                    "position {s} leaked future information"
                );
            }
        }
        // and the last position must differ
        assert!((y1.at(&[0, 3, 0]) - y2.at(&[0, 3, 0])).abs() > 1e-4);
    }

    #[test]
    fn single_head_grad_check() {
        let mut rng = init::rng(22);
        let mut mha = MultiHeadAttention::new("attn", 4, 1, false, &mut rng);
        let x = init::uniform([1, 3, 4], -1.0, 1.0, &mut rng);
        grad_check(&mut mha, &x, 1e-2, 8e-2).unwrap();
    }

    #[test]
    fn multi_head_grad_check() {
        let mut rng = init::rng(23);
        let mut mha = MultiHeadAttention::new("attn", 6, 3, false, &mut rng);
        let x = init::uniform([2, 3, 6], -1.0, 1.0, &mut rng);
        grad_check(&mut mha, &x, 1e-2, 8e-2).unwrap();
    }

    #[test]
    fn causal_grad_check() {
        let mut rng = init::rng(24);
        let mut mha = MultiHeadAttention::new("attn", 4, 2, true, &mut rng);
        let x = init::uniform([1, 4, 4], -1.0, 1.0, &mut rng);
        grad_check(&mut mha, &x, 1e-2, 8e-2).unwrap();
    }

    #[test]
    fn param_count() {
        let mut rng = init::rng(25);
        let mut mha = MultiHeadAttention::new("attn", 8, 2, false, &mut rng);
        // 4 projections of 8x8 + bias 8
        assert_eq!(mha.n_params(), 4 * (64 + 8));
    }
}
