//! One-shot reproduction summary: evaluates every experiment's headline
//! quantity and prints it against the paper's number — the quick "did the
//! shape hold" check (full detail lives in the per-figure binaries and
//! EXPERIMENTS.md).

use colossalai_bench::print_table;
use colossalai_memory::offload::PlacementPolicy;
use colossalai_models::TransformerConfig;
use colossalai_parallel::memcalc::{self, SeqMode};
use colossalai_parallel::throughput::{
    bert_pipeline_step, bert_step, offload_step, tp_best_throughput,
};
use colossalai_parallel::volume::TpMode;
use colossalai_topology::bandwidth::pairwise_extremes;
use colossalai_topology::systems::{system_i, system_ii, system_iii, system_iv};

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |id: &str, claim: &str, paper: String, measured: String| {
        rows.push(vec![id.to_string(), claim.to_string(), paper, measured]);
    };

    // E1 — Table 1 / Fig 5
    {
        let shape = colossalai_parallel::volume::MatmulShape {
            b: 32,
            s: 512,
            h: 1024,
        };
        let v1 = TpMode::OneD.volume(shape, 64) as f64;
        let v3 = TpMode::ThreeD.volume(shape, 64) as f64;
        row(
            "Fig 5",
            "3D volume << 1D at 64 GPUs",
            "orders of magnitude".into(),
            format!("{:.1}% of 1D", 100.0 * v3 / v1),
        );
    }

    // E4 — Fig 10
    {
        let (min_i, max_i) = pairwise_extremes(&system_i(), 125 << 20);
        let (min_ii, _) = pairwise_extremes(&system_ii(), 125 << 20);
        row(
            "Fig 10",
            "System II pairwise bandwidth is bimodal",
            "184 vs 15 GB/s".into(),
            format!(
                "{:.0} vs {:.0} GB/s (System I uniform at {:.0})",
                max_i / 1e9,
                min_ii / 1e9,
                min_i / 1e9
            ),
        );
    }

    // E3 — Fig 8
    {
        let rows_elems = 512 * 512;
        let s3 = memcalc::fig8_saving_vs_1d(TpMode::ThreeD, rows_elems, 4096, 8);
        row(
            "Fig 8",
            "3D memory saving vs 1D (batch 512, 8 GPUs)",
            "65%".into(),
            format!("{:.0}%", 100.0 * s3),
        );
    }

    // E5 — Fig 11
    {
        let cfg = TransformerConfig::vit_fig11_4gpu();
        let devices: Vec<usize> = (0..4).collect();
        let t1_i = tp_best_throughput(TpMode::OneD, &cfg, &system_i(), &devices).unwrap();
        let t2_i = tp_best_throughput(TpMode::TwoD, &cfg, &system_i(), &devices).unwrap();
        let t1_ii = tp_best_throughput(TpMode::OneD, &cfg, &system_ii(), &devices).unwrap();
        let t2_ii = tp_best_throughput(TpMode::TwoD, &cfg, &system_ii(), &devices).unwrap();
        row(
            "Fig 11",
            "2D vs 1D flips between Systems I and II (4 GPUs)",
            "-x% on I, +40% on II".into(),
            format!(
                "{:+.0}% on I, {:+.0}% on II",
                100.0 * (t2_i.throughput() / t1_i.throughput() - 1.0),
                100.0 * (t2_ii.throughput() / t1_ii.throughput() - 1.0)
            ),
        );
    }

    // E6 — Table 3
    {
        let cfg = TransformerConfig::vit_table3_large();
        let devices: Vec<usize> = (0..64).collect();
        let t1 = tp_best_throughput(TpMode::OneD, &cfg, &system_iv(), &devices).unwrap();
        let best = [
            TpMode::TwoD,
            TpMode::TwoPointFiveD { depth: 4 },
            TpMode::ThreeD,
        ]
        .iter()
        .filter_map(|m| tp_best_throughput(*m, &cfg, &system_iv(), &devices))
        .map(|e| e.throughput())
        .fold(0.0f64, f64::max);
        row(
            "Table 3",
            "best advanced mode vs 1D at 64 GPUs",
            "2.76x".into(),
            format!("{:.2}x", best / t1.throughput()),
        );
    }

    // E7 — Fig 12
    {
        let cfg = TransformerConfig::bert_base();
        let cap = system_iii().gpu(0).memory_bytes;
        let tp = memcalc::max_batch(SeqMode::TensorParallel1d, &cfg, 512, 12, cap);
        let sp = memcalc::max_batch(SeqMode::SequenceParallel, &cfg, 512, 12, cap);
        row(
            "Fig 12",
            "SP max batch vs 1D TP at 12 GPUs",
            "4.44x".into(),
            format!("{:.2}x ({sp} vs {tp})", sp as f64 / tp as f64),
        );
    }

    // E8 — Fig 13
    {
        let cfg = TransformerConfig::bert_base();
        let cluster = system_iii();
        let devices: Vec<usize> = (0..4).collect();
        let tp = bert_pipeline_step(
            SeqMode::TensorParallel1d,
            &cfg,
            &cluster,
            &devices,
            64,
            512,
            4,
            8,
        );
        let sp = bert_pipeline_step(
            SeqMode::SequenceParallel,
            &cfg,
            &cluster,
            &devices,
            64,
            512,
            4,
            8,
        );
        let flat_tp = bert_step(SeqMode::TensorParallel1d, &cfg, &cluster, &devices, 64, 512);
        let flat_sp = bert_step(SeqMode::SequenceParallel, &cfg, &cluster, &devices, 64, 512);
        row(
            "Fig 13",
            "SP vs 1D TP; gap widens with 4 pipeline stages",
            "1.43x -> 1.55x".into(),
            format!(
                "{:.2}x -> {:.2}x",
                flat_sp.throughput() / flat_tp.throughput(),
                sp.throughput() / tp.throughput()
            ),
        );
    }

    // E9 — Fig 14
    {
        let cfg = TransformerConfig::gpt2_10b();
        let devices: Vec<usize> = (0..4).collect();
        let s = offload_step(PlacementPolicy::StaticCpu, &cfg, &system_ii(), &devices, 4);
        let a = offload_step(PlacementPolicy::Adaptive, &cfg, &system_ii(), &devices, 4);
        row(
            "Fig 14",
            "adaptive vs static offload (GPT-2 10B, 4 GPUs)",
            "decisive win".into(),
            format!("{:.2}x", a.throughput() / s.throughput()),
        );
    }

    print_table(
        "Reproduction summary (see EXPERIMENTS.md for detail and deviations)",
        &["artifact", "claim", "paper", "measured"],
        &rows,
    );
    println!(
        "\nFig 7 (convergence) is checked by `fig7_convergence` and the test \
         suite: every tensor-parallel mode tracks the serial trajectory \
         within ~1e-7."
    );
}
