//! Vision Transformer (runnable scale) with the paper's ViT structure:
//! patch projection, learned position embedding, Transformer stack, final
//! LayerNorm, mean pooling, classification head.

use crate::config::TransformerConfig;
use crate::transformer::TransformerBlock;
use colossalai_autograd::{Layer, LayerNorm, Linear, Param, PositionEmbedding};
use colossalai_tensor::init::InitRng;
use colossalai_tensor::ops::sum_axis;
use colossalai_tensor::Tensor;

/// A runnable ViT. Input is pre-patchified: `[batch, n_patches, patch_dim]`
/// (the dataset generator emits patches directly, standing in for the
/// image pipeline). Output is `[batch, classes]` logits.
pub struct VisionTransformer {
    proj: Linear,
    pos: PositionEmbedding,
    blocks: Vec<TransformerBlock>,
    ln_f: LayerNorm,
    head: Linear,
    n_patches: usize,
}

impl VisionTransformer {
    /// Builds a ViT with `cfg.vocab` classes over `n_patches` patches of
    /// `patch_dim` raw features.
    pub fn new(cfg: &TransformerConfig, patch_dim: usize, rng: &mut InitRng) -> Self {
        let blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock::new(
                    &format!("vit.block{i}"),
                    cfg.hidden,
                    cfg.heads,
                    cfg.mlp_ratio,
                    false,
                    rng,
                )
            })
            .collect();
        VisionTransformer {
            proj: Linear::from_rng("vit.patch_proj", patch_dim, cfg.hidden, true, rng),
            pos: PositionEmbedding::new("vit", cfg.max_seq, cfg.hidden, rng),
            blocks,
            ln_f: LayerNorm::new("vit.ln_f", cfg.hidden),
            head: Linear::from_rng("vit.head", cfg.hidden, cfg.vocab, true, rng),
            n_patches: cfg.max_seq,
        }
    }

    /// Number of patches the model expects.
    pub fn n_patches(&self) -> usize {
        self.n_patches
    }
}

impl Layer for VisionTransformer {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 3, "ViT input must be [batch, patches, patch_dim]");
        let b = x.dims()[0];
        let s = x.dims()[1];
        let mut h = self.proj.forward(x);
        h = self.pos.forward(&h);
        for blk in &mut self.blocks {
            h = blk.forward(&h);
        }
        let h = self.ln_f.forward(&h);
        // mean pool over patches
        let pooled = {
            let mut p = sum_axis(&h, 1);
            p.scale(1.0 / s as f32);
            p
        };
        let logits = self.head.forward(&pooled);
        assert_eq!(logits.dims()[0], b);
        logits
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dpooled = self.head.backward(dy);
        // un-pool: distribute mean gradient over patches
        let (b, d) = (dpooled.dims()[0], dpooled.dims()[1]);
        let s = self.n_patches;
        let mut dh = Tensor::zeros([b, s, d]);
        for bi in 0..b {
            for si in 0..s {
                for di in 0..d {
                    let v = dpooled.at(&[bi, di]) / s as f32;
                    dh.set(&[bi, si, di], v);
                }
            }
        }
        let mut dh = self.ln_f.backward(&dh);
        for blk in self.blocks.iter_mut().rev() {
            dh = blk.backward(&dh);
        }
        let dh = self.pos.backward(&dh);
        self.proj.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.proj.visit_params(f);
        self.pos.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colossalai_tensor::init;
    use colossalai_tensor::ops::cross_entropy;

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            layers: 2,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            vocab: 5,
            max_seq: 4,
        }
    }

    #[test]
    fn logits_shape() {
        let mut rng = init::rng(60);
        let cfg = tiny_cfg();
        let mut vit = VisionTransformer::new(&cfg, 6, &mut rng);
        let x = init::uniform([3, 4, 6], -1.0, 1.0, &mut rng);
        let y = vit.forward(&x);
        assert_eq!(y.dims(), &[3, 5]);
    }

    #[test]
    fn single_step_reduces_loss() {
        let mut rng = init::rng(61);
        let cfg = tiny_cfg();
        let mut vit = VisionTransformer::new(&cfg, 6, &mut rng);
        let x = init::uniform([4, 4, 6], -1.0, 1.0, &mut rng);
        let targets = [0usize, 1, 2, 3];

        let mut losses = Vec::new();
        for _ in 0..10 {
            vit.zero_grad();
            let logits = vit.forward(&x);
            let (loss, dlogits) = cross_entropy(&logits, &targets);
            losses.push(loss);
            let _ = vit.backward(&dlogits);
            let lr = 0.02;
            vit.visit_params(&mut |p| {
                let g = p.grad().clone();
                p.value_mut().axpy(-lr, &g);
            });
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "loss did not drop: {losses:?}"
        );
    }

    #[test]
    fn backward_returns_input_gradient_shape() {
        let mut rng = init::rng(62);
        let cfg = tiny_cfg();
        let mut vit = VisionTransformer::new(&cfg, 6, &mut rng);
        let x = init::uniform([2, 4, 6], -1.0, 1.0, &mut rng);
        let y = vit.forward(&x);
        let dx = vit.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.dims(), x.dims());
    }
}
